"""Layer 1: static DSL / IR verification of a :class:`~repro.dsl.problem.Problem`.

Unlike :meth:`Problem.validate` (which raises on the first inconsistency),
these checks walk the whole declaration and collect *every* finding as a
:class:`~repro.verify.diagnostics.Diagnostic`, pointing back into the
equation source with a caret where possible.  The checks deliberately
re-derive their facts from the declaration (instead of trusting the setter
guards) so problems assembled programmatically — or mutated by tests — are
verified just as strictly as script-built ones.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.symbolic.expr import Call, Indexed, Surface, Sym, preorder
from repro.util.errors import DSLError, ParseError, ReproError
from repro.verify.diagnostics import Diagnostic, DiagnosticReport

if TYPE_CHECKING:
    from repro.dsl.problem import Problem

#: names the expression language resolves implicitly (see ir.lowering)
_RESERVED = {"dt", "t", "time", "normal", "x", "y", "z"}


def _find_name(source: str, name: str) -> int:
    """Offset of the first whole-word occurrence of ``name`` (-1 if absent)."""
    m = re.search(rf"(?<![\w.]){re.escape(name)}(?![\w])", source)
    return m.start() if m else -1


def check_problem(problem: "Problem") -> DiagnosticReport:
    """Run every static check against ``problem``; never raises."""
    report = DiagnosticReport()
    _check_config(problem, report)
    _check_mesh(problem, report)
    _check_equation(problem, report)
    _check_boundaries(problem, report)
    _check_assembly_order(problem, report)
    _check_partitioning(problem, report)
    if not report.has_errors:
        _check_well_formedness(problem, report)
    return report


# ---------------------------------------------------------------------- config

def _check_config(problem: "Problem", report: DiagnosticReport) -> None:
    cfg = problem.config
    report.checks_run += 1
    if cfg.solver_type not in ("FV", "FEM"):
        report.add(Diagnostic.from_code(
            "RPR001", f"solver type must be FV or FEM (got {cfg.solver_type!r})"))
    if cfg.dimension not in (1, 2, 3):
        report.add(Diagnostic.from_code(
            "RPR001", f"dimension must be 1, 2 or 3 (got {cfg.dimension})"))
    report.checks_run += 1
    if cfg.dt <= 0 or cfg.nsteps <= 0:
        report.add(Diagnostic.from_code(
            "RPR132",
            f"set_steps(dt, nsteps) required before solving "
            f"(dt={cfg.dt}, nsteps={cfg.nsteps})"))


def _check_mesh(problem: "Problem", report: DiagnosticReport) -> None:
    report.checks_run += 1
    if problem.mesh is None:
        report.add(Diagnostic.from_code("RPR120", "no mesh set"))
        return
    if problem.mesh.dim != problem.config.dimension:
        report.add(Diagnostic.from_code(
            "RPR133",
            f"mesh dimension {problem.mesh.dim} != declared domain "
            f"{problem.config.dimension}"))


# -------------------------------------------------------------------- equation

def _check_equation(problem: "Problem", report: DiagnosticReport) -> None:
    report.checks_run += 1
    eq = problem.equation
    if eq is None:
        report.add(Diagnostic.from_code(
            "RPR110", "no conservation_form/weak_form declared"))
        return
    kind, solver = problem.equation_kind, problem.config.solver_type
    if solver == "FEM" and kind != "weak":
        report.add(Diagnostic.from_code(
            "RPR111", "the FEM solver needs weak_form input"))
    if solver == "FV" and kind != "conservation":
        report.add(Diagnostic.from_code(
            "RPR111", "the FV solver needs conservation_form input"))
    _check_expression(problem, report)


def _check_expression(problem: "Problem", report: DiagnosticReport) -> None:
    eq = problem.equation
    entities = problem.entities
    source = eq.source
    reserved = set(_RESERVED)
    weak_intrinsics: set[str] = set()
    if problem.equation_kind == "weak":
        reserved.add("v")  # the test function
        weak_intrinsics = {"grad", "dot"}  # see fem.weakform

    from repro.symbolic.evaluate import DEFAULT_FUNCTIONS

    report.checks_run += 3  # symbols, indices, functions
    seen: set[tuple[str, str]] = set()  # (code, subject) dedup

    def add_once(code: str, subject: str, message: str) -> None:
        if (code, subject) in seen:
            return
        seen.add((code, subject))
        report.add(Diagnostic.from_code(
            code, message, source=source, position=_find_name(source, subject)))

    for node in preorder(eq.parsed):
        if isinstance(node, Call):
            known = (
                node.func in problem.operators
                or entities.kind_of(node.func) == "callback"
                or node.func in DEFAULT_FUNCTIONS
                or node.func in weak_intrinsics
            )
            if not known:
                add_once("RPR102", node.func,
                         f"unknown function {node.func!r}: neither a symbolic "
                         "operator, a math function, nor an imported callback")
        elif isinstance(node, Sym):
            kind = entities.kind_of(node.name)
            if kind is None and node.name not in reserved:
                add_once("RPR101", node.name,
                         f"unknown symbol {node.name!r} in equation input")
            elif kind == "callback":
                add_once("RPR106", node.name,
                         f"callback {node.name!r} must be called, not referenced")
            elif kind in ("variable", "coefficient"):
                ent = (entities.variables[node.name] if kind == "variable"
                       else entities.coefficients[node.name])
                if getattr(ent, "indices", ()):
                    add_once("RPR105", node.name,
                             f"{kind} {node.name!r} is indexed and must be "
                             f"referenced as "
                             f"{node.name}[{','.join(ent.index_names())}]")
        elif isinstance(node, Indexed):
            _check_indexed_node(node, problem, add_once)

    # nested surface integrals (FV only — weak forms have no surface marker)
    report.checks_run += 1
    for node in preorder(eq.parsed):
        if isinstance(node, Call) and node.func == "surface":
            for inner in preorder(node):
                if inner is not node and isinstance(inner, Call) \
                        and inner.func == "surface":
                    add_once("RPR107", "surface",
                             "nested surface(...) integrals are not allowed")
        if isinstance(node, Surface):  # pre-expanded trees
            for inner in preorder(node.expr):
                if isinstance(inner, Surface):
                    add_once("RPR107", "surface",
                             "nested surface(...) integrals are not allowed")

    # the unknown should appear in its own equation
    report.checks_run += 1
    unknown = eq.variable
    appears = any(
        (isinstance(n, Sym) and n.name == unknown)
        or (isinstance(n, Indexed) and n.base == unknown)
        for n in preorder(eq.parsed)
    )
    if not appears:
        report.add(Diagnostic.from_code(
            "RPR109",
            f"unknown {unknown!r} does not appear in its own equation",
            source=source, position=-1))


def _check_indexed_node(node: Indexed, problem: "Problem", add_once) -> None:
    entities = problem.entities
    kind = entities.kind_of(node.base)
    if kind == "variable":
        declared = entities.variables[node.base].index_names()
    elif kind == "coefficient":
        declared = entities.coefficients[node.base].index_names()
    else:
        add_once("RPR101", node.base,
                 f"unknown indexed entity {node.base!r}")
        return
    if len(node.indices) != len(declared):
        add_once("RPR103", node.base,
                 f"{node.base}[{','.join(map(str, node.indices))}]: expected "
                 f"{len(declared)} index(es) {list(declared)}")
        return
    for given, want in zip(node.indices, declared):
        if not isinstance(given, str):
            continue
        if given not in entities.indices:
            add_once("RPR104", given,
                     f"{node.base}: subscript {given!r} is not a declared index")
        elif given != want:
            add_once("RPR104", given,
                     f"{node.base}: index {given!r} does not match declared "
                     f"{want!r}")


# ------------------------------------------------------------------ boundaries

def _check_boundaries(problem: "Problem", report: DiagnosticReport) -> None:
    if problem.mesh is None or problem.equation is None:
        return
    if problem.config.solver_type == "FEM":
        return  # uncovered FEM regions are natural (zero-flux) boundaries
    report.checks_run += 3  # coverage, unknown regions, duplicates
    unknown = problem.equation.variable
    regions = set(problem.mesh.boundary_regions())
    specs = [b for b in problem.boundaries if b.variable == unknown]
    covered: dict[int, int] = {}
    for spec in specs:
        covered[spec.region] = covered.get(spec.region, 0) + 1
    for region in sorted(regions - set(covered)):
        report.add(Diagnostic.from_code(
            "RPR121",
            f"mesh boundary region {region} has no condition for {unknown!r}",
            region=region, variable=unknown))
    for region in sorted(set(covered) - regions):
        report.add(Diagnostic.from_code(
            "RPR122",
            f"boundary condition references region {region}, which the mesh "
            f"does not have (regions: {sorted(regions)})",
            region=region, variable=unknown))
    for region, count in sorted(covered.items()):
        if count > 1:
            report.add(Diagnostic.from_code(
                "RPR123",
                f"region {region} has {count} conditions for {unknown!r}",
                region=region, variable=unknown))

    report.checks_run += 1
    from repro.fvm.boundary import BCKind

    for spec in problem.boundaries:
        if spec.kind == BCKind.DIRICHLET and spec.value is None:
            report.add(Diagnostic.from_code(
                "RPR124", f"region {spec.region}: Dirichlet condition has no "
                "value", region=spec.region, variable=spec.variable))
        if spec.kind in (BCKind.FLUX, BCKind.GHOST_CALLBACK):
            if spec.call is None and spec.python_callback is None:
                report.add(Diagnostic.from_code(
                    "RPR124", f"region {spec.region}: {spec.kind.value} "
                    "condition has no callback",
                    region=spec.region, variable=spec.variable))
            elif spec.call is not None and \
                    problem.entities.kind_of(spec.call.func) != "callback":
                report.add(Diagnostic.from_code(
                    "RPR124", f"region {spec.region}: callback "
                    f"{spec.call.func!r} is not an imported callback",
                    region=spec.region, variable=spec.variable))
        if spec.kind == BCKind.SYMMETRY and spec.reflection_map is None:
            report.add(Diagnostic.from_code(
                "RPR124", f"region {spec.region}: symmetry condition has no "
                "reflection map", region=spec.region, variable=spec.variable))


# ------------------------------------------------------------ loops/partition

def _check_assembly_order(problem: "Problem", report: DiagnosticReport) -> None:
    if problem.equation is None:
        return
    report.checks_run += 1
    order = problem.config.assembly_order
    unknown = problem.entities.variables.get(problem.equation.variable)
    if "cells" not in order:
        report.add(Diagnostic.from_code(
            "RPR130", f"assemblyLoops {order} must include the cell loop "
            "('cells')"))
    if len(set(order)) != len(order):
        report.add(Diagnostic.from_code(
            "RPR130", f"assemblyLoops {order} has duplicate entries"))
    if unknown is not None:
        for name in order:
            if name != "cells" and name not in unknown.space.names:
                report.add(Diagnostic.from_code(
                    "RPR130",
                    f"assembly loop {name!r} is not an index of "
                    f"{unknown.name!r} (indices: {list(unknown.space.names)})"))


def _check_partitioning(problem: "Problem", report: DiagnosticReport) -> None:
    cfg = problem.config
    report.checks_run += 1
    if cfg.partition_strategy not in ("none", "cells", "bands"):
        report.add(Diagnostic.from_code(
            "RPR131", f"unknown partition strategy {cfg.partition_strategy!r}"))
        return
    if cfg.nparts < 1:
        report.add(Diagnostic.from_code(
            "RPR131", f"nparts must be >= 1 (got {cfg.nparts})"))
    if cfg.partition_strategy != "bands":
        return
    if not cfg.partition_index:
        report.add(Diagnostic.from_code(
            "RPR131", "band partitioning needs the index to split over"))
        return
    if problem.equation is None:
        return
    unknown = problem.entities.variables.get(problem.equation.variable)
    if unknown is None:
        return
    if cfg.partition_index not in unknown.space.names:
        report.add(Diagnostic.from_code(
            "RPR131",
            f"band-partition index {cfg.partition_index!r} is not an index of "
            f"{unknown.name!r}"))
    elif cfg.nparts > unknown.space.size(cfg.partition_index):
        report.add(Diagnostic(
            code="RPR131", severity="warning", layer="ir",
            message=f"{cfg.nparts} ranks split index "
                    f"{cfg.partition_index!r} of size "
                    f"{unknown.space.size(cfg.partition_index)}: some ranks "
                    "own no bands"))


# -------------------------------------------------------- full-pipeline check

def _check_well_formedness(problem: "Problem", report: DiagnosticReport) -> None:
    """Run the real lowering pipeline; any residual DSLError means the
    conservation form is not well-formed for explicit stepping."""
    if problem.equation is None or problem.equation_kind != "conservation":
        return
    report.checks_run += 1
    from repro.ir.lowering import lower_conservation_form

    unknown = problem.entities.variables.get(problem.equation.variable)
    if unknown is None:
        return
    try:
        lower_conservation_form(
            problem.equation.source, unknown, problem.entities,
            problem.operators)
    except ParseError as exc:
        report.add(Diagnostic.from_error(exc))
    except DSLError as exc:
        report.add(Diagnostic.from_code(
            "RPR112", str(exc).split("\n", 1)[0],
            source=problem.equation.source))
    except ReproError as exc:
        report.add(Diagnostic.from_error(exc))


__all__ = ["check_problem"]
