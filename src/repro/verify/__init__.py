"""Static verification + runtime sanitizing for the DSL->IR->codegen pipeline.

Three layers, one diagnostic vocabulary (stable ``RPR###`` codes, see
:mod:`repro.verify.codes`):

1. **static DSL/IR checks** (:mod:`repro.verify.static_checks`) — undefined
   symbols, index/shape consistency, boundary coverage, loop ordering,
   conservation-form well-formedness;
2. **placement & schedule hazards** (:mod:`repro.verify.placement_checks`,
   :mod:`repro.verify.schedule`) — transfer-plan completeness, WAW and
   kernel-vs-CPU races, SPMD send/recv matching and deadlock detection;
3. **runtime sanitizer** (:mod:`repro.verify.sanitizer`) — NaN/Inf guards,
   halo checksums, residency and stability checks during a ``--sanitize``
   run.

Entry points: ``bte lint <script>`` on the CLI, :func:`lint_problem` /
:func:`verify_solver` from code, :func:`sanitize_run` around a solve.
"""

from repro.verify.codes import CATALOGUE, CodeInfo, describe, render_catalogue
from repro.verify.diagnostics import Diagnostic, DiagnosticReport
from repro.verify.lint import (
    ScriptLint,
    lint_paths,
    lint_problem,
    lint_script,
    verify_solver,
)
from repro.verify.placement_checks import (
    check_hazards,
    check_placement,
    check_transfers,
    verify_solver_placement,
)
from repro.verify.sanitizer import (
    Sanitizer,
    SanitizerError,
    get_sanitizer,
    sanitize_run,
    sanitizer_section,
)
from repro.verify.schedule import (
    CollectiveOp,
    RecvOp,
    SendOp,
    check_halo_symmetry,
    halo_programs,
    simulate_schedule,
    verify_halo_layout,
    verify_solver_schedule,
)
from repro.verify.static_checks import check_problem

__all__ = [
    "CATALOGUE",
    "CodeInfo",
    "describe",
    "render_catalogue",
    "Diagnostic",
    "DiagnosticReport",
    "ScriptLint",
    "lint_paths",
    "lint_problem",
    "lint_script",
    "verify_solver",
    "check_hazards",
    "check_placement",
    "check_transfers",
    "verify_solver_placement",
    "verify_solver_schedule",
    "Sanitizer",
    "SanitizerError",
    "get_sanitizer",
    "sanitize_run",
    "sanitizer_section",
    "CollectiveOp",
    "RecvOp",
    "SendOp",
    "check_halo_symmetry",
    "halo_programs",
    "simulate_schedule",
    "verify_halo_layout",
    "check_problem",
]
