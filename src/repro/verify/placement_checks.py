"""Layer 2a: hazard analysis over a placement plan + transfer schedule.

The task graph declares the only ordering the generated schedules honour:
data edges.  Two tasks with no edge-path between them (in either direction)
are genuinely unordered — the hybrid step may overlap them — so any shared
buffer with a writer among them is a race.  Arrays the generated code
double-buffers (the unknown: the kernel writes ``u_new`` while CPU tasks
read ``u``) are declared as such on :class:`ArrayUse` and exempted.

Transfer-plan completeness is checked by *recomputing* the expected
classification from the placement + array uses and diffing it against the
plan the solver actually carries: a device read whose per-step h2d is
missing is a stale-device-buffer bug (RPR201), a host read without its d2h
is the mirror image (RPR202).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.verify.diagnostics import Diagnostic, DiagnosticReport

if TYPE_CHECKING:
    from repro.codegen.placement.optimizer import PlacementPlan
    from repro.codegen.placement.transfers import ArrayUse, TransferPlan


def _reachable(adj: dict[str, set[str]], start: str) -> set[str]:
    seen: set[str] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        for nxt in adj.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen


def _ordering(plan: "PlacementPlan") -> dict[str, set[str]]:
    """For each task, every task related to it by an edge path (either
    direction) — i.e. the tasks the schedule serializes against it."""
    adj: dict[str, set[str]] = {}
    if plan.graph is None:
        return {}
    for e in plan.graph.edges:
        adj.setdefault(e.src, set()).add(e.dst)
    related: dict[str, set[str]] = {}
    down = {t: _reachable(adj, t) for t in plan.graph.tasks}
    for t in plan.graph.tasks:
        related[t] = set(down[t])
    for t, reach in down.items():
        for r in reach:
            related.setdefault(r, set()).add(t)
    return related


def check_placement(plan: "PlacementPlan") -> DiagnosticReport:
    """Structural validity of one placement plan (RPR205, RPR206)."""
    import math

    report = DiagnosticReport()
    report.checks_run += 2
    graph = plan.graph
    if graph is not None:
        for name in plan.device:
            if name not in graph.tasks:
                report.add(Diagnostic.from_code(
                    "RPR206", f"placement assigns unknown task {name!r}",
                    task=name))
        for name in graph.tasks:
            if name not in plan.device:
                report.add(Diagnostic.from_code(
                    "RPR206", f"task {name!r} has no device assignment",
                    task=name))
        for e in graph.edges:
            for end in (e.src, e.dst):
                if end not in graph.tasks:
                    report.add(Diagnostic.from_code(
                        "RPR206", f"edge {e.src}->{e.dst} references unknown "
                        f"task {end!r}", task=end))
    for name, device in plan.device.items():
        task = graph.tasks.get(name) if graph is not None else None
        if task is None:
            continue
        if task.pinned is not None and device != task.pinned:
            report.add(Diagnostic.from_code(
                "RPR205",
                f"task {name!r} is pinned to {task.pinned} but placed on "
                f"{device}", task=name, device=device))
        if device == "gpu" and not math.isfinite(task.cost_gpu):
            report.add(Diagnostic.from_code(
                "RPR205", f"task {name!r} placed on gpu without a gpu cost",
                task=name, device=device))
    return report


def check_hazards(plan: "PlacementPlan",
                  arrays: Iterable["ArrayUse"]) -> DiagnosticReport:
    """Write-after-write and kernel-vs-CPU races on shared buffers
    (RPR203, RPR204)."""
    report = DiagnosticReport()
    report.checks_run += 2
    related = _ordering(plan)
    known = set(plan.device)

    def concurrent(a: str, b: str) -> bool:
        return b not in related.get(a, set()) and a not in related.get(b, set())

    for arr in arrays:
        for t in (*arr.readers, *arr.writers):
            if t not in known:
                report.add(Diagnostic.from_code(
                    "RPR206", f"array {arr.name!r} references unknown task "
                    f"{t!r}", array=arr.name, task=t))
        if getattr(arr, "double_buffered", False):
            continue
        writers = [t for t in arr.writers if t in known]
        readers = [t for t in arr.readers if t in known]
        for i, w1 in enumerate(writers):
            for w2 in writers[i + 1:]:
                if w1 != w2 and concurrent(w1, w2):
                    report.add(Diagnostic.from_code(
                        "RPR203",
                        f"tasks {w1!r} and {w2!r} both write {arr.name!r} "
                        "with no ordering edge between them",
                        array=arr.name, tasks=f"{w1},{w2}"))
        for w in writers:
            for r in readers:
                if r == w or not concurrent(w, r):
                    continue
                dw, dr = plan.device.get(w), plan.device.get(r)
                if dw != dr:
                    report.add(Diagnostic.from_code(
                        "RPR204",
                        f"{dw} task {w!r} writes {arr.name!r} while "
                        f"unordered {dr} task {r!r} reads it (overlap race)",
                        array=arr.name, writer=w, reader=r))
    return report


def check_transfers(plan: "PlacementPlan", transfer: "TransferPlan",
                    arrays: list["ArrayUse"]) -> DiagnosticReport:
    """Transfer-plan completeness against the placement (RPR201/202/207)."""
    from repro.codegen.placement.transfers import plan_transfers

    report = DiagnosticReport()
    report.checks_run += 3
    expected = plan_transfers(plan, arrays)

    for name in expected.h2d_each_step:
        if name not in transfer.h2d_each_step:
            report.add(Diagnostic.from_code(
                "RPR201",
                f"array {name!r} is written on the host and read on the "
                "device each step, but the transfer plan schedules no h2d "
                "for it (device would read a stale buffer)", array=name))
    for name in expected.static_h2d:
        if name not in transfer.static_h2d \
                and name not in transfer.h2d_each_step:
            report.add(Diagnostic.from_code(
                "RPR201",
                f"device-read array {name!r} has no h2d transfer at all "
                "(neither setup nor per-step)", array=name))
    for name in expected.d2h_each_step:
        if name not in transfer.d2h_each_step:
            report.add(Diagnostic.from_code(
                "RPR202",
                f"array {name!r} is written on the device and read on the "
                "host, but the transfer plan schedules no d2h for it (host "
                "would read a stale buffer)", array=name))

    described = {a.name for a in arrays}
    listed = (set(transfer.static_h2d) | set(transfer.h2d_each_step)
              | set(transfer.d2h_each_step) | set(transfer.host_only)
              | set(transfer.device_only))
    for name in sorted(listed - described):
        report.add(Diagnostic.from_code(
            "RPR207",
            f"transfer plan lists array {name!r}, which no task reads or "
            "writes", array=name))
    return report


def verify_solver_placement(solver) -> DiagnosticReport:
    """All placement-layer checks a generated solver's attachments allow."""
    report = DiagnosticReport()
    plan = getattr(solver, "placement", None)
    if plan is None:
        return report
    report.extend(check_placement(plan))
    arrays = getattr(solver, "array_uses", None)
    if arrays:
        report.extend(check_hazards(plan, arrays))
        transfer = getattr(solver, "transfer_plan", None)
        if transfer is not None:
            report.extend(check_transfers(plan, transfer, arrays))
    return report


__all__ = [
    "check_placement",
    "check_hazards",
    "check_transfers",
    "verify_solver_placement",
]
