"""Layer 3: the runtime sanitizer (``--sanitize``).

A module-level singleton (same pattern as the tracer, metrics and
resilience log) that every generated run loop consults through
:meth:`SolverState.sanitize_step`.  When disabled — the default — every
hook is a cheap attribute check, and a sanitized run performs *no write*
to any solver array: all checks are read-only, so results stay bit-identical
to unsanitized runs (tested).

Checks, each mapped to a stable code:

* per-kernel / per-step NaN-Inf guards with first-bad step/component/cell
  provenance (RPR301 for fields, RPR306 for raw kernel output);
* cross-rank halo consistency: the comm layer notes a checksum of every
  sent array out-of-band and verifies it on receipt, plus finiteness of
  received halos (RPR302);
* device-residency accounting: reads of stale device buffers surface as
  RPR305 (the simulated device raises, the sanitizer records);
* CFL-style instability heuristics (RPR304) and conservation drift
  (RPR303) as warnings.

Findings feed the tracer (instant events on a ``sanitizer`` track), the
metrics registry (``sanitizer_findings_total``) and the run report's
``diagnostics`` section.
"""

from __future__ import annotations

import threading
import weakref
import zlib
from typing import Any

import numpy as np

from repro.util.errors import SolverError
from repro.verify.diagnostics import Diagnostic, DiagnosticReport


class SanitizerError(SolverError):
    """A fatal sanitizer finding (non-finite field, checksum mismatch)."""

    default_code = "RPR301"


class _StateWatch:
    """Per-solver-state history the drift/CFL heuristics need."""

    __slots__ = ("prev_u", "energy0", "warned")

    def __init__(self):
        self.prev_u: np.ndarray | None = None
        self.energy0: float | None = None
        self.warned: set[str] = set()


class Sanitizer:
    """Thread-safe runtime sanitizer; one singleton per process."""

    #: relative per-step update beyond which RPR304 fires (a stable explicit
    #: scheme moves the solution by O(CFL) per step; 10x is blow-up territory)
    cfl_rel_threshold = 10.0
    #: relative conserved-total drift beyond which RPR303 fires
    drift_threshold = 0.05

    def __init__(self, enabled: bool = False):
        self._lock = threading.Lock()
        self.enabled = enabled
        self.was_active = False
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.report = DiagnosticReport()
            self.checks = 0
            self._watch: "weakref.WeakKeyDictionary[Any, _StateWatch]" = (
                weakref.WeakKeyDictionary())
            self._sent_crc: dict[tuple[int, int, int, int], int] = {}

    # ----------------------------------------------------------------- events
    def record(self, diag: Diagnostic) -> None:
        with self._lock:
            self.report.add(diag)
        self._feed_observability(diag)

    def _feed_observability(self, diag: Diagnostic) -> None:
        from repro.obs import get_event_log, get_metrics, get_tracer

        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "sanitizer_findings_total",
                "runtime sanitizer findings by code",
            ).inc(1, code=diag.code, severity=diag.severity)
        tracer = get_tracer()
        if tracer.enabled:
            ts = diag.where.get("time", 0.0)
            tracer.instant("sanitizer", diag.code, float(ts or 0.0),
                           cat="sanitizer", message=diag.message)
        level = diag.severity if diag.severity in ("info", "warning", "error") \
            else "warning"
        get_event_log().emit(
            "sanitizer.finding", level=level,
            rank=diag.where.get("rank"), step=diag.where.get("step"),
            code=diag.code, severity=diag.severity, message=diag.message)

    def _count(self, n: int = 1) -> None:
        with self._lock:
            self.checks += n
            self.report.checks_run = self.checks

    # ----------------------------------------------------------------- checks
    def check_array(self, name: str, arr: np.ndarray, *, code: str = "RPR301",
                    step: int | None = None, time: float | None = None,
                    fatal: bool = True, **where: Any) -> bool:
        """NaN/Inf guard with first-bad provenance.  Returns True if clean."""
        if not self.enabled:
            return True
        self._count()
        arr = np.asarray(arr)
        if np.isfinite(arr).all():
            return True
        bad = np.argwhere(~np.isfinite(arr))
        first = tuple(int(i) for i in bad[0])
        value = arr[tuple(bad[0])]
        msg = (f"{name} contains {len(bad)} non-finite value(s); first at "
               f"index {first} ({value!r})")
        if step is not None:
            msg += f" on step {step}"
            where["step"] = step
        if time is not None:
            where["time"] = time
        where["index"] = first
        diag = Diagnostic.from_code(code, msg, array=name, **where)
        self.record(diag)
        if fatal:
            exc = SanitizerError(f"[{diag.code}] {msg}", code=diag.code)
            from repro.obs import get_flight_recorder

            get_flight_recorder().dump("sanitizer", exc)
            raise exc
        return False

    def check_state(self, state) -> None:
        """Per-step field guards + drift/CFL heuristics for one solver state.

        Read-only: never touches solver arrays in place, so a sanitized run
        is numerically identical to an unsanitized one.
        """
        if not self.enabled:
            return
        rank = state.comm.rank if getattr(state, "comm", None) is not None \
            else None
        where = {} if rank is None else {"rank": rank}
        unknown = getattr(state, "unknown", None) or state.problem.unknown
        u = state.u
        self.check_array(unknown.name, u, step=state.step_index,
                         time=state.time, **where)
        with self._lock:
            watch = self._watch.get(state)
            if watch is None:
                watch = self._watch[state] = _StateWatch()

        self._count()
        if watch.prev_u is not None and watch.prev_u.shape == u.shape:
            scale = float(np.max(np.abs(watch.prev_u)))
            if scale > 0.0:
                rel = float(np.max(np.abs(u - watch.prev_u))) / scale
                if rel > self.cfl_rel_threshold and "cfl" not in watch.warned:
                    watch.warned.add("cfl")
                    self.record(Diagnostic.from_code(
                        "RPR304",
                        f"{unknown.name} moved {rel:.1f}x its own "
                        f"magnitude in one step (step {state.step_index}); "
                        "the explicit step likely violates the CFL limit",
                        step=state.step_index, time=state.time, **where))
        watch.prev_u = u.copy()

        geom = getattr(state, "geom", None)
        if geom is not None and getattr(geom, "volume", None) is not None:
            self._count()
            energy = float(geom.volume @ u.sum(axis=0))
            if watch.energy0 is None:
                watch.energy0 = energy
            scale = abs(watch.energy0)
            if scale > 0.0:
                drift = abs(energy - watch.energy0) / scale
                if drift > self.drift_threshold \
                        and "drift" not in watch.warned:
                    watch.warned.add("drift")
                    self.record(Diagnostic.from_code(
                        "RPR303",
                        f"volume-weighted total of {unknown.name} "
                        f"drifted {drift * 100:.1f}% from its initial value "
                        f"by step {state.step_index}",
                        step=state.step_index, time=state.time, **where))

        device = getattr(state, "device", None)
        if device is not None:
            self._count()
            stale = [name for name, buf in device.buffers.items()
                     if not getattr(buf, "on_device", True)]
            if stale and "stale" not in watch.warned:
                # stale buffers at step end are legal only for the degraded
                # (fault-fallback) path, which rewrites them before any read;
                # surface the fact as information, not an error
                watch.warned.add("stale")
                self.record(Diagnostic(
                    code="RPR305", severity="info", layer="runtime",
                    message=f"device buffer(s) {stale} host-dirty at step "
                            f"{state.step_index} end (degraded path or "
                            "pending h2d)",
                    where={"step": state.step_index, **where}))

    def check_kernel_output(self, kernel: str, arr: np.ndarray,
                            state=None) -> None:
        """Per-kernel NaN/Inf guard on freshly fetched device output."""
        if not self.enabled:
            return
        step = getattr(state, "step_index", None)
        time = getattr(state, "time", None)
        self.check_array(f"kernel {kernel!r} output", arr, code="RPR306",
                         step=step, time=time, kernel=kernel)

    def record_residency_violation(self, name: str, **where: Any) -> None:
        """Called when a stale device read actually happened (RPR305)."""
        if not self.enabled:
            return
        self.record(Diagnostic.from_code(
            "RPR305", f"device buffer {name!r} read while its device copy "
            "was stale", array=name, **where))

    # ------------------------------------------------------ halo consistency
    def note_sent(self, src: int, dst: int, tag: int, seq: int, data) -> None:
        """Comm-layer hook: remember the checksum of an outgoing array.

        Out-of-band (ranks share this process) so the message payload — and
        with it every virtual-time byte count — is untouched.
        """
        if not self.enabled or not isinstance(data, np.ndarray):
            return
        with self._lock:
            self._sent_crc[(src, dst, tag, seq)] = zlib.crc32(data.tobytes())

    def check_received(self, src: int, dst: int, tag: int, seq: int,
                       data) -> None:
        """Comm-layer hook: verify a received array against its checksum."""
        if not self.enabled or not isinstance(data, np.ndarray):
            return
        with self._lock:
            expected = self._sent_crc.pop((src, dst, tag, seq), None)
        self._count()
        if expected is None:
            return  # sent before sanitize was enabled, or non-array send
        got = zlib.crc32(np.ascontiguousarray(data).tobytes())
        if got != expected:
            diag = Diagnostic.from_code(
                "RPR302",
                f"halo payload from rank {src} to rank {dst} (tag {tag}, "
                f"seq {seq}) failed its checksum: data corrupted in flight",
                rank=dst, peer=src, tag=tag, seq=seq)
            self.record(diag)
            exc = SanitizerError(f"[{diag.code}] {diag.message}",
                                 code=diag.code)
            from repro.obs import get_flight_recorder

            get_flight_recorder().dump("sanitizer", exc)
            raise exc
        self.check_array(f"halo from rank {src}", data, code="RPR302",
                         rank=dst, peer=src)

    # ------------------------------------------------------------------ report
    def section(self) -> dict[str, Any] | None:
        """The run report's ``diagnostics`` section (None if never active)."""
        if not self.was_active:
            return None
        with self._lock:
            doc = self.report.to_dict()
        doc["enabled"] = self.enabled
        return doc

    def summary(self) -> str:
        with self._lock:
            return self.report.summary()

    def has_findings(self) -> bool:
        with self._lock:
            return bool(self.report.diagnostics)


_SANITIZER = Sanitizer()


def get_sanitizer() -> Sanitizer:
    """The process-wide sanitizer singleton."""
    return _SANITIZER


class sanitize_run:
    """Context manager enabling the sanitizer for one run.

    Findings stay readable (for the run report) after the block exits::

        with sanitize_run():
            solver = problem.solve()
        print(get_sanitizer().summary())
    """

    def __enter__(self) -> Sanitizer:
        _SANITIZER.reset()
        _SANITIZER.enabled = True
        _SANITIZER.was_active = True
        return _SANITIZER

    def __exit__(self, *exc_info) -> None:
        _SANITIZER.enabled = False


def sanitizer_section() -> dict[str, Any] | None:
    """Lazy accessor used by :func:`repro.obs.report.build_run_report`."""
    return _SANITIZER.section()


__all__ = [
    "Sanitizer",
    "SanitizerError",
    "get_sanitizer",
    "sanitize_run",
    "sanitizer_section",
]
