"""Layer 2b: static SPMD send/recv matching and deadlock detection.

The distributed targets communicate through a *static* per-step schedule:
the halo exchange posts all sends, then blocks on the recvs implied by the
partition layout, and the post-step reductions are symmetric collectives.
That makes the communication pattern fully analysable before any rank
thread starts: this module models each rank's step as a small op program
(:class:`SendOp` / :class:`RecvOp` / :class:`CollectiveOp`), checks the
halo layout for symmetry, and *simulates* the programs against the
runtime's semantics (non-blocking sends, blocking in-order recvs,
rendezvous collectives) to find unmatched messages, unsatisfiable recvs
and ordering deadlocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.verify.diagnostics import Diagnostic, DiagnosticReport


@dataclass(frozen=True)
class SendOp:
    """Non-blocking send of ``count`` values to ``dst``."""

    dst: int
    tag: int = 0
    count: int = 1


@dataclass(frozen=True)
class RecvOp:
    """Blocking receive of ``count`` values from ``src``."""

    src: int
    tag: int = 0
    count: int = 1


@dataclass(frozen=True)
class CollectiveOp:
    """A rendezvous collective every rank must reach (allreduce, barrier...)."""

    kind: str
    tag: int = 0


Op = SendOp | RecvOp | CollectiveOp


# ---------------------------------------------------------------- halo layout

def check_halo_symmetry(send_cells, recv_cells,
                        nparts: int | None = None) -> DiagnosticReport:
    """Every send must have a matching recv of the same width, and vice
    versa (RPR210/211/213)."""
    report = DiagnosticReport()
    report.checks_run += 3
    nparts = nparts if nparts is not None else len(send_cells)
    for rank in range(nparts):
        for peer, cells in send_cells[rank].items():
            back = recv_cells[peer].get(rank) if 0 <= peer < nparts else None
            if back is None:
                report.add(Diagnostic.from_code(
                    "RPR210",
                    f"rank {rank} sends {len(cells)} cell(s) to rank {peer}, "
                    "which posts no matching receive",
                    rank=rank, peer=peer))
            elif len(back) != len(cells):
                report.add(Diagnostic.from_code(
                    "RPR213",
                    f"halo width mismatch: rank {rank} sends {len(cells)} "
                    f"cell(s) to rank {peer}, which expects {len(back)}",
                    rank=rank, peer=peer))
        for peer in recv_cells[rank]:
            if peer < 0 or peer >= nparts \
                    or rank not in send_cells[peer]:
                report.add(Diagnostic.from_code(
                    "RPR211",
                    f"rank {rank} expects a halo from rank {peer}, which "
                    "sends it nothing (the receive would block forever)",
                    rank=rank, peer=peer))
    return report


def halo_programs(send_cells, recv_cells, nsteps: int = 1,
                  tag: int = 7, collectives: int = 0) -> list[list[Op]]:
    """Per-rank op programs of the generated distributed step schedule:
    all sends first, then the blocking recvs, then any post-step
    collectives — exactly :meth:`Communicator.exchange`'s contract."""
    nparts = len(send_cells)
    programs: list[list[Op]] = [[] for _ in range(nparts)]
    for _ in range(max(1, nsteps)):
        for rank in range(nparts):
            ops = programs[rank]
            for peer, cells in sorted(send_cells[rank].items()):
                ops.append(SendOp(dst=peer, tag=tag, count=len(cells)))
            for peer, cells in sorted(recv_cells[rank].items()):
                ops.append(RecvOp(src=peer, tag=tag, count=len(cells)))
            for k in range(collectives):
                ops.append(CollectiveOp(kind="allreduce", tag=k))
    return programs


# ----------------------------------------------------------------- simulation

def simulate_schedule(programs: list[list[Op]]) -> DiagnosticReport:
    """Run the per-rank programs to completion or deadlock (RPR210-214).

    Semantics match :mod:`repro.runtime.comm`: sends complete immediately
    (buffered channels), a recv blocks until a matching ``(src, dst, tag)``
    message is available, and a collective blocks until *every* rank is at
    a collective of the same kind and tag.
    """
    report = DiagnosticReport()
    report.checks_run += 1
    nranks = len(programs)
    pc = [0] * nranks
    queued: dict[tuple[int, int, int], int] = {}

    def done(r: int) -> bool:
        return pc[r] >= len(programs[r])

    while True:
        progress = False
        for r in range(nranks):
            while not done(r):
                op = programs[r][pc[r]]
                if isinstance(op, SendOp):
                    key = (r, op.dst, op.tag)
                    queued[key] = queued.get(key, 0) + 1
                    pc[r] += 1
                    progress = True
                elif isinstance(op, RecvOp):
                    key = (op.src, r, op.tag)
                    if queued.get(key, 0) > 0:
                        queued[key] -= 1
                        pc[r] += 1
                        progress = True
                    else:
                        break
                else:
                    break  # collectives handled as a rendezvous below

        waiting = [r for r in range(nranks) if not done(r)
                   and isinstance(programs[r][pc[r]], CollectiveOp)]
        if waiting:
            heads = {(programs[r][pc[r]].kind, programs[r][pc[r]].tag)
                     for r in waiting}
            if len(waiting) == nranks and len(heads) == 1:
                for r in waiting:
                    pc[r] += 1
                progress = True
            elif len(waiting) == nranks:
                report.add(Diagnostic.from_code(
                    "RPR214",
                    f"ranks disagree on the pending collective: {sorted(heads)}",
                    ranks=waiting))
                return report
            elif not progress and all(
                    done(r) or r in waiting for r in range(nranks)):
                absent = [r for r in range(nranks) if done(r)]
                report.add(Diagnostic.from_code(
                    "RPR214",
                    f"rank(s) {waiting} wait at a collective rank(s) "
                    f"{absent} never reach", ranks=waiting))
                return report

        if all(done(r) for r in range(nranks)):
            break
        if not progress:
            _diagnose_stuck(programs, pc, queued, report)
            return report

    for (src, dst, tag), count in sorted(queued.items()):
        if count > 0:
            report.add(Diagnostic.from_code(
                "RPR210",
                f"{count} message(s) from rank {src} to rank {dst} "
                f"(tag {tag}) were sent but never received",
                rank=src, peer=dst, tag=tag))
    return report


def _diagnose_stuck(programs, pc, queued, report: DiagnosticReport) -> None:
    """Classify why a no-progress state is stuck: an unsatisfiable recv
    (RPR211) vs. an ordering deadlock (RPR212)."""
    nranks = len(programs)
    stuck = [r for r in range(nranks) if pc[r] < len(programs[r])]
    cyclic: list[int] = []
    for r in stuck:
        op = programs[r][pc[r]]
        if not isinstance(op, RecvOp):
            continue
        sender_rest = programs[op.src][pc[op.src]:] if op.src < nranks else []
        will_send = any(
            isinstance(o, SendOp) and o.dst == r and o.tag == op.tag
            for o in sender_rest
        )
        if will_send:
            cyclic.append(r)
        else:
            report.add(Diagnostic.from_code(
                "RPR211",
                f"rank {r} blocks receiving from rank {op.src} (tag "
                f"{op.tag}); no send for it exists anywhere in the schedule",
                rank=r, peer=op.src, tag=op.tag))
    if cyclic:
        detail = ", ".join(
            f"rank {r} waits on rank {programs[r][pc[r]].src}" for r in cyclic
        )
        report.add(Diagnostic.from_code(
            "RPR212",
            f"schedule deadlock: {detail} — the matching sends exist but sit "
            "behind the blocked receives (misordered sends)",
            ranks=cyclic))


# ----------------------------------------------------------------- solver API

def verify_halo_layout(layout, nsteps: int = 1,
                       collectives: int = 0) -> DiagnosticReport:
    """Full schedule verification of a :class:`PartitionLayout`."""
    report = check_halo_symmetry(layout.send_cells, layout.recv_cells,
                                 layout.nparts)
    if report.has_errors:
        return report  # simulation would re-report the same mismatches
    report.extend(simulate_schedule(
        halo_programs(layout.send_cells, layout.recv_cells,
                      nsteps=nsteps, collectives=collectives)))
    return report


def verify_solver_schedule(solver) -> DiagnosticReport:
    """Schedule checks for a generated solver (no-op without a layout)."""
    layout = getattr(solver, "layout", None)
    if layout is None or not getattr(layout, "send_cells", None):
        return DiagnosticReport()
    state = getattr(solver, "state", None)
    ncoll = 1 if state is not None and state.problem.post_step_callbacks else 0
    return verify_halo_layout(layout, nsteps=2, collectives=ncoll)


__all__ = [
    "SendOp",
    "RecvOp",
    "CollectiveOp",
    "check_halo_symmetry",
    "halo_programs",
    "simulate_schedule",
    "verify_halo_layout",
    "verify_solver_schedule",
]
