"""Diagnostic records and reports for the verifier and the sanitizer.

A :class:`Diagnostic` is one finding: a stable ``RPR###`` code, a severity,
a human message, and whatever provenance the producing layer has — a source
string with a caret position (static DSL checks), a task/array name
(placement hazards), a rank (schedule analysis), a step/cell index (runtime
sanitizer).  A :class:`DiagnosticReport` collects findings from all layers
and renders them for the CLI or the run report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import ReproError, caret_block
from repro.verify.codes import describe

SCHEMA = "repro.diagnostics/1"

#: severity ordering for sorting and gating
_SEVERITY_RANK = {"error": 0, "warning": 1, "info": 2}


@dataclass
class Diagnostic:
    """One verifier/sanitizer finding."""

    code: str
    message: str
    severity: str = "error"
    #: producing layer ("dsl", "ir", "placement", "schedule", "runtime", ...)
    layer: str = ""
    #: structured provenance: task=..., array=..., rank=..., step=..., cell=...
    where: dict[str, Any] = field(default_factory=dict)
    #: DSL source + caret position, when the finding points into an equation
    source: str = ""
    position: int = -1

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")
        if not self.layer:
            self.layer = describe(self.code).layer

    @classmethod
    def from_code(cls, code: str, message: str, **where: Any) -> "Diagnostic":
        """Build a finding taking layer + default severity from the catalogue."""
        info = describe(code)
        source = where.pop("source", "")
        position = where.pop("position", -1)
        return cls(code=code, message=message, severity=info.severity,
                   layer=info.layer, where=where, source=source,
                   position=position)

    @classmethod
    def from_error(cls, exc: ReproError, **where: Any) -> "Diagnostic":
        """Wrap a typed exception (its ``code`` becomes the diagnostic code)."""
        d = cls.from_code(getattr(exc, "code", "RPR000"),
                          str(exc).split("\n", 1)[0], **where)
        d.source = getattr(exc, "source", "") or ""
        d.position = getattr(exc, "position", -1)
        return d

    def render(self) -> str:
        ctx = " ".join(f"{k}={v}" for k, v in self.where.items())
        line = f"{self.code} {self.severity} [{self.layer}] {self.message}"
        if ctx:
            line += f"  ({ctx})"
        block = caret_block(self.source, self.position)
        if block:
            line += f"\n{block}"
        return line

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "layer": self.layer,
            "message": self.message,
        }
        if self.where:
            doc["where"] = dict(self.where)
        if self.source and self.position >= 0:
            doc["source"] = self.source
            doc["position"] = self.position
        return doc


@dataclass
class DiagnosticReport:
    """All findings of one lint/sanitize pass."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: how many distinct checks ran (so "0 findings" is meaningful)
    checks_run: int = 0

    def add(self, diag: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "DiagnosticReport | list[Diagnostic]") -> None:
        if isinstance(other, DiagnosticReport):
            self.diagnostics.extend(other.diagnostics)
            self.checks_run += other.checks_run
        else:
            self.diagnostics.extend(other)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def codes(self) -> list[str]:
        return [d.code for d in self.diagnostics]

    def sorted(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (_SEVERITY_RANK[d.severity], d.code),
        )

    def summary(self) -> str:
        ne, nw = len(self.errors), len(self.warnings)
        if not ne and not nw:
            return f"OK ({self.checks_run} check(s), no findings)"
        parts = []
        if ne:
            parts.append(f"{ne} error(s)")
        if nw:
            parts.append(f"{nw} warning(s)")
        return ", ".join(parts)

    def render_text(self) -> str:
        lines = [d.render() for d in self.sorted()]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "checks_run": self.checks_run,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }


__all__ = ["Diagnostic", "DiagnosticReport", "SCHEMA"]
