"""The stable ``RPR###`` diagnostic-code catalogue.

Every diagnostic the verifier, the sanitizer or a typed exception can
produce carries one of these codes.  Codes are *stable identifiers*: tests,
CI gates and user scripts match on them, so a code is never renumbered or
reused — retired codes are deleted, new causes get new numbers.

Numbering bands
---------------

====  =======================================================
band  layer
====  =======================================================
0xx   library usage / configuration errors (typed exceptions)
1xx   static DSL / IR checks (``bte lint`` layer 1)
2xx   placement, transfer and SPMD schedule hazards (layer 2)
3xx   runtime sanitizer findings (``--sanitize`` layer 3)
4xx   observability / performance-model usage errors
5xx   mesh input errors
7xx   autotuning / calibration persistence
8xx   observability persistence
9xx   solver service (admission, quota, job lifecycle)
====  =======================================================

``docs/architecture.md`` renders this catalogue; a test asserts the two
stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CodeInfo:
    """One catalogue entry."""

    code: str
    layer: str
    title: str
    #: default severity of diagnostics carrying this code
    severity: str = "error"


_RAW: list[tuple[str, str, str, str]] = [
    # ---- 0xx: library usage / configuration ------------------------------
    ("RPR000", "library", "unclassified library error", "error"),
    ("RPR001", "library", "inconsistent or incomplete problem configuration", "error"),
    ("RPR002", "library", "malformed --faults specification", "error"),
    # ---- 1xx: static DSL / IR --------------------------------------------
    ("RPR100", "dsl", "equation input could not be parsed", "error"),
    ("RPR101", "dsl", "unknown symbol in equation input", "error"),
    ("RPR102", "dsl", "unknown function (not an operator, math function or callback)", "error"),
    ("RPR103", "dsl", "indexed reference has wrong index count", "error"),
    ("RPR104", "dsl", "indexed reference uses an undeclared or mismatched index", "error"),
    ("RPR105", "dsl", "indexed entity referenced without its indices", "error"),
    ("RPR106", "dsl", "callback referenced without being called", "error"),
    ("RPR107", "dsl", "nested surface(...) integrals", "error"),
    ("RPR108", "dsl", "invalid symbolic expression construction", "error"),
    ("RPR109", "dsl", "unknown variable absent from its own equation", "warning"),
    ("RPR110", "dsl", "no equation declared", "error"),
    ("RPR111", "dsl", "equation kind does not match the solver type", "error"),
    ("RPR112", "dsl", "conservation form is not well-formed for explicit stepping", "error"),
    ("RPR120", "dsl", "no mesh set", "error"),
    ("RPR121", "dsl", "mesh boundary region has no boundary condition", "error"),
    ("RPR122", "dsl", "boundary condition references a region the mesh lacks", "error"),
    ("RPR123", "dsl", "boundary region has more than one condition", "error"),
    ("RPR124", "dsl", "boundary specification is incomplete or refers to an unknown callback", "error"),
    ("RPR130", "ir", "assemblyLoops ordering is invalid", "error"),
    ("RPR131", "ir", "partitioning configuration is inconsistent", "error"),
    ("RPR132", "ir", "time-stepping configuration is incomplete", "error"),
    ("RPR133", "ir", "mesh dimension does not match the declared domain", "error"),
    ("RPR140", "ir", "code generation failed", "error"),
    # ---- 2xx: placement / transfer / schedule ----------------------------
    ("RPR201", "placement", "device read without a fresh h2d transfer (stale device buffer)", "error"),
    ("RPR202", "placement", "host read without a fresh d2h transfer (stale host buffer)", "error"),
    ("RPR203", "placement", "write-after-write hazard between unordered tasks", "error"),
    ("RPR204", "placement", "kernel vs. overlapped-CPU read/write race on a shared buffer", "error"),
    ("RPR205", "placement", "placement violates a pinned task or lacks a device cost", "error"),
    ("RPR206", "placement", "task graph references an unknown task", "error"),
    ("RPR207", "placement", "transfer plan lists an array the task graph does not use", "error"),
    ("RPR210", "schedule", "SPMD send with no matching receive", "error"),
    ("RPR211", "schedule", "SPMD receive with no matching send (rank would block)", "error"),
    ("RPR212", "schedule", "SPMD schedule deadlocks (cyclic or unsatisfiable waits)", "error"),
    ("RPR213", "schedule", "halo exchange asymmetry between partitions", "error"),
    ("RPR214", "schedule", "collective operation mismatch across ranks", "error"),
    # ---- 3xx: runtime sanitizer ------------------------------------------
    ("RPR301", "runtime", "non-finite field value (NaN/Inf) during stepping", "error"),
    ("RPR302", "runtime", "halo payload checksum mismatch between ranks", "error"),
    ("RPR303", "runtime", "conserved total drifted beyond tolerance", "warning"),
    ("RPR304", "runtime", "per-step update magnitude suggests CFL violation", "warning"),
    ("RPR305", "runtime", "device buffer read while its device copy was stale", "error"),
    ("RPR306", "runtime", "kernel output contains non-finite values", "error"),
    ("RPR310", "runtime", "simulated device out of memory", "error"),
    ("RPR311", "runtime", "simulated kernel launch faulted", "error"),
    ("RPR312", "runtime", "message not recovered within the retry budget", "error"),
    ("RPR313", "runtime", "rank killed mid-run (injected rank_kill fault)", "error"),
    ("RPR314", "runtime", "rank aborted after a peer rank failed (poison pill)", "error"),
    ("RPR315", "runtime", "rank heartbeat missed its liveness deadline", "error"),
    ("RPR316", "runtime", "checkpoint file corrupt or truncated", "error"),
    ("RPR317", "runtime", "checkpoint-based state migration failed", "error"),
    # ---- 4xx: observability / perfmodel usage ----------------------------
    ("RPR401", "obs", "virtual clock moved backwards", "error"),
    ("RPR402", "obs", "metrics instrument misused (e.g. counter decreased)", "error"),
    ("RPR403", "obs", "benchmark envelope malformed", "error"),
    ("RPR404", "obs", "analyzer given no usable trace or report", "error"),
    ("RPR420", "perfmodel", "scaling-model query inconsistent", "error"),
    # ---- 5xx: mesh input --------------------------------------------------
    ("RPR500", "mesh", "invalid mesh input or failed mesh operation", "error"),
    ("RPR501", "mesh", "malformed or truncated Gmsh file", "error"),
    ("RPR502", "mesh", "malformed or truncated Medit file", "error"),
    ("RPR503", "mesh", "malformed or truncated VTK file", "error"),
    # ---- 7xx: autotuning / calibration persistence ------------------------
    ("RPR701", "tune", "tuning database malformed or unreadable", "error"),
    ("RPR702", "perfmodel", "calibration file malformed or unreadable", "error"),
    # ---- 8xx: observability persistence ------------------------------------
    ("RPR801", "obs", "run-registry entry malformed or unwritable", "error"),
    # ---- 9xx: solver service ----------------------------------------------
    ("RPR900", "serve", "request rejected: bounded queue full (backpressure)", "error"),
    ("RPR901", "serve", "request rejected: tenant quota exceeded", "error"),
    ("RPR902", "serve", "served job failed on every attempt", "error"),
    ("RPR903", "serve", "solver service unavailable or misused", "error"),
]

#: code -> CodeInfo for every known diagnostic code.
CATALOGUE: dict[str, CodeInfo] = {
    code: CodeInfo(code, layer, title, severity)
    for code, layer, title, severity in _RAW
}


def describe(code: str) -> CodeInfo:
    """Catalogue entry for ``code`` (a generic entry for unknown codes)."""
    return CATALOGUE.get(code, CodeInfo(code, "library", "unknown diagnostic code"))


def render_catalogue() -> str:
    """The catalogue as a fixed-width text table (used by docs and tests)."""
    lines = [f"{'code':<8} {'layer':<10} meaning"]
    for info in CATALOGUE.values():
        sev = "" if info.severity == "error" else f" [{info.severity}]"
        lines.append(f"{info.code:<8} {info.layer:<10} {info.title}{sev}")
    return "\n".join(lines)


__all__ = ["CodeInfo", "CATALOGUE", "describe", "render_catalogue"]
