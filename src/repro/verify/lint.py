"""The ``bte lint`` orchestrator: static + placement + schedule verification.

:func:`lint_problem` runs every check a :class:`Problem` declaration allows;
with ``deep=True`` (the default) it also *generates* the solver — without
running it — so the placement plan, transfer schedule and partition layout
get the layer-2 hazard analysis.

:func:`lint_script` verifies a DSL script file.  The script is executed
with ``Problem.solve`` and ``GeneratedSolver.run`` intercepted: the setup
code runs for real (meshes, entities, callbacks — everything lint needs),
but the moment a transient would start, the captured problem is linted
instead.  Scripts that never reach a solve (pure perf-model studies) fall
back to the module-global current problem, or report "nothing to lint".
"""

from __future__ import annotations

import runpy
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.util.errors import ReproError
from repro.verify.diagnostics import Diagnostic, DiagnosticReport
from repro.verify.placement_checks import verify_solver_placement
from repro.verify.schedule import verify_solver_schedule
from repro.verify.static_checks import check_problem


def lint_problem(problem, *, deep: bool = True) -> DiagnosticReport:
    """All static checks; with ``deep`` also generate + verify the solver."""
    report = check_problem(problem)
    if not deep or report.has_errors:
        return report  # generation would fail or mask the findings
    try:
        solver = problem.generate()
    except ReproError as exc:
        report.add(Diagnostic.from_error(exc))
        return report
    report.extend(verify_solver(solver))
    return report


def verify_solver(solver) -> DiagnosticReport:
    """Layer-2 checks over an already generated (unrun) solver."""
    report = DiagnosticReport()
    report.extend(verify_solver_placement(solver))
    report.extend(verify_solver_schedule(solver))
    return report


# --------------------------------------------------------------------- scripts

class _LintStop(Exception):
    """Raised inside an intercepted solve to halt the script cleanly."""


@dataclass
class ScriptLint:
    """Result of linting one script file."""

    path: str
    report: DiagnosticReport = field(default_factory=DiagnosticReport)
    problems_checked: int = 0
    note: str = ""

    @property
    def ok(self) -> bool:
        return not self.report.has_errors

    def render_text(self) -> str:
        head = f"{self.path}: "
        if self.problems_checked == 0 and not self.report.diagnostics:
            return head + (self.note or "nothing to lint (no problem built)")
        body = self.report.summary()
        if self.problems_checked:
            body += f" [{self.problems_checked} problem(s)]"
        lines = [head + body]
        lines += ["  " + ln for d in self.report.sorted()
                  for ln in d.render().splitlines()]
        return "\n".join(lines)


def lint_script(path: str | Path, *, deep: bool = True,
                argv: list[str] | None = None) -> ScriptLint:
    """Execute ``path`` with solves intercepted and lint what it builds."""
    from repro.codegen.target_base import GeneratedSolver
    from repro.dsl import api
    from repro.dsl.problem import Problem

    path = Path(path)
    result = ScriptLint(path=str(path))
    captured: list = []  # Problem or GeneratedSolver, in build order

    orig_solve = Problem.solve
    orig_generate_run = GeneratedSolver.run

    def fake_solve(self, variable=None, target=None):
        captured.append(self)
        raise _LintStop

    def fake_run(self, *a, **k):
        captured.append(self)
        raise _LintStop

    old_argv = sys.argv
    sys.argv = [str(path), *(argv or [])]
    Problem.solve = fake_solve
    GeneratedSolver.run = fake_run
    try:
        runpy.run_path(str(path), run_name="__main__")
    except _LintStop:
        pass
    except SystemExit:
        pass  # argparse --help etc.
    except ReproError as exc:
        result.report.add(Diagnostic.from_error(exc))
    except Exception as exc:  # noqa: BLE001 — a crashing script is a finding
        result.report.add(Diagnostic.from_code(
            "RPR000", f"script raised {type(exc).__name__}: {exc}"))
    finally:
        Problem.solve = orig_solve
        GeneratedSolver.run = orig_generate_run
        sys.argv = old_argv

    if not captured:
        current = api._current
        if current is not None:
            captured.append(current)

    seen: set[int] = set()
    for obj in captured:
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, GeneratedSolver):
            result.report.extend(check_problem(obj.state.problem))
            result.report.extend(verify_solver(obj))
        else:
            result.report.extend(lint_problem(obj, deep=deep))
        result.problems_checked += 1
    if not captured:
        result.note = "nothing to lint (script builds no problem)"
    api.finalize()  # do not leak the script's context into the caller
    return result


def lint_paths(paths: list[str | Path], *,
               deep: bool = True) -> list[ScriptLint]:
    """Lint several script files, keeping going after failures."""
    return [lint_script(p, deep=deep) for p in paths]


__all__ = [
    "lint_problem",
    "verify_solver",
    "lint_script",
    "lint_paths",
    "ScriptLint",
]
