"""The content-addressed compilation cache.

A :class:`GenerationArtifact` is the expensive, *problem-independent-ish*
half of one generation: the emitted source, its precompiled code object,
the picklable static environment (component tables, precomputed layouts,
assembled operators) and the attachments targets hang on solvers (IR,
classified form, placement plan, ...).  Everything *live* — solver state,
callbacks, clocks, devices, closures — is rebuilt on every bind, so
sharing one artifact across many solvers is safe.

Two layers:

* **memory** (default on, process-wide): keeps the artifact object itself,
  including the compiled code object — a hit performs zero lowering, zero
  emission and zero ``compile()`` calls;
* **disk** (opt-in via ``configure_cache(cache_dir=...)``, the CLI's
  ``--cache-dir``, or ``$REPRO_CACHE_DIR``): persists ``source.py``, a
  ``marshal`` of the code object (tagged with the interpreter version; a
  mismatch falls back to recompiling the stored source — still no
  lowering/codegen) and a pickle of the static parts.  Artifacts whose
  static environment resists pickling simply stay memory-only.

Observability: hits/misses/build and bind timings go to the metrics
registry (``codegen_cache_*``, ``codegen_build_seconds``) *and* to a
registry-independent :class:`CacheStats` the tests and the benchmark
suite assert on.
"""

from __future__ import annotations

import marshal
import os
import pickle
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.util.logging import get_logger

logger = get_logger("tune.cache")

#: Disk-format tag: marshal is only stable within one interpreter version.
_CODE_TAG = f"py{sys.version_info.major}.{sys.version_info.minor}"


@dataclass
class GenerationArtifact:
    """The cacheable output of one ``build_artifact`` call."""

    target_name: str
    source: str
    key: str
    #: generation flavor for targets with several bind paths
    #: (e.g. the hybrid GPU target's CPU-fallback decision)
    flavor: str = "default"
    #: picklable namespace entries shared verbatim across binds
    static_env: dict[str, Any] = field(default_factory=dict)
    #: picklable solver attachments (ir, classified_form, placement, ...)
    attrs: dict[str, Any] = field(default_factory=dict)
    #: wall seconds the original build took (cold-path provenance)
    build_seconds: float = 0.0
    #: compiled code object of ``source`` — memory layer only
    code: Any = None

    @property
    def module_name(self) -> str:
        """Deterministic, content-derived module name (no global counter):
        stable across processes, idempotent under re-generation."""
        return f"<generated:{self.target_name}:{self.key[:12]}>"

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state["code"] = None  # code objects do not pickle; marshalled apart
        return state


@dataclass
class CacheStats:
    """Registry-independent counters (asserted by tests and benchmarks)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    builds: int = 0
    disk_writes: int = 0
    disk_errors: int = 0
    #: concurrent generates that waited on another thread's in-flight build
    #: of the same key and reused its artifact (single-flight dedup)
    coalesced: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "builds": self.builds,
            "disk_writes": self.disk_writes,
            "disk_errors": self.disk_errors,
            "coalesced": self.coalesced,
        }


class CompilationCache:
    """Two-layer (memory + optional disk) artifact store."""

    def __init__(self, cache_dir: str | Path | None = None, enabled: bool = True):
        self.enabled = enabled
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.stats = CacheStats()
        self._memory: dict[str, GenerationArtifact] = {}
        self._lock = threading.Lock()
        #: per-key build locks (single-flight: one builder, late arrivals wait)
        self._build_locks: dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------ config
    def configure(self, cache_dir: str | Path | None = None,
                  enabled: bool | None = None) -> None:
        if enabled is not None:
            self.enabled = enabled
        if cache_dir is not None:
            self.cache_dir = Path(cache_dir)
        from repro.obs.log import get_event_log

        elog = get_event_log()
        if elog.debug_enabled:
            elog.emit("tune.cache.configured", level="debug",
                      enabled=self.enabled,
                      cache_dir=str(self.cache_dir) if self.cache_dir else None)

    def clear(self, *, disk: bool = False) -> None:
        with self._lock:
            self._memory.clear()
            self.stats = CacheStats()
        if disk and self.cache_dir is not None and self.cache_dir.is_dir():
            for entry in self.cache_dir.glob("*/artifact.pkl"):
                for f in entry.parent.iterdir():
                    f.unlink()
                entry.parent.rmdir()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # ------------------------------------------------------------------ lookup
    def get(self, key: str) -> GenerationArtifact | None:
        if not self.enabled or not key:
            return None
        with self._lock:
            artifact = self._memory.get(key)
        metrics = _metrics()
        if artifact is not None:
            self.stats.memory_hits += 1
            metrics.counter(
                "codegen_cache_hits_total", "compilation-cache hits"
            ).inc(1, layer="memory", target=artifact.target_name)
            return artifact
        artifact = self._disk_get(key)
        if artifact is not None:
            self.stats.disk_hits += 1
            metrics.counter(
                "codegen_cache_hits_total", "compilation-cache hits"
            ).inc(1, layer="disk", target=artifact.target_name)
            with self._lock:
                self._memory[key] = artifact
            return artifact
        self.stats.misses += 1
        metrics.counter(
            "codegen_cache_misses_total", "compilation-cache misses"
        ).inc(1)
        return None

    def peek(self, key: str) -> GenerationArtifact | None:
        """Stats-free memory lookup.

        Used by the single-flight recheck after acquiring a build lock: the
        original :meth:`get` already counted this request's hit-or-miss, so
        the recheck must not count a second one.
        """
        if not self.enabled or not key:
            return None
        with self._lock:
            return self._memory.get(key)

    def build_lock(self, key: str) -> threading.Lock:
        """The per-key lock serializing concurrent builds of ``key``.

        Callers that miss :meth:`get` acquire this, :meth:`peek` again (the
        winner published its artifact while they waited), and only build on
        a still-empty recheck.  Locks are retained for the cache lifetime;
        the population is bounded by the number of distinct problem
        signatures, each a few hundred bytes.
        """
        with self._lock:
            lock = self._build_locks.get(key)
            if lock is None:
                lock = self._build_locks[key] = threading.Lock()
            return lock

    def record_coalesced(self, key: str, artifact: GenerationArtifact) -> None:
        """Count one single-flight reuse (metrics layer ``inflight``)."""
        self.stats.coalesced += 1
        _metrics().counter(
            "codegen_cache_hits_total", "compilation-cache hits"
        ).inc(1, layer="inflight", target=artifact.target_name)

    def put(self, key: str, artifact: GenerationArtifact) -> None:
        if not self.enabled or not key:
            return
        with self._lock:
            self._memory[key] = artifact
        self._disk_put(key, artifact)
        from repro.obs.log import get_event_log

        elog = get_event_log()
        if elog.debug_enabled:
            elog.emit("tune.cache.put", level="debug", key=key[:12],
                      target=artifact.target_name, flavor=artifact.flavor)

    # -------------------------------------------------------------- disk layer
    def _entry_dir(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / key[:2] / key

    def _disk_get(self, key: str) -> GenerationArtifact | None:
        entry = self._entry_dir(key)
        if entry is None or not (entry / "artifact.pkl").is_file():
            return None
        try:
            with open(entry / "artifact.pkl", "rb") as fh:
                artifact: GenerationArtifact = pickle.load(fh)
            code_path = entry / f"code.{_CODE_TAG}.marshal"
            if code_path.is_file():
                with open(code_path, "rb") as fh:
                    artifact.code = marshal.load(fh)
            return artifact
        except Exception as exc:  # corrupt entry: treat as a miss
            self.stats.disk_errors += 1
            logger.warning("cache entry %s unreadable (%s); ignoring", key[:12], exc)
            return None

    def _disk_put(self, key: str, artifact: GenerationArtifact) -> None:
        entry = self._entry_dir(key)
        if entry is None:
            return
        try:
            entry.mkdir(parents=True, exist_ok=True)
            (entry / "source.py").write_text(artifact.source)
            with open(entry / "artifact.pkl", "wb") as fh:
                pickle.dump(artifact, fh)
            if artifact.code is not None:
                with open(entry / f"code.{_CODE_TAG}.marshal", "wb") as fh:
                    marshal.dump(artifact.code, fh)
            self.stats.disk_writes += 1
        except Exception as exc:  # unpicklable static env: stay memory-only
            self.stats.disk_errors += 1
            logger.info("cache entry %s not persisted (%s)", key[:12], exc)


# ---------------------------------------------------------------------------
# the process-wide cache
# ---------------------------------------------------------------------------

_CACHE = CompilationCache(cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)


def get_cache() -> CompilationCache:
    """The process-wide compilation cache every target generates through."""
    return _CACHE


def configure_cache(cache_dir: str | Path | None = None,
                    enabled: bool | None = None) -> CompilationCache:
    """Configure the process-wide cache (CLI ``--cache-dir`` / ``--no-cache``)."""
    _CACHE.configure(cache_dir=cache_dir, enabled=enabled)
    return _CACHE


class cache_scope:
    """Context manager swapping in a private cache (tests, benchmarks)::

        with cache_scope(enabled=True) as cache:
            problem.generate()           # cold
            problem.generate()           # warm: cache.stats.memory_hits == 1
    """

    def __init__(self, cache_dir: str | Path | None = None, enabled: bool = True):
        self._cache = CompilationCache(cache_dir=cache_dir, enabled=enabled)
        self._saved: CompilationCache | None = None

    def __enter__(self) -> CompilationCache:
        global _CACHE
        self._saved = _CACHE
        _CACHE = self._cache
        return self._cache

    def __exit__(self, *exc) -> None:
        global _CACHE
        _CACHE = self._saved
        return None


def _metrics():
    from repro.obs.metrics import get_metrics

    return get_metrics()


__all__ = [
    "CacheStats",
    "CompilationCache",
    "GenerationArtifact",
    "cache_scope",
    "configure_cache",
    "get_cache",
]
