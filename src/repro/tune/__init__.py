"""Autotuning + persistent compilation cache (``repro.tune``).

Two cooperating layers convert the one-shot generation pipeline into a
persistent performance-automation system (the gap the paper's automation
story leaves open once placement is decided):

* :mod:`repro.tune.cache` — a content-addressed **compilation cache**.
  Every codegen target routes generation through it: the expensive half
  (symbolic lowering, IR, emission, placement, ``compile()``) is keyed by
  a canonical problem signature (:mod:`repro.tune.signature`) and reused;
  the cheap half (fresh state, live callbacks, clocks, devices) is rebuilt
  per solve.  A warm solve of an unchanged problem performs **zero**
  lowering/codegen/compile work.
* :mod:`repro.tune.tuner` — an **autotuner** searching the declared
  tunable space (:mod:`repro.tune.space`: assembly loop order, cell vs
  band partitioning, placement overrides, GPU kernel chunking) with
  grid/greedy strategies, cost-model pruning from :mod:`repro.perfmodel`,
  short proxy trials measured on the deterministic virtual clocks, and
  placement verification of every trial.  Winners persist in a
  ``"repro.tune/1"`` database (:mod:`repro.tune.db`) that future solves
  consult automatically (``problem.extra['tuned'] = True`` or
  ``bte --tuned``).
"""

from repro.tune.cache import (
    CompilationCache,
    GenerationArtifact,
    cache_scope,
    configure_cache,
    get_cache,
)
from repro.tune.db import TuningDB, default_db_path
from repro.tune.signature import cache_key, problem_signature, tuning_key
from repro.tune.space import TuneConfig, apply_config, build_space
from repro.tune.tuner import Trial, TuneResult, maybe_apply_tuned, tune

__all__ = [
    "CompilationCache",
    "GenerationArtifact",
    "TuneConfig",
    "Trial",
    "TuneResult",
    "TuningDB",
    "apply_config",
    "build_space",
    "cache_key",
    "cache_scope",
    "configure_cache",
    "default_db_path",
    "get_cache",
    "maybe_apply_tuned",
    "problem_signature",
    "tune",
    "tuning_key",
]
