"""The tunable configuration space.

A :class:`TuneConfig` is a sparse override of the declarative knobs that
change *performance but not answers*: the assembly loop-nest order (the
paper's ``assemblyLoops``), the cell-vs-band partitioning strategy, the
placement optimiser's forced-offload override, and the hybrid GPU
target's kernel chunking.  ``None`` fields mean "leave the problem's own
choice alone", so ``TuneConfig()`` is the identity — the default
configuration every search starts from and is compared against.

:func:`build_space` enumerates the candidates that make sense for one
problem (no GPU knobs for CPU problems, no partition strategies for
single-rank runs); :func:`apply_config` imposes a configuration on a
freshly built problem before generation.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any

from repro.util.errors import ConfigError

if TYPE_CHECKING:
    from repro.dsl.problem import Problem


@dataclass(frozen=True)
class TuneConfig:
    """One point of the tuning space (``None`` = keep the problem's value)."""

    #: assembly loop-nest order, e.g. ``("b", "cells", "d")``
    assembly_order: tuple[str, ...] | None = None
    #: ``"cells"`` or ``"bands"`` (multi-rank problems only)
    partition_strategy: str | None = None
    #: index to split over when ``partition_strategy == "bands"``
    partition_index: str | None = None
    #: placement override: force every placeable task onto the device
    placement_force_offload: bool | None = None
    #: hybrid GPU target: split the interior kernel into N launches
    gpu_kernel_chunks: int | None = None
    #: expression fusion mode: ``"on"``, ``"off"`` or ``"auto"``
    fusion: str | None = None

    @property
    def is_default(self) -> bool:
        return all(getattr(self, f.name) is None for f in fields(self))

    def as_dict(self) -> dict[str, Any]:
        """Sparse JSON form (``None`` fields omitted) for the tuning DB."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is not None:
                out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TuneConfig":
        known = {f.name for f in fields(cls)}
        kwargs: dict[str, Any] = {}
        for name, value in data.items():
            if name not in known:
                continue  # forward-compatible: ignore knobs we don't know
            if name == "assembly_order" and value is not None:
                value = tuple(value)
            kwargs[name] = value
        return cls(**kwargs)

    def describe(self) -> str:
        items = self.as_dict()
        if not items:
            return "default"
        return ", ".join(f"{k}={v}" for k, v in sorted(items.items()))


def apply_config(problem: "Problem", config: TuneConfig) -> "Problem":
    """Impose ``config`` on ``problem`` (mutates and returns it)."""
    if config.assembly_order is not None:
        problem.set_assembly_loops(list(config.assembly_order))
    if config.partition_strategy is not None:
        if config.partition_strategy == "bands" and not (
            config.partition_index or problem.config.partition_index
        ):
            raise ConfigError("band partitioning needs partition_index")
        problem.set_partitioning(
            config.partition_strategy,
            nparts=problem.config.nparts,
            index=config.partition_index or problem.config.partition_index,
        )
    if config.placement_force_offload is not None:
        problem.extra["gpu_force_offload"] = config.placement_force_offload
    if config.gpu_kernel_chunks is not None:
        problem.extra["gpu_kernel_chunks"] = int(config.gpu_kernel_chunks)
    if config.fusion is not None:
        if config.fusion not in ("on", "off", "auto"):
            raise ConfigError(f"fusion must be on/off/auto (got {config.fusion!r})")
        problem.extra["fusion"] = config.fusion
    return problem


def assembly_orders(problem: "Problem") -> list[tuple[str, ...]]:
    """The natural loop-nest orders: fused cell-outer plus each component
    index outermost (the ablation suite's ORDERS, generalised)."""
    names = list(problem.unknown.space.names)
    orders: list[tuple[str, ...]] = [("cells",)]
    for outer in names:
        rest = [n for n in names if n != outer]
        orders.append((outer, "cells", *rest))
    return orders


def build_space(problem: "Problem") -> list[TuneConfig]:
    """Enumerate the candidate configurations for one problem.

    The identity configuration comes first; the rest vary one knob axis at
    a time (the greedy searcher composes axes; the grid searcher takes the
    list as-is).
    """
    cfg = problem.config
    space: list[TuneConfig] = [TuneConfig()]

    for order in assembly_orders(problem):
        if list(order) != list(cfg.assembly_order):
            space.append(TuneConfig(assembly_order=order))

    if cfg.nparts > 1:
        index_names = list(problem.unknown.space.names)
        if cfg.partition_strategy != "cells":
            space.append(TuneConfig(partition_strategy="cells"))
        for name in index_names:
            if not (cfg.partition_strategy == "bands"
                    and cfg.partition_index == name):
                space.append(
                    TuneConfig(partition_strategy="bands", partition_index=name)
                )

    if cfg.use_gpu:
        space.append(TuneConfig(placement_force_offload=True))
        for chunks in (2, 4):
            space.append(TuneConfig(gpu_kernel_chunks=chunks))

    # fusion never changes answers (bit-identical by contract), only wall
    # time — 'auto' fuses what it can and falls back per statement
    if problem.extra.get("fusion", "off") != "auto":
        space.append(TuneConfig(fusion="auto"))

    return space


#: The knob axes the greedy searcher walks, in the order it walks them
#: (biggest expected effect first).
AXES = (
    "assembly_order",
    "partition",
    "placement_force_offload",
    "gpu_kernel_chunks",
    "fusion",
)


def axis_of(config: TuneConfig) -> str | None:
    """Which single axis a one-knob candidate varies (None for default)."""
    if config.partition_strategy is not None:
        return "partition"
    if config.assembly_order is not None:
        return "assembly_order"
    if config.placement_force_offload is not None:
        return "placement_force_offload"
    if config.gpu_kernel_chunks is not None:
        return "gpu_kernel_chunks"
    if config.fusion is not None:
        return "fusion"
    return None


def merge_configs(base: TuneConfig, layer: TuneConfig) -> TuneConfig:
    """Overlay ``layer``'s set fields on ``base`` (greedy composition)."""
    kwargs = {f.name: getattr(base, f.name) for f in fields(TuneConfig)}
    for f in fields(TuneConfig):
        value = getattr(layer, f.name)
        if value is not None:
            kwargs[f.name] = value
    return TuneConfig(**kwargs)


__all__ = [
    "AXES",
    "TuneConfig",
    "apply_config",
    "assembly_orders",
    "axis_of",
    "build_space",
    "merge_configs",
]
