"""The ``"repro.tune/1"`` tuning database.

One JSON document maps tuning keys (:func:`repro.tune.signature.tuning_key`
— the problem signature with the tunable knobs normalised out) to the best
configuration the tuner found, with enough provenance to audit it::

    schema   "repro.tune/1"
    entries  {tuning_key: {config, target, virtual_s, default_virtual_s,
                           trials, date}}

Future solves consult it automatically when tuned mode is on
(``problem.extra['tuned'] = True`` / CLI ``--tuned``); see
:func:`repro.tune.tuner.maybe_apply_tuned`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.util.errors import ReproError

if TYPE_CHECKING:
    from repro.tune.space import TuneConfig

SCHEMA = "repro.tune/1"

#: Default database file name (inside the cache dir when one is set).
DB_FILENAME = "tuned.json"


class TuneDBError(ReproError):
    """Malformed tuning database."""

    default_code = "RPR701"


@dataclass
class TuningDB:
    """In-memory view of one ``repro.tune/1`` document."""

    path: Path | None = None
    entries: dict[str, dict[str, Any]] = field(default_factory=dict)

    # ------------------------------------------------------------------- I/O
    @classmethod
    def load(cls, path: str | Path) -> "TuningDB":
        path = Path(path)
        if not path.is_file():
            return cls(path=path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TuneDBError(f"{path}: unreadable tuning database: {exc}") from exc
        schema = doc.get("schema", "")
        if not str(schema).startswith("repro.tune/"):
            raise TuneDBError(
                f"{path}: not a tuning database (schema={schema!r})"
            )
        entries = doc.get("entries")
        if not isinstance(entries, dict):
            raise TuneDBError(f"{path}: database has no 'entries' mapping")
        return cls(path=path, entries=entries)

    def save(self, path: str | Path | None = None) -> Path:
        path = Path(path) if path is not None else self.path
        if path is None:
            raise TuneDBError("tuning database has no path to save to")
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"schema": SCHEMA, "entries": self.entries}
        path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        self.path = path
        return path

    # ---------------------------------------------------------------- entries
    def record(self, key: str, config: "TuneConfig", *, target: str | None,
               virtual_s: float, default_virtual_s: float,
               trials: int) -> None:
        self.entries[key] = {
            "config": config.as_dict(),
            "target": target,
            "virtual_s": float(virtual_s),
            "default_virtual_s": float(default_virtual_s),
            "trials": int(trials),
            "date": time.strftime("%Y-%m-%d"),
        }

    def lookup(self, key: str) -> dict[str, Any] | None:
        return self.entries.get(key)

    def lookup_config(self, key: str) -> "TuneConfig | None":
        from repro.tune.space import TuneConfig

        entry = self.entries.get(key)
        if entry is None:
            return None
        return TuneConfig.from_dict(entry.get("config", {}))

    def __len__(self) -> int:
        return len(self.entries)


def default_db_path(cache_dir: str | Path | None = None) -> Path:
    """Where the database lives: inside the cache dir when one is set,
    else the working directory."""
    if cache_dir is None:
        from repro.tune.cache import get_cache

        cache_dir = get_cache().cache_dir
    base = Path(cache_dir) if cache_dir is not None else Path(".")
    return base / DB_FILENAME


__all__ = ["DB_FILENAME", "SCHEMA", "TuneDBError", "TuningDB", "default_db_path"]
