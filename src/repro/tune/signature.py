"""Canonical problem signatures — the compilation cache's content address.

The cache must answer "is this the *same* generation problem?" without
running the generation pipeline (the whole point is to skip it).  The key
therefore hashes the cheap, declarative inputs the pipeline is a pure
function of:

* the equation string and its kind (conservation / weak form);
* the entity tables (indices with ranges, variables with their component
  spaces, coefficients with hashed values, callbacks by code identity);
* the boundary declarations (region, kind, value / callback identity);
* the mesh content (node coordinates + connectivity, hashed once and
  memoised on the mesh object);
* the codegen options that shape the emitted source or the baked
  operators: stepper, flux order, assembly loop order, partitioning,
  GPU spec, machine rates (they steer the placement optimiser), network
  name, and the GPU tuning knobs in ``problem.extra``.

Deliberately **excluded** (bound fresh on every cache hit, see
``bind_artifact``): ``dt``/``nsteps``, initial values, and the pre/post
step callback *objects* — they only parameterise the run, not the
generated artifact.  Callback and function-coefficient *code* is hashed
(bytecode + best-effort closure contents), so redefining one invalidates
the entry while re-creating an identical closure does not.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from repro.dsl.problem import Problem

SCHEMA = "repro.cache/1"

#: ``problem.extra`` keys that feed codegen / placement and therefore the key.
_EXTRA_KEYS = (
    "gpu_force_offload",
    "gpu_flop_factor",
    "gpu_byte_factor",
    "gpu_kernel_chunks",
    "placement_override",
    "fusion",
)

#: Knob fields normalised out of :func:`tuning_key` so one tuning-database
#: entry covers the problem regardless of the knobs currently applied.
#: (``nparts`` stays — the rank count is a resource, not a knob.)
_KNOB_SIG_FIELDS = ("assembly_order", "extra")


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _hash_array(arr: np.ndarray) -> str:
    arr = np.ascontiguousarray(arr)
    return _sha(str(arr.dtype).encode() + str(arr.shape).encode() + arr.tobytes())


def _hash_callable(fn: Any) -> str:
    """Code-identity hash: bytecode + consts + best-effort closure contents.

    Two closures created by the same factory hash equal unless their
    captured values differ; objects we cannot hash stably degrade to their
    type name (conservative: may alias, never unstable across processes).
    """
    code = getattr(fn, "__code__", None)
    parts = [getattr(fn, "__qualname__", repr(type(fn)))]
    if code is not None:
        parts.append(_sha(code.co_code))
        parts.append(repr(tuple(c for c in code.co_consts if isinstance(c, (int, float, str, bytes, type(None))))))
    closure = getattr(fn, "__closure__", None)
    if closure:
        for cell in closure:
            try:
                parts.append(_hash_value(cell.cell_contents))
            except Exception:  # unhashable capture: fall back to its type
                parts.append(type(cell.cell_contents).__name__)
    return _sha("|".join(parts).encode())


def _hash_value(value: Any) -> str:
    """Stable hash of a coefficient/boundary value of any supported kind."""
    if value is None:
        return "none"
    if isinstance(value, (bool, int, float, str)):
        return repr(value)
    if isinstance(value, np.ndarray):
        return _hash_array(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_hash_value(v) for v in value) + "]"
    if isinstance(value, dict):
        return "{" + ",".join(
            f"{k}:{_hash_value(v)}" for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        ) + "}"
    if callable(value):
        return _hash_callable(value)
    try:
        arr = np.asarray(value)
        if arr.dtype != object:
            return _hash_array(arr)
    except Exception:
        pass
    return type(value).__name__


def mesh_signature(mesh) -> str:
    """Content hash of a mesh (memoised on the instance)."""
    cached = mesh.__dict__.get("_repro_content_hash")
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(str(mesh.dim).encode())
    for arr in (
        mesh.nodes,
        mesh.cell_node_offsets,
        mesh.cell_node_indices,
        mesh.face_region,
    ):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    digest = h.hexdigest()
    mesh.__dict__["_repro_content_hash"] = digest
    return digest


def _entities_signature(problem: "Problem") -> dict[str, Any]:
    ents = problem.entities
    return {
        "indices": [
            {"name": ix.name, "lo": ix.lo, "hi": ix.hi}
            for ix in sorted(ents.indices.values(), key=lambda i: i.name)
        ],
        "variables": [
            {
                "name": v.name,
                "type": v.var_type,
                "location": v.location,
                "indices": list(v.index_names()),
            }
            for v in sorted(ents.variables.values(), key=lambda v: v.name)
        ],
        "coefficients": [
            {
                "name": c.name,
                "type": c.var_type,
                "indices": list(c.index_names()),
                "value": _hash_value(c.value),
            }
            for c in sorted(ents.coefficients.values(), key=lambda c: c.name)
        ],
        "callbacks": [
            {"name": cb.name, "code": _hash_callable(cb.fn)}
            for cb in sorted(ents.callbacks.values(), key=lambda cb: cb.name)
        ],
    }


def _boundary_signature(problem: "Problem") -> list[dict[str, Any]]:
    out = []
    for b in sorted(problem.boundaries, key=lambda b: (b.variable, b.region)):
        out.append({
            "variable": b.variable,
            "region": b.region,
            "kind": b.kind.value,
            "value": _hash_value(b.value),
            "call": repr(b.call) if b.call is not None else None,
            "callback": _hash_callable(b.python_callback)
            if b.python_callback is not None else None,
            "reflection": _hash_value(b.reflection_map),
        })
    return out


def problem_signature(problem: "Problem", target_name: str) -> dict[str, Any]:
    """The canonical, JSON-able signature document of one generation."""
    cfg = problem.config
    machine = problem.extra.get("machine_rates")
    network = problem.extra.get("network_model")
    sig: dict[str, Any] = {
        "schema": SCHEMA,
        "target": target_name,
        "dimension": cfg.dimension,
        "solver_type": cfg.solver_type,
        "stepper": cfg.stepper,
        "flux_order": cfg.flux_order,
        "assembly_order": list(cfg.assembly_order),
        "partition": {
            "strategy": cfg.partition_strategy,
            "nparts": cfg.nparts,
            "index": cfg.partition_index,
        },
        "use_gpu": cfg.use_gpu,
        "gpu_spec": getattr(cfg.gpu_spec, "name", None),
        "machine": None if machine is None else {
            "name": machine.name,
            "rates": [
                machine.intensity_per_dof, machine.newton_per_cell,
                machine.iobeta_per_cell_band, machine.boundary_per_face_comp,
            ],
        },
        "network": getattr(network, "name", None) if network is not None else None,
        "equation": {
            "kind": problem.equation_kind,
            "source": problem.equation.source if problem.equation else None,
        },
        "entities": _entities_signature(problem),
        "boundaries": _boundary_signature(problem),
        "mesh": mesh_signature(problem.mesh) if problem.mesh is not None else None,
        "extra": {k: _hash_value(problem.extra[k])
                  for k in _EXTRA_KEYS if k in problem.extra},
    }
    return sig


def signature_digest(sig: dict[str, Any]) -> str:
    return _sha(json.dumps(sig, sort_keys=True, separators=(",", ":")).encode())


def cache_key(problem: "Problem", target_name: str) -> str:
    """The compilation-cache key: sha256 of the canonical signature."""
    return signature_digest(problem_signature(problem, target_name))


def request_key(problem: "Problem", target: str | None = None) -> str:
    """The solver-service dedup key for a request: the compilation-cache
    key of the target the problem *would* dispatch to.

    Identical in-flight requests (same signature, same resolved target)
    coalesce onto one job and one compiled artifact; ``dt``/``nsteps``/
    initial values/callbacks are excluded from the signature by design, so
    requests differing only in those do NOT coalesce at the job layer —
    the service additionally keys jobs on the runtime binding (see
    :mod:`repro.serve.schema`).
    """
    return cache_key(problem, problem.resolve_target(target))


def tuning_key(problem: "Problem", target_name: str | None = None) -> str:
    """The tuning-database key: the cache signature with every *tunable*
    field (assembly order, partitioning, GPU knob extras) normalised out,
    so a stored best configuration is found whatever knobs the problem
    currently carries.  ``target_name`` defaults to ``"auto"`` because the
    tuned knobs themselves may change the dispatched target."""
    sig = problem_signature(problem, target_name or "auto")
    for field in _KNOB_SIG_FIELDS:
        sig.pop(field, None)
    # strategy and split index are tunable; the rank count is a resource
    sig["partition"] = {"nparts": sig["partition"]["nparts"]}
    return signature_digest(sig)


__all__ = [
    "SCHEMA",
    "cache_key",
    "mesh_signature",
    "problem_signature",
    "request_key",
    "signature_digest",
    "tuning_key",
]
