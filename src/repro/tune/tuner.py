"""The autotuner: budgeted search over :mod:`repro.tune.space`.

Each trial builds a *fresh* problem from the caller's factory, imposes one
:class:`~repro.tune.space.TuneConfig`, generates a solver, checks the
generated placement (:func:`repro.verify.verify_solver_placement` — a
config whose plan fails verification never wins), runs a short proxy
(``proxy_steps`` time steps) and scores it on **virtual time**: the SPMD
makespan for distributed targets, the host clock for the hybrid GPU
target, and a deterministic cost-model estimate for serial targets.
Virtual scoring makes the search reproducible — identical on every
machine and in CI — which the acceptance suite relies on.

Search strategies:

* ``grid`` — every candidate :func:`build_space` enumerates, standalone;
* ``greedy`` (default) — walk the knob axes in :data:`repro.tune.space.AXES`
  order, keep the per-axis winner, compose winners.

Candidates whose cost-model prediction exceeds ``prune_ratio`` x the best
prediction are skipped without running (the default configuration is never
pruned).  Budgets cap the search by trial count and/or wall seconds.

The winner is persisted in the ``"repro.tune/1"`` database under
:func:`~repro.tune.signature.tuning_key`; future solves with
``problem.extra["tuned"] = True`` (CLI ``--tuned``) pick it up through
:func:`maybe_apply_tuned`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.tune.db import TuningDB, default_db_path
from repro.tune.signature import tuning_key
from repro.tune.space import (
    AXES,
    TuneConfig,
    apply_config,
    axis_of,
    build_space,
    merge_configs,
)
from repro.util.logging import get_logger

if TYPE_CHECKING:
    from repro.dsl.problem import Problem

logger = get_logger("tune.tuner")

#: Skip candidates predicted worse than ``PRUNE_RATIO`` x the best prediction.
PRUNE_RATIO = 4.0

#: Virtual per-step overhead charged per extra component block (serial
#: fallback scoring): models the block-dispatch cost the cost model's
#: per-DOF rates do not see.  Deterministic by construction.
_BLOCK_DISPATCH_S = 1.0e-6


@dataclass
class Trial:
    """One evaluated (or pruned) configuration."""

    config: TuneConfig
    status: str  # ok | verify_failed | error | pruned
    virtual_s: float = float("inf")
    predicted_s: float = float("inf")
    wall_s: float = 0.0
    detail: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "config": self.config.as_dict(),
            "status": self.status,
            "virtual_s": self.virtual_s,
            "predicted_s": self.predicted_s,
            "wall_s": self.wall_s,
            "detail": self.detail,
        }


@dataclass
class TuneResult:
    """Outcome of one :func:`tune` call."""

    best: TuneConfig
    best_virtual_s: float
    default_virtual_s: float
    trials: list[Trial]
    key: str
    target: str | None
    strategy: str
    wall_s: float = 0.0
    db_path: Path | None = None

    @property
    def speedup(self) -> float:
        if self.best_virtual_s <= 0:
            return 1.0
        return self.default_virtual_s / self.best_virtual_s

    def summary(self) -> str:
        lines = [
            f"tuned {len(self.trials)} trial(s) in {self.wall_s:.2f}s "
            f"({self.strategy} search, key {self.key[:12]})",
            f"  default: {self.default_virtual_s:.3e} virtual s",
            f"  best:    {self.best_virtual_s:.3e} virtual s "
            f"({self.speedup:.2f}x)  [{self.best.describe()}]",
        ]
        for t in self.trials:
            mark = "*" if t.config == self.best else " "
            shown = (f"{t.virtual_s:.3e}s" if t.status == "ok"
                     else t.status)
            lines.append(f"  {mark} {t.config.describe():<48} {shown}")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.tune_result/1",
            "key": self.key,
            "target": self.target,
            "strategy": self.strategy,
            "best": self.best.as_dict(),
            "best_virtual_s": self.best_virtual_s,
            "default_virtual_s": self.default_virtual_s,
            "speedup": self.speedup,
            "wall_s": self.wall_s,
            "trials": [t.as_dict() for t in self.trials],
        }


# ---------------------------------------------------------------------------
# scoring
# ---------------------------------------------------------------------------

def _machine(problem: "Problem"):
    machine = problem.extra.get("machine_rates")
    if machine is None:
        from repro.perfmodel.machines import CASCADE_LAKE_FINCH

        machine = CASCADE_LAKE_FINCH
    return machine


def _workload(problem: "Problem", solver, nsteps: int):
    from repro.perfmodel.costs import BTEWorkload

    state = solver.state
    names = list(problem.unknown.space.names)
    sizes = list(problem.unknown.space.sizes)
    nbands = 1
    if "b" in names:
        nbands = sizes[names.index("b")]
    elif sizes:
        nbands = sizes[-1]
    ncomp = max(1, state.ncomp)
    return BTEWorkload(
        ncells=state.ncells,
        ndirs=max(1, ncomp // max(1, nbands)),
        nbands=nbands,
        nsteps=nsteps,
        n_boundary_faces=len(getattr(state.geom, "bfaces", ())),
    )


def predict_cost(problem: "Problem", config: TuneConfig,
                 nsteps: int = 1) -> float:
    """Cost-model prediction for pruning: deterministic, coarse, cheap.

    Partitioned runs divide the intensity sweep by ``nparts`` (cells) or
    parallelise bands only (band split leaves the temperature update
    replicated); extra component blocks pay a dispatch surcharge.
    """
    from repro.perfmodel.costs import BTEWorkload, CostModel

    cfg = problem.config
    mesh = problem.mesh
    ncells = mesh.ncells if mesh is not None else 1
    names = list(problem.unknown.space.names)
    sizes = list(problem.unknown.space.sizes)
    nbands = sizes[names.index("b")] if "b" in names else (sizes[-1] if sizes else 1)
    ncomp = 1
    for s in sizes:
        ncomp *= s
    w = BTEWorkload(ncells=ncells, ndirs=max(1, ncomp // max(1, nbands)),
                    nbands=nbands, nsteps=nsteps)
    cost = CostModel(_machine(problem))

    strategy = config.partition_strategy or cfg.partition_strategy
    nparts = cfg.nparts
    intensity = cost.intensity_step(w.ncells, w.ncomp)
    temp = cost.temperature_step(w.ncells, w.nbands)
    if nparts > 1 and strategy == "cells":
        step = intensity / nparts + temp / nparts
    elif nparts > 1 and strategy == "bands":
        step = intensity / min(nparts, max(1, nbands)) + temp
    else:
        step = intensity + temp

    order = list(config.assembly_order or cfg.assembly_order)
    nblocks = 1
    if order and order[0] != "cells":
        outer = order[0]
        nblocks = sizes[names.index(outer)] if outer in names else 1
    step += _BLOCK_DISPATCH_S * (nblocks - 1)
    return nsteps * step


def _virtual_time(problem: "Problem", solver, nsteps: int) -> float:
    """The trial's score: SPMD makespan > host clock > cost model."""
    state = solver.state
    spmd = getattr(state, "spmd_result", None)
    if spmd is not None:
        try:
            makespan = float(spmd.makespan)
            if makespan > 0:
                return makespan
        except (TypeError, ValueError):
            pass
    clock = getattr(state, "host_clock", None)
    if clock is not None:
        try:
            now = float(clock.now())
            if now > 0:
                return now
        except (TypeError, ValueError):
            pass
    # serial targets keep no virtual clock: deterministic model estimate,
    # with the per-block dispatch surcharge measured from the real blocks
    from repro.perfmodel.costs import CostModel

    w = _workload(problem, solver, nsteps)
    blocks = getattr(state, "comp_blocks", [slice(None)])
    nblocks = 1 if blocks == [slice(None)] else len(blocks)
    cost = CostModel(_machine(problem))
    return nsteps * (cost.serial_step(w) + _BLOCK_DISPATCH_S * (nblocks - 1))


# ---------------------------------------------------------------------------
# trials
# ---------------------------------------------------------------------------

def run_trial(
    problem_factory: Callable[[], "Problem"],
    config: TuneConfig,
    *,
    target: str | None = None,
    proxy_steps: int | None = 2,
) -> Trial:
    """Evaluate one configuration on a fresh problem instance."""
    from repro.obs.metrics import get_metrics
    from repro.verify import verify_solver_placement

    t0 = time.perf_counter()
    trial = Trial(config=config, status="error")
    try:
        problem = problem_factory()
        problem.extra.pop("tuned", None)  # trials never recurse into the DB
        apply_config(problem, config)
        nsteps = problem.config.nsteps
        if proxy_steps is not None:
            nsteps = max(1, min(nsteps, int(proxy_steps)))
            problem.config.nsteps = nsteps
        solver = problem.generate(target)
        report = verify_solver_placement(solver)
        if report.has_errors:
            trial.status = "verify_failed"
            trial.detail = "; ".join(
                getattr(e, "message", str(e)) for e in report.errors
            )
        else:
            solver.run()
            trial.virtual_s = _virtual_time(problem, solver, nsteps)
            trial.status = "ok"
    except Exception as exc:  # a failing candidate must not kill the search
        trial.detail = f"{type(exc).__name__}: {exc}"
        logger.warning("trial %s failed: %s", config.describe(), trial.detail)
    trial.wall_s = time.perf_counter() - t0
    get_metrics().counter(
        "tune_trials_total", "autotuner trials by outcome"
    ).inc(1, status=trial.status)
    return trial


# ---------------------------------------------------------------------------
# the search
# ---------------------------------------------------------------------------

@dataclass
class _Budget:
    max_trials: int
    max_seconds: float | None
    started: float = field(default_factory=time.perf_counter)
    used: int = 0

    def exhausted(self) -> bool:
        if self.used >= self.max_trials:
            return True
        if self.max_seconds is not None:
            return (time.perf_counter() - self.started) >= self.max_seconds
        return False


def tune(
    problem_factory: Callable[[], "Problem"],
    *,
    target: str | None = None,
    budget_trials: int = 8,
    budget_seconds: float | None = None,
    proxy_steps: int | None = 2,
    strategy: str = "greedy",
    prune_ratio: float | None = PRUNE_RATIO,
    db: TuningDB | None = None,
    db_path: str | Path | None = None,
) -> TuneResult:
    """Search the tunable space of ``problem_factory()``'s problem.

    The factory is called once per trial (configurations mutate the
    problem, so trials must not share instances).  Returns the best
    configuration found — never worse than the default, because the
    default is always trial #1 and ties resolve in its favour.  When
    ``db``/``db_path`` is given the winner is recorded (and saved when the
    database has a path).
    """
    if strategy not in ("greedy", "grid"):
        raise ValueError(f"unknown search strategy {strategy!r}")

    probe = problem_factory()
    key = tuning_key(probe, target)
    candidates = build_space(probe)
    predictions = {c: predict_cost(probe, c) for c in candidates}
    floor = min(predictions.values())
    budget = _Budget(max_trials=max(1, int(budget_trials)),
                     max_seconds=budget_seconds)
    trials: list[Trial] = []

    def evaluate(config: TuneConfig) -> Trial:
        predicted = predict_cost(probe, config)
        if (prune_ratio is not None and not config.is_default
                and predicted > prune_ratio * floor):
            trial = Trial(config=config, status="pruned", predicted_s=predicted)
            trials.append(trial)
            return trial
        budget.used += 1
        trial = run_trial(problem_factory, config,
                          target=target, proxy_steps=proxy_steps)
        trial.predicted_s = predicted
        trials.append(trial)
        return trial

    default_trial = evaluate(TuneConfig())
    if default_trial.status != "ok":
        raise RuntimeError(
            "the default configuration failed its trial "
            f"({default_trial.status}: {default_trial.detail})"
        )
    best = default_trial.config
    best_virtual = default_trial.virtual_s

    if strategy == "grid":
        for config in sorted(
            (c for c in candidates if not c.is_default),
            key=lambda c: predictions[c],
        ):
            if budget.exhausted():
                break
            t = evaluate(config)
            if t.status == "ok" and t.virtual_s < best_virtual:
                best, best_virtual = config, t.virtual_s
    else:  # greedy: walk axes, compose per-axis winners
        base = TuneConfig()
        for axis in AXES:
            axis_candidates = sorted(
                (c for c in candidates if axis_of(c) == axis),
                key=lambda c: predictions[c],
            )
            for layer in axis_candidates:
                if budget.exhausted():
                    break
                merged = merge_configs(base, layer)
                if merged == base:
                    continue
                t = evaluate(merged)
                if t.status == "ok" and t.virtual_s < best_virtual:
                    best, best_virtual = merged, t.virtual_s
            if best != base and axis_of_any(best, axis):
                base = best
            if budget.exhausted():
                break

    result = TuneResult(
        best=best,
        best_virtual_s=best_virtual,
        default_virtual_s=default_trial.virtual_s,
        trials=trials,
        key=key,
        target=target,
        strategy=strategy,
        wall_s=time.perf_counter() - budget.started,
    )

    if db is None and db_path is not None:
        db = TuningDB.load(db_path)
    if db is not None:
        db.record(
            key, best, target=target,
            virtual_s=best_virtual,
            default_virtual_s=default_trial.virtual_s,
            trials=budget.used,
        )
        if db.path is not None:
            db.save()
            result.db_path = db.path
    logger.info("tune: %s", result.summary().splitlines()[0])
    return result


def axis_of_any(config: TuneConfig, axis: str) -> bool:
    """Does ``config`` set the knob(s) of ``axis``?"""
    if axis == "partition":
        return config.partition_strategy is not None
    return getattr(config, axis, None) is not None


# ---------------------------------------------------------------------------
# auto-consultation (Problem.generate hook)
# ---------------------------------------------------------------------------

def maybe_apply_tuned(problem: "Problem",
                      target: str | None = None) -> TuneConfig | None:
    """Apply the stored best configuration when tuned mode is on.

    Gated on ``problem.extra["tuned"]`` (set by the CLI's ``--tuned`` or
    the user); idempotent via a ``_tuned_applied`` marker so repeated
    ``generate()`` calls do not re-apply.  The database comes from
    ``problem.extra["tuning_db"]`` (a :class:`TuningDB` or a path) or the
    default location inside the cache dir.
    """
    if not problem.extra.get("tuned") or problem.extra.get("_tuned_applied"):
        return None
    db = problem.extra.get("tuning_db")
    if isinstance(db, (str, Path)):
        db = TuningDB.load(db)
    if db is None:
        path = default_db_path()
        if not path.is_file():
            return None
        db = TuningDB.load(path)
    config = db.lookup_config(tuning_key(problem, target))
    if config is None:
        logger.debug("tuned mode on but no entry for this problem")
        return None
    apply_config(problem, config)
    problem.extra["_tuned_applied"] = True
    problem.extra["tuned_config"] = config.as_dict()
    logger.info("applied tuned configuration: %s", config.describe())
    return config


__all__ = [
    "PRUNE_RATIO",
    "Trial",
    "TuneResult",
    "maybe_apply_tuned",
    "predict_cost",
    "run_trial",
    "tune",
]
