"""Flattened FV geometry and the sparse surface-divergence operator.

The assembler's hot loop is entirely expressed on these arrays.  Following
the HPC-python guidance (vectorise, stay contiguous, precompute sparse
operators once), the per-step surface integral

    (1/V_c) * sum_{f in faces(c)} A_f * flux_f

is a single CSR sparse-matrix product: ``div = flux @ D.T`` where ``D`` has a
``+A_f/V_owner`` entry for the face's owner and ``-A_f/V_neigh`` for its
neighbour (the same physical flux leaves one cell and enters the other).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.mesh.mesh import Mesh


class FVGeometry:
    """Precomputed arrays for finite-volume assembly on one mesh.

    Attributes
    ----------
    owner, neighbor:
        ``(nfaces,)`` cell ids; ``neighbor`` is ``-1`` on boundary faces.
    normal, area, center:
        Face geometry (normal is unit, outward from the owner).
    inv_volume:
        ``(ncells,)`` reciprocal cell volumes.
    neighbor_safe:
        Like ``neighbor`` but boundary entries point at the owner, so
        gather operations never index out of bounds; boundary values are
        then overridden by ghost data.
    bfaces:
        ``(nbfaces,)`` boundary face ids, and ``bface_slot`` maps a face id
        to its position in that list (or -1).
    """

    def __init__(self, mesh: Mesh):
        self.mesh = mesh
        self.dim = mesh.dim
        self.ncells = mesh.ncells
        self.nfaces = mesh.nfaces

        self.owner = np.ascontiguousarray(mesh.face_cells[:, 0])
        self.neighbor = np.ascontiguousarray(mesh.face_cells[:, 1])
        self.normal = np.ascontiguousarray(mesh.face_normals)
        self.area = np.ascontiguousarray(mesh.face_areas)
        self.center = np.ascontiguousarray(mesh.face_centers)
        self.volume = np.ascontiguousarray(mesh.cell_volumes)
        self.inv_volume = 1.0 / self.volume
        self.cell_center = np.ascontiguousarray(mesh.cell_centroids)

        self.interior_mask = self.neighbor >= 0
        self.bfaces = np.flatnonzero(~self.interior_mask)
        self.bface_slot = np.full(self.nfaces, -1, dtype=np.int64)
        self.bface_slot[self.bfaces] = np.arange(len(self.bfaces))
        self.neighbor_safe = np.where(self.interior_mask, self.neighbor, self.owner)

        # gradient distance across each face (two-point diffusive fluxes):
        # interior = |projection of the centroid offset on the normal|;
        # boundary = owner-centroid-to-face distance, because ghost values
        # follow the face-value convention (a Dirichlet ghost IS the wall
        # value at the face), so (ghost - owner)/face_dist is the one-sided
        # boundary gradient
        offset_int = (
            self.cell_center[self.neighbor_safe] - self.cell_center[self.owner]
        )
        d_int = np.abs(np.einsum("fd,fd->f", offset_int, self.normal))
        offset_bdry = self.center - self.cell_center[self.owner]
        d_bdry = np.abs(np.einsum("fd,fd->f", offset_bdry, self.normal))
        self.face_dist = np.where(self.interior_mask, d_int, d_bdry)

        self.face_region = mesh.face_region
        self.region_faces = {
            r: mesh.boundary_faces(r) for r in mesh.boundary_regions()
        }
        # positions of each region's faces inside the boundary-face list
        self.region_slots = {
            r: self.bface_slot[faces] for r, faces in self.region_faces.items()
        }

        self.divergence = self._build_divergence()
        self._gradient_ops: list[sp.csr_matrix] | None = None
        # face-centre offsets from each side's cell centre (for linear
        # face extrapolation in second-order reconstructions)
        self.offset_owner = self.center - self.cell_center[self.owner]
        self.offset_neighbor = self.center - self.cell_center[self.neighbor_safe]

    def _build_divergence(self) -> sp.csr_matrix:
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        faces = np.arange(self.nfaces)
        # owner: flux leaves through an outward normal -> +A/V
        rows.append(self.owner)
        cols.append(faces)
        vals.append(self.area * self.inv_volume[self.owner])
        # neighbour (interior only): the same flux enters -> -A/V
        inter = self.interior_mask
        rows.append(self.neighbor[inter])
        cols.append(faces[inter])
        vals.append(-self.area[inter] * self.inv_volume[self.neighbor[inter]])
        mat = sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self.ncells, self.nfaces),
        )
        return mat.tocsr()

    @property
    def gradient_ops(self) -> list[sp.csr_matrix]:
        """Green-Gauss gradient operators, one CSR matrix per axis.

        ``grad_d(u) = G_d @ u_face`` with face values (e.g. the side
        average); entries mirror the divergence stencil weighted by the
        normal component.  Built lazily — only second-order
        reconstructions need them.
        """
        if self._gradient_ops is None:
            faces = np.arange(self.nfaces)
            inter = self.interior_mask
            ops = []
            for d in range(self.dim):
                rows = [self.owner, self.neighbor[inter]]
                cols = [faces, faces[inter]]
                w = self.area * self.normal[:, d]
                vals = [
                    w * self.inv_volume[self.owner],
                    -(w[inter]) * self.inv_volume[self.neighbor[inter]],
                ]
                mat = sp.coo_matrix(
                    (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
                    shape=(self.ncells, self.nfaces),
                )
                ops.append(mat.tocsr())
            self._gradient_ops = ops
        return self._gradient_ops

    def green_gauss_gradient(self, face_values: np.ndarray) -> list[np.ndarray]:
        """Cell gradients from face values: list of ``(..., ncells)`` per axis."""
        if face_values.ndim == 1:
            return [G @ face_values for G in self.gradient_ops]
        return [(G @ face_values.T).T for G in self.gradient_ops]

    # ------------------------------------------------------------------ ops
    def surface_divergence(self, face_flux: np.ndarray) -> np.ndarray:
        """``(1/V) sum_f A_f flux_f`` for every cell.

        ``face_flux`` has shape ``(nfaces,)`` or ``(ncomp, nfaces)`` (flux per
        unit area, signed w.r.t. the owner's outward normal); the result has
        the matching cell shape.
        """
        if face_flux.ndim == 1:
            return self.divergence @ face_flux
        return (self.divergence @ face_flux.T).T

    def gather_sides(self, u: np.ndarray, ghost: np.ndarray | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Owner-side and neighbour-side values of ``u`` on every face.

        ``u`` has shape ``(..., ncells)``.  On boundary faces the neighbour
        side is taken from ``ghost`` (shape ``(..., nbfaces)``) when given,
        otherwise it duplicates the owner value (zero-gradient).
        """
        u1 = u[..., self.owner]
        u2 = u[..., self.neighbor_safe]
        if ghost is not None and len(self.bfaces):
            u2 = u2.copy()
            u2[..., self.bfaces] = ghost
        return u1, u2

    def face_value_owner(self, u: np.ndarray) -> np.ndarray:
        return u[..., self.owner]

    def boundary_face_count(self) -> int:
        return len(self.bfaces)


__all__ = ["FVGeometry"]
