"""Explicit time-integration schemes.

The paper uses forward Euler ("a simple explicit scheme such as forward
Euler is reasonable" for the small steps the BTE transient needs); RK2/RK4
are provided as the DSL's other explicit options, exercised by the examples
and tests.  A stepper advances ``u_{n} -> u_{n+1}`` given a right-hand side
``rhs(u, t) -> du/dt`` computed by the generated/assembled code.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.util.errors import ConfigError

RHS = Callable[[np.ndarray, float], np.ndarray]


class TimeStepper:
    """Base class: subclasses implement :meth:`advance`."""

    name = "base"
    stages = 1

    def advance(self, u: np.ndarray, t: float, dt: float, rhs: RHS) -> np.ndarray:
        raise NotImplementedError


class ForwardEuler(TimeStepper):
    """``u + dt * rhs(u, t)`` — the paper's scheme (EULER_EXPLICIT)."""

    name = "euler"
    stages = 1

    def advance(self, u: np.ndarray, t: float, dt: float, rhs: RHS) -> np.ndarray:
        return u + dt * rhs(u, t)


class RK2(TimeStepper):
    """Explicit midpoint method (2nd order)."""

    name = "rk2"
    stages = 2

    def advance(self, u: np.ndarray, t: float, dt: float, rhs: RHS) -> np.ndarray:
        k1 = rhs(u, t)
        k2 = rhs(u + 0.5 * dt * k1, t + 0.5 * dt)
        return u + dt * k2


class RK4(TimeStepper):
    """Classic 4th-order Runge–Kutta."""

    name = "rk4"
    stages = 4

    def advance(self, u: np.ndarray, t: float, dt: float, rhs: RHS) -> np.ndarray:
        k1 = rhs(u, t)
        k2 = rhs(u + 0.5 * dt * k1, t + 0.5 * dt)
        k3 = rhs(u + 0.5 * dt * k2, t + 0.5 * dt)
        k4 = rhs(u + dt * k3, t + dt)
        return u + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


_STEPPERS: dict[str, type[TimeStepper]] = {
    "euler": ForwardEuler,
    "euler_explicit": ForwardEuler,
    "rk2": RK2,
    "midpoint": RK2,
    "rk4": RK4,
}


def make_stepper(name: str) -> TimeStepper:
    """Instantiate a stepper by name (``euler``/``rk2``/``rk4``)."""
    key = name.lower()
    if key not in _STEPPERS:
        raise ConfigError(
            f"unknown time stepper {name!r}; available: {sorted(set(_STEPPERS))}"
        )
    return _STEPPERS[key]()


__all__ = ["TimeStepper", "ForwardEuler", "RK2", "RK4", "make_stepper", "RHS"]
