"""Boundary-condition bookkeeping for FV solvers.

The paper handles boundaries in two ways, both supported here:

* simple conditions expressible as *ghost values* — Dirichlet value, zero
  gradient, or specular symmetry — which feed the same upwind flux kernel as
  interior faces;
* complex conditions as *user callback functions* (e.g. the BTE's
  ``isothermal`` flux), which are pinned to the CPU by the hybrid codegen and
  may either provide ghost values or directly override the face flux.

Callbacks receive a :class:`BoundaryContext` carrying the region's face
geometry and the owner-side solution, and return an array of shape
``(ncomp, nfaces_in_region)``.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.fvm.geometry import FVGeometry
from repro.util.errors import ConfigError


class BCKind(enum.Enum):
    """How a boundary region is treated."""

    DIRICHLET = "dirichlet"  # prescribed ghost value
    NEUMANN0 = "neumann0"  # zero gradient: ghost = owner
    NEUMANN = "neumann"  # prescribed outward flux value (FEM natural BC)
    SYMMETRY = "symmetry"  # specular reflection (needs a reflection map)
    FLUX = "flux"  # callback returns the face flux directly
    GHOST_CALLBACK = "ghost_callback"  # callback returns ghost values


@dataclass
class BoundaryContext:
    """Everything a boundary callback may need, prepacked as arrays."""

    region: int
    faces: np.ndarray  # global face ids in this region
    normals: np.ndarray  # (nf, dim) outward
    centers: np.ndarray  # (nf, dim)
    areas: np.ndarray  # (nf,)
    owner_cells: np.ndarray  # (nf,)
    owner_values: np.ndarray  # (ncomp, nf) current solution on the inside
    time: float
    dt: float
    extra: dict[str, Any] = field(default_factory=dict)  # problem-specific data

    @property
    def nfaces(self) -> int:
        return len(self.faces)


#: callback signature: (BoundaryContext) -> (ncomp, nfaces) array
BoundaryCallback = Callable[[BoundaryContext], np.ndarray]


@dataclass
class BoundaryCondition:
    """One region's condition for one variable."""

    region: int
    kind: BCKind
    value: float | np.ndarray | None = None  # DIRICHLET constant(s)
    callback: BoundaryCallback | None = None  # FLUX / GHOST_CALLBACK
    reflection_map: np.ndarray | None = None  # SYMMETRY: comp -> reflected comp
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind in (BCKind.DIRICHLET, BCKind.NEUMANN) and self.value is None:
            raise ConfigError(
                f"{self.kind.value} BC on region {self.region} needs a value"
            )
        if self.kind in (BCKind.FLUX, BCKind.GHOST_CALLBACK) and self.callback is None:
            raise ConfigError(
                f"{self.kind.value} BC on region {self.region} needs a callback"
            )
        if self.kind == BCKind.SYMMETRY and self.reflection_map is None:
            raise ConfigError(
                f"symmetry BC on region {self.region} needs a reflection map "
                "(component -> mirrored component)"
            )


class BoundarySet:
    """All boundary conditions of one variable on one mesh.

    ``ghost_values`` fills the ghost array consumed by
    :meth:`repro.fvm.geometry.FVGeometry.gather_sides`; ``flux_overrides``
    yields ``(boundary_slot_ids, flux_values)`` pairs applied after the bulk
    flux computation.  Symmetry regions may carry *per-region* reflection
    maps because the mirrored direction depends on the wall's orientation.
    """

    def __init__(self, geom: FVGeometry, ncomp: int):
        self.geom = geom
        self.ncomp = ncomp
        self.conditions: dict[int, BoundaryCondition] = {}

    def add(self, bc: BoundaryCondition) -> None:
        if bc.region not in self.geom.region_faces:
            raise ConfigError(
                f"mesh has no boundary region {bc.region} "
                f"(regions: {sorted(self.geom.region_faces)})"
            )
        if bc.region in self.conditions:
            raise ConfigError(f"region {bc.region} already has a boundary condition")
        if bc.reflection_map is not None and len(bc.reflection_map) != self.ncomp:
            raise ConfigError(
                f"reflection map length {len(bc.reflection_map)} != ncomp {self.ncomp}"
            )
        self.conditions[bc.region] = bc

    def check_complete(self) -> None:
        missing = set(self.geom.region_faces) - set(self.conditions)
        if missing:
            raise ConfigError(f"boundary regions without conditions: {sorted(missing)}")

    def _context(
        self, bc: BoundaryCondition, u: np.ndarray, time: float, dt: float,
        extra: dict[str, Any] | None,
    ) -> BoundaryContext:
        g = self.geom
        faces = g.region_faces[bc.region]
        return BoundaryContext(
            region=bc.region,
            faces=faces,
            normals=g.normal[faces],
            centers=g.center[faces],
            areas=g.area[faces],
            owner_cells=g.owner[faces],
            owner_values=u[..., g.owner[faces]],
            time=time,
            dt=dt,
            extra=dict(extra or {}),
        )

    def ghost_values(
        self,
        u: np.ndarray,
        time: float = 0.0,
        dt: float = 0.0,
        extra: dict[str, Any] | None = None,
    ) -> np.ndarray:
        """Ghost array of shape ``(ncomp, n_boundary_faces)``.

        FLUX regions get zero-gradient ghosts here (their flux is replaced
        afterwards by :meth:`flux_overrides`, so the ghost value is unused
        except for keeping shapes uniform).
        """
        g = self.geom
        nb = g.boundary_face_count()
        ghost = np.empty((self.ncomp, nb), dtype=np.float64)
        # default: zero gradient everywhere (also covers FLUX regions)
        ghost[:] = u[..., g.owner[g.bfaces]].reshape(self.ncomp, nb)
        for region, bc in self.conditions.items():
            slots = g.region_slots[region]
            if bc.kind == BCKind.DIRICHLET:
                val = np.asarray(bc.value, dtype=np.float64)
                if val.ndim == 0:
                    ghost[:, slots] = float(val)
                else:
                    if val.shape != (self.ncomp,):
                        raise ConfigError(
                            f"Dirichlet value shape {val.shape} != ({self.ncomp},)"
                        )
                    ghost[:, slots] = val[:, None]
            elif bc.kind == BCKind.NEUMANN0 or bc.kind == BCKind.FLUX:
                pass  # zero gradient already in place
            elif bc.kind == BCKind.SYMMETRY:
                faces = g.region_faces[region]
                owner_vals = u[..., g.owner[faces]].reshape(self.ncomp, len(faces))
                ghost[:, slots] = owner_vals[bc.reflection_map, :]
            elif bc.kind == BCKind.GHOST_CALLBACK:
                ctx = self._context(bc, u, time, dt, extra)
                vals = np.asarray(bc.callback(ctx), dtype=np.float64)
                if vals.shape != (self.ncomp, ctx.nfaces):
                    raise ConfigError(
                        f"ghost callback on region {region} returned shape "
                        f"{vals.shape}, expected {(self.ncomp, ctx.nfaces)}"
                    )
                ghost[:, slots] = vals
        return ghost

    def flux_overrides(
        self,
        u: np.ndarray,
        time: float = 0.0,
        dt: float = 0.0,
        extra: dict[str, Any] | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """``(face_ids, flux_values)`` for every FLUX-callback region.

        ``flux_values`` has shape ``(ncomp, nfaces_in_region)`` and is the
        flux *per unit area* signed with the owner-outward normal.
        """
        out: list[tuple[np.ndarray, np.ndarray]] = []
        for region, bc in self.conditions.items():
            if bc.kind != BCKind.FLUX:
                continue
            ctx = self._context(bc, u, time, dt, extra)
            vals = np.asarray(bc.callback(ctx), dtype=np.float64)
            if vals.shape != (self.ncomp, ctx.nfaces):
                raise ConfigError(
                    f"flux callback on region {region} returned shape "
                    f"{vals.shape}, expected {(self.ncomp, ctx.nfaces)}"
                )
            out.append((ctx.faces, vals))
        return out

    def has_callbacks(self) -> bool:
        return any(
            bc.kind in (BCKind.FLUX, BCKind.GHOST_CALLBACK)
            for bc in self.conditions.values()
        )


__all__ = [
    "BCKind",
    "BoundaryContext",
    "BoundaryCallback",
    "BoundaryCondition",
    "BoundarySet",
]
