"""Vectorised numerical kernels called from generated solver code.

These are the numeric building blocks the code generator emits calls to
(keeping generated source short, readable and correct while the numerics
stay in tested library code).  All kernels are shape-polymorphic over a
leading component axis: arguments are ``(nfaces,)``/``(ncells,)`` or
``(ncomp, nfaces)``/``(ncomp, ncells)``.
"""

from __future__ import annotations

import numpy as np


def upwind_flux(vn: np.ndarray, u_owner: np.ndarray, u_neighbor: np.ndarray) -> np.ndarray:
    """First-order upwind advective flux per unit area.

    ``vn`` is the advection velocity projected on the owner-outward face
    normal.  Where ``vn > 0`` the flow leaves the owner, so the upstream
    value is the owner's; otherwise the neighbour's.  This is exactly the
    ``conditional(v.n > 0, (v.n)*CELL1_u, (v.n)*CELL2_u)`` of the paper's
    expanded symbolic form.
    """
    return np.where(vn > 0.0, vn * u_owner, vn * u_neighbor)


def central_flux(vn: np.ndarray, u_owner: np.ndarray, u_neighbor: np.ndarray) -> np.ndarray:
    """Central (average) advective flux — the ``average`` operator."""
    return vn * 0.5 * (u_owner + u_neighbor)


def minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The minmod limiter: the smaller-magnitude argument when signs agree,
    zero otherwise (keeps MUSCL reconstructions TVD)."""
    same = (a * b) > 0.0
    return np.where(same, np.sign(a) * np.minimum(np.abs(a), np.abs(b)), 0.0)


def muscl_flux(geom, vn: np.ndarray, u: np.ndarray, ghost: np.ndarray | None = None
               ) -> np.ndarray:
    """Second-order limited-linear (MUSCL) upwind advective flux.

    Each side's face value is its cell value plus a Barth-Jespersen-limited
    linear extrapolation from the Green-Gauss cell gradient (no
    extrapolation may leave the range of the cell's face-neighbour values,
    so no new extrema are created); the upwind side is then selected by the
    sign of ``vn`` exactly as in :func:`upwind_flux`.  Boundary faces fall
    back to first order on the ghost side (the ghost value sits *at* the
    face under this library's convention).

    Parameters
    ----------
    geom:
        The :class:`~repro.fvm.geometry.FVGeometry` (gradient operators and
        face-offset vectors).
    vn:
        Velocity projected on the owner-outward normal, ``(..., nfaces)``.
    u / ghost:
        Cell values ``(..., ncells)`` and boundary ghosts ``(..., nbfaces)``.
    """
    squeeze = u.ndim == 1
    u = np.atleast_2d(u)
    if ghost is not None:
        ghost = np.atleast_2d(ghost)
    u1, u2 = geom.gather_sides(u, ghost)
    ubar = 0.5 * (u1 + u2)
    # ghost values live AT the face: the Green-Gauss face value there is the
    # ghost itself, not the cell/ghost average
    ubar[..., geom.bfaces] = u2[..., geom.bfaces]
    grads = geom.green_gauss_gradient(ubar)  # per-axis (..., ncells)

    owner, neigh = geom.owner, geom.neighbor_safe
    du1 = np.zeros_like(u1)
    du2 = np.zeros_like(u2)
    for d in range(geom.dim):
        du1 += grads[d][..., owner] * geom.offset_owner[:, d]
        du2 += grads[d][..., neigh] * geom.offset_neighbor[:, d]

    # Barth-Jespersen: per-cell bounds over the cell and its face values
    # (boundary ghosts included), then the most restrictive scale factor
    umin = u.copy().T  # (ncells, ncomp) for index-first scatter ops
    umax = u.copy().T
    np.minimum.at(umin, owner, u2.T)
    np.maximum.at(umax, owner, u2.T)
    inter = geom.interior_mask
    np.minimum.at(umin, geom.neighbor[inter], u1.T[inter])
    np.maximum.at(umax, geom.neighbor[inter], u1.T[inter])

    def face_psi(d, cells):
        lo = (umin[cells] - u.T[cells]).T
        hi = (umax[cells] - u.T[cells]).T
        pos = d > 0
        neg = d < 0
        psi = np.ones_like(d)
        # denormal-small d overflows the ratio to inf; min(1, inf) is still
        # the right answer, so just silence the spurious warnings
        with np.errstate(over="ignore", divide="ignore"):
            psi = np.where(pos, np.minimum(1.0, hi / np.where(pos, d, 1.0)), psi)
            psi = np.where(neg, np.minimum(1.0, lo / np.where(neg, d, 1.0)), psi)
        return np.clip(psi, 0.0, 1.0)

    psi1 = face_psi(du1, owner)
    psi2 = face_psi(du2, neigh)
    phi = np.ones_like(u).T  # (ncells, ncomp)
    np.minimum.at(phi, owner, psi1.T)
    np.minimum.at(phi, geom.neighbor[inter], psi2.T[inter])

    du1 *= phi[owner].T
    du2 *= phi[neigh].T
    # ghost values live at the face: no extrapolation on the outside
    du2[..., geom.bfaces] = 0.0

    flux = np.where(vn > 0.0, vn * (u1 + du1), vn * (u2 + du2))
    return flux[0] if squeeze else flux


def euler_update(
    u: np.ndarray, dt: float, source: np.ndarray, divergence: np.ndarray
) -> np.ndarray:
    """One forward-Euler step of ``du/dt = source - div`` (Eq. 3 of the paper)."""
    return u + dt * (source - divergence)


def euler_update_inplace(
    u_new: np.ndarray, u: np.ndarray, dt: float, source: np.ndarray, divergence: np.ndarray
) -> np.ndarray:
    """As :func:`euler_update` but writing into a preallocated buffer."""
    np.subtract(source, divergence, out=u_new)
    u_new *= dt
    u_new += u
    return u_new


def axpy(y: np.ndarray, a: float, x: np.ndarray) -> np.ndarray:
    """In-place ``y += a * x``."""
    y += a * x
    return y


def masked_scale(values: np.ndarray, mask: np.ndarray, scale: float) -> np.ndarray:
    """``values * scale`` where ``mask``, else ``values`` (no copy of falses)."""
    out = values.copy()
    out[..., mask] *= scale
    return out


def reduction_sum(values: np.ndarray, weights: np.ndarray | None = None, axis: int = 0) -> np.ndarray:
    """Weighted sum along an axis (the band/direction energy reductions)."""
    if weights is None:
        return values.sum(axis=axis)
    w = np.asarray(weights, dtype=np.float64)
    shape = [1] * values.ndim
    shape[axis] = len(w)
    return (values * w.reshape(shape)).sum(axis=axis)


def flop_count_upwind(ncomp: int, nfaces: int, dim: int) -> int:
    """Estimated floating-point operations of one upwind flux evaluation.

    Used by the simulated-GPU timing model: dot product (2*dim-1), compare,
    select multiply -> per face-component.
    """
    per = (2 * dim - 1) + 1 + 1
    return per * ncomp * nfaces


def flop_count_euler(ncomp: int, ncells: int) -> int:
    """FLOPs of the per-cell Euler update (3 per value)."""
    return 3 * ncomp * ncells


__all__ = [
    "upwind_flux",
    "central_flux",
    "euler_update",
    "euler_update_inplace",
    "axpy",
    "masked_scale",
    "reduction_sum",
    "flop_count_upwind",
    "flop_count_euler",
]
