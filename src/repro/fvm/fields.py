"""Multi-component cell fields and index-space bookkeeping.

The BTE unknown ``I[d, b]`` is, per cell, a 2-D array of components indexed
by direction ``d`` and band ``b``.  :class:`IndexSpace` owns the mapping
between symbolic index labels and flattened component positions (row-major
over the declared index order), and :class:`CellField` stores the data as a
contiguous ``(ncomp, ncells)`` array — components outermost, cells innermost,
so the per-component cell sweep touches contiguous memory.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.util.errors import DSLError


@dataclass(frozen=True)
class IndexSpace:
    """An ordered set of named index ranges, e.g. ``(d: 20, b: 55)``.

    Ranges are 1-based on the DSL side (matching the paper's Julia input)
    and 0-based internally; all methods here take/return 0-based values.
    """

    names: tuple[str, ...]
    sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.names) != len(self.sizes):
            raise DSLError("index names and sizes differ in length")
        if len(set(self.names)) != len(self.names):
            raise DSLError(f"duplicate index names in {self.names}")
        if any(s < 1 for s in self.sizes):
            raise DSLError(f"index sizes must be positive: {self.sizes}")

    @property
    def ncomp(self) -> int:
        out = 1
        for s in self.sizes:
            out *= s
        return out

    def position(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise DSLError(f"unknown index {name!r} (have {self.names})") from None

    def size(self, name: str) -> int:
        return self.sizes[self.position(name)]

    def flatten(self, values: Sequence[int]) -> int:
        """Row-major flattening of a full 0-based index tuple."""
        if len(values) != len(self.sizes):
            raise DSLError(
                f"expected {len(self.sizes)} indices, got {len(values)}"
            )
        flat = 0
        for v, s in zip(values, self.sizes):
            if not (0 <= v < s):
                raise DSLError(f"index value {v} out of range [0, {s})")
            flat = flat * s + v
        return flat

    def unflatten(self, flat: int) -> tuple[int, ...]:
        if not (0 <= flat < self.ncomp):
            raise DSLError(f"component {flat} out of range [0, {self.ncomp})")
        out = []
        for s in reversed(self.sizes):
            out.append(flat % s)
            flat //= s
        return tuple(reversed(out))

    def iter_indices(self) -> Iterator[tuple[int, ...]]:
        """All index tuples in flattening order."""
        for flat in range(self.ncomp):
            yield self.unflatten(flat)

    def axis_values(self, name: str) -> np.ndarray:
        """For every flat component, the value of index ``name`` (0-based).

        This is how the generated code broadcasts per-band coefficients like
        ``vg[b]`` over the flattened (direction x band) component axis:
        ``vg_per_component = vg[space.axis_values('b')]``.
        """
        pos = self.position(name)
        comps = np.arange(self.ncomp)
        # strip trailing dimensions, then take modulo
        stride = 1
        for s in self.sizes[pos + 1 :]:
            stride *= s
        return (comps // stride) % self.sizes[pos]

    @staticmethod
    def scalar() -> "IndexSpace":
        """The space of a plain scalar variable (one component)."""
        return IndexSpace(names=(), sizes=())


# a scalar IndexSpace has ncomp == 1 via the empty product
class CellField:
    """A named per-cell field with ``space.ncomp`` components.

    Data layout is ``(ncomp, ncells)`` float64 C-order.  Scalar fields still
    carry a leading axis of length 1, so generated code is shape-uniform.
    """

    def __init__(
        self,
        name: str,
        space: IndexSpace,
        ncells: int,
        data: np.ndarray | None = None,
    ):
        self.name = name
        self.space = space
        self.ncells = int(ncells)
        shape = (max(space.ncomp, 1), self.ncells)
        if data is None:
            self.data = np.zeros(shape, dtype=np.float64)
        else:
            data = np.asarray(data, dtype=np.float64)
            if data.shape != shape:
                raise DSLError(
                    f"field {name!r}: data shape {data.shape} != expected {shape}"
                )
            self.data = np.ascontiguousarray(data)

    @property
    def ncomp(self) -> int:
        return self.data.shape[0]

    def component(self, *indices: int) -> np.ndarray:
        """View of one component's cell array (0-based indices)."""
        if not indices:
            return self.data[0]
        return self.data[self.space.flatten(indices)]

    def fill(self, value: float) -> None:
        self.data.fill(value)

    def copy(self) -> "CellField":
        return CellField(self.name, self.space, self.ncells, self.data.copy())

    def nbytes(self) -> int:
        return self.data.nbytes

    def __repr__(self) -> str:
        return f"CellField({self.name!r}, ncomp={self.ncomp}, ncells={self.ncells})"


__all__ = ["IndexSpace", "CellField"]
