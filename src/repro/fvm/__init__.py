"""Finite-volume machinery shared by generated solvers and the reference code.

* :class:`~repro.fvm.geometry.FVGeometry` — flat arrays + a sparse divergence
  operator derived from a :class:`~repro.mesh.Mesh`;
* :mod:`~repro.fvm.fields` — multi-component cell fields with index-space
  (direction x band) component bookkeeping;
* :mod:`~repro.fvm.kernels` — the vectorised face/cell kernels generated code
  calls into (upwind reconstruction, surface divergence, axpy updates);
* :mod:`~repro.fvm.boundary` — boundary-condition bookkeeping (ghost values,
  flux overrides, callback dispatch);
* :mod:`~repro.fvm.timesteppers` — explicit schemes (forward Euler, RK2, RK4).
"""

from repro.fvm.geometry import FVGeometry
from repro.fvm.fields import CellField, IndexSpace
from repro.fvm.boundary import BoundaryCondition, BoundarySet, BCKind
from repro.fvm.timesteppers import (
    TimeStepper,
    ForwardEuler,
    RK2,
    RK4,
    make_stepper,
)
from repro.fvm import kernels

__all__ = [
    "FVGeometry",
    "CellField",
    "IndexSpace",
    "BoundaryCondition",
    "BoundarySet",
    "BCKind",
    "TimeStepper",
    "ForwardEuler",
    "RK2",
    "RK4",
    "make_stepper",
    "kernels",
]
