"""Batched priority scheduling over a pool of simulated workers.

:class:`SchedulerCore` is deliberately **pure and synchronous**: plain
data structures, no asyncio, no clocks, no I/O.  The asyncio server owns
one instance and calls it only from the event loop (so no locking here);
the hypothesis property tests drive the same code deterministically with
random arrival orders and assert its invariants directly:

* FIFO within a priority class — batches pop from the head of one queue;
* quotas are never exceeded — ``next_batch`` only picks jobs whose
  primary tenant is below its ``max_running`` cap, counting the batch
  being assembled;
* bounded priority inversion — a batch is always taken from the
  highest-priority class with an *eligible* job, and running workers
  consult :meth:`should_yield` between batch items, so a high-priority
  job waits for at most the item in flight, never behind a freshly
  started lower-priority batch.

Workers are *simulated GPU slots*: placement and accounting are real,
execution happens on host threads like every other simulated device in
this codebase.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.serve.schema import PRIORITIES, PRIORITY_NAMES, JobRecord

if TYPE_CHECKING:
    from repro.serve.admission import TenantQuota


class Job:
    """One coalesced unit of work (1..N identical requests)."""

    def __init__(self, key: str, problem: Any, target: str,
                 priority: int, tenant: str, cache_key: str = ""):
        self.key = key
        self.cache_key = cache_key
        self.problem = problem
        self.target = target
        self.priority = int(priority)
        self.tenants: list[str] = [tenant]
        #: tenant of every coalesced request, duplicates included
        self.request_tenants: list[str] = [tenant]
        self.status = "queued"
        self.worker: int | None = None
        #: cooperative interrupt consumed by the in-solver hook:
        #: None | "preempt" (checkpoint + yield) | "kill" (worker lost)
        self.interrupt: str | None = None
        self.checkpoint: str | None = None
        self.steps_done = 0
        self.attempts = 0
        self.preemptions = 0
        self.resumes = 0
        self.wall_s = 0.0
        self.error: str | None = None
        self.error_code: str | None = None
        #: monotonically increasing dispatch order (set by mark_running)
        self.start_seq = -1
        #: result futures, one per coalesced request (server-owned)
        self.futures: list[Any] = []

    @property
    def primary_tenant(self) -> str:
        """The owner the running-cap is charged to: the first submitter."""
        return self.tenants[0]

    @property
    def requests(self) -> int:
        return len(self.request_tenants)

    def attach(self, tenant: str) -> None:
        """Coalesce one more identical request onto this job."""
        self.request_tenants.append(tenant)
        if tenant not in self.tenants:
            self.tenants.append(tenant)

    def record(self) -> JobRecord:
        return JobRecord(
            key=self.key, target=self.target, priority=self.priority,
            status=self.status, tenants=list(self.tenants),
            requests=self.requests, worker=self.worker,
            attempts=self.attempts, preemptions=self.preemptions,
            resumes=self.resumes, steps=self.steps_done,
            wall_s=self.wall_s, error=self.error, error_code=self.error_code,
        )

    def __repr__(self) -> str:
        return (f"Job({self.key[:8]}, prio={PRIORITY_NAMES[self.priority]}, "
                f"status={self.status}, requests={self.requests})")


class WorkerState:
    """One simulated GPU/rank slot."""

    def __init__(self, wid: int, kind: str = "gpu"):
        self.id = wid
        self.kind = kind
        self.alive = True
        self.job: Job | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "id": self.id, "kind": self.kind, "alive": self.alive,
            "job": self.job.key[:12] if self.job is not None else None,
        }


class SchedulerCore:
    """Pure scheduling state machine (see module docstring)."""

    def __init__(self, n_workers: int = 2, batch_max: int = 4,
                 preemption: bool = True,
                 quota_lookup: Callable[[str], "TenantQuota"] | None = None):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1 (got {n_workers})")
        self.batch_max = max(1, int(batch_max))
        self.preemption = bool(preemption)
        self.workers = [WorkerState(i) for i in range(n_workers)]
        self._queues: dict[int, deque[Job]] = {p: deque() for p in PRIORITY_NAMES}
        self._running: list[Job] = []
        self._running_by_tenant: dict[str, int] = {}
        self._dispatch_seq = 0
        if quota_lookup is None:
            from repro.serve.admission import TenantQuota

            default = TenantQuota()
            quota_lookup = lambda tenant: default  # noqa: E731
        self._quota = quota_lookup

    # ---------------------------------------------------------------- queries
    def depth(self, priority: int) -> int:
        return len(self._queues[priority])

    def queued_total(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def queued_jobs(self) -> list[Job]:
        return [job for p in sorted(self._queues) for job in self._queues[p]]

    def running_jobs(self) -> list[Job]:
        return list(self._running)

    def running_for(self, tenant: str) -> int:
        return self._running_by_tenant.get(tenant, 0)

    def idle_workers(self) -> list[WorkerState]:
        return [w for w in self.workers if w.alive and w.job is None]

    def alive_workers(self) -> int:
        return sum(1 for w in self.workers if w.alive)

    # ------------------------------------------------------------- transitions
    def enqueue(self, job: Job, *, front: bool = False) -> Job | None:
        """Queue ``job``; returns a preemption victim when one is warranted.

        A victim is only named for a high-priority arrival with no idle
        worker: the most recently dispatched running job of the *lowest*
        urgency strictly below the arrival's, not already interrupted.
        The caller (the server) delivers the interrupt; the core never
        touches running state here.
        """
        job.status = "queued"
        queue = self._queues[job.priority]
        if front:
            queue.appendleft(job)
        else:
            queue.append(job)
        if (not self.preemption or job.priority != PRIORITIES["high"]
                or self.idle_workers()):
            return None
        victims = [j for j in self._running
                   if j.priority > job.priority and j.interrupt is None]
        if not victims:
            return None
        victims.sort(key=lambda j: (-j.priority, -j.start_seq))
        return victims[0]

    def promote(self, job: Job, priority: int) -> bool:
        """Raise a queued job's class (coalesced duplicate arrived hotter)."""
        if priority >= job.priority or job.status != "queued":
            return False
        try:
            self._queues[job.priority].remove(job)
        except ValueError:
            return False
        job.priority = int(priority)
        self._queues[job.priority].append(job)
        return True

    def _eligible(self, job: Job, picked: list[Job]) -> bool:
        tenant = job.primary_tenant
        in_batch = sum(1 for j in picked if j.primary_tenant == tenant)
        cap = self._quota(tenant).max_running
        return self.running_for(tenant) + in_batch < cap

    def next_batch(self, worker: WorkerState) -> list[Job]:
        """Pop the next batch for ``worker``: up to ``batch_max`` jobs from
        the highest-priority class with an eligible job, FIFO, skipping
        (and keeping) jobs whose tenant is at its running cap."""
        if not worker.alive or worker.job is not None:
            return []
        for priority in sorted(self._queues):
            queue = self._queues[priority]
            if not queue:
                continue
            picked: list[Job] = []
            kept: list[Job] = []
            while queue and len(picked) < self.batch_max:
                job = queue.popleft()
                if self._eligible(job, picked):
                    picked.append(job)
                else:
                    kept.append(job)
            for job in reversed(kept):
                queue.appendleft(job)
            if picked:
                return picked
        return []

    def should_yield(self, priority: int) -> bool:
        """True when an *eligible* job of a strictly higher class waits —
        workers check this between batch items and requeue the remainder."""
        for higher in range(0, priority):
            for job in self._queues[higher]:
                if self._eligible(job, []):
                    return True
        return False

    def mark_running(self, job: Job, worker: WorkerState) -> None:
        job.status = "running"
        job.worker = worker.id
        job.attempts += 1
        job.start_seq = self._dispatch_seq
        self._dispatch_seq += 1
        worker.job = job
        self._running.append(job)
        tenant = job.primary_tenant
        self._running_by_tenant[tenant] = self.running_for(tenant) + 1

    def mark_stopped(self, job: Job) -> None:
        """Release the worker slot and the tenant's running share."""
        if job in self._running:
            self._running.remove(job)
            tenant = job.primary_tenant
            left = self.running_for(tenant) - 1
            if left > 0:
                self._running_by_tenant[tenant] = left
            else:
                self._running_by_tenant.pop(tenant, None)
        for worker in self.workers:
            if worker.job is job:
                worker.job = None
        job.worker = None

    def complete(self, job: Job) -> None:
        self.mark_stopped(job)
        job.status = "done"

    def fail(self, job: Job) -> None:
        self.mark_stopped(job)
        job.status = "failed"

    def fail_worker(self, wid: int) -> Job | None:
        """Kill a worker; returns its running job (to be interrupted)."""
        worker = self.workers[wid]
        worker.alive = False
        return worker.job

    # ----------------------------------------------------------------- export
    def as_dict(self) -> dict[str, Any]:
        return {
            "workers": [w.as_dict() for w in self.workers],
            "queues": {PRIORITY_NAMES[p]: len(q)
                       for p, q in sorted(self._queues.items())},
            "running": len(self._running),
            "batch_max": self.batch_max,
            "preemption": self.preemption,
        }


__all__ = ["Job", "SchedulerCore", "WorkerState"]
