"""Wire/status schema for the solver service (``repro.serve/1``).

The service speaks three content-addressed identities per request:

* **cache key** — the existing ``repro.cache/1`` signature
  (:func:`repro.tune.signature.request_key`): identifies the *compiled
  artifact* a request needs.  Shared across tenants; the compilation
  cache makes it warm capital.
* **binding digest** — a hash of everything the cache key deliberately
  excludes but the *answer* depends on: ``dt``, ``nsteps`` and the
  initial values.  Two requests with one cache key but different
  bindings share the artifact yet must not share a result.
* **job key** — ``sha256(cache_key | binding_digest)``: the dedup unit.
  Identical in-flight requests coalesce onto one job keyed by this.

The JSON status document (``GET /status``, ``service.status_doc()``)
carries ``"schema": "repro.serve/1"`` and is the machine-readable face of
the service: queues, counters, per-tenant state (with hashtree roots for
cheap change detection) and recent job records.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.util.errors import ConfigError

if TYPE_CHECKING:
    from repro.dsl.problem import Problem

#: schema tag of the status document
SCHEMA = "repro.serve/1"

#: priority classes, best first.  Smaller number = more urgent.
PRIORITIES: dict[str, int] = {"high": 0, "normal": 1, "batch": 2}
PRIORITY_NAMES: dict[int, str] = {v: k for k, v in PRIORITIES.items()}


def normalize_priority(priority: str | int) -> int:
    """Map a priority name or integer onto the scheduler's class index."""
    if isinstance(priority, str):
        try:
            return PRIORITIES[priority]
        except KeyError:
            raise ConfigError(
                f"unknown priority {priority!r} "
                f"(expected one of {sorted(PRIORITIES)})") from None
    value = int(priority)
    if value not in PRIORITY_NAMES:
        raise ConfigError(
            f"priority index {value} out of range (0=high..2=batch)")
    return value


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _hash_initial(value: Any) -> str:
    """Content hash of one initial-value entry.

    Arrays and scalars hash by content.  Callables cannot be content-
    addressed, so they hash by identity (module + qualname); the service
    documents that requests using distinct callable initializers with the
    same qualname should not rely on job dedup.
    """
    if callable(value):
        mod = getattr(value, "__module__", "?")
        qual = getattr(value, "__qualname__", repr(value))
        return _sha(f"callable:{mod}.{qual}".encode())
    arr = np.asarray(value)
    return _sha(arr.tobytes() + str(arr.shape).encode() + str(arr.dtype).encode())


def binding_digest(problem: "Problem") -> str:
    """Hash of the runtime binding the cache key excludes by design."""
    payload = {
        "dt": float(problem.config.dt),
        "nsteps": int(problem.config.nsteps),
        "initial": {name: _hash_initial(v)
                    for name, v in sorted(problem.initial_values.items())},
    }
    return _sha(json.dumps(payload, sort_keys=True).encode())


def job_key(problem: "Problem", target: str | None = None,
            cache_key: str | None = None) -> str:
    """The dedup key: cache key x runtime binding (see module docstring)."""
    from repro.tune.signature import request_key

    ck = cache_key if cache_key is not None else request_key(problem, target)
    return _sha(f"{ck}|{binding_digest(problem)}".encode())


@dataclass
class SolveRequest:
    """One admitted client request (pre-coalescing)."""

    problem: Any
    tenant: str = "default"
    priority: int = PRIORITIES["normal"]
    #: resolved codegen target name ('cpu', 'gpu', ...)
    target: str | None = None


@dataclass
class JobResult:
    """The shared outcome every coalesced requester receives.

    Dedup'd requests receive the *same object* (asserted by tests), so the
    payload is read-only by convention: ``u`` is a private copy of the
    solution, never the solver's live buffer.
    """

    key: str
    cache_key: str
    target: str
    u: np.ndarray
    time: float
    steps: int
    digest: str
    wall_s: float
    attempts: int = 1
    preemptions: int = 0
    #: True when served from the completed-result cache without running
    reused: bool = False
    #: extra named arrays (e.g. the BTE temperature field)
    aux: dict[str, np.ndarray] = field(default_factory=dict)

    @staticmethod
    def digest_of(u: np.ndarray, aux: dict[str, np.ndarray] | None = None) -> str:
        """Bit-exact content digest used for differential assertions and
        as the tenant hashtree leaf value."""
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(u).tobytes())
        for name in sorted(aux or {}):
            h.update(name.encode())
            h.update(np.ascontiguousarray(aux[name]).tobytes())
        return h.hexdigest()

    def summary(self) -> dict[str, Any]:
        return {
            "key": self.key[:12],
            "cache_key": self.cache_key[:12],
            "target": self.target,
            "steps": self.steps,
            "time": self.time,
            "digest": self.digest[:12],
            "wall_s": round(self.wall_s, 6),
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "reused": self.reused,
        }


@dataclass
class JobRecord:
    """One row of the status document's ``jobs`` table."""

    key: str
    target: str
    priority: int
    status: str
    tenants: list[str] = field(default_factory=list)
    requests: int = 0
    worker: int | None = None
    attempts: int = 0
    preemptions: int = 0
    resumes: int = 0
    steps: int = 0
    wall_s: float = 0.0
    error: str | None = None
    error_code: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "key": self.key[:12],
            "target": self.target,
            "priority": PRIORITY_NAMES.get(self.priority, self.priority),
            "status": self.status,
            "tenants": list(self.tenants),
            "requests": self.requests,
            "worker": self.worker,
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "resumes": self.resumes,
            "steps": self.steps,
            "wall_s": round(self.wall_s, 6),
            "error": self.error,
            "error_code": self.error_code,
        }


__all__ = [
    "SCHEMA",
    "PRIORITIES",
    "PRIORITY_NAMES",
    "JobRecord",
    "JobResult",
    "SolveRequest",
    "binding_digest",
    "job_key",
    "normalize_priority",
]
