"""Per-tenant state: usage accounting plus a content-hash tree.

The hashtree borrows the reconciliation idiom from multi-tenant cloud
controllers: each tenant keeps a flat map of *leaves* (job key -> result
digest) and a *root* digest over the sorted leaves.  Comparing roots is an
O(1) answer to "did anything this tenant computed change?" — a client can
poll the status document and re-fetch only when its root moves, and the
service reuses a completed result (``reused=True``) whenever the leaf it
would recompute is already present with the same key.
"""

from __future__ import annotations

import hashlib
from typing import Any


class HashTree:
    """Flat content-hash tree: leaf map + lazily recomputed root digest."""

    def __init__(self) -> None:
        self._leaves: dict[str, str] = {}
        self._root: str | None = None

    def update(self, leaf: str, digest: str) -> bool:
        """Set one leaf; returns True when the tree (hence root) changed."""
        if self._leaves.get(leaf) == digest:
            return False
        self._leaves[leaf] = digest
        self._root = None
        return True

    def get(self, leaf: str) -> str | None:
        return self._leaves.get(leaf)

    @property
    def root(self) -> str:
        if self._root is None:
            h = hashlib.sha256()
            for leaf in sorted(self._leaves):
                h.update(leaf.encode())
                h.update(self._leaves[leaf].encode())
            self._root = h.hexdigest()
        return self._root

    def __len__(self) -> int:
        return len(self._leaves)

    def as_dict(self) -> dict[str, Any]:
        return {"root": self.root[:16], "leaves": len(self._leaves)}


class TenantState:
    """Everything the service tracks about one tenant."""

    def __init__(self, name: str):
        self.name = name
        self.submitted = 0
        self.deduped = 0
        self.reused = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        #: requests currently inside the service (queued/running/undelivered)
        self.inflight = 0
        self.tree = HashTree()

    def as_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "deduped": self.deduped,
            "reused": self.reused,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "inflight": self.inflight,
            "hashtree": self.tree.as_dict(),
        }


__all__ = ["HashTree", "TenantState"]
