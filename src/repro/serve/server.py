"""The asyncio solver service.

One :class:`SolverService` owns:

* an :class:`~repro.serve.admission.AdmissionController` (bounded queue +
  per-tenant quotas, typed RPR900/RPR901 rejections);
* a :class:`~repro.serve.scheduler.SchedulerCore` and one asyncio worker
  task per simulated GPU slot — solves execute on a thread pool so the
  event loop stays responsive;
* the in-flight job table keyed by :func:`repro.serve.schema.job_key`
  (identical requests coalesce onto one job and one result object) and a
  completed-result cache backed by per-tenant hashtrees;
* preemption/worker-failure handling on top of the resilience layer: a
  cooperative post-step hook checkpoints the running solve and yields the
  worker; the job resumes from that ``repro.checkpoint/1`` file on the
  next free worker, bit-identically (differentially tested);
* a ``/metrics`` + ``/status`` + ``/healthz`` HTTP endpoint (optional)
  and the ``repro.serve/1`` status document.

Threading contract: all scheduler/tenant/admission state is touched only
from the service's event loop.  Client threads enter through
``asyncio.run_coroutine_threadsafe`` (see :mod:`repro.serve.client`);
solver execution happens in executor threads but its results are handled
back on the loop.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.serve.admission import AdmissionController, TenantQuota
from repro.serve.scheduler import Job, SchedulerCore, WorkerState
from repro.serve.schema import (
    PRIORITY_NAMES,
    SCHEMA,
    JobRecord,
    JobResult,
    job_key,
    normalize_priority,
)
from repro.serve.tenants import TenantState
from repro.util.errors import AdmissionError, JobFailedError, ServeError
from repro.util.logging import get_logger

if TYPE_CHECKING:
    from repro.dsl.problem import Problem

logger = get_logger("serve")


class _PreemptedSignal(Exception):
    """Internal: the in-solver hook checkpointed and yielded the worker."""

    def __init__(self, path: str, step: int):
        self.path = path
        self.step = step
        super().__init__(f"preempted at step {step}")


class _WorkerLostSignal(Exception):
    """Internal: the in-solver hook observed its worker's simulated death."""

    def __init__(self, step: int):
        self.step = step
        super().__init__(f"worker lost at step {step}")


@dataclass
class ServiceConfig:
    """Knobs for one :class:`SolverService` instance."""

    #: simulated GPU/rank worker slots (also the executor thread count)
    workers: int = 2
    #: service-wide bounded queue (backpressure past this)
    queue_max: int = 64
    #: max same-priority jobs dispatched to a worker at once
    batch_max: int = 4
    #: default per-tenant quota (overridable per tenant via ``quotas``)
    max_inflight: int = 8
    max_running: int = 2
    quotas: dict[str, TenantQuota] = field(default_factory=dict)
    #: allow high-priority arrivals to checkpoint-preempt running jobs
    preemption: bool = True
    #: serve repeat requests from the completed-result cache
    reuse_results: bool = True
    #: periodic checkpoint cadence for served jobs (0 = only on preempt)
    checkpoint_every: int = 0
    #: checkpoint root (default: a private temporary directory)
    checkpoint_dir: str | None = None
    #: attempts per job before it fails with RPR902 (worker loss retries)
    max_attempts: int = 3
    host: str = "127.0.0.1"
    #: HTTP endpoint port: None disables it, 0 picks an ephemeral port
    port: int | None = None


class SolverService:
    """Multi-tenant solver-as-a-service (see module docstring)."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.admission = AdmissionController(
            queue_max=self.config.queue_max,
            default_quota=TenantQuota(self.config.max_inflight,
                                      self.config.max_running),
            quotas=self.config.quotas,
        )
        self.core = SchedulerCore(
            n_workers=self.config.workers,
            batch_max=self.config.batch_max,
            preemption=self.config.preemption,
            quota_lookup=self.admission.quota_for,
        )
        self.tenants: dict[str, TenantState] = {}
        self.counters: dict[str, int] = {
            "requests": 0, "deduped": 0, "results_reused": 0,
            "completed": 0, "failed": 0, "rejected": 0,
            "preemptions": 0, "resumes": 0, "worker_failures": 0,
        }
        self._inflight: dict[str, Job] = {}
        self._results: dict[str, JobResult] = {}
        self._records: list[JobRecord] = []
        self._active = False
        self._held = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._cond: asyncio.Condition | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._executor = None
        self._http_server: asyncio.AbstractServer | None = None
        self.http_port: int | None = None
        self._thread: threading.Thread | None = None
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._ckpt_root: Path | None = None
        self._owned_metrics = None
        self._prev_metrics = None
        self._started_at: float | None = None

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> "SolverService":
        if self._active:
            raise ServeError("service already running")
        from concurrent.futures import ThreadPoolExecutor

        from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics

        self._loop = asyncio.get_running_loop()
        self._cond = asyncio.Condition()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve-worker")
        if self.config.checkpoint_dir:
            self._ckpt_root = Path(self.config.checkpoint_dir)
            self._ckpt_root.mkdir(parents=True, exist_ok=True)
        else:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            self._ckpt_root = Path(self._tmpdir.name)
        if not get_metrics().enabled:
            # the endpoint needs a live registry even when the host process
            # did not install one; restored on stop()
            self._owned_metrics = MetricsRegistry()
            self._prev_metrics = set_metrics(self._owned_metrics)
        self._active = True
        self._started_at = time.perf_counter()
        self._worker_tasks = [
            asyncio.ensure_future(self._worker_loop(w))
            for w in self.core.workers
        ]
        if self.config.port is not None:
            self._http_server = await asyncio.start_server(
                self._handle_http, self.config.host, self.config.port)
            self.http_port = self._http_server.sockets[0].getsockname()[1]
        self._event("serve.started", workers=self.config.workers,
                    queue_max=self.config.queue_max, port=self.http_port)
        logger.info("solver service started (%d workers, http=%s)",
                    self.config.workers, self.http_port)
        return self

    async def stop(self) -> None:
        if not self._active:
            return
        self._active = False
        async with self._cond:
            self._cond.notify_all()
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
            self._http_server = None
        for task in self._worker_tasks:
            await task
        self._worker_tasks = []
        # whatever is still queued will never run: fail its requesters
        for job in list(self._inflight.values()):
            if job.status in ("queued", "preempted"):
                exc = ServeError(
                    f"service stopped before job {job.key[:12]} ran")
                self._deliver_failure(job, exc, code="RPR903")
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        from repro.obs.metrics import set_metrics

        if self._owned_metrics is not None:
            set_metrics(self._prev_metrics)
            self._owned_metrics = None
            self._prev_metrics = None
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
        self._event("serve.stopped")
        logger.info("solver service stopped")

    def start_in_thread(self) -> "SolverService":
        """Run the service on a dedicated event-loop thread (sync callers)."""
        if self._thread is not None:
            raise ServeError("service thread already running")
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._thread = threading.Thread(
            target=loop.run_forever, name="repro-serve-loop", daemon=True)
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self.start(), loop).result(timeout=30)
        return self

    def stop_in_thread(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        asyncio.run_coroutine_threadsafe(self.stop(), loop).result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
        self._thread = None

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise ServeError("service not started")
        return self._loop

    @property
    def client(self):
        from repro.serve.client import Client

        return Client(self)

    # ------------------------------------------------------------- submission
    async def submit(self, problem: "Problem", *, tenant: str = "default",
                     priority: str | int = "normal",
                     target: str | None = None) -> asyncio.Future:
        """Admit one request; returns a future resolving to a
        :class:`~repro.serve.schema.JobResult` (coalesced requests resolve
        to the *same* object).  Raises ``AdmissionError``/
        ``QuotaExceededError`` on reject."""
        if not self._active:
            raise ServeError("service is not running", code="RPR903")
        prio = normalize_priority(priority)
        resolved = problem.resolve_target(target)
        from repro.tune.signature import cache_key

        ck = cache_key(problem, resolved)
        key = job_key(problem, resolved, cache_key=ck)
        state = self._tenant(tenant)
        state.submitted += 1
        self.counters["requests"] += 1
        self._metric("serve_requests_total", "requests received",
                     tenant=tenant, priority=PRIORITY_NAMES[prio])
        self._event("serve.request", tenant=tenant, key=key[:12],
                    priority=PRIORITY_NAMES[prio], target=resolved,
                    trace_id=key[:16])
        # 1. completed-result cache: the cheapest possible answer
        if self.config.reuse_results and key in self._results:
            result = self._results[key]
            state.reused += 1
            state.tree.update(key, result.digest)
            self.counters["results_reused"] += 1
            self._metric("serve_dedup_total", "requests served without a "
                         "new solve", kind="result", tenant=tenant)
            fut = self.loop.create_future()
            fut.set_result(result)
            return fut
        # 2. admission: queue backpressure only applies when a new job
        #    would enter the queue — coalescing adds no queue entry
        existing = self._inflight.get(key)
        try:
            self.admission.admit(
                tenant,
                queued_total=self.core.queued_total() if existing is None else 0,
                tenant_inflight=state.inflight)
        except AdmissionError:
            state.rejected += 1
            self.counters["rejected"] += 1
            raise
        fut = self.loop.create_future()
        state.inflight += 1
        # 3. in-flight dedup: identical request -> same job, same result
        if existing is not None:
            existing.attach(tenant)
            existing.futures.append(fut)
            state.deduped += 1
            self.counters["deduped"] += 1
            self._metric("serve_dedup_total", "requests served without a "
                         "new solve", kind="inflight", tenant=tenant)
            if self.core.promote(existing, prio):
                self._event("serve.promote", key=key[:12],
                            priority=PRIORITY_NAMES[existing.priority])
            self._event("serve.dedup", tenant=tenant, key=key[:12],
                        requests=existing.requests, trace_id=key[:16])
            await self._wake()
            return fut
        # 4. a genuinely new job
        job = Job(key, problem, resolved, prio, tenant, cache_key=ck)
        job.futures.append(fut)
        problem.add_post_step(self._interrupt_hook(job), name="serve_interrupt")
        self._inflight[key] = job
        victim = self.core.enqueue(job)
        if victim is not None:
            victim.interrupt = "preempt"
            self._event("serve.preempt_request", key=victim.key[:12],
                        for_key=key[:12])
        self._event("serve.enqueue", tenant=tenant, key=key[:12],
                    priority=PRIORITY_NAMES[prio], trace_id=key[:16])
        self._gauges()
        await self._wake()
        return fut

    async def solve(self, problem: "Problem", **kwargs: Any) -> JobResult:
        """Submit and await in one call (for in-loop/async callers)."""
        return await (await self.submit(problem, **kwargs))

    # -------------------------------------------------------------- operations
    async def fail_worker(self, wid: int) -> None:
        """Simulate losing a worker; its running job retries elsewhere."""
        job = self.core.fail_worker(wid)
        self.counters["worker_failures"] += 1
        self._metric("serve_worker_failures_total", "simulated worker losses")
        self._event("serve.worker_failed", worker=wid,
                    job=job.key[:12] if job else None)
        if job is not None:
            job.interrupt = "kill"
        self._gauges()
        await self._wake()

    async def preempt(self, key: str | None = None) -> str | None:
        """Ask a running job (the given key, or any) to checkpoint + yield."""
        for job in self.core.running_jobs():
            if key is None or job.key.startswith(key):
                job.interrupt = "preempt"
                return job.key
        return None

    async def hold_workers(self) -> None:
        """Pause dispatch (running jobs finish; queued jobs wait).

        Lets tests and demos line up a burst of concurrent requests before
        any of them runs, making coalescing deterministic."""
        self._held = True

    async def release_workers(self) -> None:
        self._held = False
        await self._wake()

    # ------------------------------------------------------------ worker loop
    async def _worker_loop(self, worker: WorkerState) -> None:
        core = self.core
        while self._active and worker.alive:
            batch = [] if self._held else core.next_batch(worker)
            if not batch:
                async with self._cond:
                    if self._active and worker.alive and (
                            self._held or not core.queued_total()):
                        await self._cond.wait()
                continue
            self._event("serve.dispatch", worker=worker.id,
                        batch=[j.key[:12] for j in batch],
                        priority=PRIORITY_NAMES[batch[0].priority])
            for idx, job in enumerate(batch):
                await self._run_job(worker, job)
                rest = batch[idx + 1:]
                if not rest:
                    break
                if not self._active or not worker.alive or \
                        core.should_yield(rest[0].priority):
                    # yield the remainder: back to the head of their class
                    for j in reversed(rest):
                        core.enqueue(j, front=True)
                    await self._wake()
                    break

    async def _run_job(self, worker: WorkerState, job: Job) -> None:
        core = self.core
        core.mark_running(job, worker)
        self._gauges()
        t0 = time.perf_counter()
        try:
            result = await self.loop.run_in_executor(
                self._executor, self._execute_job, job)
        except _PreemptedSignal as sig:
            core.mark_stopped(job)
            job.status = "preempted"
            job.interrupt = None
            job.checkpoint = sig.path
            job.steps_done = sig.step
            job.preemptions += 1
            job.wall_s += time.perf_counter() - t0
            self.counters["preemptions"] += 1
            self._metric("serve_preemptions_total", "jobs preempted")
            from repro.runtime.resilience import get_resilience_log

            get_resilience_log().record_preemption(
                job.key[:12], sig.step, tenant=job.primary_tenant)
            core.enqueue(job, front=True)
            self._event("serve.preempted", key=job.key[:12], step=sig.step,
                        worker=worker.id, checkpoint=sig.path)
        except _WorkerLostSignal as sig:
            core.mark_stopped(job)
            job.interrupt = None
            job.steps_done = sig.step
            job.wall_s += time.perf_counter() - t0
            self._event("serve.job_interrupted", key=job.key[:12],
                        step=sig.step, worker=worker.id,
                        attempts=job.attempts)
            if job.attempts >= self.config.max_attempts:
                exc = JobFailedError(
                    f"job {job.key[:12]} lost its worker "
                    f"{job.attempts} times (max_attempts reached)")
                core.fail(job)
                self._deliver_failure(job, exc, code="RPR902")
            else:
                # retry from the latest checkpoint (if any) elsewhere
                core.enqueue(job, front=True)
        except Exception as exc:  # the solve itself failed
            core.fail(job)
            job.wall_s += time.perf_counter() - t0
            self._deliver_failure(job, exc, code="RPR902")
        else:
            core.complete(job)
            job.wall_s += time.perf_counter() - t0
            self._deliver_result(job, result)
        finally:
            self._records.append(job.record())
            del self._records[:-100]
            self._gauges()
            await self._wake()

    # ------------------------------------------------------------- execution
    def _execute_job(self, job: Job) -> JobResult:
        """Runs on an executor thread: generate (cache-warm), maybe resume,
        run the remaining steps and package the shared result."""
        from repro.obs import phase_span

        t0 = time.perf_counter()
        problem = job.problem
        extra = problem.extra
        extra["checkpoint_dir"] = str(self._ckpt_root)
        # satellite fix: per-job namespace so concurrent jobs sharing the
        # service checkpoint root can never clobber each other's files
        extra["checkpoint_namespace"] = job.key[:16]
        if self.config.checkpoint_every:
            extra["checkpoint_every"] = self.config.checkpoint_every
        if job.checkpoint:
            extra["restore_from"] = job.checkpoint
        else:
            extra.pop("restore_from", None)
        if job.cache_key:
            # the request was content-addressed at submit time; hand the
            # key to codegen so the warm path skips re-hashing the problem
            extra["_cache_key_hint"] = (job.target, job.cache_key)
        with phase_span(f"serve_job[{job.key[:8]}]", cat="serve",
                        tenant=job.primary_tenant, attempt=job.attempts):
            solver = problem.generate(job.target)
            state = solver.state
            if job.checkpoint:
                job.resumes += 1
                self.counters["resumes"] += 1
                self._metric("serve_resumes_total",
                             "jobs resumed from checkpoint")
                from repro.runtime.resilience import get_resilience_log

                get_resilience_log().record_resume(
                    job.key[:12], state.step_index, tenant=job.primary_tenant)
            remaining = state.nsteps - state.step_index
            if remaining > 0:
                solver.run(remaining)
        u = solver.solution()
        unknown = state.unknown.name
        aux = {name: fld.data.copy() for name, fld in state.fields.items()
               if name != unknown}
        digest = JobResult.digest_of(u, aux)
        job.steps_done = state.step_index
        self._metric_hist("serve_job_wall_seconds",
                          "wall seconds per served job attempt",
                          time.perf_counter() - t0)
        return JobResult(
            key=job.key, cache_key=job.cache_key, target=job.target,
            u=u, time=state.time, steps=state.step_index, digest=digest,
            wall_s=time.perf_counter() - t0, attempts=job.attempts,
            preemptions=job.preemptions, aux=aux,
        )

    def _interrupt_hook(self, job: Job):
        """The cooperative preempt/kill hook, run after every step.

        Deliberately a *post-step callback*: callbacks are excluded from
        the ``repro.cache/1`` signature and bound per-solve, so attaching
        one never perturbs artifact caching or dedup keys.
        """

        def serve_interrupt(state) -> None:
            flag = job.interrupt
            if flag is None:
                return
            if flag == "preempt":
                from repro.runtime.resilience import checkpoint_path

                directory = Path(state.checkpoint_dir or ".")
                directory.mkdir(parents=True, exist_ok=True)
                path = checkpoint_path(directory, state.step_index)
                state.save_checkpoint(path)
                from repro.runtime.resilience import get_resilience_log

                get_resilience_log().record_checkpoint(
                    path, reason="preempt")
                raise _PreemptedSignal(str(path), state.step_index)
            raise _WorkerLostSignal(state.step_index)

        return serve_interrupt

    # --------------------------------------------------------------- delivery
    def _deliver_result(self, job: Job, result: JobResult) -> None:
        if self.config.reuse_results:
            self._results[job.key] = result
        self._inflight.pop(job.key, None)
        self.counters["completed"] += 1
        self._metric("serve_jobs_total", "job outcomes", status="done")
        for tenant in job.request_tenants:
            state = self._tenant(tenant)
            state.inflight = max(0, state.inflight - 1)
            state.completed += 1
            state.tree.update(job.key, result.digest)
        for fut in job.futures:
            if not fut.done():
                fut.set_result(result)
        self._event("serve.complete", key=job.key[:12], steps=result.steps,
                    requests=job.requests, digest=result.digest[:12],
                    wall_s=round(job.wall_s, 6), trace_id=job.key[:16])

    def _deliver_failure(self, job: Job, exc: BaseException,
                         code: str | None = None) -> None:
        job.error = repr(exc)
        job.error_code = getattr(exc, "code", None) or code
        self._inflight.pop(job.key, None)
        self.counters["failed"] += 1
        self._metric("serve_jobs_total", "job outcomes", status="failed")
        for tenant in job.request_tenants:
            state = self._tenant(tenant)
            state.inflight = max(0, state.inflight - 1)
            state.failed += 1
        for fut in job.futures:
            if not fut.done():
                fut.set_exception(exc)
        self._event("serve.failed", level="error", key=job.key[:12],
                    error=repr(exc), code=job.error_code,
                    trace_id=job.key[:16])

    # ------------------------------------------------------------------ status
    def status_doc(self) -> dict[str, Any]:
        """The ``repro.serve/1`` JSON status document."""
        from repro.tune.cache import get_cache

        sched = self.core.as_dict()
        live = [j.record().as_dict()
                for j in self.core.queued_jobs() + self.core.running_jobs()]
        return {
            "schema": SCHEMA,
            "service": {
                "active": self._active,
                "workers": len(self.core.workers),
                "workers_alive": self.core.alive_workers(),
                "batch_max": self.core.batch_max,
                "preemption": self.core.preemption,
                "http_port": self.http_port,
                "uptime_s": (round(time.perf_counter() - self._started_at, 3)
                             if self._started_at is not None else None),
            },
            "queues": sched["queues"],
            "workers": sched["workers"],
            "counters": dict(self.counters),
            "admission": self.admission.as_dict(),
            "cache": get_cache().stats.as_dict(),
            "tenants": {name: state.as_dict()
                        for name, state in sorted(self.tenants.items())},
            "jobs": live + [r.as_dict() for r in self._records[-50:]],
        }

    # -------------------------------------------------------------- http layer
    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.split()
            path = parts[1].decode("ascii", "replace") if len(parts) >= 2 else "/"
            status, ctype, body = self._route(path)
            payload = body.encode()
            writer.write(
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n".encode() + payload)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    def _route(self, path: str) -> tuple[str, str, str]:
        from repro.obs.metrics import get_metrics

        if path == "/metrics":
            metrics = get_metrics()
            # refresh the queue/worker gauges so an idle service still
            # exports its state (they are otherwise only touched on job
            # events)
            self._gauges()
            text = metrics.to_text() if metrics.enabled else ""
            return "200 OK", "text/plain; version=0.0.4", text
        if path == "/status":
            return ("200 OK", "application/json",
                    json.dumps(self.status_doc(), indent=1))
        if path == "/healthz":
            return "200 OK", "text/plain", "ok\n"
        return "404 Not Found", "text/plain", f"no route {path}\n"

    # ----------------------------------------------------------------- helpers
    def _tenant(self, name: str) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            state = self.tenants[name] = TenantState(name)
        return state

    async def _wake(self) -> None:
        async with self._cond:
            self._cond.notify_all()

    def _gauges(self) -> None:
        from repro.obs.metrics import get_metrics

        metrics = get_metrics()
        if not metrics.enabled:
            return
        for priority, depth in self.core.as_dict()["queues"].items():
            metrics.gauge("serve_queue_depth", "queued jobs per priority "
                          "class").set(depth, priority=priority)
        metrics.gauge("serve_busy_workers", "workers with a running job").set(
            sum(1 for w in self.core.workers if w.job is not None))
        metrics.gauge("serve_workers_alive", "live worker slots").set(
            self.core.alive_workers())
        metrics.gauge("serve_inflight_jobs", "jobs queued or running").set(
            len(self._inflight))

    @staticmethod
    def _metric(name: str, help: str, **labels: Any) -> None:
        from repro.obs.metrics import get_metrics

        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(name, help).inc(1, **labels)

    @staticmethod
    def _metric_hist(name: str, help: str, value: float) -> None:
        from repro.obs.metrics import get_metrics

        metrics = get_metrics()
        if metrics.enabled:
            metrics.histogram(name, help).observe(value)

    @staticmethod
    def _event(name: str, level: str = "info", **fields: Any) -> None:
        from repro.obs.log import get_event_log

        elog = get_event_log()
        if elog.enabled:
            trace_id = fields.pop("trace_id", None)
            elog.emit(name, level, trace_id=trace_id, **fields)


@contextmanager
def serve_session(config: ServiceConfig | None = None, **overrides: Any):
    """Start a service on its own loop thread for the ``with`` body::

        with serve_session(workers=2, queue_max=8) as service:
            result = service.client.solve(problem, tenant="t0")
    """
    service = SolverService(config or ServiceConfig(**overrides))
    service.start_in_thread()
    try:
        yield service
    finally:
        service.stop_in_thread()


__all__ = ["ServiceConfig", "SolverService", "serve_session"]
