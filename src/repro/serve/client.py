"""In-process client for the solver service.

The service runs its own event loop (usually on a dedicated thread, see
``SolverService.start_in_thread`` / ``serve_session``); the client gives
synchronous code a threadsafe door into it.  ``submit`` returns a
:class:`Ticket` immediately — admission rejections and job failures
surface, typed, from ``Ticket.result()`` — and ``solve`` is the blocking
one-call form.  Coalesced requests resolve to the *same*
:class:`~repro.serve.schema.JobResult` object across tickets and tenants.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from typing import TYPE_CHECKING, Any

from repro.serve.schema import JobResult
from repro.util.errors import ServeError

if TYPE_CHECKING:
    from repro.dsl.problem import Problem
    from repro.serve.server import SolverService


class Ticket:
    """A pending request: a threadsafe handle on the job's outcome."""

    def __init__(self, future: concurrent.futures.Future):
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = 120.0) -> JobResult:
        """The shared job result; raises the job's typed error on failure."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = 120.0) -> BaseException | None:
        return self._future.exception(timeout)


class Client:
    """Threadsafe, synchronous facade over one :class:`SolverService`."""

    def __init__(self, service: "SolverService"):
        self._service = service

    def submit(self, problem: "Problem", *, tenant: str = "default",
               priority: str | int = "normal",
               target: str | None = None) -> Ticket:
        """Enqueue without blocking; returns a :class:`Ticket`."""
        service = self._service

        async def _submit_and_wait() -> JobResult:
            fut = await service.submit(
                problem, tenant=tenant, priority=priority, target=target)
            return await fut

        try:
            loop = service.loop
        except ServeError:
            raise
        cfut = asyncio.run_coroutine_threadsafe(_submit_and_wait(), loop)
        return Ticket(cfut)

    def solve(self, problem: "Problem", *, tenant: str = "default",
              priority: str | int = "normal", target: str | None = None,
              timeout: float | None = 120.0) -> JobResult:
        """Submit and block until the shared result is ready."""
        return self.submit(problem, tenant=tenant, priority=priority,
                           target=target).result(timeout)

    def status(self) -> dict[str, Any]:
        """A point-in-time ``repro.serve/1`` status document (loop-safe)."""
        service = self._service

        async def _status() -> dict[str, Any]:
            return service.status_doc()

        return asyncio.run_coroutine_threadsafe(
            _status(), service.loop).result(30)

    # -------------------------------------------------- operational controls
    def hold(self) -> None:
        """Pause dispatch so a burst of submits coalesces deterministically."""
        self._call(self._service.hold_workers())

    def release(self) -> None:
        self._call(self._service.release_workers())

    def fail_worker(self, wid: int) -> None:
        """Simulate losing worker ``wid`` (its job resumes elsewhere)."""
        self._call(self._service.fail_worker(wid))

    def preempt(self, key: str | None = None) -> str | None:
        """Checkpoint-preempt a running job; returns its key (or None)."""
        return self._call(self._service.preempt(key))

    def _call(self, coro) -> Any:
        return asyncio.run_coroutine_threadsafe(
            coro, self._service.loop).result(30)


__all__ = ["Client", "Ticket"]
