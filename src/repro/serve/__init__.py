"""Multi-tenant solver-as-a-service (``bte serve``).

A long-running asyncio job service over the existing platform layers:
requests are keyed by the ``repro.cache/1`` problem signature so identical
in-flight requests coalesce onto one job (dedup) and warm compiled
artifacts are shared across tenants; a batched priority scheduler places
admitted jobs onto simulated GPU workers under per-tenant quotas with
bounded-queue backpressure (typed RPR900/RPR901 rejections); preemption
and worker failure checkpoint/resume through the resilience layer; and
the metrics registry backs a live ``/metrics`` endpoint plus the
``repro.serve/1`` status document.

Entry points: :func:`~repro.serve.server.serve_session` (context manager),
:class:`~repro.serve.server.SolverService` (asyncio) and
:class:`~repro.serve.client.Client` (sync facade).
"""

from repro.serve.admission import AdmissionController, TenantQuota
from repro.serve.client import Client, Ticket
from repro.serve.scheduler import Job, SchedulerCore, WorkerState
from repro.serve.schema import (
    PRIORITIES,
    SCHEMA,
    JobRecord,
    JobResult,
    SolveRequest,
    binding_digest,
    job_key,
    normalize_priority,
)
from repro.serve.server import ServiceConfig, SolverService, serve_session
from repro.serve.tenants import HashTree, TenantState

__all__ = [
    "AdmissionController",
    "Client",
    "HashTree",
    "Job",
    "JobRecord",
    "JobResult",
    "PRIORITIES",
    "SCHEMA",
    "SchedulerCore",
    "ServiceConfig",
    "SolveRequest",
    "SolverService",
    "TenantQuota",
    "TenantState",
    "Ticket",
    "WorkerState",
    "binding_digest",
    "job_key",
    "normalize_priority",
    "serve_session",
]
