"""Admission control: bounded queues (backpressure) and per-tenant quotas.

Admission runs *before* a request touches the scheduler, on the service's
event loop, so its decisions are serialized and its counters exact.  Two
reject causes, each a typed :class:`~repro.util.errors.ReproError` with a
stable RPR code:

* ``RPR900`` :class:`~repro.util.errors.AdmissionError` — the service-wide
  bounded queue is full.  This is load shedding: the client should back
  off; *every* tenant sees it under global overload.
* ``RPR901`` :class:`~repro.util.errors.QuotaExceededError` — this tenant
  alone is over its in-flight cap.  Other tenants are unaffected; that is
  the isolation guarantee multi-tenancy needs.

Rejections are counted per tenant and per code in metrics
(``serve_rejections_total``), mirrored into the event log and surfaced in
the ``repro.serve/1`` status document.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.util.errors import AdmissionError, QuotaExceededError


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    ``max_inflight`` bounds requests a tenant may have anywhere in the
    service (queued + running + awaiting delivery); ``max_running``
    bounds how many of its *jobs* may occupy workers at once (enforced by
    the scheduler's eligibility check, not at admission).
    """

    max_inflight: int = 8
    max_running: int = 2


class AdmissionController:
    """Decide admit/reject for one request; account for every rejection."""

    def __init__(self, queue_max: int = 64,
                 default_quota: TenantQuota | None = None,
                 quotas: dict[str, TenantQuota] | None = None):
        self.queue_max = int(queue_max)
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        #: (code, tenant) -> count
        self.rejections: dict[tuple[str, str], int] = {}
        #: bounded recent-rejection ring for the status doc
        self.recent: list[dict[str, Any]] = []

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def admit(self, tenant: str, *, queued_total: int,
              tenant_inflight: int) -> None:
        """Raise the typed rejection, or return silently on admit."""
        if queued_total >= self.queue_max:
            self._reject(
                AdmissionError(
                    f"service queue full ({queued_total}/{self.queue_max}); "
                    "retry with backoff", tenant=tenant),
                tenant)
        quota = self.quota_for(tenant)
        if tenant_inflight >= quota.max_inflight:
            self._reject(
                QuotaExceededError(
                    f"tenant {tenant!r} at its in-flight cap "
                    f"({tenant_inflight}/{quota.max_inflight})", tenant=tenant),
                tenant)

    def _reject(self, exc: AdmissionError, tenant: str) -> None:
        code = exc.code
        self.rejections[(code, tenant)] = self.rejections.get((code, tenant), 0) + 1
        self.recent.append({"code": code, "tenant": tenant, "reason": str(exc)})
        del self.recent[:-50]
        from repro.obs.log import get_event_log
        from repro.obs.metrics import get_metrics

        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "serve_rejections_total",
                "requests rejected at admission",
            ).inc(1, code=code, tenant=tenant)
        elog = get_event_log()
        if elog.enabled:
            elog.emit("serve.reject", level="warning", code=code,
                      tenant=tenant, reason=str(exc))
        raise exc

    # ------------------------------------------------------------------ export
    def rejected_total(self, code: str | None = None) -> int:
        return sum(n for (c, _t), n in self.rejections.items()
                   if code is None or c == code)

    def as_dict(self) -> dict[str, Any]:
        by_code: dict[str, int] = {}
        for (code, _tenant), n in self.rejections.items():
            by_code[code] = by_code.get(code, 0) + n
        return {
            "queue_max": self.queue_max,
            "default_quota": {
                "max_inflight": self.default_quota.max_inflight,
                "max_running": self.default_quota.max_running,
            },
            "rejected_total": self.rejected_total(),
            "rejected_by_code": by_code,
            "recent_rejections": list(self.recent[-10:]),
        }


__all__ = ["AdmissionController", "TenantQuota"]
