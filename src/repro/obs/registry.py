"""The persistent cross-run performance registry (``repro.runs/1``).

Every recorded solve/bench run appends one JSON entry — the run report, the
``repro.profile/1`` document and/or the bench envelope — under a
content-addressed directory keyed by the *problem key* (the tuning-key
digest from :func:`repro.obs.profile.problem_key`, so tuned or
fault-injected variants of the same problem share one timeline)::

    <root>/<key[:2]>/<key>/run-000001.json    # "repro.runs/1" entry
    <root>/<key[:2]>/<key>/run-000002.json
    ...

The layout deliberately mirrors :class:`repro.tune.cache.CompilationCache`
(two-level fan-out, corrupt entries tolerated as warnings) so one
``--cache-dir``-style root can hold both.  ``bte history`` reads the
timeline back, ``bte compare`` diffs two entries, and ``bte history --gc``
prunes old entries so long-lived checkouts don't grow unboundedly.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Any, Iterator

from repro.util.errors import ReproError

logger = logging.getLogger(__name__)

SCHEMA = "repro.runs/1"

#: Default registry root (under the working directory, like ``.repro-cache``).
DEFAULT_ROOT = ".repro-runs"

#: ``bte history --gc`` default: newest entries kept per problem key.
DEFAULT_KEEP_LAST = 20


class RegistryError(ReproError):
    """Malformed run-registry entry or unusable registry root."""

    default_code = "RPR801"


class RunRegistry:
    """Append-only store of run entries, content-addressed by problem key."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else Path(DEFAULT_ROOT)

    # ---------------------------------------------------------------- layout
    def _key_dir(self, key: str) -> Path:
        if not key or any(c in key for c in "/\\"):
            raise RegistryError(f"invalid registry key {key!r}")
        return self.root / key[:2] / key

    # ---------------------------------------------------------------- append
    def append(self, key: str, *, report: dict | None = None,
               profile: dict | None = None, bench: dict | None = None,
               meta: dict | None = None) -> Path:
        """Record one run under ``key``; returns the entry path."""
        if report is None and profile is None and bench is None:
            raise RegistryError("refusing to record an empty run entry")
        key_dir = self._key_dir(key)
        key_dir.mkdir(parents=True, exist_ok=True)
        seq = self._next_seq(key_dir)
        doc: dict[str, Any] = {
            "schema": SCHEMA,
            "key": key,
            "seq": seq,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "meta": dict(meta or {}),
        }
        if report is not None:
            doc["report"] = report
        if profile is not None:
            doc["profile"] = profile
        if bench is not None:
            doc["bench"] = bench
        from repro.obs.report import _json_safe

        path = key_dir / f"run-{seq:06d}.json"
        path.write_text(json.dumps(_json_safe(doc), indent=1) + "\n")
        logger.debug("registry: recorded %s", path)
        return path

    @staticmethod
    def _next_seq(key_dir: Path) -> int:
        seqs = []
        for p in key_dir.glob("run-*.json"):
            try:
                seqs.append(int(p.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return max(seqs, default=0) + 1

    # ----------------------------------------------------------------- reads
    def keys(self) -> list[str]:
        """Every problem key with at least one recorded run."""
        if not self.root.is_dir():
            return []
        out = []
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for key_dir in sorted(shard.iterdir()):
                if key_dir.is_dir() and any(key_dir.glob("run-*.json")):
                    out.append(key_dir.name)
        return out

    def runs(self, key: str) -> list[Path]:
        """Entry paths for ``key``, oldest first."""
        key_dir = self._key_dir(key)
        if not key_dir.is_dir():
            return []
        return sorted(key_dir.glob("run-*.json"))

    def load(self, path: str | Path) -> dict:
        """Read one entry, validating the schema prefix."""
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(f"{path}: unreadable run entry: {exc}") from exc
        schema = str(doc.get("schema", ""))
        if not schema.startswith("repro.runs/"):
            raise RegistryError(
                f"{path}: not a run-registry entry (schema={schema!r})")
        return doc

    def load_runs(self, key: str) -> list[dict]:
        """All readable entries for ``key``, oldest first; corrupt entries
        are skipped with a warning (mirrors the compilation cache)."""
        out = []
        for path in self.runs(key):
            try:
                out.append(self.load(path))
            except RegistryError as exc:
                logger.warning("registry: skipping %s", exc)
        return out

    def iter_entries(self) -> Iterator[tuple[str, Path]]:
        for key in self.keys():
            for path in self.runs(key):
                yield key, path

    # -------------------------------------------------------------------- gc
    def gc(self, *, keep_last: int = DEFAULT_KEEP_LAST,
           max_age_days: float | None = None) -> int:
        """Prune old entries; returns how many were removed.

        Keeps the newest ``keep_last`` entries per key; with
        ``max_age_days`` additionally drops entries whose ``recorded_at``
        is older, regardless of count.  Empty key directories are removed.
        """
        if keep_last < 0:
            raise RegistryError(f"keep_last must be >= 0, got {keep_last}")
        cutoff = None
        if max_age_days is not None:
            cutoff = time.time() - float(max_age_days) * 86400.0
        removed = 0
        for key in self.keys():
            paths = self.runs(key)
            drop = paths[:-keep_last] if keep_last else list(paths)
            keep = [p for p in paths if p not in drop]
            if cutoff is not None:
                for path in keep:
                    if self._recorded_epoch(path) < cutoff:
                        drop.append(path)
            for path in drop:
                try:
                    path.unlink()
                    removed += 1
                except OSError as exc:  # pragma: no cover - fs race
                    logger.warning("registry: cannot prune %s: %s", path, exc)
            key_dir = self._key_dir(key)
            if key_dir.is_dir() and not any(key_dir.iterdir()):
                key_dir.rmdir()
                shard = key_dir.parent
                if shard.is_dir() and not any(shard.iterdir()):
                    shard.rmdir()
        return removed

    def _recorded_epoch(self, path: Path) -> float:
        """Entry age from its ``recorded_at`` stamp, file mtime fallback."""
        try:
            doc = self.load(path)
            stamp = doc.get("recorded_at", "")
            return time.mktime(time.strptime(stamp, "%Y-%m-%dT%H:%M:%S"))
        except (RegistryError, ValueError, OverflowError):
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0


# -------------------------------------------------------------- process-wide
_REGISTRY: RunRegistry | None = None


def get_registry() -> RunRegistry:
    """The process-wide registry (root from ``$REPRO_RUNS_DIR`` or
    ``.repro-runs`` on first use)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = RunRegistry(os.environ.get("REPRO_RUNS_DIR", DEFAULT_ROOT))
    return _REGISTRY


def configure_registry(root: str | Path | None) -> RunRegistry:
    """Point the process-wide registry at ``root``."""
    global _REGISTRY
    _REGISTRY = RunRegistry(root)
    return _REGISTRY


class registry_scope:
    """Context manager installing a scratch registry (test isolation)."""

    def __init__(self, root: str | Path):
        self._registry = RunRegistry(root)
        self._saved: RunRegistry | None = None

    def __enter__(self) -> RunRegistry:
        global _REGISTRY
        self._saved = _REGISTRY
        _REGISTRY = self._registry
        return self._registry

    def __exit__(self, *exc) -> None:
        global _REGISTRY
        _REGISTRY = self._saved


__all__ = [
    "DEFAULT_KEEP_LAST",
    "DEFAULT_ROOT",
    "RegistryError",
    "RunRegistry",
    "SCHEMA",
    "configure_registry",
    "get_registry",
    "registry_scope",
]
