"""Observability: span tracing, counters, and the aggregated run report.

The execution substrates (:mod:`repro.runtime`, :mod:`repro.gpu`) and the
generated solver code all emit into the *current* tracer, a module-level
singleton that defaults to the zero-overhead :data:`NULL_TRACER`.  Enable
it around a run with::

    from repro import obs

    with obs.trace_run("trace.json") as tracer:
        solver = problem.solve()
    obs.build_run_report(solver, tracer).write("report.json")

``trace.json`` is Chrome trace-event JSON — open it in ``ui.perfetto.dev``
(or ``chrome://tracing``) to see one track per host thread (wall clock),
per SPMD rank (virtual clock) and per GPU stream (device timeline), with
the hybrid target's interior kernel overlapping the CPU boundary-callback
span exactly as in the paper's Fig. 6.

The same flags are exposed on the CLI: ``python -m repro bte --gpu
--trace trace.json --report report.json``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path

from repro.obs.anomaly import (
    AnomalyMonitor,
    DEFAULT_THRESHOLDS,
    get_anomaly_monitor,
    health_section,
)
from repro.obs.blackbox import FlightRecorder, get_flight_recorder
from repro.obs.log import (
    Event,
    EventLog,
    events_run,
    get_event_log,
    log_event,
    read_events,
    set_event_log,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    metrics_run,
    set_metrics,
)
from repro.obs.profile import (
    RunProfiler,
    build_profile,
    compare_profiles,
    compare_table,
    extract_profile,
    get_profiler,
    load_profile,
    problem_key,
    profile_run,
    profile_table,
    set_profiler,
    write_profile,
)
from repro.obs.registry import (
    RegistryError,
    RunRegistry,
    configure_registry,
    get_registry,
    registry_scope,
)
from repro.obs.report import RunReport, SCHEMA, build_run_report, placement_accuracy
from repro.obs.tracer import (
    NULL_TRACER,
    CounterEvent,
    FlowEvent,
    InstantEvent,
    NullTracer,
    SpanEvent,
    Tracer,
    new_trace_id,
    next_span_id,
)

_current: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The tracer instrumented code should emit into (never ``None``)."""
    return _current


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as current (``None`` resets); returns the previous."""
    global _current
    previous = _current
    _current = NULL_TRACER if tracer is None else tracer
    return previous


def phase_span(name: str, cat: str = "phase", track: str | None = None, **args):
    """Wall-clock span on the calling thread's host track.

    This is the hook the code generators emit into *generated* source —
    ``with phase_span('solve'):`` — so traces name the IR phases.  The
    track defaults to ``host/<thread name>``; the SPMD executor names rank
    threads ``rank{r}``, giving one track per rank program automatically.
    Resolves the current tracer at call time, so a solver generated before
    :func:`trace_run` still traces (and one generated inside stops cleanly
    after).
    """
    tracer = _current
    if not tracer.enabled:
        return tracer.span("", name)  # the reusable null span
    if track is None:
        track = f"host/{threading.current_thread().name}"
    return tracer.span(track, name, cat=cat, **args)


@contextmanager
def trace_run(trace_path: str | Path | None = None, *,
              tracer: Tracer | None = None):
    """Install a live tracer for the block; optionally write the trace JSON.

    Yields the :class:`Tracer`; on exit the previous tracer is restored and,
    when ``trace_path`` is given, the Chrome-trace JSON is written even if
    the block raised (partial traces are the ones you need most).
    """
    tracer = tracer or Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        if trace_path is not None:
            tracer.write(trace_path)


__all__ = [
    "AnomalyMonitor",
    "Counter",
    "CounterEvent",
    "DEFAULT_THRESHOLDS",
    "Event",
    "EventLog",
    "FlightRecorder",
    "FlowEvent",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "RegistryError",
    "RunProfiler",
    "RunRegistry",
    "RunReport",
    "SCHEMA",
    "SpanEvent",
    "Tracer",
    "build_profile",
    "build_run_report",
    "compare_profiles",
    "compare_table",
    "configure_registry",
    "extract_profile",
    "events_run",
    "get_anomaly_monitor",
    "get_event_log",
    "get_flight_recorder",
    "get_metrics",
    "get_profiler",
    "get_registry",
    "get_tracer",
    "health_section",
    "load_profile",
    "log_event",
    "metrics_run",
    "new_trace_id",
    "next_span_id",
    "phase_span",
    "placement_accuracy",
    "problem_key",
    "profile_run",
    "profile_table",
    "read_events",
    "registry_scope",
    "set_event_log",
    "set_metrics",
    "set_profiler",
    "set_tracer",
    "trace_run",
    "write_profile",
]
