"""The aggregated run report: one schema-versioned JSON per run.

The repo's timing state is spread over four stores — the wall-clock
:class:`~repro.util.timing.TimerRegistry`, the per-rank
:class:`~repro.runtime.comm.CommStats`, the device
:class:`~repro.gpu.profiler.Profiler` and the per-stream virtual timelines.
:func:`build_run_report` merges all of them (whichever a given solver
actually has) into a single document:

.. code-block:: text

    schema   "repro.run_report/1"
    meta     problem / target / steps / virtual makespan
    timers   wall-clock phase timers (TimerStats.as_dict)
    phases   phase fractions (the Figs. 5/8 breakdown shape)
    comm     per-rank compute/comm seconds, messages, bytes, phase seconds
    gpu      per-device kernel-launch records, profile metrics, transfers
    placement  per-task predicted vs measured cost — the direct check on
               the paper's data-movement-aware placement model
    resilience injected faults, retries, recoveries, checkpoints and
               degraded placements (when the fault/recovery layer was live)
    diagnostics  runtime sanitizer findings (``--sanitize`` runs only):
               every RPR### diagnostic with its provenance, plus the
               number of checks performed
    health   the anomaly monitor's verdict: ok/warning/error status, the
             alerts that fired (step-time spikes, rank imbalance, retry
             storms, cache-miss storms) and the thresholds used
    events   structured-event-log summary (counts per event name/level)
    trace    span/track counts when a tracer was active
    tuning   how this solver was produced: compilation-cache outcome
             (hit/miss, key prefix, build seconds) and — for ``--tuned``
             runs — the knob overrides applied from the tuning database
    profile  nested ``repro.profile/1`` document: per-rank per-kernel
             self/total time with roofline attribution and the perfmodel
             drift column (:mod:`repro.obs.profile`)

Loaders must tolerate documents predating a section (older reports have no
``profile``/``health``): read sections with ``.get``, never ``[...]``.

Every numeric field is JSON-safe (no ``inf``/``nan``): never-recorded
timers normalise ``min`` to ``0.0`` via ``TimerStats.as_dict``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

SCHEMA = "repro.run_report/1"


def _json_safe(value: Any) -> Any:
    """Replace non-finite floats with ``None`` so the document stays JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


@dataclass
class RunReport:
    """The merged, schema-versioned observability document of one run."""

    meta: dict[str, Any] = field(default_factory=dict)
    timers: dict[str, Any] = field(default_factory=dict)
    phases: dict[str, float] = field(default_factory=dict)
    comm: dict[str, Any] | None = None
    gpu: dict[str, Any] | None = None
    placement: dict[str, Any] | None = None
    resilience: dict[str, Any] | None = None
    rebalance: dict[str, Any] | None = None
    diagnostics: dict[str, Any] | None = None
    health: dict[str, Any] | None = None
    events: dict[str, Any] | None = None
    trace: dict[str, Any] | None = None
    tuning: dict[str, Any] | None = None
    fusion: dict[str, Any] | None = None
    metrics: dict[str, Any] | None = None
    profile: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "schema": SCHEMA,
            "meta": self.meta,
            "timers": self.timers,
            "phases": self.phases,
        }
        for key in ("comm", "gpu", "placement", "resilience", "rebalance",
                    "diagnostics",
                    "health", "events", "trace", "tuning", "fusion",
                    "metrics", "profile"):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        return _json_safe(doc)

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path


# ---------------------------------------------------------------------------
# section builders (each tolerates the section's source being absent)
# ---------------------------------------------------------------------------

def _comm_section(spmd_result) -> dict[str, Any]:
    return {
        "nranks": len(spmd_result.stats),
        "makespan_s": spmd_result.makespan,
        "rank_times_s": list(spmd_result.times),
        "ranks": [s.as_dict() for s in spmd_result.stats],
        "phase_breakdown_s": spmd_result.phase_breakdown(),
    }


def _device_section(device) -> dict[str, Any]:
    prof = device.profiler
    launches: dict[str, dict[str, Any]] = {}
    for rec in prof.launches:
        agg = launches.setdefault(rec.kernel, {
            "count": 0, "total_s": 0.0, "total_flops": 0.0,
            "total_bytes": 0.0, "bound": rec.bound,
        })
        agg["count"] += 1
        agg["total_s"] += rec.duration
        agg["total_flops"] += rec.total_flops
        agg["total_bytes"] += rec.total_bytes
    for agg in launches.values():
        agg["mean_s"] = agg["total_s"] / agg["count"] if agg["count"] else 0.0
    return {
        "name": device.name,
        "spec": device.spec.name,
        "allocated_bytes": device.allocated_bytes,
        "kernels": launches,
        # per-kernel roofline attribution (achieved intensity vs the ridge,
        # fraction-of-peak columns) — the Tab. 1 Nsight-profile analogue
        "kernel_rows": prof.kernel_rows(),
        "profile": prof.report().as_dict(),
        "transfers": prof.transfer_summary(),
        "stream_busy_s": {
            device.default_stream.name: device.default_stream.busy_until(),
        },
        "transfer_busy_s": device.transfer_clock.now(),
    }


def _gpu_section(solver) -> dict[str, Any] | None:
    devices = []
    device = getattr(solver, "device", None)
    if device is not None:
        devices.append(_device_section(device))
    # multi-GPU runs keep only the per-rank profile reports (devices live on
    # rank threads); include them so the section is never silently empty
    profiles = getattr(solver.state, "device_profiles", None)
    if profiles:
        section = {
            "devices": devices,
            "rank_profiles": [p.as_dict() for p in profiles],
        }
        profilers = getattr(solver.state, "device_profilers", None)
        if profilers:
            section["rank_kernels"] = [p.kernel_rows() for p in profilers]
        return section
    if not devices:
        return None
    return {"devices": devices}


def placement_accuracy(plan, timers, nsteps: int,
                       task_timer_map: dict[str, str] | None = None) -> dict[str, Any]:
    """Per-task predicted vs measured cost for one placement plan.

    ``predicted`` is the cost-model seconds per step on the assigned device
    (the quantity the min-cut optimised); ``alternative`` the modelled cost
    had the task been placed on the *other* device; ``measured`` is the
    wall-clock seconds per step of the matching phase timer, when the
    target recorded one (``task_timer_map``: task name -> timer name).
    A task is flagged ``mispredicted`` when its measured time exceeds the
    modelled cost of the unpinned alternative — the optimiser would have
    chosen differently with perfect information.
    """
    task_timer_map = task_timer_map or {}
    tasks = []
    for name in sorted(plan.device):
        device = plan.device[name]
        task = plan.graph.tasks.get(name) if plan.graph is not None else None
        predicted = None
        alternative = None
        pinned = None
        if task is not None:
            predicted = task.cost_gpu if device == "gpu" else task.cost_cpu
            alternative = task.cost_cpu if device == "gpu" else task.cost_gpu
            pinned = task.pinned
        timer_name = task_timer_map.get(name)
        measured = None
        if timer_name and timer_name in timers.stats and nsteps > 0:
            measured = timers.stats[timer_name].total / nsteps
        entry: dict[str, Any] = {
            "task": name,
            "device": device,
            "pinned": pinned,
            "predicted_s_per_step": predicted,
            "alternative_s_per_step": alternative,
            "measured_s_per_step": measured,
        }
        if predicted is not None and alternative is not None \
                and math.isfinite(alternative):
            # modelled saving of the chosen device (>0: choice looks right)
            entry["predicted_delta_s"] = alternative - predicted
        if predicted and measured:
            entry["measured_over_predicted"] = measured / predicted
        entry["mispredicted"] = bool(
            measured is not None
            and alternative is not None
            and math.isfinite(alternative)
            and pinned is None
            and measured > alternative
        )
        tasks.append(entry)
    edges = []
    if plan.graph is not None:
        edges = [
            {"src": e.src, "dst": e.dst, "bytes": e.nbytes, "label": e.label,
             "cut": (plan.device.get(e.src) != plan.device.get(e.dst))}
            for e in plan.graph.edges
        ]
    return {
        "objective_s_per_step": plan.objective_seconds,
        "bytes_moved_per_step": plan.bytes_moved_per_step,
        "cut_edges": [
            {"src": s, "dst": d, "bytes": b} for s, d, b in plan.cut_edges
        ],
        "edges": edges,
        "tasks": tasks,
    }


def _tuning_section(solver) -> dict[str, Any] | None:
    """Compilation-cache provenance + applied tuning knobs, when either exists."""
    section: dict[str, Any] = {}
    info = getattr(solver, "generation_info", None)
    if info:
        section["cache"] = dict(info)
    problem = getattr(solver.state, "problem", None)
    extra = getattr(problem, "extra", None) or {}
    if extra.get("_tuned_applied"):
        section["tuned"] = True
        section["config"] = extra.get("tuned_config")
    elif extra.get("tuned"):
        # tuned mode was requested but no database entry matched
        section["tuned"] = False
    return section or None


def build_run_report(solver, tracer=None, **extra_meta: Any) -> RunReport:
    """Merge one solver's fragmented metric stores into a :class:`RunReport`.

    Works for every target: sections whose source the solver lacks (no
    device, no SPMD result, no placement plan) are simply omitted.
    """
    state = solver.state
    meta: dict[str, Any] = {
        "problem": state.problem.name,
        "target": solver.target_name,
        "nsteps_run": state.step_index,
        "dt": state.dt,
        "virtual_time_s": state.time,
        "ncells": state.ncells,
        "ncomp": state.ncomp,
    }
    host_clock = getattr(state, "host_clock", None)
    if host_clock is not None:
        meta["host_virtual_s"] = host_clock.now()
    meta.update(extra_meta)

    report = RunReport(
        meta=meta,
        timers={name: s.as_dict() for name, s in state.timers.stats.items()},
        phases=solver.breakdown(),
    )

    spmd = getattr(state, "spmd_result", None)
    if spmd is not None:
        report.comm = _comm_section(spmd)

    report.gpu = _gpu_section(solver)

    plan = getattr(solver, "placement", None)
    if plan is not None:
        report.placement = placement_accuracy(
            plan, state.timers, max(state.step_index, 1),
            getattr(solver, "task_timer_map", None),
        )

    # resilience: injected faults, retries, checkpoints, degraded placements
    # (lazy import — repro.runtime must stay importable without repro.obs)
    from repro.runtime.resilience import resilience_section

    report.resilience = resilience_section()

    from repro.runtime.rebalance import rebalance_section

    report.rebalance = rebalance_section()

    from repro.verify.sanitizer import sanitizer_section

    report.diagnostics = sanitizer_section()

    from repro.obs.anomaly import health_section

    report.health = health_section(solver)

    from repro.obs.log import get_event_log

    elog = get_event_log()
    if elog.enabled and elog.counts():
        report.events = elog.summary()

    if tracer is not None and tracer.enabled:
        report.trace = tracer.summary()

    report.tuning = _tuning_section(solver)

    # expression-fusion stats (mode + per-program instruction/register
    # counts) — attached by every target's build_artifact
    report.fusion = getattr(solver, "fusion_info", None)

    from repro.obs.metrics import get_metrics

    metrics = get_metrics()
    if metrics.enabled:
        report.metrics = metrics.to_dict()

    # per-kernel profile with the perfmodel drift column — always built
    # (aggregation over already-recorded timers/launches; nested schema,
    # like the metrics section)
    from repro.obs.profile import build_profile

    report.profile = build_profile(solver)
    return report


__all__ = ["RunReport", "SCHEMA", "build_run_report", "placement_accuracy"]
