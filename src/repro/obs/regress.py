"""Benchmark envelopes and regression gating.

All benchmark JSON in the repo shares one schema-versioned envelope,
``repro.bench/1``::

    schema    "repro.bench/1"
    name      suite or figure name
    meta      free-form provenance (sizes, targets, date)
    timings   {benchmark name: seconds}

The figure-regeneration benchmarks (``benchmarks/conftest.py``) write it
per figure; :func:`run_benchmarks` produces one for a small deterministic
suite of end-to-end solves; :func:`compare` diffs two envelopes with a
configurable relative-slowdown threshold so CI can gate on the committed
baseline (``BENCH_seed.json``) — ``repro bench --compare`` exits nonzero
when any benchmark regressed.

The suite prefers **virtual** seconds (simulated clocks) over wall time
wherever a run has them: virtual timings are deterministic for a given
model, so the gate detects cost-model and scheduling changes rather than
CI-machine noise.  Wall-clock entries are kept under ``*_wall_s`` names
and judged with a larger default tolerance.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.anomaly import DEFAULT_THRESHOLDS
from repro.util.errors import BenchFormatError

SCHEMA = "repro.bench/1"

# The gate's tolerances live in the anomaly table so "what counts as
# anomalous" has exactly one home (repro.obs.anomaly.DEFAULT_THRESHOLDS).

#: Relative slowdown ((cur - base) / base) above which a benchmark fails.
DEFAULT_THRESHOLD = DEFAULT_THRESHOLDS["bench_regression"]

#: Wall-clock benchmarks get a looser default (CI machines are noisy).
DEFAULT_WALL_THRESHOLD = DEFAULT_THRESHOLDS["bench_wall_regression"]

#: Observability-overhead ratio entries (``*_on_vs_off_*``) are ratios
#: near 1.0, not seconds — gated by the 5% always-on overhead budget.
OBS_OVERHEAD_THRESHOLD = DEFAULT_THRESHOLDS["obs_overhead"]

#: Fusion speed entries (``fused_vs_unfused*``) are fused/unfused wall
#: ratios gated against the ideal 1.0: fused must never run slower than
#: the emitted expression (with room for timer noise).
FUSION_OVERHEAD_THRESHOLD = DEFAULT_THRESHOLDS["fusion_overhead"]

#: Elastic-runtime overhead (``rebalance_overhead*``): on/off wall ratio
#: gated against the ideal 1.0.  The imbalance watcher's periodic
#: decision allgather is real work, so the budget is looser than the
#: passive observability toggles'.
REBALANCE_OVERHEAD_THRESHOLD = DEFAULT_THRESHOLDS["rebalance_overhead"]

#: Solver-service overhead (``serve_overhead_wall_s``): served/direct
#: wall ratio of one warm solve, gated against the ideal 1.0 — the
#: asyncio/executor/admission hops must stay inside the 10% budget.
SERVE_OVERHEAD_THRESHOLD = DEFAULT_THRESHOLDS["serve_overhead"]

#: Dedup speedup (``serve_dedup_speedup_x``) is a *floor*, not a
#: slowdown: a burst of identical requests served (coalesced onto one
#: solve) must beat solving each directly by at least this factor.
SERVE_DEDUP_SPEEDUP_MIN = DEFAULT_THRESHOLDS["serve_dedup_speedup_min"]

#: Baselines below this are too small to judge relatively.
MIN_BASE_SECONDS = 1e-6


def load_bench(path: str | Path) -> dict[str, Any]:
    """Load and validate one benchmark envelope."""
    doc = json.loads(Path(path).read_text())
    schema = doc.get("schema", "")
    if not schema.startswith("repro.bench/"):
        raise BenchFormatError(
            f"{path}: not a benchmark envelope (schema={schema!r})"
        )
    if not isinstance(doc.get("timings"), dict):
        raise BenchFormatError(f"{path}: envelope has no 'timings' mapping")
    return doc


def write_bench(path: str | Path, name: str, timings: dict[str, float],
                **meta: Any) -> Path:
    """Write one ``repro.bench/1`` envelope."""
    doc = {
        "schema": SCHEMA,
        "name": name,
        "meta": meta,
        "timings": {k: float(v) for k, v in timings.items()},
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return path


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

@dataclass
class BenchDelta:
    """One benchmark's baseline-vs-current judgement."""

    name: str
    base_s: float | None
    cur_s: float | None
    threshold: float
    status: str = "ok"  # ok | regression | improved | new | missing

    @property
    def slowdown(self) -> float | None:
        if self.cur_s is None:
            return None
        if "dedup_speedup" in self.name:
            # a speedup floor: positive (= regression) only when the
            # measured speedup falls below the required minimum
            return (SERVE_DEDUP_SPEEDUP_MIN - self.cur_s) / SERVE_DEDUP_SPEEDUP_MIN
        if ("_on_vs_off_" in self.name or "fused_vs_unfused" in self.name
                or "rebalance_overhead" in self.name
                or "serve_overhead" in self.name):
            # overhead/speed ratios are judged against the ideal 1.0 — "the
            # instrumentation is free" / "fusion never loses" — not against
            # the baseline's own equally-noisy measurement of the same ideal
            return self.cur_s - 1.0
        if not self.base_s:
            return None
        return (self.cur_s - self.base_s) / self.base_s


@dataclass
class RegressionReport:
    """The full comparison of two benchmark envelopes."""

    baseline_name: str
    current_name: str
    deltas: list[BenchDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.bench_compare/1",
            "baseline": self.baseline_name,
            "current": self.current_name,
            "regressions": len(self.regressions),
            "deltas": [
                {
                    "name": d.name, "base_s": d.base_s, "cur_s": d.cur_s,
                    "slowdown": d.slowdown, "threshold": d.threshold,
                    "status": d.status,
                }
                for d in self.deltas
            ],
        }

    def render_text(self) -> str:
        lines = [
            f"benchmark comparison: {self.current_name} vs "
            f"baseline {self.baseline_name}",
            f"  {'benchmark':<32} {'baseline':>12} {'current':>12} "
            f"{'slowdown':>9}  status",
        ]
        for d in self.deltas:
            base = f"{d.base_s:.6f}" if d.base_s is not None else "-"
            cur = f"{d.cur_s:.6f}" if d.cur_s is not None else "-"
            slow = f"{d.slowdown * 100:+8.1f}%" if d.slowdown is not None else "        -"
            mark = d.status.upper() if d.status == "regression" else d.status
            lines.append(f"  {d.name:<32} {base:>12} {cur:>12} {slow}  {mark}")
        n = len(self.regressions)
        lines.append(
            f"  -> {n} regression(s) "
            f"(relative-slowdown thresholds: virtual "
            f"{DEFAULT_THRESHOLD:.0%}, wall {DEFAULT_WALL_THRESHOLD:.0%} "
            "by default)"
            if n else "  -> no regressions"
        )
        return "\n".join(lines) + "\n"


def _threshold_for(name: str, threshold: float | None,
                   wall_threshold: float | None) -> float:
    if "_on_vs_off_" in name:
        # overhead ratios sit near 1.0; the budget is absolute-ish (5%)
        return OBS_OVERHEAD_THRESHOLD
    if "fused_vs_unfused" in name:
        return FUSION_OVERHEAD_THRESHOLD
    if "rebalance_overhead" in name:
        # elastic-controller overhead ratio, judged against the ideal 1.0
        # with its own (looser) budget — the watcher does real collective
        # work, unlike the passive observability toggles
        return REBALANCE_OVERHEAD_THRESHOLD
    if "serve_overhead" in name:
        # solver-service per-request overhead ratio vs the ideal 1.0
        return SERVE_OVERHEAD_THRESHOLD
    if "dedup_speedup" in name:
        # the floor itself lives in the slowdown computation; any shortfall
        # below the required minimum is a regression
        return 0.0
    if name.endswith("_wall_s"):
        return wall_threshold if wall_threshold is not None else DEFAULT_WALL_THRESHOLD
    return threshold if threshold is not None else DEFAULT_THRESHOLD


def compare(baseline: dict[str, Any], current: dict[str, Any],
            threshold: float | None = None,
            wall_threshold: float | None = None) -> RegressionReport:
    """Diff two envelopes; a benchmark regresses when its relative
    slowdown exceeds its threshold (``*_wall_s`` names use the looser
    wall threshold)."""
    base_t = baseline.get("timings", {})
    cur_t = current.get("timings", {})
    report = RegressionReport(
        baseline_name=baseline.get("name", "baseline"),
        current_name=current.get("name", "current"),
    )
    for name in sorted(set(base_t) | set(cur_t)):
        thr = _threshold_for(name, threshold, wall_threshold)
        delta = BenchDelta(name, base_t.get(name), cur_t.get(name), thr)
        if delta.base_s is None:
            delta.status = "new"
        elif delta.cur_s is None:
            delta.status = "missing"
        elif delta.base_s < MIN_BASE_SECONDS:
            delta.status = "ok"  # too small to judge relatively
        elif delta.slowdown > thr:
            delta.status = "regression"
        elif delta.slowdown < -thr:
            delta.status = "improved"
        report.deltas.append(delta)
    return report


# ---------------------------------------------------------------------------
# the benchmark suite
# ---------------------------------------------------------------------------

def _bte_problem(nx: int, ndirs: int, bands: int, nsteps: int,
                 gpu: bool = False, ranks: int = 1):
    from repro.bte import build_bte_problem, hotspot_scenario

    scenario = hotspot_scenario(
        nx=nx, ny=nx, ndirs=ndirs, n_freq_bands=bands, nsteps=nsteps,
    )
    scenario.sigma = max(scenario.sigma, 2.5 * scenario.lx / nx)
    problem, _ = build_bte_problem(scenario)
    if gpu:
        problem.enable_gpu()
        problem.extra["gpu_force_offload"] = True
    if ranks > 1:
        problem.set_partitioning("bands", ranks, index="b")
    return problem


def run_benchmarks(nx: int = 16, ndirs: int = 4, bands: int = 4,
                   nsteps: int = 5) -> dict[str, float]:
    """Run the small deterministic suite; returns the timings mapping.

    Virtual entries (deterministic, model-derived):

    * ``serial_virtual_s``       — no virtual clock; omitted
    * ``gpu_hybrid_virtual_s``   — host virtual clock of the hybrid run
    * ``spmd_bands_virtual_s``   — SPMD makespan of a 2-rank band run
    * ``gpu_multi_virtual_s``    — SPMD makespan of a 2-rank, 2-device run
    * ``tune_default_virtual_s`` / ``tune_best_virtual_s`` — autotuner
      default-vs-best proxy step time (best can never exceed default)

    Wall entries (noisy; looser gate): ``*_wall_s`` per target, plus
    ``codegen_cold_wall_s`` / ``codegen_warm_wall_s`` — the same problem
    generated twice inside a private compilation cache; the warm path
    skips lowering, codegen and ``compile()`` entirely.

    Overhead ratios (``*_on_vs_off_*``; ~1.0; 5% budget from
    ``DEFAULT_THRESHOLDS['obs_overhead']``, judged against the ideal 1.0
    rather than the baseline): interleaved min-of-4 serial solves with the
    always-on observability enabled vs disabled —
    ``events_on_vs_off_wall_s`` toggles the structured event-log ring,
    ``blackbox_on_vs_off_wall_s`` toggles the flight recorder, and
    ``profile_on_vs_off_wall_s`` toggles the per-launch kernel profiler.

    Fusion ratios (``fused_vs_unfused_wall_s`` / ``..._gpu_wall_s``;
    interleaved min-of-4 fused/unfused wall ratios; gated against the
    ideal 1.0 with ``DEFAULT_THRESHOLDS['fusion_overhead']``): the fused
    vector-program fast path must not run slower than the emitted
    expression it replaces.

    Solver-service entries: ``serve_overhead_wall_s`` (served/direct wall
    ratio of one warm solve, vs the ideal 1.0 under
    ``DEFAULT_THRESHOLDS['serve_overhead']``) and
    ``serve_dedup_speedup_x`` (wall speedup of a coalesced identical-
    request burst over direct per-request solves; a
    ``DEFAULT_THRESHOLDS['serve_dedup_speedup_min']`` floor, not a
    slowdown tolerance).
    """
    timings: dict[str, float] = {}

    t0 = time.perf_counter()
    _bte_problem(nx, ndirs, bands, nsteps).solve()
    timings["serial_wall_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    solver = _bte_problem(nx, ndirs, bands, nsteps, gpu=True).solve()
    timings["gpu_hybrid_wall_s"] = time.perf_counter() - t0
    host_clock = getattr(solver.state, "host_clock", None)
    if host_clock is not None:
        timings["gpu_hybrid_virtual_s"] = host_clock.now()

    t0 = time.perf_counter()
    solver = _bte_problem(nx, ndirs, bands, nsteps, ranks=2).solve()
    timings["spmd_bands_wall_s"] = time.perf_counter() - t0
    spmd = getattr(solver.state, "spmd_result", None)
    if spmd is not None:
        timings["spmd_bands_virtual_s"] = spmd.makespan

    t0 = time.perf_counter()
    solver = _bte_problem(nx, ndirs, bands, nsteps, gpu=True, ranks=2).solve()
    timings["gpu_multi_wall_s"] = time.perf_counter() - t0
    spmd = getattr(solver.state, "spmd_result", None)
    if spmd is not None:
        timings["gpu_multi_virtual_s"] = spmd.makespan

    from repro.tune.cache import cache_scope

    with cache_scope() as cache:
        t0 = time.perf_counter()
        _bte_problem(nx, ndirs, bands, nsteps).generate()
        timings["codegen_cold_wall_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        _bte_problem(nx, ndirs, bands, nsteps).generate()
        timings["codegen_warm_wall_s"] = time.perf_counter() - t0
        assert cache.stats.hits == 1, "warm generate must hit the cache"

    from repro.tune.tuner import tune

    result = tune(lambda: _bte_problem(nx, ndirs, bands, nsteps),
                  budget_trials=4, proxy_steps=2)
    timings["tune_default_virtual_s"] = result.default_virtual_s
    timings["tune_best_virtual_s"] = result.best_virtual_s

    # always-on observability overhead: interleaved min-of-N serial solves
    # with the subsystem enabled vs disabled (alternating each repeat so
    # machine drift hits both sides equally).  The ratios land near 1.0 and
    # the gate holds them to the 5% budget against the ideal, making
    # "observability on by default is free" a tested property, not a claim.
    from repro.obs.blackbox import get_flight_recorder
    from repro.obs.log import EventLog, set_event_log

    def one_wall() -> float:
        t0 = time.perf_counter()
        _bte_problem(nx, ndirs, bands, nsteps).solve()
        return time.perf_counter() - t0

    def paired_ratio(set_off, set_on, repeats: int = 4) -> float:
        import gc

        def timed_off() -> float:
            set_off()
            try:
                return one_wall()
            finally:
                set_on()

        # pause the cyclic GC while timing: by this point the suite has
        # churned enough garbage that a collector pause landing on one
        # side of the pair can push a ~1.0 ratio past the 5% budget
        on_best = off_best = float("inf")
        gc.collect()
        gc.disable()
        try:
            one_wall()  # warmup solve outside both timed sides
            for i in range(repeats):
                # alternate pair order so monotonic machine drift hits
                # both sides equally instead of always taxing the first
                if i % 2 == 0:
                    on_best = min(on_best, one_wall())
                    off_best = min(off_best, timed_off())
                else:
                    off_best = min(off_best, timed_off())
                    on_best = min(on_best, one_wall())
        finally:
            gc.enable()
        return on_best / max(off_best, 1e-9)

    saved_log: list = []
    timings["events_on_vs_off_wall_s"] = paired_ratio(
        lambda: saved_log.append(set_event_log(EventLog(enabled=False))),
        lambda: set_event_log(saved_log.pop()))

    recorder = get_flight_recorder()

    def recorder_off() -> None:
        recorder.enabled = False

    def recorder_on() -> None:
        recorder.enabled = True

    timings["blackbox_on_vs_off_wall_s"] = paired_ratio(
        recorder_off, recorder_on)

    # per-launch kernel profiler: OFF by default, so unlike the two above
    # the "on" side must be installed first — same 5% budget, making the
    # opt-in profiler's "cheap enough to leave on" claim a tested property
    from repro.obs.profile import RunProfiler, set_profiler

    set_profiler(RunProfiler(enabled=True))
    try:
        timings["profile_on_vs_off_wall_s"] = paired_ratio(
            lambda: set_profiler(None),
            lambda: set_profiler(RunProfiler(enabled=True)))
    finally:
        set_profiler(None)

    # expression fusion: interleaved min-of-4 fused-vs-unfused solves of
    # the same problem.  The ratio is gated against the ideal 1.0 with the
    # fusion budget — "the fused vector program never runs slower than the
    # emitted expression" is a tested property, like the overhead ratios.
    # Runs a multiple of the suite's step count so one timed solve is long
    # enough to amortise bind-time VM setup (the simulated-GPU path needs a
    # longer window — its per-solve scheduling noise is larger), and pauses
    # the cyclic GC during the timed windows — by this point the suite has
    # churned enough garbage that collector pauses would otherwise
    # dominate a min-of-4 ratio.
    def fused_ratio(gpu: bool = False) -> float:
        import gc

        steps = (8 if gpu else 4) * nsteps

        def one(fused: bool) -> float:
            # problem construction (mesh build) happens outside the
            # timed window on both sides — the ratio judges the solve
            p = _bte_problem(nx, ndirs, bands, steps, gpu=gpu)
            if fused:
                p.extra["fusion"] = "auto"
            t0 = time.perf_counter()
            p.solve()
            return time.perf_counter() - t0

        fused_best = unfused_best = float("inf")
        gc.collect()
        gc.disable()
        try:
            one(True)   # warmup: VM specialization + import costs land
            one(False)  # here, not in the first timed repeat
            for i in range(4):
                # alternate pair order so monotonic machine drift hits
                # both sides equally instead of always taxing the first
                for fused in ((True, False) if i % 2 == 0 else (False, True)):
                    t = one(fused)
                    if fused:
                        fused_best = min(fused_best, t)
                    else:
                        unfused_best = min(unfused_best, t)
        finally:
            gc.enable()
        return fused_best / max(unfused_best, 1e-9)

    timings["fused_vs_unfused_wall_s"] = fused_ratio()
    timings["fused_vs_unfused_gpu_wall_s"] = fused_ratio(gpu=True)

    # elastic runtime.  (a) rebalance_overhead_wall_s: the controller on a
    # balanced, fault-free 2-rank cell run vs the plain SPMD path —
    # interleaved min-of-4 ratio against the ideal 1.0 (the watcher is one
    # attribute check per step plus a cheap periodic allgather, so
    # "elastic is free when nothing is wrong" is a tested property).
    # (b) skewed strong scaling: rank 0 computes 3x slower
    # (rank_slow:...,count=0) with the proactive rebalancer on; the
    # resulting virtual makespans at 4 and 16 ranks are deterministic
    # model outputs, gated at the default 10% like the other virtual
    # entries — a regression here means the rebalancer stopped migrating
    # work off the degraded rank.
    def elastic_problem(ranks: int, rebalance: bool, steps: int):
        p = _bte_problem(nx, ndirs, bands, steps)
        p.set_partitioning("cells", ranks)
        if rebalance:
            p.extra["rebalance"] = True
        return p

    def elastic_ratio() -> float:
        import gc

        # longer window than one suite run: the watcher's per-check cost
        # is a constant fraction, but thread-scheduling noise is not
        steps = 4 * nsteps

        def one(rebalance: bool) -> float:
            p = elastic_problem(2, rebalance, steps)
            t0 = time.perf_counter()
            p.solve()
            return time.perf_counter() - t0

        on_best = off_best = float("inf")
        gc.collect()
        gc.disable()
        try:
            one(True)
            one(False)  # warmups: codegen + import costs land here
            for i in range(4):
                for rebalance in ((True, False) if i % 2 == 0 else (False, True)):
                    t = one(rebalance)
                    if rebalance:
                        on_best = min(on_best, t)
                    else:
                        off_best = min(off_best, t)
        finally:
            gc.enable()
        return on_best / max(off_best, 1e-9)

    timings["rebalance_overhead_wall_s"] = elastic_ratio()

    from repro.runtime.faults import fault_run

    for ranks in (4, 16):
        p = elastic_problem(ranks, True, 2 * nsteps)
        with fault_run("rank_slow:rank=0,factor=3,count=0"):
            solver = p.solve()
        spmd = getattr(solver.state, "spmd_result", None)
        if spmd is not None:
            timings[f"skewed_rebalance_virtual_s_r{ranks}"] = spmd.makespan

    # solver service.  (a) serve_overhead_wall_s: one warm solve submitted
    # through the running service vs called directly — interleaved
    # min-of-4 ratio against the ideal 1.0 (admission, dedup keying and
    # the asyncio/executor hop must fit the 10% serve budget).
    # (b) serve_dedup_speedup_x: a held burst of identical requests is
    # coalesced onto ONE solve; its wall time vs answering each request
    # with its own direct solve is gated as a >=2x floor (in practice it
    # approaches the burst size).  Result reuse is disabled so both
    # benches measure the scheduling path, not the answer cache.
    from repro.obs.metrics import metrics_run
    from repro.serve import ServiceConfig, serve_session

    # one shared metrics registry for BOTH sides: without it the service
    # would install its own (the /metrics endpoint needs one) and the
    # served solves would pay per-step metric costs the direct solves
    # skip, polluting the ratio with instrumentation instead of the hop
    with cache_scope(), metrics_run():
        # longer window than one suite run: the service's fixed per-job
        # cost (submit hop, dedup keying, warm generate, result packaging;
        # ~3 ms) is constant, so the ratio only means something once a
        # solve is long enough to amortise it — same trick as the fusion
        # bench, with a wider window because the budget is tighter
        serve_steps = 24 * nsteps

        def serve_problem():
            return _bte_problem(nx, ndirs, bands, serve_steps)

        serve_problem().generate()  # warm the artifact for every side
        with serve_session(ServiceConfig(
                workers=2, reuse_results=False)) as service:
            client = service.client
            client.solve(serve_problem())  # service-side warmup

            def one_side(served: bool) -> float:
                p = serve_problem()  # construction outside the window
                t0 = time.perf_counter()
                if served:
                    client.solve(p)
                else:
                    p.solve()
                return time.perf_counter() - t0

            import gc

            served_best = direct_best = float("inf")
            gc.collect()
            gc.disable()
            try:
                for i in range(4):
                    for served in ((True, False) if i % 2 == 0
                                   else (False, True)):
                        t = one_side(served)
                        if served:
                            served_best = min(served_best, t)
                        else:
                            direct_best = min(direct_best, t)
            finally:
                gc.enable()
            timings["serve_overhead_wall_s"] = served_best / max(
                direct_best, 1e-9)

            burst = 6
            direct_probs = [serve_problem() for _ in range(burst)]
            served_probs = [serve_problem() for _ in range(burst)]
            t0 = time.perf_counter()
            for p in direct_probs:
                p.solve()
            direct_wall = time.perf_counter() - t0
            t0 = time.perf_counter()
            client.hold()  # stage the burst so every request coalesces
            tickets = [client.submit(p) for p in served_probs]
            client.release()
            for ticket in tickets:
                ticket.result(300)
            served_wall = time.perf_counter() - t0
            timings["serve_dedup_speedup_x"] = direct_wall / max(
                served_wall, 1e-9)

    return timings


__all__ = [
    "BenchDelta",
    "DEFAULT_THRESHOLD",
    "DEFAULT_WALL_THRESHOLD",
    "FUSION_OVERHEAD_THRESHOLD",
    "MIN_BASE_SECONDS",
    "OBS_OVERHEAD_THRESHOLD",
    "SERVE_DEDUP_SPEEDUP_MIN",
    "SERVE_OVERHEAD_THRESHOLD",
    "RegressionReport",
    "SCHEMA",
    "compare",
    "load_bench",
    "run_benchmarks",
    "write_bench",
]
