"""Per-kernel run profiling: the ``repro.profile/1`` artifact.

The paper's evidence is per-phase/per-kernel breakdowns (Figs. 5/8 and the
Nsight profile of Tab. 1).  This module turns one executed solve into a
document with that granularity:

* one row per (rank, kernel-or-phase) with count, **self** and **total**
  time, bytes moved and achieved-vs-roofline FLOP/byte attribution (GPU
  rows come from :class:`repro.gpu.profiler.Profiler` launch records, CPU
  rows from the phase timers every generated run loop already drives);
* a **perfmodel drift** column per row: measured seconds-per-step divided
  by the :class:`repro.perfmodel.costs.CostModel` prediction, so the
  analytic model that placement/tuning decisions rest on is audited by
  every profiled run (drift beyond tolerance suggests recalibration via
  :mod:`repro.perfmodel.calibrate`).

Document layout (``repro.profile/1``)::

    schema   "repro.profile/1"
    meta     {problem, target, problem_key, nsteps, ncells, ncomp, ...}
    ranks    [{rank, kernels: [row...], transfers: {...},
               launches: [{name, step, seconds}...]?}, ...]
    drift    {tolerance, max_abs, exceeded, calibration?}

Runtime side: a process-wide :class:`RunProfiler` singleton mirrors the
event-log/metrics pattern — disabled by default, attribute-check cheap when
off.  When enabled (``profile_run()`` / CLI ``--profile``) the generated run
loops additionally record one entry *per phase launch* (not just the
aggregated timer stats), which lands in each rank's ``launches`` list.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.obs.anomaly import DEFAULT_THRESHOLDS

SCHEMA = "repro.profile/1"

#: A measured/predicted ratio farther than this from 1.0 flags the cost
#: model for recalibration (single source of truth: the anomaly table).
DRIFT_TOLERANCE = DEFAULT_THRESHOLDS["perfmodel_drift"]

#: Phase-timer names mapped to cost-model phases (mirrors the
#: ``task_timer_map`` used by placement accuracy).
_PHASE_COSTS = {
    "solve": "intensity",
    "boundary": "boundary",
    "post_step": "temperature",
}


class RunProfiler:
    """Process-wide per-launch CPU profiling switchboard.

    ``record()`` is called by :meth:`SolverState.profile_scope
    <repro.codegen.state.SolverState.profile_scope>` wrappers in every
    generated run loop; it appends one plain tuple per phase launch.  When
    ``enabled`` is False the generated code never constructs the wrapper in
    the first place (the scope falls back to the plain timer), so a
    disabled profiler allocates nothing per step.
    """

    __slots__ = ("enabled", "records")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: (rank, name, step, seconds) per recorded launch
        self.records: list[tuple[int, str, int, float]] = []

    def record(self, name: str, seconds: float, *, rank: int = 0,
               step: int = -1) -> None:
        if not self.enabled:
            return
        self.records.append((rank, name, step, seconds))

    def launches_for_rank(self, rank: int) -> list[dict]:
        return [
            {"name": name, "step": step, "seconds": secs}
            for (r, name, step, secs) in self.records
            if r == rank
        ]

    def reset(self) -> None:
        self.records.clear()


_current = RunProfiler(enabled=False)


def get_profiler() -> RunProfiler:
    """The installed profiler (disabled singleton by default)."""
    return _current


def set_profiler(profiler: RunProfiler | None) -> RunProfiler:
    """Install ``profiler`` (None restores the disabled default); returns
    the previously installed one."""
    global _current
    previous = _current
    _current = profiler if profiler is not None else RunProfiler(enabled=False)
    return previous


@contextmanager
def profile_run(enabled: bool = True) -> Iterator[RunProfiler]:
    """Enable per-launch profiling for the duration of the block."""
    profiler = RunProfiler(enabled=enabled)
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)


# --------------------------------------------------------------------- builder
def _cell_counts(state) -> tuple[float, float]:
    """(ncells, ncomp) of a state; FEM states count nodes, one component."""
    ncells = float(getattr(state, "ncells", 0) or getattr(state, "nnodes", 0))
    return ncells, float(getattr(state, "ncomp", 1))


def _rank_work(state, nranks: int) -> tuple[float, float]:
    """(ncells, ncomp) a single rank owns, under the problem's partitioning.

    Balanced-split approximation: the profile audits the *model*, and the
    model itself assumes balanced parts.
    """
    ncells, ncomp = _cell_counts(state)
    if nranks <= 1:
        return ncells, ncomp
    strategy = getattr(state.problem.config, "partition_strategy", None)
    if strategy == "cells":
        return ncells / nranks, ncomp
    return ncells, ncomp / nranks


def _predicted_phase_seconds(state, nranks: int) -> dict[str, float]:
    """Cost-model prediction per phase for one rank's step."""
    from repro.perfmodel.costs import CostModel, predicted_phase_costs
    from repro.perfmodel.machines import CASCADE_LAKE_FINCH

    machine = state.problem.extra.get("machine_rates", CASCADE_LAKE_FINCH)
    cost = CostModel(machine)
    ncells, ncomp = _rank_work(state, nranks)
    try:
        from repro.codegen.cpu_distributed import _band_count

        nbands = _band_count(state.problem)
    except Exception:
        nbands = 1
    if nranks > 1 and getattr(state.problem.config, "partition_strategy",
                              None) != "cells":
        nbands = max(nbands // nranks, 1)
    geom = getattr(state, "geom", None)
    if geom is None:
        # non-FV state (FEM): the BTE cost model does not apply, so the
        # profile carries timings without a drift column
        return {}
    return predicted_phase_costs(
        cost,
        ncells=ncells,
        ncomp=ncomp,
        nbands=nbands,
        n_boundary_faces=geom.boundary_face_count(),
    )


def _timer_rows(timers, nsteps: int, predicted: dict[str, float]) -> list[dict]:
    """Phase rows from one rank's TimerRegistry."""
    rows = []
    for name, stats in timers.stats.items():
        total = stats.total
        per_step = total / nsteps if nsteps > 0 else 0.0
        row = {
            "name": name,
            "kind": "phase",
            "clock": "wall",
            "count": stats.count,
            "total_s": total,
            "self_s": total,  # refined below for phases that launch kernels
            "mean_s": stats.mean if stats.count else 0.0,
            "measured_s_per_step": per_step,
            "predicted_s_per_step": None,
            "drift": None,
        }
        pred = predicted.get(name)
        if pred is not None and pred > 0:
            row["predicted_s_per_step"] = pred
            row["drift"] = per_step / pred
        rows.append(row)
    return rows


def _kernel_rows(device_profiler, nsteps: int,
                 predicted: dict[str, float]) -> list[dict]:
    """Kernel rows from one device's launch records (roofline columns)."""
    rows = []
    for kr in device_profiler.kernel_rows():
        per_step = kr["self_s"] / nsteps if nsteps > 0 else 0.0
        row = dict(kr)
        row["kind"] = "kernel"
        row["clock"] = "virtual"
        row["total_s"] = kr["self_s"]  # kernels are leaves
        row["measured_s_per_step"] = per_step
        # the interior kernel implements the intensity sweep: judge it
        # against the same prediction the placement optimiser used
        pred = predicted.get("solve")
        if pred is not None and pred > 0 and kr["name"].endswith("interior_step"):
            row["predicted_s_per_step"] = pred
            row["drift"] = per_step / pred
        else:
            row["predicted_s_per_step"] = None
            row["drift"] = None
        rows.append(row)
    return rows


def _attribute_kernel_self(rows: list[dict]) -> None:
    """Subtract device-kernel time from the launching ``solve`` phase so the
    phase's ``self_s`` is host-side work only (clamped at zero: phase timers
    are wall clock while device time is virtual, so the difference is an
    attribution, not an identity)."""
    kernel_s = sum(r["self_s"] for r in rows if r["kind"] == "kernel")
    if kernel_s <= 0:
        return
    for row in rows:
        if row["kind"] == "phase" and row["name"] == "solve":
            row["self_s"] = max(row["total_s"] - kernel_s, 0.0)


def build_profile(solver, *, tolerance: float | None = None) -> dict:
    """The ``repro.profile/1`` document for one executed solve."""
    state = solver.state
    nsteps = max(int(getattr(state, "step_index", 0)), 1)
    spmd = getattr(state, "spmd_result", None)
    nranks = len(spmd.results) if spmd is not None else 1
    predicted = _predicted_phase_seconds(state, nranks)
    profiler = get_profiler()

    ranks: list[dict] = []
    if spmd is not None:
        device_profilers = getattr(state, "device_profilers", None) or []
        for rank, result in enumerate(spmd.results):
            rows: list[dict] = []
            timers = (result or {}).get("timers")
            if timers is not None:
                rows.extend(_timer_rows(timers, nsteps, predicted))
            if rank < len(device_profilers):
                rows.extend(
                    _kernel_rows(device_profilers[rank], nsteps, predicted))
            _attribute_kernel_self(rows)
            entry: dict[str, Any] = {"rank": rank, "kernels": rows}
            if rank < len(device_profilers):
                entry["transfers"] = device_profilers[rank].transfer_summary()
            if profiler.enabled:
                entry["launches"] = profiler.launches_for_rank(rank)
            ranks.append(entry)
    else:
        rows = _timer_rows(state.timers, nsteps, predicted)
        device = getattr(solver, "device", None)
        entry = {"rank": 0, "kernels": rows}
        if device is not None:
            rows.extend(_kernel_rows(device.profiler, nsteps, predicted))
            _attribute_kernel_self(rows)
            entry["transfers"] = device.profiler.transfer_summary()
        if profiler.enabled:
            entry["launches"] = profiler.launches_for_rank(0)
        ranks.append(entry)

    tol = DRIFT_TOLERANCE if tolerance is None else float(tolerance)
    # the exceeded flag (and any recalibration suggestion) judges only the
    # wall-measured phase rows: virtual kernel rows compare the *device*
    # model against the *CPU* prediction, which is a placement sanity
    # check, not machine drift
    drifts = [
        abs(row["drift"] - 1.0)
        for entry in ranks
        for row in entry["kernels"]
        if row.get("drift") is not None and row.get("clock") == "wall"
    ]
    max_abs = max(drifts) if drifts else 0.0
    drift_section: dict[str, Any] = {
        "tolerance": tol,
        "max_abs": max_abs,
        "exceeded": max_abs > tol,
    }
    if drift_section["exceeded"]:
        from repro.perfmodel.calibrate import calibration_from_rows

        suggestion = calibration_from_rows(state, ranks)
        if suggestion is not None:
            drift_section["calibration"] = suggestion

    ncells, ncomp = _cell_counts(state)
    meta: dict[str, Any] = {
        "problem": state.problem.name,
        "target": getattr(solver, "target_name", None),
        "nsteps": int(getattr(state, "step_index", 0)),
        "ncells": int(ncells),
        "ncomp": int(ncomp),
        "nranks": nranks,
        "problem_key": problem_key(state.problem,
                                   getattr(solver, "target_name", None)),
        "per_launch": bool(profiler.enabled),
    }
    generation = getattr(solver, "generation_info", None)
    if generation:
        meta["generation"] = dict(generation)

    return {"schema": SCHEMA, "meta": meta, "ranks": ranks,
            "drift": drift_section}


def problem_key(problem, target_name: str | None = None) -> str:
    """Stable per-problem identity for the run registry and ``bte history``:
    the digest of the *tuning* key, i.e. the problem signature with the
    tunable/injectable knobs normalised out — so a chunking override or a
    tuned configuration lands in the same timeline as the default run."""
    from repro.tune.signature import signature_digest, tuning_key

    return signature_digest(tuning_key(problem, target_name))


def write_profile(doc: dict, path: str | Path) -> Path:
    """Write a ``repro.profile/1`` document (JSON-safe, non-finite → null)."""
    from repro.obs.report import _json_safe

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_json_safe(doc), indent=1) + "\n")
    return path


def load_profile(path: str | Path) -> dict:
    """Read a ``repro.profile/1`` document, validating the schema prefix."""
    from repro.util.errors import ReproError

    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"{path}: unreadable profile: {exc}") from exc
    schema = str(doc.get("schema", ""))
    if not schema.startswith("repro.profile/"):
        raise ReproError(f"{path}: not a profile document (schema={schema!r})")
    return doc


def extract_profile(doc: dict) -> dict:
    """The ``repro.profile/1`` document inside ``doc``, whatever ``doc`` is.

    Accepts a bare profile, a ``repro.run_report/1`` document or a
    ``repro.runs/1`` registry entry (both nest the profile under
    ``"profile"``), so ``bte compare`` takes any of the three.
    """
    from repro.util.errors import ReproError

    schema = str(doc.get("schema", ""))
    if schema.startswith("repro.profile/"):
        return doc
    if schema.startswith(("repro.run_report/", "repro.runs/")):
        profile = doc.get("profile")
        if profile is None and schema.startswith("repro.runs/"):
            profile = doc.get("report", {}).get("profile")
        if profile:
            return profile
        raise ReproError(
            f"document (schema={schema!r}) carries no profile section")
    raise ReproError(f"not a profile-bearing document (schema={schema!r})")


def compare_profiles(a: dict, b: dict) -> dict:
    """Per-(rank, kind, name) self-time delta between two profiles (A → B).

    Rows are sorted by ``delta_s`` descending — the row that slowed down
    the most ranks first, so a regression's culprit kernel/phase leads the
    table.  Rows missing on one side (a kernel that only exists in one
    run) compare against zero.
    """
    def rows_by_key(doc: dict) -> dict[tuple, dict]:
        out: dict[tuple, dict] = {}
        for entry in doc.get("ranks", []):
            rank = entry.get("rank", 0)
            for row in entry.get("kernels", []):
                out[(rank, row.get("kind", "?"), row.get("name", "?"))] = row
        return out

    ra, rb = rows_by_key(a), rows_by_key(b)
    rows: list[dict] = []
    for key in sorted(set(ra) | set(rb)):
        rank, kind, name = key
        sa = float(ra.get(key, {}).get("self_s", 0.0) or 0.0)
        sb = float(rb.get(key, {}).get("self_s", 0.0) or 0.0)
        rows.append({
            "rank": rank, "kind": kind, "name": name,
            "self_s_a": sa, "self_s_b": sb, "delta_s": sb - sa,
            "ratio": (sb / sa) if sa > 0.0 else None,
        })
    rows.sort(key=lambda r: r["delta_s"], reverse=True)
    total_a = sum(r["self_s_a"] for r in rows)
    total_b = sum(r["self_s_b"] for r in rows)
    meta_a, meta_b = a.get("meta", {}), b.get("meta", {})
    return {
        "schema": "repro.compare/1",
        "meta": {
            "a": meta_a, "b": meta_b,
            "same_problem": (meta_a.get("problem_key") is not None
                             and meta_a.get("problem_key")
                             == meta_b.get("problem_key")),
            "total_self_s_a": total_a,
            "total_self_s_b": total_b,
            "total_delta_s": total_b - total_a,
        },
        "rows": rows,
        # the regression culprit: only meaningful when something actually
        # got slower
        "culprit": dict(rows[0]) if rows and rows[0]["delta_s"] > 0.0 else None,
    }


def compare_table(cmp: dict, *, top: int = 0) -> str:
    """Human-readable ``bte compare`` table, culprit first."""
    lines = []
    header = (f"{'rank':>4} {'kind':<7} {'name':<28} {'A self_s':>11} "
              f"{'B self_s':>11} {'delta_s':>11} {'ratio':>7}")
    lines.append(header)
    lines.append("-" * len(header))
    rows = cmp.get("rows", [])
    if top:
        rows = rows[:top]
    for row in rows:
        ratio = row.get("ratio")
        rstr = "-" if ratio is None else f"{ratio:.2f}x"
        lines.append(
            f"{row.get('rank', 0):>4} {row.get('kind', '?'):<7} "
            f"{row.get('name', '?'):<28} {row.get('self_s_a', 0.0):>11.3e} "
            f"{row.get('self_s_b', 0.0):>11.3e} "
            f"{row.get('delta_s', 0.0):>+11.3e} {rstr:>7}"
        )
    meta = cmp.get("meta", {})
    lines.append(
        f"total self time: {meta.get('total_self_s_a', 0.0):.6f} s -> "
        f"{meta.get('total_self_s_b', 0.0):.6f} s "
        f"({meta.get('total_delta_s', 0.0):+.6f} s)"
    )
    culprit = cmp.get("culprit")
    if culprit is not None:
        ratio = culprit.get("ratio")
        rstr = "" if ratio is None else f" ({ratio:.2f}x)"
        lines.append(
            f"top culprit: rank {culprit.get('rank', 0)} "
            f"{culprit.get('kind', '?')} {culprit.get('name', '?')} "
            f"{culprit.get('delta_s', 0.0):+.6f} s{rstr}"
        )
    else:
        lines.append("top culprit: none (nothing got slower)")
    return "\n".join(lines)


# ------------------------------------------------------------------ rendering
def profile_table(doc: dict, *, top: int = 0) -> str:
    """Human-readable per-kernel table (``bte profile`` output)."""
    lines = []
    header = (f"{'rank':>4} {'kind':<7} {'name':<28} {'count':>6} "
              f"{'self_s':>10} {'total_s':>10} {'s/step':>10} "
              f"{'bound':<8} {'drift':>7}")
    lines.append(header)
    lines.append("-" * len(header))
    rows = [
        (entry.get("rank", 0), row)
        for entry in doc.get("ranks", [])
        for row in entry.get("kernels", [])
    ]
    rows.sort(key=lambda pair: pair[1].get("self_s", 0.0), reverse=True)
    if top:
        rows = rows[:top]
    for rank, row in rows:
        drift = row.get("drift")
        dstr = "-" if drift is None else f"{drift:.2f}"
        lines.append(
            f"{rank:>4} {row.get('kind', '?'):<7} {row.get('name', '?'):<28} "
            f"{row.get('count', 0):>6} {row.get('self_s', 0.0):>10.3e} "
            f"{row.get('total_s', 0.0):>10.3e} "
            f"{row.get('measured_s_per_step', 0.0):>10.3e} "
            f"{row.get('bound', '-') or '-':<8} {dstr:>7}"
        )
    drift_info = doc.get("drift", {})
    if drift_info:
        status = "EXCEEDED" if drift_info.get("exceeded") else "ok"
        lines.append(
            f"perfmodel drift: max |measured/predicted - 1| = "
            f"{drift_info.get('max_abs', 0.0):.2f} "
            f"(tolerance {drift_info.get('tolerance', DRIFT_TOLERANCE):.2f}, "
            f"{status})"
        )
    return "\n".join(lines)


__all__ = [
    "DRIFT_TOLERANCE",
    "RunProfiler",
    "SCHEMA",
    "build_profile",
    "compare_profiles",
    "compare_table",
    "extract_profile",
    "get_profiler",
    "load_profile",
    "problem_key",
    "profile_run",
    "profile_table",
    "set_profiler",
    "write_profile",
]
