"""Prometheus-style metrics: labelled counters, gauges and histograms.

The tracer (:mod:`repro.obs.tracer`) answers "*when* did it happen";
this module answers "*how much*, cumulatively".  Instrumented code all
over the runtime emits into the *current* :class:`MetricsRegistry`:

* the simulated communicator counts messages/bytes per rank and observes
  receive-wait times;
* the simulated device observes kernel occupancy, counts H2D/D2H bytes
  per direction and samples the launch-queue backlog;
* the generated solver loops record per-step residuals, the
  energy-conservation drift and step counts.

Like tracing, metrics are **zero-overhead when disabled**: the default
:data:`NULL_METRICS` absorbs every call with reusable no-op instruments,
so call sites stay unconditional (cheap paths additionally guard on
``metrics.enabled`` before computing expensive observations).

Exposition comes in two flavours: :meth:`MetricsRegistry.to_text` renders
the Prometheus text format (``# HELP`` / ``# TYPE`` / samples), and
:meth:`MetricsRegistry.to_dict` a schema-versioned JSON document
(``"repro.metrics/1"``) that rides inside the run report.

Histograms keep fixed buckets *and* a bounded sample reservoir, so they
can report exact-ish p50/p95 quantiles without unbounded memory — the
same scheme :class:`~repro.util.timing.TimerStats` uses for its
percentiles.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Any

from repro.util.errors import MetricsError
from repro.util.stats import RESERVOIR_SIZE, Reservoir, percentile

SCHEMA = "repro.metrics/1"

#: Default histogram buckets: log-ish spacing from microseconds to minutes,
#: wide enough for both wall times and virtual times.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 60.0,
)

def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Common machinery: one named family holding per-label-set series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", lock: threading.Lock | None = None):
        self.name = name
        self.help = help
        self._lock = lock or threading.Lock()
        self._series: dict[tuple[tuple[str, str], ...], Any] = {}

    def _get(self, labels: dict[str, Any]) -> Any:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._new_series()
                self._series[key] = series
            return series

    def _new_series(self) -> Any:
        raise NotImplementedError

    def series(self) -> dict[tuple[tuple[str, str], ...], Any]:
        with self._lock:
            return dict(self._series)


class Counter(_Metric):
    """Monotonically increasing value (bytes sent, messages, steps)."""

    kind = "counter"

    def _new_series(self) -> list[float]:
        return [0.0]

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise MetricsError(f"counter {self.name} cannot decrease (inc {value})")
        cell = self._get(labels)
        with self._lock:
            cell[0] += value

    def value(self, **labels: Any) -> float:
        return self._get(labels)[0]

    def samples(self) -> list[tuple[str, float]]:
        return [
            (self.name + _format_labels(key), cell[0])
            for key, cell in sorted(self.series().items())
        ]

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "values": {
                _format_labels(key) or "": cell[0]
                for key, cell in sorted(self.series().items())
            },
        }


class Gauge(_Metric):
    """Point-in-time value (queue depth, allocated bytes, occupancy)."""

    kind = "gauge"

    def _new_series(self) -> list[float]:
        return [0.0]

    def set(self, value: float, **labels: Any) -> None:
        self._get(labels)[0] = float(value)

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        cell = self._get(labels)
        with self._lock:
            cell[0] += value

    def dec(self, value: float = 1.0, **labels: Any) -> None:
        self.inc(-value, **labels)

    def value(self, **labels: Any) -> float:
        return self._get(labels)[0]

    def samples(self) -> list[tuple[str, float]]:
        return [
            (self.name + _format_labels(key), cell[0])
            for key, cell in sorted(self.series().items())
        ]

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "values": {
                _format_labels(key) or "": cell[0]
                for key, cell in sorted(self.series().items())
            },
        }


class _HistSeries:
    __slots__ = ("bucket_counts", "sum", "count", "reservoir", "min", "max")

    def __init__(self, nbuckets: int):
        self.bucket_counts = [0] * (nbuckets + 1)  # +inf bucket last
        self.sum = 0.0
        self.count = 0
        self.reservoir = Reservoir()
        self.min = math.inf
        self.max = -math.inf


class Histogram(_Metric):
    """Distribution of observations with buckets and p50/p95 quantiles."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                 lock: threading.Lock | None = None):
        super().__init__(name, help, lock)
        self.buckets = tuple(sorted(buckets))

    def _new_series(self) -> _HistSeries:
        return _HistSeries(len(self.buckets))

    def observe(self, value: float, **labels: Any) -> None:
        series = self._get(labels)
        with self._lock:
            idx = len(self.buckets)
            for i, edge in enumerate(self.buckets):
                if value <= edge:
                    idx = i
                    break
            series.bucket_counts[idx] += 1
            series.sum += value
            series.count += 1
            series.min = min(series.min, value)
            series.max = max(series.max, value)
            series.reservoir.add(value)

    def snapshot(self, **labels: Any) -> dict[str, Any]:
        """JSON-safe summary of one label-set's distribution."""
        s = self._get(labels)
        with self._lock:
            return _hist_dict(self.buckets, s)

    def samples(self) -> list[tuple[str, float]]:
        out: list[tuple[str, float]] = []
        for key, s in sorted(self.series().items()):
            cumulative = 0
            for edge, n in zip(self.buckets, s.bucket_counts):
                cumulative += n
                out.append((
                    self.name + "_bucket" + _format_labels(key, f'le="{edge:g}"'),
                    float(cumulative),
                ))
            out.append((
                self.name + "_bucket" + _format_labels(key, 'le="+Inf"'),
                float(s.count),
            ))
            out.append((self.name + "_sum" + _format_labels(key), s.sum))
            out.append((self.name + "_count" + _format_labels(key), float(s.count)))
        return out

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "values": {
                _format_labels(key) or "": _hist_dict(self.buckets, s)
                for key, s in sorted(self.series().items())
            },
        }


def _hist_dict(buckets: tuple[float, ...], s: _HistSeries) -> dict[str, Any]:
    return {
        "count": s.count,
        "sum": s.sum,
        "min": s.min if s.count else 0.0,
        "max": s.max if s.count else 0.0,
        "mean": s.sum / s.count if s.count else 0.0,
        "p50": s.reservoir.percentile(50.0),
        "p95": s.reservoir.percentile(95.0),
        "bucket_counts": list(s.bucket_counts),
    }


class _NullInstrument:
    """Absorbs every instrument call; shared by the null registry."""

    __slots__ = ()

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        return None

    def dec(self, value: float = 1.0, **labels: Any) -> None:
        return None

    def set(self, value: float, **labels: Any) -> None:
        return None

    def observe(self, value: float, **labels: Any) -> None:
        return None

    def value(self, **labels: Any) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: instruments are shared no-ops."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT


#: Module-wide disabled registry (singleton — identity comparisons are safe).
NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Get-or-create home of every metric family in one run.

    Families are identified by name; re-requesting a name returns the
    existing family (a kind mismatch is a programming error and raises).
    Thread-safe: rank threads and the hybrid host path register and emit
    concurrently.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    # ---------------------------------------------------------------- export
    def to_text(self) -> str:
        """Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        for m in metrics:
            if m.help:
                lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} {m.kind}")
            for sample_name, value in m.samples():
                lines.append(f"{sample_name} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON exposition (rides in the run report)."""
        with self._lock:
            metrics = {n: self._metrics[n] for n in sorted(self._metrics)}
        return {
            "schema": SCHEMA,
            "metrics": {name: m.as_dict() for name, m in metrics.items()},
        }

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        if path.suffix == ".txt" or path.suffix == ".prom":
            path.write_text(self.to_text())
        else:
            path.write_text(json.dumps(self.to_dict(), indent=1))
        return path


_current: MetricsRegistry | NullMetrics = NULL_METRICS


def get_metrics() -> MetricsRegistry | NullMetrics:
    """The registry instrumented code should emit into (never ``None``)."""
    return _current


def set_metrics(registry: MetricsRegistry | NullMetrics | None,
                ) -> MetricsRegistry | NullMetrics:
    """Install ``registry`` as current (``None`` resets); returns the previous."""
    global _current
    previous = _current
    _current = NULL_METRICS if registry is None else registry
    return previous


class metrics_run:
    """Install a live registry for a block; optionally write the exposition.

    Mirrors :func:`repro.obs.trace_run`::

        with metrics_run("metrics.json") as metrics:
            solver = problem.solve()
    """

    def __init__(self, path: str | Path | None = None, *,
                 registry: MetricsRegistry | None = None):
        self._path = path
        self.registry = registry or MetricsRegistry()
        self._previous: MetricsRegistry | NullMetrics | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_metrics(self.registry)
        return self.registry

    def __exit__(self, *exc) -> bool:
        set_metrics(self._previous)
        if self._path is not None:
            self.registry.write(self._path)
        return False


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "Reservoir",
    "SCHEMA",
    "get_metrics",
    "metrics_run",
    "percentile",
    "set_metrics",
]
