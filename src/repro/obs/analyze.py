"""Post-hoc analysis of exported traces and run reports.

The tracer (:mod:`repro.obs.tracer`) writes a Chrome-trace JSON and the
report builder (:mod:`repro.obs.report`) a schema-versioned summary; this
module turns the two back into the paper's headline quantities:

* **critical path** — a sweep over the virtual timeline attributes every
  slice of the makespan to the innermost span covering it (or ``idle``),
  giving a per-phase breakdown of *elapsed* time rather than summed busy
  time — the shape of the paper's Figs. 5/8 bars;
* **overlap efficiency** — the Fig. 6 picture as one number: the fraction
  of the shorter side (device kernels vs CPU boundary callbacks; rank
  compute vs communication) that runs concurrently with the other,
  ``overlapped / min(busy_a, busy_b)`` in ``(0, 1]`` when both exist;
* **placement explainability** — the report's per-task table (chosen
  device, modelled cost on both devices, measured cost, misprediction
  flag) rendered so the min-cut optimiser's decisions can be audited;
* **measured cross-rank critical path** — when the trace carries flow
  events (the comm layer's causal send->recv edges), the path is walked
  *backwards* from the last span to finish: a receive that blocked jumps
  to the sending rank's send span, everything else chains to the latest
  preceding span on the same track.  Unlike the innermost-covering sweep
  above (an inference from span nesting), this follows recorded causal
  dependencies across ranks, so the breakdown names the spans that
  actually gated the makespan and counts the rank hops along the way.

Wall-clock and virtual-clock spans share one trace but not one time axis;
the analyzer works on the *virtual* processes (any process owning a
kernel/transfer/comm/compute/sync span) when the run has them, falling
back to the wall-clock spans for pure host runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.util.errors import AnalysisInputError

SCHEMA = "repro.analysis/1"

#: Span categories recorded with virtual (simulated) timestamps.
_VIRTUAL_CATS = {"kernel", "transfer", "comm", "compute", "sync"}

#: Envelope categories excluded from critical-path attribution (they wrap
#: the whole run and would mask genuine idle time).
_ENVELOPE_CATS = {"run", "pipeline"}


@dataclass
class Span:
    """One completed span reconstructed from the trace-event JSON."""

    track: str
    name: str
    t0: float
    t1: float
    cat: str = ""
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def process(self) -> str:
        return self.track.partition("/")[0]


@dataclass
class Flow:
    """One causal edge reconstructed from a paired ``s``/``f`` flow event."""

    name: str
    flow_id: int
    src_track: str
    src_t: float
    dst_track: str
    dst_t: float
    args: dict[str, Any] = field(default_factory=dict)


def load_trace_doc(path: str | Path) -> tuple[list[Span], list[Flow]]:
    """Parse a Chrome trace-event JSON into spans plus causal flows.

    Accepts both the object form (``{"traceEvents": [...]}``) the tracer
    writes and the bare array form the format also allows.  Track names
    are rebuilt from the ``process_name``/``thread_name`` metadata events.
    Flow starts (``ph:"s"``) and finishes (``ph:"f"``) are paired by their
    ``id``; unpaired halves (a send whose message was dropped and never
    redelivered) are discarded.
    """
    doc = json.loads(Path(path).read_text())
    events = doc.get("traceEvents", []) if isinstance(doc, dict) else doc
    processes: dict[int, str] = {}
    threads: dict[tuple[int, int], str] = {}
    for ev in events:
        if ev.get("ph") != "M":
            continue
        if ev.get("name") == "process_name":
            processes[ev["pid"]] = ev["args"]["name"]
        elif ev.get("name") == "thread_name":
            threads[(ev["pid"], ev["tid"])] = ev["args"]["name"]

    def track_of(ev: dict[str, Any]) -> str:
        pid, tid = ev.get("pid", 0), ev.get("tid", 0)
        process = processes.get(pid, f"pid{pid}")
        thread = threads.get((pid, tid), f"tid{tid}")
        return process if thread == process else f"{process}/{thread}"

    spans = []
    starts: dict[int, dict[str, Any]] = {}
    ends: dict[int, dict[str, Any]] = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "X":
            t0 = ev["ts"] / 1e6
            spans.append(Span(
                track=track_of(ev), name=ev.get("name", "?"),
                t0=t0, t1=t0 + ev.get("dur", 0.0) / 1e6,
                cat=ev.get("cat", ""), args=ev.get("args", {}),
            ))
        elif ph == "s":
            starts[ev["id"]] = ev
        elif ph == "f":
            ends[ev["id"]] = ev

    flows = []
    for fid, s_ev in starts.items():
        f_ev = ends.get(fid)
        if f_ev is None:
            continue
        flows.append(Flow(
            name=s_ev.get("name", "?"), flow_id=fid,
            src_track=track_of(s_ev), src_t=s_ev["ts"] / 1e6,
            dst_track=track_of(f_ev), dst_t=f_ev["ts"] / 1e6,
            args=s_ev.get("args", {}),
        ))
    flows.sort(key=lambda f: f.src_t)
    return spans, flows


def load_trace(path: str | Path) -> list[Span]:
    """Parse a Chrome trace-event JSON back into :class:`Span` records."""
    return load_trace_doc(path)[0]


# ---------------------------------------------------------------------------
# interval arithmetic
# ---------------------------------------------------------------------------

def merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of half-open intervals as a sorted, disjoint list."""
    out: list[tuple[float, float]] = []
    for a, b in sorted(i for i in intervals if i[1] > i[0]):
        if out and a <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], b))
        else:
            out.append((a, b))
    return out


def total_length(merged: list[tuple[float, float]]) -> float:
    return sum(b - a for a, b in merged)


def intersection_length(a: list[tuple[float, float]],
                        b: list[tuple[float, float]]) -> float:
    """Measure of the intersection of two merged interval lists."""
    i = j = 0
    out = 0.0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            out += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


# ---------------------------------------------------------------------------
# the three analyses
# ---------------------------------------------------------------------------

def analysis_domain(spans: list[Span]) -> list[Span]:
    """The spans sharing one time axis: virtual processes when present."""
    virtual = {s.process for s in spans if s.cat in _VIRTUAL_CATS}
    if virtual:
        return [s for s in spans if s.process in virtual]
    return spans


def overlap_score(side_a: list[Span], side_b: list[Span],
                  label_a: str, label_b: str) -> dict[str, Any] | None:
    """Fig.-6-style overlap between two span populations, or ``None``.

    ``efficiency`` is the overlapped time divided by the *shorter* side's
    busy time: 1.0 means the cheaper side is fully hidden behind the other.
    """
    a = merge_intervals([(s.t0, s.t1) for s in side_a])
    b = merge_intervals([(s.t0, s.t1) for s in side_b])
    busy_a, busy_b = total_length(a), total_length(b)
    if busy_a <= 0 or busy_b <= 0:
        return None
    overlapped = intersection_length(a, b)
    return {
        "sides": [label_a, label_b],
        f"{label_a}_busy_s": busy_a,
        f"{label_b}_busy_s": busy_b,
        "overlapped_s": overlapped,
        "efficiency": overlapped / min(busy_a, busy_b),
    }


def kernel_boundary_overlap(spans: list[Span]) -> dict[str, Any] | None:
    """Device kernels vs CPU boundary callbacks (the paper's Fig. 6)."""
    kernels = [s for s in spans if s.cat == "kernel"]
    boundary = [s for s in spans if s.name == "boundary_callbacks"]
    return overlap_score(kernels, boundary, "kernel", "boundary")


def compute_comm_overlap(spans: list[Span]) -> dict[str, Any] | None:
    """Rank compute vs communication: how much comm hides behind work."""
    compute = [s for s in spans if s.cat == "compute"]
    comm = [s for s in spans if s.cat == "comm"]
    return overlap_score(compute, comm, "compute", "comm")


def critical_path(spans: list[Span]) -> dict[str, Any]:
    """Attribute every slice of the makespan to the innermost covering span.

    The sweep walks the sorted union of span boundaries; each segment is
    charged to the *shortest* span covering its midpoint (the most specific
    work happening then), or to ``idle`` when nothing covers it.  The
    returned phase seconds therefore sum to the makespan exactly — an
    elapsed-time breakdown, unlike summed busy time which double-counts
    overlapped work.
    """
    usable = [s for s in spans if s.cat not in _ENVELOPE_CATS and s.duration > 0]
    if not usable:
        return {"makespan_s": 0.0, "phases": {}, "path": []}
    cuts = sorted({t for s in usable for t in (s.t0, s.t1)})
    phases: dict[str, float] = {}
    path: list[dict[str, Any]] = []
    for lo, hi in zip(cuts[:-1], cuts[1:]):
        mid = (lo + hi) / 2.0
        covering = [s for s in usable if s.t0 <= mid < s.t1]
        name = min(covering, key=lambda s: s.duration).name if covering else "idle"
        phases[name] = phases.get(name, 0.0) + (hi - lo)
        if path and path[-1]["name"] == name and path[-1]["t1"] == lo:
            path[-1]["t1"] = hi
        else:
            path.append({"name": name, "t0": lo, "t1": hi})
    makespan = cuts[-1] - cuts[0]
    return {
        "makespan_s": makespan,
        "phases": dict(sorted(phases.items(), key=lambda kv: -kv[1])),
        "path": path,
    }


def critical_path_measured(spans: list[Span], flows: list[Flow],
                           eps: float = 1e-12) -> dict[str, Any]:
    """Walk the *recorded* dependency chain backwards from the last finisher.

    The inferred sweep above attributes elapsed time by span nesting; this
    one follows causality: starting at the latest-ending non-envelope span,
    the predecessor of a receive span that actually blocked (its
    ``waited_s`` is positive) is the *sending rank's* send span, reached
    through the flow edge the comm layer recorded for exactly the delivered
    message copy.  Every other span chains to the latest span on its own
    track ending at or before its start.  The result is a chain of spans
    whose time, plus the idle gaps between them, spans the makespan —
    with ``rank_hops`` counting how often the path crossed ranks.
    """
    usable = [s for s in spans if s.cat not in _ENVELOPE_CATS]
    if not usable:
        return {"makespan_s": 0.0, "phases": {}, "path": [],
                "rank_hops": 0, "n_flows": len(flows)}
    by_track: dict[str, list[Span]] = {}
    for s in usable:
        by_track.setdefault(s.track, []).append(s)
    for lst in by_track.values():
        lst.sort(key=lambda s: (s.t1, s.t0))
    sends = {s.args["span_id"]: s for s in usable
             if isinstance(s.args.get("span_id"), int)}
    # spans with a recorded outgoing causal edge: point-to-point flows bind
    # by the send span id itself; collective flows mint a fresh arrow id and
    # name the straggler's entry span in their args instead
    flow_srcs: set[int] = set()
    for f in flows:
        flow_srcs.add(f.flow_id)
        src = f.args.get("src_span")
        if isinstance(src, int) and src:
            flow_srcs.add(src)

    cur: Span | None = max(usable, key=lambda s: s.t1)
    chain: list[Span] = []
    hops = 0
    seen: set[int] = set()
    while cur is not None and id(cur) not in seen:
        seen.add(id(cur))
        chain.append(cur)
        nxt: Span | None = None
        parent = cur.args.get("parent_span_id")
        waited = float(cur.args.get("waited_s") or 0.0)
        if parent in flow_srcs and waited > eps:
            # the receive blocked: the sender gated it, not local history
            sender = sends.get(parent)
            if sender is not None:
                if sender.track != cur.track:
                    hops += 1
                nxt = sender
        if nxt is None:
            prior = [s for s in by_track.get(cur.track, [])
                     if s.t1 <= cur.t0 + eps and id(s) not in seen]
            nxt = prior[-1] if prior else None
        cur = nxt

    chain.reverse()
    phases: dict[str, float] = {}
    segments: list[dict[str, Any]] = []
    frontier = chain[0].t0
    for s in chain:
        gap = s.t0 - frontier
        if gap > eps:
            phases["idle"] = phases.get("idle", 0.0) + gap
        charged = max(s.t1 - max(s.t0, frontier), 0.0)
        phases[s.name] = phases.get(s.name, 0.0) + charged
        segments.append({"track": s.track, "name": s.name,
                         "t0": s.t0, "t1": s.t1})
        frontier = max(frontier, s.t1)
    return {
        "makespan_s": chain[-1].t1 - chain[0].t0,
        "phases": dict(sorted(phases.items(), key=lambda kv: -kv[1])),
        "path": segments,
        "rank_hops": hops,
        "n_flows": len(flows),
    }


# ---------------------------------------------------------------------------
# the combined analysis document
# ---------------------------------------------------------------------------

@dataclass
class Analysis:
    """Everything the analyzer derived from one trace/report pair."""

    meta: dict[str, Any] = field(default_factory=dict)
    critical: dict[str, Any] = field(default_factory=dict)
    critical_measured: dict[str, Any] | None = None
    overlap: dict[str, Any] = field(default_factory=dict)
    report_phases: dict[str, float] = field(default_factory=dict)
    placement: dict[str, Any] | None = None
    trace_stats: dict[str, Any] = field(default_factory=dict)
    kernels: list[dict[str, Any]] = field(default_factory=list)
    profile_drift: dict[str, Any] | None = None
    fusion: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "schema": SCHEMA,
            "meta": self.meta,
            "critical_path": self.critical,
            "overlap": self.overlap,
            "report_phases": self.report_phases,
            "trace": self.trace_stats,
        }
        if self.critical_measured is not None:
            doc["critical_path_measured"] = self.critical_measured
        if self.placement is not None:
            doc["placement"] = self.placement
        if self.kernels:
            doc["kernels"] = self.kernels
        if self.profile_drift is not None:
            doc["profile_drift"] = self.profile_drift
        if self.fusion is not None:
            doc["fusion"] = self.fusion
        return doc

    # ------------------------------------------------------------- rendering
    def render_text(self) -> str:
        lines: list[str] = []
        if self.meta:
            head = " ".join(
                f"{k}={self.meta[k]}" for k in
                ("problem", "target", "nsteps_run") if k in self.meta
            )
            lines.append(f"run: {head}" if head else "run:")
        crit = self.critical
        if crit.get("phases"):
            lines.append("")
            lines.append(f"critical path (makespan {crit['makespan_s']:.6f} s):")
            width = max(len(n) for n in crit["phases"])
            for name, secs in crit["phases"].items():
                frac = secs / crit["makespan_s"] if crit["makespan_s"] else 0.0
                bar = "#" * int(round(frac * 30))
                lines.append(
                    f"  {name:<{width}}  {secs:.6f} s  {frac * 100:5.1f}%  {bar}"
                )
            lines.append(f"  segments on path: {len(crit.get('path', []))}")
        meas = self.critical_measured
        if meas and meas.get("phases"):
            lines.append("")
            lines.append(
                f"measured critical path (causal, {meas['n_flows']} flow "
                f"edge(s), {meas['rank_hops']} rank hop(s), makespan "
                f"{meas['makespan_s']:.6f} s):")
            width = max(len(n) for n in meas["phases"])
            for name, secs in meas["phases"].items():
                frac = secs / meas["makespan_s"] if meas["makespan_s"] else 0.0
                bar = "#" * int(round(frac * 30))
                lines.append(
                    f"  {name:<{width}}  {secs:.6f} s  {frac * 100:5.1f}%  {bar}"
                )
            lines.append(f"  spans on path: {len(meas.get('path', []))}")
        for key, score in self.overlap.items():
            if score is None:
                continue
            a, b = score["sides"]
            lines.append("")
            lines.append(
                f"{key} overlap: efficiency {score['efficiency']:.3f} "
                f"({a} busy {score[f'{a}_busy_s']:.6f} s, "
                f"{b} busy {score[f'{b}_busy_s']:.6f} s, "
                f"overlapped {score['overlapped_s']:.6f} s)"
            )
        if self.report_phases:
            lines.append("")
            lines.append("reported phase fractions (Figs. 5/8 shape):")
            for name, frac in sorted(self.report_phases.items(),
                                     key=lambda kv: -kv[1]):
                lines.append(f"  {name:<22} {frac * 100:5.1f}%")
        if self.placement and self.placement.get("tasks"):
            lines.append("")
            lines.append("placement explainability (modelled vs measured, s/step):")
            lines.append(
                f"  {'task':<24} {'dev':<4} {'pin':<4} {'predicted':>11} "
                f"{'alternative':>11} {'delta':>11} {'measured':>11}  flag"
            )
            for row in self.placement["tasks"]:
                lines.append(
                    f"  {row['task']:<24} {row['device']:<4} "
                    f"{(row.get('pinned') or '-'):<4} "
                    f"{_fmt(row.get('predicted_s_per_step')):>11} "
                    f"{_fmt(row.get('alternative_s_per_step')):>11} "
                    f"{_fmt(row.get('predicted_delta_s')):>11} "
                    f"{_fmt(row.get('measured_s_per_step')):>11}  "
                    f"{'MISPREDICTED' if row.get('mispredicted') else 'ok'}"
                )
            moved = self.placement.get("bytes_moved_per_step")
            if moved is not None:
                lines.append(f"  bytes moved per step: {moved:.0f}")
        if self.kernels:
            lines.append("")
            lines.append("per-kernel roofline attribution (device timeline):")
            lines.append(
                f"  {'kernel':<24} {'count':>5} {'self_s':>11} "
                f"{'flop/byte':>10} {'ridge':>8} {'bound':<7} "
                f"{'%peak':>6} {'%bw':>6}"
            )
            for row in self.kernels:
                peak = row.get("flop_fraction_of_peak")
                bw = row.get("memory_throughput_fraction")
                lines.append(
                    f"  {row.get('name', '?'):<24} {row.get('count', 0):>5} "
                    f"{row.get('self_s', 0.0):>11.6f} "
                    f"{_fmt_ratio(row.get('intensity_flop_per_byte')):>10} "
                    f"{_fmt_ratio(row.get('ridge_flop_per_byte')):>8} "
                    f"{row.get('bound', '?'):<7} "
                    f"{_fmt_pct(peak):>6} {_fmt_pct(bw):>6}"
                )
        if self.profile_drift is not None:
            drift = self.profile_drift
            status = "EXCEEDED" if drift.get("exceeded") else "ok"
            lines.append("")
            lines.append(
                f"perfmodel drift: max |measured/predicted - 1| = "
                f"{_fmt_ratio(drift.get('max_abs'))} "
                f"(tolerance {_fmt_ratio(drift.get('tolerance'))}, {status})"
            )
        if self.fusion is not None and self.fusion.get("mode", "off") != "off":
            progs = self.fusion.get("programs") or {}
            lines.append("")
            lines.append(f"expression fusion: mode={self.fusion['mode']}, "
                         f"{len(progs)} fused program(s)")
            if progs:
                lines.append(
                    f"  {'program':<16} {'instrs':>6} {'regs':>5} "
                    f"{'slots':>5} {'temps-elim':>10} {'cse':>4} {'folded':>6}"
                )
                for name, st in sorted(progs.items()):
                    lines.append(
                        f"  {name:<16} {st.get('n_instructions', 0):>6} "
                        f"{st.get('n_registers', 0):>5} "
                        f"{st.get('n_slots', 0):>5} "
                        f"{st.get('temporaries_eliminated', 0):>10} "
                        f"{st.get('cse_hits', 0):>4} "
                        f"{st.get('constants_folded', 0):>6}"
                    )
        if self.trace_stats:
            lines.append("")
            lines.append(
                f"trace: {self.trace_stats.get('n_spans', 0)} spans on "
                f"{self.trace_stats.get('n_tracks', 0)} tracks "
                f"({self.trace_stats.get('n_virtual_spans', 0)} on the "
                "virtual timeline)"
            )
        return "\n".join(lines) + "\n"


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    return f"{value:.3e}"


def _fmt_ratio(value: Any) -> str:
    if value is None:
        return "-"
    return f"{value:.2f}"


def _fmt_pct(value: Any) -> str:
    if value is None:
        return "-"
    return f"{value * 100:.1f}%"


def _report_kernel_rows(report: dict[str, Any]) -> list[dict[str, Any]]:
    """Per-kernel roofline rows from a report's ``gpu`` section.

    Tolerates documents predating the ``kernel_rows`` field (and pre-``gpu``
    documents): every access goes through ``.get``, returning ``[]`` when the
    report has nothing to show.
    """
    gpu = report.get("gpu") or {}
    rows: list[dict[str, Any]] = []
    for dev in gpu.get("devices") or []:
        rows.extend(dev.get("kernel_rows") or [])
    for rank, rank_rows in enumerate(gpu.get("rank_kernels") or []):
        for row in rank_rows or []:
            row = dict(row)
            row["name"] = f"rank{rank}/{row.get('name', '?')}"
            rows.append(row)
    return rows


def analyze(trace_path: str | Path | None = None,
            report_path: str | Path | None = None) -> Analysis:
    """Analyze a trace JSON and/or a run-report JSON into one document."""
    if trace_path is None and report_path is None:
        raise AnalysisInputError("need a trace file, a report file, or both")
    analysis = Analysis()

    if report_path is not None:
        report = json.loads(Path(report_path).read_text())
        analysis.meta = report.get("meta", {})
        analysis.report_phases = report.get("phases", {})
        analysis.placement = report.get("placement")
        analysis.kernels = _report_kernel_rows(report)
        # drift summary from the nested repro.profile/1 document (older
        # reports predate the section — every hop via .get)
        profile = report.get("profile") or {}
        if profile.get("drift") is not None:
            analysis.profile_drift = profile["drift"]
        analysis.fusion = report.get("fusion")

    if trace_path is not None:
        spans, flows = load_trace_doc(trace_path)
        domain = analysis_domain(spans)
        analysis.trace_stats = {
            "n_spans": len(spans),
            "n_tracks": len({s.track for s in spans}),
            "n_virtual_spans": len(domain) if domain is not spans else 0,
            "n_flows": len(flows),
        }
        analysis.critical = critical_path(domain)
        if flows:
            analysis.critical_measured = critical_path_measured(domain, flows)
        analysis.overlap = {
            "kernel_boundary": kernel_boundary_overlap(domain),
            "compute_comm": compute_comm_overlap(domain),
        }
    return analysis


__all__ = [
    "Analysis",
    "Flow",
    "SCHEMA",
    "Span",
    "analysis_domain",
    "analyze",
    "compute_comm_overlap",
    "critical_path",
    "critical_path_measured",
    "intersection_length",
    "kernel_boundary_overlap",
    "load_trace",
    "load_trace_doc",
    "merge_intervals",
    "overlap_score",
    "total_length",
]
