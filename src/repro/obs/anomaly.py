"""Streaming anomaly detection over the observability singletons.

Four detectors watch the quantities the paper's scaling study cares about,
each with a named threshold in :data:`DEFAULT_THRESHOLDS`:

* **step-time spikes** — a step's wall time exceeding ``step_time_spike``
  times the rolling median of its rank's recent steps (a straggler step:
  GC pause, injected stall, degraded device path);
* **rank imbalance** — the slowest rank's virtual time exceeding
  ``rank_imbalance`` times the mean (the node x GPU x band imbalance the
  Perturbo scaling work diagnoses);
* **comm retry storms** — more receive retries than ``retry_storm`` (the
  fabric is lossy or a sender is wedged);
* **cache-miss storms** — compilation-cache miss ratio above
  ``cache_miss_storm`` once enough lookups happened (the cache key is
  unstable or the cache directory is cold when it should not be).

Alerts are emitted as ``anomaly.*`` warning events into the structured
event log as they fire, and collected into the run report's ``health``
section by :func:`health_section`.

The thresholds double as the regression gate's defaults: the benchmark
comparator (:mod:`repro.obs.regress`) takes its virtual/wall slowdown
tolerances and the observability-overhead budget from this table, so "what
counts as anomalous" lives in exactly one place.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

#: Single source of truth for "how bad is bad" across anomaly detection
#: and the ``repro.bench/1`` regression gate.
DEFAULT_THRESHOLDS: dict[str, float] = {
    # a step slower than this multiple of its rank's rolling median spikes
    "step_time_spike": 5.0,
    # slowest rank's virtual time over the mean rank time
    "rank_imbalance": 1.5,
    # receive retries per run before the fabric counts as storming
    "retry_storm": 8.0,
    # compilation-cache miss ratio (misses / lookups) once warmed up
    "cache_miss_storm": 0.5,
    # bench gate: tolerated relative slowdown for virtual timings
    "bench_regression": 0.25,
    # bench gate: tolerated relative slowdown for wall-clock timings
    "bench_wall_regression": 1.0,
    # bench gate: tolerated overhead ratio drift of the always-on
    # observability (event log ring + flight recorder), the 5% budget
    "obs_overhead": 0.05,
    # bench gate: tolerated fused/unfused wall-time ratio drift above the
    # ideal 1.0 ("fusion never runs slower", with room for timer noise)
    "fusion_overhead": 0.15,
    # bench gate: tolerated elastic-runtime on/off wall ratio above the
    # ideal 1.0.  Looser than obs_overhead: the imbalance watcher does
    # real periodic work (one decision allgather every check_every
    # steps), which on the tiny bench problem is a visible fraction of a
    # ~10 ms solve even though it vanishes at production sizes
    "rebalance_overhead": 0.25,
    # bench gate: tolerated solver-service on/off wall ratio above the
    # ideal 1.0 — one warm solve submitted through the running service vs
    # called directly.  The asyncio + executor + signature hops are the
    # price of admission control; the 10% budget keeps them honest
    "serve_overhead": 0.10,
    # bench gate: minimum wall speedup the service's request coalescing
    # must deliver on a burst of identical requests vs solving each one
    # directly (a *floor*, unlike the slowdown tolerances above)
    "serve_dedup_speedup_min": 2.0,
    # per-kernel profile: tolerated |measured/predicted - 1| before the
    # drift column flags the cost model for recalibration
    "perfmodel_drift": 0.5,
    # run history: wall-time growth vs the previous recorded run of the
    # same problem key before `bte history` flags a regression
    "history_regression": 0.25,
}

#: Steps a rank must complete before its spike detector arms.
_MIN_SAMPLES = 4

#: Cache lookups before the miss-ratio detector arms.
_MIN_CACHE_LOOKUPS = 4


@dataclass
class Alert:
    """One fired anomaly."""

    kind: str
    message: str
    value: float
    threshold: float
    severity: str = "warning"
    context: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "value": self.value,
            "threshold": self.threshold,
            "context": self.context,
        }


class AnomalyMonitor:
    """Streaming + post-run detectors; one singleton per process.

    The streaming half (:meth:`observe_step_time`) is fed by every
    generated run loop through ``SolverState.observe_step``; the post-run
    half (:meth:`scan`) inspects the comm result, the resilience log and
    the compilation cache when the run report is built.  Always-on and
    cheap: per-step cost is one deque append and a median of a small
    window, and each (kind, rank) alerts at most once per run.
    """

    enabled = True

    def __init__(self, thresholds: dict[str, float] | None = None,
                 window: int = 16):
        self._lock = threading.Lock()
        self.thresholds = dict(DEFAULT_THRESHOLDS)
        if thresholds:
            self.thresholds.update(thresholds)
        self.window = int(window)
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self._windows: dict[Any, deque[float]] = {}
            self._fired: set[tuple[str, Any]] = set()
            self.alerts: list[Alert] = []

    # ---------------------------------------------------------------- alerts
    def _fire(self, kind: str, key: Any, message: str, value: float,
              threshold: float, **context: Any) -> Alert | None:
        with self._lock:
            if (kind, key) in self._fired:
                return None
            self._fired.add((kind, key))
            alert = Alert(kind, message, float(value), float(threshold),
                          context=context)
            self.alerts.append(alert)
        from repro.obs.log import get_event_log

        get_event_log().emit(
            f"anomaly.{kind}", level="warning", message=message,
            value=float(value), threshold=float(threshold), **context)
        return alert

    # ------------------------------------------------------------- streaming
    def observe_step_time(self, seconds: float, rank: int | None = None,
                          step: int | None = None) -> Alert | None:
        """Feed one step's wall seconds; fires on a spike vs the rolling
        median of this rank's recent steps."""
        if not self.enabled:
            return None
        with self._lock:
            window = self._windows.get(rank)
            if window is None:
                window = self._windows[rank] = deque(maxlen=self.window)
            history = sorted(window)
            window.append(float(seconds))
        alert = None
        if len(history) >= _MIN_SAMPLES:
            median = history[len(history) // 2]
            k = self.thresholds["step_time_spike"]
            if median > 0 and seconds > k * median:
                where = f"rank {rank}" if rank is not None else "serial run"
                alert = self._fire(
                    "step_time_spike", rank,
                    f"step {step} on {where} took {seconds:.3e}s, "
                    f"{seconds / median:.1f}x the rolling median "
                    f"{median:.3e}s", seconds / median, k,
                    rank=rank, step=step, median_s=median, step_s=seconds)
        return alert

    # --------------------------------------------------------------- post-run
    def scan_rank_times(self, rank_times: list[float]) -> Alert | None:
        """Rank-imbalance check over per-rank virtual times."""
        if not self.enabled or len(rank_times) < 2:
            return None
        mean = sum(rank_times) / len(rank_times)
        if mean <= 0:
            return None
        worst = max(rank_times)
        ratio = worst / mean
        k = self.thresholds["rank_imbalance"]
        if ratio > k:
            return self._fire(
                "rank_imbalance", None,
                f"slowest rank ran {ratio:.2f}x the mean rank time "
                f"({worst:.3e}s vs {mean:.3e}s over {len(rank_times)} ranks)",
                ratio, k, nranks=len(rank_times), worst_s=worst, mean_s=mean)
        return None

    def scan_resilience(self, resilience) -> Alert | None:
        """Retry-storm check over the resilience log."""
        if not self.enabled:
            return None
        retries = getattr(resilience, "retries", 0)
        k = self.thresholds["retry_storm"]
        if retries > k:
            return self._fire(
                "retry_storm", None,
                f"{retries} receive retries this run (threshold {k:g}): "
                "the fabric is lossy or a sender is wedged",
                float(retries), k, retries=retries)
        return None

    def scan_cache(self, stats) -> Alert | None:
        """Cache-miss-storm check over compilation-cache statistics."""
        if not self.enabled:
            return None
        hits = getattr(stats, "hits", 0)
        misses = getattr(stats, "misses", 0)
        lookups = hits + misses
        if lookups < _MIN_CACHE_LOOKUPS:
            return None
        ratio = misses / lookups
        k = self.thresholds["cache_miss_storm"]
        if ratio > k:
            return self._fire(
                "cache_miss_storm", None,
                f"compilation cache missed {misses}/{lookups} lookups "
                f"({ratio:.0%}): unstable cache key or cold cache dir",
                ratio, k, hits=hits, misses=misses)
        return None

    def scan(self, solver=None) -> list[Alert]:
        """Run every post-run detector against the live singletons."""
        if not self.enabled:
            return []
        spmd = getattr(getattr(solver, "state", None), "spmd_result", None)
        if spmd is not None:
            self.scan_rank_times(list(spmd.times))
        from repro.runtime.resilience import get_resilience_log

        self.scan_resilience(get_resilience_log())
        from repro.tune.cache import get_cache

        cache = get_cache()
        if cache.enabled:
            self.scan_cache(cache.stats)
        with self._lock:
            return list(self.alerts)

    # ----------------------------------------------------------------- report
    def section(self) -> dict[str, Any]:
        """The run report's ``health`` section."""
        with self._lock:
            alerts = [a.to_dict() for a in self.alerts]
        status = "ok"
        if any(a["severity"] == "error" for a in alerts):
            status = "error"
        elif alerts:
            status = "warning"
        return {
            "status": status,
            "alerts": alerts,
            "thresholds": dict(self.thresholds),
            "checked_at": time.time(),
        }


_MONITOR = AnomalyMonitor()


def get_anomaly_monitor() -> AnomalyMonitor:
    """The process-wide anomaly monitor singleton."""
    return _MONITOR


def health_section(solver=None) -> dict[str, Any]:
    """Scan the finished run and render the report's ``health`` section."""
    monitor = get_anomaly_monitor()
    monitor.scan(solver)
    return monitor.section()


def history_flags(entries: list[dict[str, Any]],
                  thresholds: dict[str, float] | None = None
                  ) -> list[list[str]]:
    """Anomaly flags for a run-registry timeline (``bte history``).

    ``entries`` are ``repro.runs/1`` documents of one problem key, oldest
    first.  Per entry:

    * ``regression`` — recorded wall seconds grew more than
      ``history_regression`` over the previous entry's;
    * ``drift`` — the entry's profile flagged cost-model drift;
    * ``health`` — the entry's run report recorded a non-ok health status.
    """
    table = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        table.update(thresholds)
    flags: list[list[str]] = []
    prev_wall: float | None = None
    for entry in entries:
        entry_flags: list[str] = []
        wall = entry.get("meta", {}).get("wall_s")
        if (wall is not None and prev_wall is not None and prev_wall > 0
                and (wall - prev_wall) / prev_wall
                > table["history_regression"]):
            entry_flags.append("regression")
        if wall is not None:
            prev_wall = float(wall)
        if entry.get("profile", {}).get("drift", {}).get("exceeded"):
            entry_flags.append("drift")
        health = entry.get("report", {}).get("health", {})
        if health.get("status", "ok") != "ok":
            entry_flags.append("health")
        flags.append(entry_flags)
    return flags


__all__ = [
    "Alert",
    "AnomalyMonitor",
    "DEFAULT_THRESHOLDS",
    "get_anomaly_monitor",
    "health_section",
    "history_flags",
]
