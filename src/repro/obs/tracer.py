"""Span-based tracer with Chrome trace-event / Perfetto export.

One :class:`Tracer` collects the whole run's timeline events across every
execution substrate:

* **host threads** (wall clock) — the generated solver phases, one track per
  Python thread (the SPMD executor names its threads ``rank{r}``);
* **virtual rank timelines** — the simulated communicator charges
  compute/communication spans onto ``virtual/rank{r}`` tracks;
* **device timelines** — each simulated GPU stream and its transfer engine
  emit kernel/copy spans on their own tracks, so the paper's Fig. 6 overlap
  (interior kernel concurrent with CPU boundary callbacks) is directly
  visible in the exported trace.

Tracks are strings of the form ``"<process>/<thread>"`` (a bare name is its
own process).  :meth:`Tracer.to_chrome_trace` maps processes to ``pid`` and
threads to ``tid`` and emits ``process_name``/``thread_name`` metadata, so
the JSON written by :meth:`Tracer.write` opens directly in ``ui.perfetto.dev``
or ``chrome://tracing``.

Tracing is **zero-overhead when disabled**: the module-level
:data:`NULL_TRACER` answers every recording call with a no-op and reuses a
single null context manager, so instrumented code can call it
unconditionally.  Timestamps are seconds (wall or virtual); the exporter
converts to the trace format's microseconds.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

# Process-wide span-ID source.  ``itertools.count`` is atomic in CPython,
# so rank threads can mint IDs without a lock; 0 means "no span".
_span_ids = itertools.count(1)


def next_span_id() -> int:
    """A process-unique nonzero span ID (cheap, thread-safe)."""
    return next(_span_ids)


def new_trace_id() -> str:
    """A fresh 16-hex-digit run/trace identifier."""
    return uuid.uuid4().hex[:16]


@dataclass
class SpanEvent:
    """One complete span on a track (``ph: "X"`` in the trace format)."""

    track: str
    name: str
    t0: float
    t1: float
    cat: str = ""
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def overlaps(self, other: "SpanEvent") -> bool:
        """True when the two spans' time intervals intersect."""
        return self.t0 < other.t1 and other.t0 < self.t1


@dataclass
class CounterEvent:
    """One sample of a named counter series on a track."""

    track: str
    name: str
    t: float
    value: float


@dataclass
class InstantEvent:
    """A zero-duration marker (``ph: "i"``)."""

    track: str
    name: str
    t: float
    cat: str = ""
    args: dict[str, Any] = field(default_factory=dict)


@dataclass
class FlowEvent:
    """A causal arrow between two tracks (``ph: "s"``/``"f"`` pair).

    Recorded in one shot by the *receiving* side of a cross-rank message
    (the sender's span context travels inside the message), so every flow
    is complete by construction — no unmatched starts to drop at export.
    ``flow_id`` doubles as the Perfetto flow-binding ID: for point-to-point
    messages it is the sender's span ID; collectives mint a fresh ID per
    arrow (several ranks may depend on one straggler) and carry the source
    span in ``args["src_span"]`` instead.
    """

    name: str
    flow_id: int
    src_track: str
    src_t: float
    dst_track: str
    dst_t: float
    cat: str = "flow"
    args: dict[str, Any] = field(default_factory=dict)


class _NullSpan:
    """Reusable no-op context manager handed out by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every call is a no-op.

    Instrumented code keeps a single unconditional call site
    (``tracer.complete(...)``); when tracing is off this class absorbs it
    without allocating.
    """

    enabled = False
    trace_id = ""

    def span(self, track: str, name: str, cat: str = "phase", **args) -> _NullSpan:
        return _NULL_SPAN

    def complete(self, track: str, name: str, t0: float, t1: float,
                 cat: str = "", **args) -> None:
        return None

    def instant(self, track: str, name: str, t: float, cat: str = "", **args) -> None:
        return None

    def counter(self, track: str, name: str, t: float, value: float) -> None:
        return None

    def flow(self, name: str, flow_id: int, src_track: str, src_t: float,
             dst_track: str, dst_t: float, **args) -> None:
        return None

    def active_spans(self) -> list[dict[str, Any]]:
        return []


#: Module-wide disabled tracer (singleton — identity comparisons are safe).
NULL_TRACER = NullTracer()


class _LiveSpan:
    """Context manager recording a wall-clock span into a live tracer.

    Open spans register with the tracer so the flight recorder can list
    what every thread was inside at crash time (``Tracer.active_spans``).
    """

    __slots__ = ("_tracer", "_track", "_name", "_cat", "_args", "_t0")

    def __init__(self, tracer: "Tracer", track: str, name: str, cat: str,
                 args: dict[str, Any]):
        self._tracer = tracer
        self._track = track
        self._name = name
        self._cat = cat
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_LiveSpan":
        self._t0 = self._tracer.clock()
        self._tracer._open_span(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._close_span(self)
        self._tracer.complete(
            self._track, self._name, self._t0, self._tracer.clock(),
            cat=self._cat, **self._args,
        )
        return False


class Tracer:
    """Collects spans/counters/instants from every layer of one run.

    Thread-safe: rank programs run on real threads and record concurrently.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter, trace_id: str | None = None):
        self.clock = clock
        self.trace_id = trace_id or new_trace_id()
        self._lock = threading.Lock()
        self.spans: list[SpanEvent] = []
        self.counters: list[CounterEvent] = []
        self.instants: list[InstantEvent] = []
        self.flows: list[FlowEvent] = []
        self._active: dict[int, _LiveSpan] = {}

    # ------------------------------------------------------------- recording
    def span(self, track: str, name: str, cat: str = "phase", **args) -> _LiveSpan:
        """Context manager measuring a wall-clock span on ``track``."""
        return _LiveSpan(self, track, name, cat, args)

    def complete(self, track: str, name: str, t0: float, t1: float,
                 cat: str = "", **args) -> None:
        """Record a finished span with explicit timestamps (virtual clocks).

        ``span_id``/``parent_id`` keyword args (when callers pass them) ride
        in ``args`` and surface in the export, linking the span to flow
        events and to the structured event log's correlation IDs.
        """
        with self._lock:
            self.spans.append(SpanEvent(track, name, t0, t1, cat, args))

    def instant(self, track: str, name: str, t: float, cat: str = "", **args) -> None:
        with self._lock:
            self.instants.append(InstantEvent(track, name, t, cat, args))

    def counter(self, track: str, name: str, t: float, value: float) -> None:
        with self._lock:
            self.counters.append(CounterEvent(track, name, t, float(value)))

    def flow(self, name: str, flow_id: int, src_track: str, src_t: float,
             dst_track: str, dst_t: float, **args) -> None:
        """Record a complete causal arrow (both endpoints known)."""
        with self._lock:
            self.flows.append(FlowEvent(
                name, flow_id, src_track, src_t, dst_track, dst_t, args=args))

    # ---------------------------------------------------------- active spans
    def _open_span(self, span: _LiveSpan) -> None:
        with self._lock:
            self._active[id(span)] = span

    def _close_span(self, span: _LiveSpan) -> None:
        with self._lock:
            self._active.pop(id(span), None)

    def active_spans(self) -> list[dict[str, Any]]:
        """Snapshot of currently-open wall-clock spans (crash forensics)."""
        now = self.clock()
        with self._lock:
            live = list(self._active.values())
        return [
            {"track": s._track, "name": s._name, "cat": s._cat,
             "t0": s._t0, "elapsed_s": max(now - s._t0, 0.0),
             "args": dict(s._args)}
            for s in sorted(live, key=lambda s: s._t0)
        ]

    # --------------------------------------------------------------- queries
    def tracks(self) -> list[str]:
        """All track names seen so far, sorted."""
        with self._lock:
            names = {e.track for e in self.spans}
            names |= {e.track for e in self.counters}
            names |= {e.track for e in self.instants}
        return sorted(names)

    def spans_on(self, track: str) -> list[SpanEvent]:
        with self._lock:
            return [s for s in self.spans if s.track == track]

    def find_spans(self, name: str) -> list[SpanEvent]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    # ---------------------------------------------------------------- export
    @staticmethod
    def _split(track: str) -> tuple[str, str]:
        process, _, thread = track.partition("/")
        return (process, thread or process)

    def to_chrome_trace(self) -> dict[str, Any]:
        """Render as a Chrome trace-event document (Perfetto-compatible).

        Degenerate runs stay loadable: a trace with zero spans (counters
        only, instants only, or nothing at all) still gets process/thread
        metadata and at least one event, because both Perfetto and
        ``chrome://tracing`` reject files whose ``traceEvents`` is empty.
        """
        with self._lock:
            spans = list(self.spans)
            counters = list(self.counters)
            instants = list(self.instants)
            flows = list(self.flows)

        pids: dict[str, int] = {}
        tids: dict[tuple[str, str], int] = {}
        events: list[dict[str, Any]] = []

        def ids(track: str) -> tuple[int, int]:
            process, thread = self._split(track)
            if process not in pids:
                pids[process] = len(pids) + 1
                events.append({
                    "ph": "M", "name": "process_name", "pid": pids[process],
                    "tid": 0, "args": {"name": process},
                })
            key = (process, thread)
            if key not in tids:
                tids[key] = len([k for k in tids if k[0] == process]) + 1
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pids[process],
                    "tid": tids[key], "args": {"name": thread},
                })
            return pids[process], tids[key]

        for s in sorted(spans, key=lambda e: e.t0):
            pid, tid = ids(s.track)
            events.append({
                "ph": "X", "name": s.name, "cat": s.cat or "span",
                "pid": pid, "tid": tid,
                "ts": s.t0 * 1e6, "dur": max(s.duration, 0.0) * 1e6,
                "args": s.args,
            })
        for i in sorted(instants, key=lambda e: e.t):
            pid, tid = ids(i.track)
            events.append({
                "ph": "i", "s": "t", "name": i.name, "cat": i.cat or "instant",
                "pid": pid, "tid": tid, "ts": i.t * 1e6, "args": i.args,
            })
        for c in sorted(counters, key=lambda e: e.t):
            pid, tid = ids(c.track)
            events.append({
                "ph": "C", "name": c.name, "pid": pid, "tid": tid,
                "ts": c.t * 1e6, "args": {"value": c.value},
            })
        # flows: one "s"/"f" pair per recorded causal arrow.  Both ends are
        # known (complete-by-construction), so nothing dangles in the UI.
        for f in sorted(flows, key=lambda e: e.src_t):
            src_pid, src_tid = ids(f.src_track)
            dst_pid, dst_tid = ids(f.dst_track)
            common = {"name": f.name, "cat": f.cat or "flow", "id": f.flow_id}
            events.append({
                "ph": "s", **common, "pid": src_pid, "tid": src_tid,
                "ts": f.src_t * 1e6, "args": f.args,
            })
            events.append({
                "ph": "f", "bp": "e", **common, "pid": dst_pid,
                "tid": dst_tid, "ts": f.dst_t * 1e6, "args": f.args,
            })
        if not any(e["ph"] != "M" for e in events):
            # an entirely empty (or metadata-only) trace: emit one marker so
            # the file always loads
            pid, tid = ids("host")
            events.append({
                "ph": "i", "s": "t", "name": "trace_empty", "cat": "meta",
                "pid": pid, "tid": tid, "ts": 0.0, "args": {},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"trace_id": self.trace_id}}

    def write(self, path: str | Path) -> Path:
        """Write the Chrome-trace JSON; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace(), indent=1))
        return path

    def summary(self) -> dict[str, Any]:
        """Compact description for the run report."""
        with self._lock:
            n_spans = len(self.spans)
            n_counters = len(self.counters)
            n_instants = len(self.instants)
            n_flows = len(self.flows)
        return {
            "trace_id": self.trace_id,
            "n_spans": n_spans,
            "n_counters": n_counters,
            "n_instants": n_instants,
            "n_flows": n_flows,
            "tracks": self.tracks(),
        }


__all__ = [
    "CounterEvent",
    "FlowEvent",
    "InstantEvent",
    "NULL_TRACER",
    "NullTracer",
    "SpanEvent",
    "Tracer",
    "new_trace_id",
    "next_span_id",
]
