"""Structured event log: the ``repro.events/1`` JSONL stream.

Every layer of the runtime — comm, device, executor, faults, resilience,
sanitizer, tune-cache and the generated step loops — emits *events* here
instead of ad-hoc prints.  An :class:`Event` is a timestamped, levelled,
named record with free-form fields plus the correlation IDs that tie it to
the tracer's timeline: the run's ``trace_id`` and, where a span exists,
``span_id``/``parent_id``.

The log is a module-level singleton (same pattern as the tracer, metrics
and sanitizer) and is **always on** as a bounded in-memory ring buffer —
the flight recorder (:mod:`repro.obs.blackbox`) reads the ring to build
post-mortem bundles, so the last ~2k events of any crash are recoverable
without any flag.  Streaming to disk is opt-in (``--events FILE`` /
:func:`events_run`): the file is JSON Lines, one header record::

    {"schema": "repro.events/1", "trace_id": ..., "created": ...}

followed by one JSON object per event.  ``python -m repro events FILE``
tails, filters and pretty-prints it.

Hot paths stay cheap: per-message comm events are ``debug`` level and the
default threshold is ``info``, so a fault-free production run pays one
integer compare per would-be event (gated by :attr:`EventLog.debug_enabled`
/ :meth:`EventLog.wants`).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TextIO

SCHEMA = "repro.events/1"

#: Numeric severity ordering (matches stdlib logging / 10).
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _level_no(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown event level {level!r} (choose from {sorted(LEVELS)})"
        ) from None


@dataclass
class Event:
    """One structured event: what happened, when, where, and under which span."""

    name: str
    level: str = "info"
    ts: float = 0.0  # wall-clock epoch seconds
    rank: int | None = None
    step: int | None = None
    trace_id: str = ""
    span_id: int = 0
    parent_id: int = 0
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"ts": self.ts, "level": self.level,
                               "name": self.name}
        if self.rank is not None:
            doc["rank"] = self.rank
        if self.step is not None:
            doc["step"] = self.step
        if self.trace_id:
            doc["trace_id"] = self.trace_id
        if self.span_id:
            doc["span_id"] = self.span_id
        if self.parent_id:
            doc["parent_id"] = self.parent_id
        if self.fields:
            doc["fields"] = self.fields
        return doc


class EventLog:
    """Thread-safe, bounded, optionally file-backed event sink.

    ``ring_size`` bounds the in-memory tail (the flight recorder's food);
    ``path`` adds JSONL streaming; ``level`` filters at emit time.  A
    disabled log (``enabled=False``) absorbs every emit with one attribute
    check — it is what the overhead benchmarks compare against.
    """

    def __init__(self, path: str | Path | None = None, level: str = "info",
                 ring_size: int = 2048, enabled: bool = True):
        self._lock = threading.Lock()
        self.enabled = enabled
        self.path = Path(path) if path is not None else None
        self.ring_size = int(ring_size)
        self._ring: deque[Event] = deque(maxlen=self.ring_size)
        self._counts: dict[str, int] = {}
        self._file: TextIO | None = None
        self._levelno = _level_no(level)
        self.debug_enabled = enabled and self._levelno <= LEVELS["debug"]
        if self.path is not None:
            self._file = self.path.open("w")
            header = {"schema": SCHEMA, "created": time.time()}
            self._file.write(json.dumps(header) + "\n")
            self._file.flush()

    # ------------------------------------------------------------------ level
    @property
    def level(self) -> str:
        no = self._levelno
        for name, value in LEVELS.items():
            if value == no:
                return name
        return str(no)

    def set_level(self, level: str) -> None:
        self._levelno = _level_no(level)
        self.debug_enabled = self.enabled and self._levelno <= LEVELS["debug"]

    def wants(self, level: str) -> bool:
        """True when an event at ``level`` would be recorded."""
        return self.enabled and _level_no(level) >= self._levelno

    # ------------------------------------------------------------------- emit
    def emit(self, name: str, level: str = "info", *,
             rank: int | None = None, step: int | None = None,
             span_id: int = 0, parent_id: int = 0, trace_id: str | None = None,
             **fields: Any) -> Event | None:
        """Record one event (or nothing, below the level threshold).

        ``trace_id`` defaults to the current tracer's run ID when a live
        tracer is installed, so events and spans correlate for free.
        """
        if not self.enabled or _level_no(level) < self._levelno:
            return None
        if trace_id is None:
            from repro.obs import get_tracer

            tracer = get_tracer()
            trace_id = tracer.trace_id if tracer.enabled else ""
        event = Event(
            name=name, level=level, ts=time.time(), rank=rank, step=step,
            trace_id=trace_id, span_id=span_id, parent_id=parent_id,
            fields=fields,
        )
        line = None
        if self._file is not None:
            line = json.dumps(event.to_dict())
        with self._lock:
            self._ring.append(event)
            self._counts[level] = self._counts.get(level, 0) + 1
            if self._file is not None:
                self._file.write(line + "\n")
                self._file.flush()
        return event

    # ---------------------------------------------------------------- queries
    def tail(self, n: int | None = None) -> list[Event]:
        """The most recent ``n`` events (all ring contents by default)."""
        with self._lock:
            events = list(self._ring)
        if n is not None:
            events = events[-n:]
        return events

    def counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def summary(self) -> dict[str, Any]:
        """Compact description for the run report's ``events`` section."""
        doc: dict[str, Any] = {
            "total": sum(self.counts().values()),
            "by_level": self.counts(),
            "level": self.level,
            "ring_size": self.ring_size,
        }
        if self.path is not None:
            doc["path"] = str(self.path)
        return doc

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


#: The always-on default: in-memory ring only, info level, no file.
_current = EventLog()


def get_event_log() -> EventLog:
    """The event log instrumented code should emit into (never ``None``)."""
    return _current


def set_event_log(log: EventLog | None) -> EventLog:
    """Install ``log`` as current (``None`` resets to a fresh default ring);
    returns the previous log."""
    global _current
    previous = _current
    _current = EventLog() if log is None else log
    return previous


def log_event(name: str, level: str = "info", **kwargs: Any) -> Event | None:
    """Convenience: emit into the current log (resolves it at call time)."""
    return _current.emit(name, level, **kwargs)


@contextmanager
def events_run(path: str | Path | None = None, *, level: str = "info",
               ring_size: int = 2048):
    """Install a fresh event log for the block; optionally stream to JSONL.

    Yields the :class:`EventLog`; on exit the file is closed (flushed even
    if the block raised — crash tails are the ones you need) and the
    previous log restored.
    """
    log = EventLog(path, level=level, ring_size=ring_size)
    previous = set_event_log(log)
    try:
        yield log
    finally:
        set_event_log(previous)
        log.close()


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Parse a ``repro.events/1`` JSONL file back into event dicts.

    Validates the header record; tolerates a truncated (crashed) last line.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty event log")
    header = json.loads(lines[0])
    schema = header.get("schema", "")
    if not str(schema).startswith("repro.events/"):
        raise ValueError(
            f"{path}: not an event log (schema={schema!r})"
        )
    events = []
    for line in lines[1:]:
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            break  # truncated tail of a crashed writer
    return events


__all__ = [
    "Event",
    "EventLog",
    "LEVELS",
    "SCHEMA",
    "events_run",
    "get_event_log",
    "log_event",
    "read_events",
    "set_event_log",
]
