"""Always-on flight recorder: the ``repro.blackbox/1`` post-mortem bundle.

An aircraft-style black box for solver runs: the event log's bounded ring
(:mod:`repro.obs.log`) is always recording, this module adds periodic
metrics snapshots and — whenever a :class:`~repro.util.errors.ReproError`,
a sanitizer trip or an unhandled rank crash occurs — assembles everything
into one post-mortem bundle:

.. code-block:: text

    schema       "repro.blackbox/1"
    reason       dump trigger ("rank_failure", "sanitizer", "cli_error", ...)
    error        {type, message, code} of the triggering exception
    trace_id     the run's correlation ID (matches events and spans)
    events       the last-N structured events (step/rank/span provenance)
    snapshots    periodic metrics snapshots (heartbeat of the dying run)
    active_spans what every thread was inside at dump time
    diagnostics  runtime-sanitizer findings, when the sanitizer was live
    resilience   injected faults / retries / recoveries, when any happened
    checkpoint   the most recent checkpoint path, for restart

The recorder is a module-level singleton.  Dumping is cheap and always
produces a bundle in memory (:attr:`FlightRecorder.last_bundle`); writing
to disk happens only when a directory is configured (CLI ``--blackbox-dir``,
``$REPRO_BLACKBOX_DIR``, or :meth:`FlightRecorder.configure`), so library
error paths never surprise callers with files.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

SCHEMA = "repro.blackbox/1"

#: How many heartbeat calls between metrics snapshots.
DEFAULT_SNAPSHOT_EVERY = 25

#: How many snapshots the recorder retains.
DEFAULT_MAX_SNAPSHOTS = 16

#: How many events a bundle carries (<= the event-log ring size).
DEFAULT_MAX_EVENTS = 256

_dump_seq = itertools.count(1)


class FlightRecorder:
    """Bounded, always-on crash recorder over the observability singletons."""

    def __init__(self, directory: str | Path | None = None,
                 snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
                 max_snapshots: int = DEFAULT_MAX_SNAPSHOTS,
                 max_events: int = DEFAULT_MAX_EVENTS,
                 enabled: bool = True):
        self._lock = threading.Lock()
        self.enabled = enabled
        self.directory = Path(directory) if directory else None
        self.snapshot_every = max(int(snapshot_every), 1)
        self.max_events = int(max_events)
        self._snapshots: deque[dict[str, Any]] = deque(maxlen=max_snapshots)
        self._beats = 0
        self.last_bundle: dict[str, Any] | None = None
        self.dumps_written: list[Path] = []

    def configure(self, *, directory: str | Path | None = None,
                  enabled: bool | None = None,
                  snapshot_every: int | None = None) -> "FlightRecorder":
        if directory is not None:
            self.directory = Path(directory)
        if enabled is not None:
            self.enabled = enabled
        if snapshot_every is not None:
            self.snapshot_every = max(int(snapshot_every), 1)
        return self

    def reset(self) -> None:
        with self._lock:
            self._snapshots.clear()
            self._beats = 0
            self.last_bundle = None
            self.dumps_written = []

    # -------------------------------------------------------------- heartbeat
    def heartbeat(self, step: int | None = None, rank: int | None = None) -> None:
        """Cheap per-step pulse; every Nth takes a metrics snapshot.

        Called by :meth:`~repro.codegen.state.SolverState.observe_step` on
        every generated run loop, so the recorder knows how far a run got
        even when metrics and tracing are off.
        """
        if not self.enabled:
            return
        with self._lock:
            self._beats += 1
            due = self._beats % self.snapshot_every == 0
        if due:
            self.snapshot(step=step, rank=rank)

    def snapshot(self, step: int | None = None, rank: int | None = None) -> None:
        """Capture one metrics snapshot (counter totals only: small)."""
        if not self.enabled:
            return
        snap: dict[str, Any] = {"ts": time.time()}
        if step is not None:
            snap["step"] = step
        if rank is not None:
            snap["rank"] = rank
        from repro.obs.metrics import get_metrics

        metrics = get_metrics()
        if metrics.enabled:
            totals: dict[str, float] = {}
            for name, fam in metrics.to_dict().get("metrics", {}).items():
                total = 0.0
                for value in fam.get("values", {}).values():
                    if isinstance(value, (int, float)):
                        total += value
                    elif isinstance(value, dict):  # histogram series
                        total += value.get("count", 0)
                totals[name] = total
            snap["counters"] = totals
        with self._lock:
            self._snapshots.append(snap)

    # ------------------------------------------------------------------ dump
    def bundle(self, reason: str, exc: BaseException | None = None) -> dict[str, Any]:
        """Assemble the post-mortem document from the live singletons."""
        from repro.obs import get_tracer
        from repro.obs.log import get_event_log
        from repro.obs.metrics import get_metrics

        elog = get_event_log()
        tracer = get_tracer()
        doc: dict[str, Any] = {
            "schema": SCHEMA,
            "reason": reason,
            "created": time.time(),
            "trace_id": tracer.trace_id if tracer.enabled else "",
            "events": [e.to_dict() for e in elog.tail(self.max_events)],
            "event_counts": elog.counts(),
        }
        if exc is not None:
            doc["error"] = {
                "type": type(exc).__name__,
                "message": str(exc),
                "code": getattr(exc, "code", None),
            }
        with self._lock:
            doc["snapshots"] = list(self._snapshots)
            doc["heartbeats"] = self._beats
        doc["active_spans"] = tracer.active_spans()
        metrics = get_metrics()
        if metrics.enabled:
            doc["metrics"] = metrics.to_dict()
        from repro.verify.sanitizer import sanitizer_section

        diagnostics = sanitizer_section()
        if diagnostics is not None:
            doc["diagnostics"] = diagnostics
        from repro.runtime.resilience import get_resilience_log

        rlog = get_resilience_log()
        if rlog.has_events():
            doc["resilience"] = rlog.as_dict()
            if rlog.checkpoint_paths:
                doc["checkpoint"] = rlog.checkpoint_paths[-1]
        return doc

    def dump(self, reason: str, exc: BaseException | None = None) -> Path | None:
        """Build (and, when a directory is configured, write) a bundle.

        Returns the path written, or ``None`` for the in-memory-only case.
        Never raises: a crashing crash-handler helps nobody.
        """
        if not self.enabled:
            return None
        try:
            doc = self.bundle(reason, exc)
        except Exception:  # noqa: BLE001 - forensics must not mask the real error
            return None
        with self._lock:
            self.last_bundle = doc
        directory = self.directory
        if directory is None:
            env_dir = os.environ.get("REPRO_BLACKBOX_DIR")
            directory = Path(env_dir) if env_dir else None
        if directory is None:
            return None
        try:
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / (
                f"blackbox_{reason}_{os.getpid()}_{next(_dump_seq):03d}.json"
            )
            path.write_text(json.dumps(doc, indent=1, default=str) + "\n")
        except OSError:
            return None
        with self._lock:
            self.dumps_written.append(path)
        from repro.obs.log import get_event_log

        get_event_log().emit("blackbox.dumped", level="warning",
                             reason=reason, path=str(path))
        return path


_RECORDER = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder singleton."""
    return _RECORDER


__all__ = [
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_SNAPSHOT_EVERY",
    "FlightRecorder",
    "SCHEMA",
    "get_flight_recorder",
]
