"""Weak-form lowering: parse -> resolve -> classify bilinear/linear groups.

The paper (Sec. II-A): for weak-form equations "the terms would be
organized into linear and bilinear groups, and for volume, boundary, or
surface integration".  This module implements that classification for the
P1 path.  Input, e.g. transient heat conduction with a source:

    weak_form(u, "-k*dot(grad(u), grad(v)) + f*v")

declares ``∫ du/dt v = -∫ k grad(u).grad(v) + ∫ f v`` (the time term is
implicit, as in the conservation-form path).  Recognised term shapes
(arbitrary coefficient factors allowed on each):

=========================================  ==========  ==================
term structure                             group       assembled operator
=========================================  ==========  ==================
``dot(grad(u), grad(v))``                  bilinear    stiffness ``K``
``u * v``                                  bilinear    mass ``M`` (reaction)
``dot([bx;by], grad(u)) * v``              bilinear    advection ``C``
``f * v`` / ``coeff * v``                  linear      load ``F``
=========================================  ==========  ==================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.symbolic.expr import Call, Expr, Mul, Num, Sym, Vector, preorder
from repro.symbolic.parser import parse
from repro.symbolic.simplify import collect_terms, simplify
from repro.util.errors import DSLError

if TYPE_CHECKING:
    from repro.dsl.problem import Problem


@dataclass
class WeakTerm:
    """One classified weak-form term: operator kind + coefficient factors."""

    kind: str  # 'stiffness' | 'mass' | 'advection' | 'load'
    coefficient: Expr  # product of scalar/number/function-coefficient factors
    velocity: tuple[Expr, ...] | None = None  # advection only

    def __str__(self) -> str:
        extra = f", b={list(map(str, self.velocity))}" if self.velocity else ""
        return f"{self.kind}(coeff={self.coefficient}{extra})"


@dataclass
class WeakForm:
    """The paper's bilinear/linear grouping of a weak-form equation."""

    unknown: str
    test: str
    bilinear: list[WeakTerm] = field(default_factory=list)
    linear: list[WeakTerm] = field(default_factory=list)

    def listing(self) -> str:
        lines = ["Bilinear volume:"]
        lines += [f"  {t}" for t in self.bilinear] or ["  (none)"]
        lines.append("Linear volume:")
        lines += [f"  {t}" for t in self.linear] or ["  (none)"]
        return "\n".join(lines)


def _is_grad_of(node: Expr, name: str) -> bool:
    return (
        isinstance(node, Call)
        and node.func == "grad"
        and len(node.args) == 1
        and isinstance(node.args[0], Sym)
        and node.args[0].name == name
    )


def lower_weak_form(problem: "Problem", unknown: str, source: str,
                    test: str = "v") -> WeakForm:
    """Parse + classify a weak-form input string."""
    parsed = parse(source)
    ents = problem.entities
    form = WeakForm(unknown=unknown, test=test)

    if not any(
        isinstance(node, Sym) and node.name == test for node in preorder(parsed)
    ):
        raise DSLError(f"weak form contains no test function {test!r}")

    for term in collect_terms(parsed):
        factors = list(term.args) if isinstance(term, Mul) else [term]
        coeff_factors: list[Expr] = []
        structural: list[Expr] = []
        for f in factors:
            if isinstance(f, Num):
                coeff_factors.append(f)
            elif isinstance(f, Sym) and f.name == test:
                structural.append(f)
            elif isinstance(f, Sym) and f.name == unknown:
                structural.append(f)
            elif isinstance(f, Sym):
                kind = ents.kind_of(f.name)
                if kind == "coefficient":
                    coeff_factors.append(f)
                else:
                    raise DSLError(
                        f"weak form: unknown symbol {f.name!r} in term {term}"
                    )
            elif isinstance(f, Call):
                structural.append(f)
            else:
                raise DSLError(
                    f"weak form: unsupported term shape (factor {f} in {term})"
                )

        coeff = simplify(Mul(*coeff_factors)) if coeff_factors else Num(1)
        form_kind, velocity = _match_structure(structural, unknown, test, ents)
        wt = WeakTerm(kind=form_kind, coefficient=coeff, velocity=velocity)
        (form.linear if form_kind == "load" else form.bilinear).append(wt)

    return form


def _match_structure(structural: list[Expr], unknown: str, test: str, ents
                     ) -> tuple[str, tuple[Expr, ...] | None]:
    """Identify the canonical shape of a term's non-coefficient factors."""
    syms = [f for f in structural if isinstance(f, Sym)]
    calls = [f for f in structural if isinstance(f, Call)]
    has_u = any(s.name == unknown for s in syms)
    has_v = any(s.name == test for s in syms)

    # dot(grad(u), grad(v)) [alone]
    if len(calls) == 1 and not syms:
        c = calls[0]
        if c.func == "dot" and len(c.args) == 2:
            a, b = c.args
            if _is_grad_of(a, unknown) and _is_grad_of(b, test):
                return "stiffness", None
            if _is_grad_of(a, test) and _is_grad_of(b, unknown):
                return "stiffness", None
    # dot(b, grad(u)) * v
    if len(calls) == 1 and has_v and not has_u:
        c = calls[0]
        if c.func == "dot" and len(c.args) == 2:
            vec, grad = c.args
            if _is_grad_of(vec, unknown):
                vec, grad = grad, vec
            if _is_grad_of(grad, unknown) and isinstance(vec, Vector):
                return "advection", tuple(vec.components)
    # u * v
    if not calls and has_u and has_v and len(syms) == 2:
        return "mass", None
    # f * v (load): only the test function among structural symbols
    if not calls and has_v and not has_u and len(syms) == 1:
        return "load", None

    raise DSLError(
        "weak form: unsupported term shape "
        f"{[str(s) for s in structural]} — supported: dot(grad(u),grad(v)), "
        "u*v, dot([b..],grad(u))*v, f*v (with coefficient factors)"
    )


__all__ = ["WeakForm", "WeakTerm", "lower_weak_form"]
