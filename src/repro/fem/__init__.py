"""Finite-element substrate (P1 Lagrange elements).

The paper's DSL "includes support for finite element and finite volume
methods"; its Section II notes that for weak-form (FEM) input "the terms
would be organized into linear and bilinear groups".  The demonstration is
FVM, so this package implements the *other* discretisation at its simplest
useful level — continuous P1 elements on segments (1-D) and triangles
(2-D) with mass lumping for explicit time stepping:

* :mod:`~repro.fem.p1` — reference-element geometry: per-element shape-
  function gradients, volumes, node quadrature;
* :mod:`~repro.fem.assemble` — global sparse operators: stiffness, mass
  (consistent and lumped), advection, load vectors; Dirichlet node sets
  per boundary region;
* :mod:`~repro.fem.weakform` — the weak-form pipeline: parse -> expand ->
  classify into the paper's **bilinear** (mass/stiffness/advection) and
  **linear** (load) groups;
* the ``fem`` code-generation target lives in
  :mod:`repro.codegen.fem_target` and is selected by ``solver_type(FEM)``
  + ``weak_form(u, "...")``.
"""

from repro.fem.p1 import P1Mesh, build_p1
from repro.fem.assemble import (
    assemble_stiffness,
    assemble_mass,
    lumped_mass,
    assemble_load,
    assemble_advection,
    boundary_lumped_mass,
    dirichlet_nodes,
)
from repro.fem.weakform import WeakForm, lower_weak_form

__all__ = [
    "P1Mesh",
    "build_p1",
    "assemble_stiffness",
    "assemble_mass",
    "lumped_mass",
    "assemble_load",
    "assemble_advection",
    "boundary_lumped_mass",
    "dirichlet_nodes",
    "WeakForm",
    "lower_weak_form",
]
