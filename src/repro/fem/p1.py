"""P1 (linear Lagrange) element geometry on segments and triangles.

For every element the barycentric shape functions have constant gradients;
this module precomputes them together with element measures, giving the
assembly routines everything they need in flat arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.mesh import Mesh
from repro.util.errors import MeshError


@dataclass
class P1Mesh:
    """Per-element P1 data derived from a :class:`~repro.mesh.Mesh`.

    Attributes
    ----------
    elements:
        ``(nelem, dim+1)`` node indices (segments or triangles).
    volume:
        Element measures (lengths / areas).
    grads:
        ``(nelem, dim+1, dim)`` constant shape-function gradients.
    """

    mesh: Mesh
    elements: np.ndarray
    volume: np.ndarray
    grads: np.ndarray

    @property
    def nnodes(self) -> int:
        return self.mesh.nnodes

    @property
    def nelem(self) -> int:
        return len(self.elements)

    @property
    def dim(self) -> int:
        return self.mesh.dim

    def node_regions(self) -> dict[int, np.ndarray]:
        """Boundary nodes per region (nodes of the region's faces)."""
        out: dict[int, np.ndarray] = {}
        for region in self.mesh.boundary_regions():
            nodes: list[int] = []
            for f in self.mesh.boundary_faces(region):
                nodes.extend(int(n) for n in self.mesh.face_nodes(f))
            out[region] = np.unique(np.array(nodes, dtype=np.int64))
        return out


def build_p1(mesh: Mesh) -> P1Mesh:
    """Precompute P1 data.  Requires simplex cells (2-node segments in 1-D,
    triangles in 2-D; use :func:`repro.mesh.grid.triangulated_grid`)."""
    if mesh.dim == 1:
        expected = 2
    elif mesh.dim == 2:
        expected = 3
    else:
        raise MeshError("P1 elements are implemented for 1-D and 2-D meshes")

    elements = np.zeros((mesh.ncells, expected), dtype=np.int64)
    for c in range(mesh.ncells):
        nodes = mesh.cell_nodes(c)
        if len(nodes) != expected:
            raise MeshError(
                f"P1 assembly needs simplex cells: cell {c} has {len(nodes)} "
                f"nodes (triangulate the mesh first)"
            )
        elements[c] = nodes

    coords = mesh.nodes
    nelem = mesh.ncells
    volume = np.zeros(nelem)
    grads = np.zeros((nelem, expected, mesh.dim))

    if mesh.dim == 1:
        x = coords[elements[:, 1], 0] - coords[elements[:, 0], 0]
        if np.any(np.abs(x) <= 0):
            raise MeshError("degenerate 1-D element")
        volume = np.abs(x)
        grads[:, 0, 0] = -1.0 / x
        grads[:, 1, 0] = 1.0 / x
    else:
        p0 = coords[elements[:, 0]]
        p1 = coords[elements[:, 1]]
        p2 = coords[elements[:, 2]]
        det = (p1[:, 0] - p0[:, 0]) * (p2[:, 1] - p0[:, 1]) - (
            p2[:, 0] - p0[:, 0]
        ) * (p1[:, 1] - p0[:, 1])
        if np.any(np.abs(det) < 1e-300):
            raise MeshError("degenerate triangle in P1 mesh")
        volume = 0.5 * np.abs(det)
        # gradient of barycentric lambda_i: rotate opposite edge by 90 deg
        inv = 1.0 / det
        grads[:, 0, 0] = (p1[:, 1] - p2[:, 1]) * inv
        grads[:, 0, 1] = (p2[:, 0] - p1[:, 0]) * inv
        grads[:, 1, 0] = (p2[:, 1] - p0[:, 1]) * inv
        grads[:, 1, 1] = (p0[:, 0] - p2[:, 0]) * inv
        grads[:, 2, 0] = (p0[:, 1] - p1[:, 1]) * inv
        grads[:, 2, 1] = (p1[:, 0] - p0[:, 0]) * inv

    return P1Mesh(mesh=mesh, elements=elements, volume=volume, grads=grads)


__all__ = ["P1Mesh", "build_p1"]
