"""Global P1 operator assembly (sparse CSR).

All assemblers accept an optional per-element coefficient array (constant,
per-element values, or ``f(x)`` evaluated at element centroids) so weak-form
coefficients like ``k`` in ``k * dot(grad(u), grad(v))`` flow straight in.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.fem.p1 import P1Mesh
from repro.util.errors import MeshError


def _element_coefficient(p1: P1Mesh, coeff: Any) -> np.ndarray:
    """Normalise a coefficient spec to per-element values."""
    if coeff is None:
        return np.ones(p1.nelem)
    if callable(coeff):
        centroids = p1.mesh.cell_centroids
        return np.asarray(coeff(centroids), dtype=np.float64)
    arr = np.asarray(coeff, dtype=np.float64)
    if arr.ndim == 0:
        return np.full(p1.nelem, float(arr))
    if arr.shape == (p1.nelem,):
        return arr
    raise MeshError(f"coefficient shape {arr.shape} does not fit {p1.nelem} elements")


def _scatter(p1: P1Mesh, local: np.ndarray) -> sp.csr_matrix:
    """Assemble per-element local matrices ``(nelem, n, n)`` into CSR."""
    n = p1.elements.shape[1]
    rows = np.repeat(p1.elements, n, axis=1).ravel()
    cols = np.tile(p1.elements, (1, n)).ravel()
    return sp.coo_matrix(
        (local.ravel(), (rows, cols)), shape=(p1.nnodes, p1.nnodes)
    ).tocsr()


def assemble_stiffness(p1: P1Mesh, coeff: Any = None) -> sp.csr_matrix:
    """``K_ij = sum_e k_e |e| grad(phi_i) . grad(phi_j)``."""
    k = _element_coefficient(p1, coeff)
    local = np.einsum(
        "e,eid,ejd->eij", k * p1.volume, p1.grads, p1.grads
    )
    return _scatter(p1, local)


def assemble_mass(p1: P1Mesh, coeff: Any = None) -> sp.csr_matrix:
    """Consistent mass matrix (exact P1 integration)."""
    n = p1.elements.shape[1]
    base = (np.ones((n, n)) + np.eye(n)) / (n * (n + 1))
    c = _element_coefficient(p1, coeff)
    local = (c * p1.volume)[:, None, None] * base[None, :, :]
    return _scatter(p1, local)


def lumped_mass(p1: P1Mesh, coeff: Any = None) -> np.ndarray:
    """Row-sum (lumped) mass vector — the explicit-stepping mass."""
    n = p1.elements.shape[1]
    c = _element_coefficient(p1, coeff)
    contrib = (c * p1.volume) / n
    out = np.zeros(p1.nnodes)
    np.add.at(out, p1.elements.ravel(), np.repeat(contrib, n))
    return out


def assemble_advection(p1: P1Mesh, velocity: Any) -> sp.csr_matrix:
    """``C_ij = sum_e |e| (b_e . grad(phi_j)) / n`` — the ``dot(b, grad(u)) v``
    bilinear form with one-point (centroid) quadrature of the test function."""
    centroids = p1.mesh.cell_centroids
    if callable(velocity):
        b = np.asarray(velocity(centroids), dtype=np.float64)
    else:
        b = np.broadcast_to(
            np.asarray(velocity, dtype=np.float64), (p1.nelem, p1.dim)
        )
    if b.shape != (p1.nelem, p1.dim):
        raise MeshError(f"velocity shape {b.shape} != ({p1.nelem}, {p1.dim})")
    n = p1.elements.shape[1]
    bgrad = np.einsum("ed,ejd->ej", b, p1.grads)  # (nelem, n)
    local = (p1.volume / n)[:, None, None] * np.broadcast_to(
        bgrad[:, None, :], (p1.nelem, n, n)
    )
    return _scatter(p1, local)


def assemble_load(p1: P1Mesh, source: Any) -> np.ndarray:
    """Load vector ``F_i = ∫ f phi_i`` with nodal (lumped) quadrature."""
    if callable(source):
        values = np.asarray(source(p1.mesh.nodes), dtype=np.float64)
        if values.shape != (p1.nnodes,):
            raise MeshError(
                f"source returned shape {values.shape}, expected ({p1.nnodes},)"
            )
    else:
        values = np.full(p1.nnodes, float(source))
    return lumped_mass(p1) * values


def boundary_lumped_mass(p1: P1Mesh, region: int) -> np.ndarray:
    """Lumped boundary mass: ``∮_region phi_i dA`` per node.

    The weight behind Neumann (natural) boundary terms ``∮ g v dA`` — the
    paper's "boundary integration" group for linear terms.
    """
    mesh = p1.mesh
    faces = mesh.boundary_faces(region)
    if len(faces) == 0:
        raise MeshError(f"mesh has no boundary region {region}")
    out = np.zeros(p1.nnodes)
    for f in faces:
        nodes = mesh.face_nodes(f)
        share = mesh.face_areas[f] / len(nodes)
        for n in nodes:
            out[int(n)] += share
    return out


def dirichlet_nodes(p1: P1Mesh, regions: list[int]) -> np.ndarray:
    """Union of boundary nodes of the given regions."""
    table = p1.node_regions()
    nodes: list[np.ndarray] = []
    for r in regions:
        if r not in table:
            raise MeshError(f"mesh has no boundary region {r}")
        nodes.append(table[r])
    if not nodes:
        return np.zeros(0, dtype=np.int64)
    return np.unique(np.concatenate(nodes))


__all__ = [
    "assemble_stiffness",
    "assemble_mass",
    "lumped_mass",
    "assemble_advection",
    "assemble_load",
    "boundary_lumped_mass",
    "dirichlet_nodes",
]
