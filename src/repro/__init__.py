"""repro: reproduction of "Automating GPU Scalability for Complex Scientific
Models: Phonon Boltzmann Transport Equation" (IPDPS 2024).

A Finch-like PDE DSL with hybrid CPU/GPU code generation, built entirely in
Python on simulated GPU/MPI substrates, plus the full phonon-BTE
application the paper demonstrates.  Start with the quickstart::

    import repro.dsl as finch
    from repro.mesh import structured_grid

    finch.init_problem("advection")
    finch.domain(2)
    finch.time_stepper(finch.EULER_EXPLICIT)
    finch.set_steps(1e-2, 100)
    finch.mesh(structured_grid((20, 20)))
    u = finch.variable("u")
    finch.coefficient("bx", 1.0)
    finch.coefficient("by", 0.0)
    for region in (1, 2, 3, 4):
        finch.boundary(u, region, finch.NEUMANN0)
    finch.initial(u, 0.0)
    finch.conservation_form(u, "-surface(upwind([bx;by], u))")
    solver = finch.solve(u)

Package map (see DESIGN.md for the full inventory):

=====================  =====================================================
:mod:`repro.dsl`       Finch-like user API (entities, conservation form,
                       boundaries, hooks, configuration)
:mod:`repro.symbolic`  expression engine + operator registry
:mod:`repro.ir`        lowering pipeline and the abstract computational graph
:mod:`repro.codegen`   CPU / distributed / hybrid-GPU source generation and
                       the data-movement placement optimiser
:mod:`repro.mesh`      FV meshes, structured generation, Gmsh I/O,
                       partitioning
:mod:`repro.fvm`       finite-volume kernels, fields, boundaries, steppers
:mod:`repro.gpu`       simulated GPU device (roofline timing, profiler)
:mod:`repro.runtime`   simulated MPI (threads + virtual clocks)
:mod:`repro.bte`       the phonon Boltzmann transport application
:mod:`repro.perfmodel` cost models behind the paper's scaling figures
=====================  =====================================================
"""

__version__ = "1.0.0"

__all__ = [
    "bte",
    "codegen",
    "dsl",
    "fvm",
    "gpu",
    "ir",
    "mesh",
    "perfmodel",
    "runtime",
    "symbolic",
    "util",
]
