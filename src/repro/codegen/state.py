"""Runtime state shared by all generated solvers.

A :class:`SolverState` is built once per generated solver: it owns the
fields (unknown + known variables), the FV geometry, the lowered boundary
conditions, the component-block structure implied by ``assemblyLoops``, the
phase timers behind the execution-time breakdowns, and the user ``extra``
dict that callbacks use to carry problem-specific data (the BTE keeps its
temperature array there).
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.fvm.boundary import (
    BCKind,
    BoundaryCondition,
    BoundaryContext,
    BoundarySet,
)
from repro.fvm.fields import CellField
from repro.fvm.geometry import FVGeometry
from repro.obs import (
    get_anomaly_monitor,
    get_event_log,
    get_flight_recorder,
    get_metrics,
)
from repro.runtime.faults import get_injector
from repro.runtime.resilience import (
    CHECKPOINT_SCHEMA,
    atomic_save_npz,
    checkpoint_path,
    get_resilience_log,
)
from repro.symbolic.expr import Call, Indexed, Num, Sym
from repro.util.errors import CheckpointCorruptError, CodegenError, ConfigError
from repro.util.misc import check_finite
from repro.util.timing import TimerRegistry

if TYPE_CHECKING:
    from repro.dsl.problem import BoundarySpec, Problem


class SolverState:
    """Mutable runtime state of one generated solver."""

    def __init__(self, problem: "Problem"):
        if problem.mesh is None:
            raise ConfigError("problem has no mesh")
        self.problem = problem
        self.mesh = problem.mesh
        self.geom = FVGeometry(problem.mesh)
        self.unknown = problem.unknown
        self.dt = problem.config.dt
        self.nsteps = problem.config.nsteps
        self.time = 0.0
        self.step_index = 0
        self.timers = TimerRegistry()
        self.extra: dict[str, Any] = dict(problem.extra)
        self.extra.setdefault("state", self)

        # distributed context (set by the distributed/gpu targets):
        # exactly one of owned_comps/owned_cells is set on a rank state;
        # callbacks use them (plus `comm`) to restrict work and reduce.
        self.comm = None  # repro.runtime.Communicator on rank states
        self.owned_comps: np.ndarray | None = None  # band partitioning
        self.owned_cells: np.ndarray | None = None  # cell partitioning

        # fields: the unknown plus every declared variable
        self.fields: dict[str, CellField] = {}
        for name, var in problem.entities.variables.items():
            self.fields[name] = CellField(name, var.space, self.mesh.ncells)
        self._apply_initial_conditions()

        self.bset = self._build_boundary_set()
        self.comp_blocks = self._build_component_blocks()
        self._scratch: dict[str, np.ndarray] = {}

        # per-step solver metrics (residual, energy drift) — lazily
        # initialised by observe_step() when a live registry is installed
        self._prev_u: np.ndarray | None = None
        self._energy0: float | None = None
        # wall clock of the previous observe_step(), feeding the always-on
        # step-time spike detector
        self._last_step_wall: float | None = None

        # resilience wiring: periodic checkpoints and restart-from-file,
        # configured through problem.extra so distributed rank states
        # (rebuilt per run) inherit them without target-specific plumbing
        self.checkpoint_every = int(self.extra.get("checkpoint_every", 0) or 0)
        self.checkpoint_dir = self.extra.get("checkpoint_dir")
        # concurrent solves sharing one --checkpoint-dir would clobber each
        # other's ckpt_step*.npz (names carry only step + rank).  An opt-in
        # namespace isolates them: "auto" derives a per-problem prefix from
        # the repro.cache/1 signature; any other value is used verbatim
        # (the solver service passes its job key).
        namespace = self.extra.get("checkpoint_namespace")
        if namespace:
            if namespace == "auto":
                from repro.tune.signature import cache_key

                namespace = cache_key(problem, "checkpoint")[:12]
            self.checkpoint_dir = str(
                Path(self.checkpoint_dir or ".") / str(namespace))
        # elastic runtime hook: the distributed targets attach a
        # per-rank imbalance monitor here (see runtime.rebalance)
        self.rebalance = None
        restore_from = self.extra.get("restore_from")
        if restore_from:
            self.restore_checkpoint(restore_from)
            get_resilience_log().record_restore(restore_from)

    # ------------------------------------------------------------- properties
    @property
    def u(self) -> np.ndarray:
        """The unknown's data, ``(ncomp, ncells)``."""
        return self.fields[self.unknown.name].data

    @u.setter
    def u(self, values: np.ndarray) -> None:
        self.fields[self.unknown.name].data[...] = values

    @property
    def ncomp(self) -> int:
        return self.fields[self.unknown.name].ncomp

    @property
    def ncells(self) -> int:
        return self.mesh.ncells

    def field(self, name: str) -> CellField:
        if name not in self.fields:
            raise CodegenError(f"no field named {name!r}")
        return self.fields[name]

    def check_health(self) -> None:
        """NaN/Inf guard, called by generated run loops between steps."""
        check_finite(self.unknown.name, self.u)

    def sanitize_step(self) -> None:
        """Per-step runtime-sanitizer hook, called by every generated run
        loop next to :meth:`observe_step`.

        A no-op (one attribute check) unless a ``--sanitize`` run enabled
        the sanitizer; when live it runs the read-only NaN/Inf, residency,
        CFL and conservation-drift checks with this step's provenance.
        """
        from repro.verify.sanitizer import get_sanitizer

        san = get_sanitizer()
        if san.enabled:
            san.check_state(self)

    def sanitize_kernel_output(self, kernel: str, array: np.ndarray) -> None:
        """Per-kernel NaN/Inf guard on device output (``--sanitize`` only)."""
        from repro.verify.sanitizer import get_sanitizer

        san = get_sanitizer()
        if san.enabled:
            san.check_kernel_output(kernel, array, state=self)

    def observe_step(self) -> None:
        """Per-step solver metrics, called by every generated run loop.

        Records the step residual (max |du|/dt — how far the transient is
        from steady state), the volume-weighted energy drift relative to
        the first observed step, and a step counter.  Zero-cost when no
        live metrics registry is installed: the expensive observations are
        computed only behind the ``enabled`` guard.

        The always-on observability rides the same hook: the flight
        recorder's heartbeat, the step-time spike detector, and (at debug
        level) a ``step.done`` event — all attribute-check cheap when idle.
        """
        rank = self.comm.rank if self.comm is not None else None
        now = perf_counter()
        if self._last_step_wall is not None:
            get_anomaly_monitor().observe_step_time(
                now - self._last_step_wall, rank=rank, step=self.step_index)
        self._last_step_wall = now
        get_flight_recorder().heartbeat(step=self.step_index, rank=rank)
        elog = get_event_log()
        if elog.debug_enabled:
            elog.emit("step.done", level="debug", rank=rank,
                      step=self.step_index, time=self.time)
        metrics = get_metrics()
        if not metrics.enabled:
            return
        labels = {"problem": self.problem.name}
        if rank is not None:
            labels["rank"] = rank
        metrics.counter(
            "solver_steps_total", "time steps completed").inc(1, **labels)
        u = self.u
        if self._prev_u is not None and self.dt > 0:
            residual = float(np.max(np.abs(u - self._prev_u))) / self.dt
            metrics.histogram(
                "solver_step_residual",
                "max |du|/dt per step (steady-state distance)",
                buckets=(1e-6, 1e-3, 1.0, 1e3, 1e6, 1e9, 1e12, 1e15),
            ).observe(residual, **labels)
        self._prev_u = u.copy()
        # conservation check: volume-weighted total of the unknown, drift
        # relative to the first observed value (exact for closed boxes)
        energy = float(self.geom.volume @ u.sum(axis=0))
        if self._energy0 is None:
            self._energy0 = energy
        scale = abs(self._energy0)
        drift = (energy - self._energy0) / scale if scale > 0 else 0.0
        metrics.gauge(
            "solver_energy_drift_rel",
            "relative drift of the volume-weighted unknown total",
        ).set(drift, **labels)

    def log_run_event(self, name: str, **fields: Any) -> None:
        """Emit one structured run-lifecycle event with this state's
        provenance (rank, step, problem).  Called by generated run loops at
        run start/end; cheap when the log is below info level."""
        elog = get_event_log()
        if elog.enabled and elog.wants("info"):
            rank = self.comm.rank if self.comm is not None else None
            elog.emit(name, level="info", rank=rank, step=self.step_index,
                      problem=self.problem.name, **fields)

    def profile_scope(self, name: str):
        """Phase timer that doubles as a per-launch profiler probe.

        Generated run loops time their phases through this instead of
        ``timers.time(name)`` directly.  With profiling off (the default)
        it *is* the plain timer — same object, same cost, nothing extra
        allocated.  With a live :class:`~repro.obs.profile.RunProfiler`
        installed, every entry/exit additionally records one per-launch
        sample (rank, phase, step, seconds) using the registry's clock, so
        profiles taken under the virtual bench clock are deterministic.
        """
        from repro.obs.profile import get_profiler

        prof = get_profiler()
        if not prof.enabled:
            return self.timers.time(name)
        return _ProfileScope(self, name, prof)

    def buffer(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """A reusable scratch array (allocated once, reused every step).

        The generated hot loop calls this instead of ``np.empty`` so the
        per-step flux/source temporaries stop churning the allocator —
        the "be easy on the memory" guidance for the innermost loop.
        """
        buf = self._scratch.get(name)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=np.float64)
            self._scratch[name] = buf
        return buf

    # ----------------------------------------------------------------- initial
    def _apply_initial_conditions(self) -> None:
        for name, values in self.problem.initial_values.items():
            fld = self.fields[name]
            if callable(values):
                out = np.asarray(values(self.mesh.cell_centroids), dtype=np.float64)
                if out.shape == (fld.ncells,):
                    fld.data[:] = out[None, :]
                elif out.shape == fld.data.shape:
                    fld.data[...] = out
                else:
                    raise ConfigError(
                        f"initial({name}): callable returned shape {out.shape}, "
                        f"expected ({fld.ncells},) or {fld.data.shape}"
                    )
                continue
            arr = np.asarray(values, dtype=np.float64)
            if arr.ndim == 0:
                fld.fill(float(arr))
            elif arr.shape == (fld.ncomp,):
                fld.data[...] = arr[:, None]
            elif arr.shape == fld.data.shape:
                fld.data[...] = arr
            else:
                raise ConfigError(
                    f"initial({name}): shape {arr.shape} matches neither "
                    f"({fld.ncomp},) nor {fld.data.shape}"
                )

    # ---------------------------------------------------------------- boundary
    def _build_boundary_set(self) -> BoundarySet:
        bset = BoundarySet(self.geom, self.ncomp)
        for spec in self.problem.boundaries:
            if spec.variable != self.unknown.name:
                continue  # conditions of known variables are handled by callbacks
            bset.add(self._lower_boundary_spec(spec))
        return bset

    def _lower_boundary_spec(self, spec: "BoundarySpec") -> BoundaryCondition:
        if spec.kind == BCKind.NEUMANN:
            raise ConfigError(
                "valued Neumann boundaries are a weak-form (FEM) feature; the "
                "FV path takes prescribed fluxes via FLUX callbacks"
            )
        if spec.kind in (BCKind.DIRICHLET, BCKind.NEUMANN0):
            return BoundaryCondition(
                region=spec.region, kind=spec.kind, value=spec.value
            )
        if spec.kind == BCKind.SYMMETRY:
            return BoundaryCondition(
                region=spec.region,
                kind=spec.kind,
                reflection_map=spec.reflection_map,
            )
        # FLUX / GHOST_CALLBACK: wrap the user callback so DSL-string
        # arguments are resolved automatically ("the relevant values for
        # parameters ... will be interpreted automatically by Finch")
        if spec.python_callback is not None:
            fn = spec.python_callback
            return BoundaryCondition(
                region=spec.region, kind=spec.kind, callback=fn,
                name=getattr(fn, "__name__", "callback"),
            )
        assert spec.call is not None
        adapter = self._make_callback_adapter(spec.call)
        return BoundaryCondition(
            region=spec.region, kind=spec.kind, callback=adapter,
            name=spec.call.func,
        )

    def _make_callback_adapter(self, call: Call):
        """Bind a parsed ``isothermal(I, vg, ..., 300)`` invocation.

        Argument resolution at call time: the unknown -> owner-side values;
        other variables -> their field data; coefficients -> declared values
        (function coefficients evaluated on the region's face centres);
        index entities -> the :class:`~repro.dsl.entities.Index`; the
        reserved name ``normal`` -> the region's outward normals; literals ->
        floats.
        """
        entities = self.problem.entities
        cb = entities.callbacks[call.func]
        unknown_name = self.unknown.name

        resolvers = []
        for arg in call.args:
            if isinstance(arg, Num):
                value = float(arg.value)
                resolvers.append(lambda ctx, v=value: v)
                continue
            name = arg.base if isinstance(arg, Indexed) else (
                arg.name if isinstance(arg, Sym) else None
            )
            if name is None:
                raise CodegenError(
                    f"boundary callback argument {arg} must be an entity name "
                    "or a numeric literal"
                )
            if name == "normal":
                resolvers.append(lambda ctx: ctx.normals)
                continue
            kind = entities.kind_of(name)
            if kind == "variable":
                if name == unknown_name:
                    resolvers.append(lambda ctx: ctx.owner_values)
                else:
                    fld = self.fields[name]
                    resolvers.append(
                        lambda ctx, f=fld: f.data[:, ctx.owner_cells]
                    )
            elif kind == "coefficient":
                coef = entities.coefficients[name]
                if coef.is_function:
                    fn = coef.value
                    resolvers.append(lambda ctx, f=fn: _eval_on_points(f, ctx.centers, ctx.time))
                else:
                    value = coef.value
                    resolvers.append(lambda ctx, v=value: v)
            elif kind == "index":
                ix = entities.indices[name]
                resolvers.append(lambda ctx, i=ix: i)
            else:
                raise CodegenError(
                    f"cannot resolve boundary callback argument {name!r}"
                )

        def adapter(ctx: BoundaryContext) -> np.ndarray:
            return cb.fn(ctx, *[r(ctx) for r in resolvers])

        adapter.__name__ = f"bc_{call.func}"
        return adapter

    # --------------------------------------------------------- component blocks
    def _build_component_blocks(self) -> list[Any]:
        """Selectors implied by ``assemblyLoops``.

        Index names appearing *before* ``'cells'`` in the order become outer
        loops: one block per combination of their values.  With ``'cells'``
        outermost there is a single all-components block (fully fused).
        """
        order = self.problem.config.assembly_order
        space = self.unknown.space
        outer = [n for n in order[: order.index("cells")]]
        if not outer or space.ncomp <= 1:
            return [slice(None)]
        axes = [space.axis_values(n) for n in outer]
        sizes = [space.size(n) for n in outer]
        blocks: list[np.ndarray] = []

        def rec(level: int, mask: np.ndarray) -> None:
            if level == len(outer):
                blocks.append(np.flatnonzero(mask))
                return
            for v in range(sizes[level]):
                rec(level + 1, mask & (axes[level] == v))

        rec(0, np.ones(space.ncomp, dtype=bool))
        return [b for b in blocks if len(b)]

    # ------------------------------------------------------------ checkpoints
    def save_checkpoint(self, path) -> None:
        """Write a restartable ``repro.checkpoint/1`` snapshot as NPZ.

        The payload is the step index, the virtual time, every field array,
        the BTE temperature if present, plus injector RNG/trigger state and
        the rank's virtual-clock reading when those exist.  Restoring with
        :meth:`restore_checkpoint` onto a solver built from the same problem
        resumes the run bit-exactly (tested).
        """
        payload: dict[str, Any] = {
            "__schema": np.array(CHECKPOINT_SCHEMA),
            "__time": np.array(self.time),
            "__step_index": np.array(self.step_index),
        }
        for name, fld in self.fields.items():
            payload[f"field_{name}"] = fld.data
        T = self.extra.get("T")
        if T is not None:
            payload["__T"] = np.asarray(T)
        injector = get_injector()
        if injector.enabled:
            payload["__rng"] = np.array(injector.state_json())
        if self.comm is not None:
            payload["__clock"] = np.array(self.comm.clock.now())
        # atomic: a concurrent reader (elastic migration composing a
        # consistent cut) must never see a truncated archive
        atomic_save_npz(path, **payload)

    def restore_checkpoint(self, path) -> None:
        """Load a snapshot written by :meth:`save_checkpoint`."""
        import zipfile

        path = self._resolve_restore(path)
        try:
            handle = np.load(path)
        except FileNotFoundError:
            raise ConfigError(f"checkpoint {path} does not exist") from None
        except (zipfile.BadZipFile, EOFError) as exc:
            raise CheckpointCorruptError(
                f"checkpoint {path} is corrupt or truncated: {exc}"
            ) from exc
        except (OSError, ValueError) as exc:
            raise ConfigError(f"cannot read checkpoint {path}: {exc}") from exc
        with handle as data:
            if "__schema" in data:
                schema = str(data["__schema"])
                if schema != CHECKPOINT_SCHEMA:
                    raise ConfigError(
                        f"checkpoint {path} has schema {schema!r}, "
                        f"expected {CHECKPOINT_SCHEMA!r}"
                    )
            for name, fld in self.fields.items():
                key = f"field_{name}"
                if key not in data:
                    raise ConfigError(f"checkpoint lacks field {name!r}")
                if data[key].shape != fld.data.shape:
                    raise ConfigError(
                        f"checkpoint field {name!r} has shape {data[key].shape}, "
                        f"expected {fld.data.shape} (different problem?)"
                    )
                fld.data[...] = data[key]
            self.time = float(data["__time"])
            self.step_index = int(data["__step_index"])
            if "__T" in data:
                self.extra["T"] = data["__T"].copy()
            if "__rng" in data:
                injector = get_injector()
                if injector.enabled:
                    injector.load_state(json.loads(str(data["__rng"])))
            if "__clock" in data and self.comm is not None:
                self.comm.clock.advance_to(float(data["__clock"]))

    def _resolve_restore(self, path):
        """Prefer this rank's per-rank checkpoint when one sits next to ``path``."""
        p = Path(path)
        if self.comm is not None:
            candidate = p.with_name(f"{p.stem}_rank{self.comm.rank}{p.suffix}")
            if candidate.exists():
                return candidate
        return p

    def maybe_checkpoint(self) -> None:
        """Periodic checkpoint hook, called by every generated run loop.

        No-op unless the problem asked for ``checkpoint_every``; writes
        ``<dir>/ckpt_stepNNNNNN[_rankR].npz`` whenever the step index hits
        the period.  Rank states write per-rank files so a distributed run
        restarts from a consistent cut.
        """
        if self.checkpoint_every <= 0 or self.step_index == 0:
            return
        if self.step_index % self.checkpoint_every:
            return
        directory = Path(self.checkpoint_dir or ".")
        directory.mkdir(parents=True, exist_ok=True)
        rank = self.comm.rank if self.comm is not None else None
        path = checkpoint_path(directory, self.step_index, rank=rank)
        self.save_checkpoint(path)
        get_resilience_log().record_checkpoint(path)

    def maybe_rebalance(self) -> None:
        """Elastic-runtime hook, called by every generated run loop next to
        :meth:`maybe_checkpoint`.

        No-op (one attribute check) unless a distributed target attached a
        rebalance monitor; when live, the monitor watches measured per-rank
        step times and cooperatively interrupts the run segment (on every
        rank symmetrically) when migrating work would pay.
        """
        if self.rebalance is not None:
            self.rebalance.observe(self)

    # ------------------------------------------------------------------- misc
    def breakdown(self) -> dict[str, float]:
        """Phase fractions from the timers (Figs. 5 and 8 material)."""
        return self.timers.fractions()

    def __repr__(self) -> str:
        return (
            f"SolverState(problem={self.problem.name!r}, step={self.step_index}/"
            f"{self.nsteps}, time={self.time:.3e})"
        )


class _ProfileScope:
    """Timer context recording into both the phase timers and the profiler."""

    __slots__ = ("_state", "_name", "_profiler", "_start", "elapsed")

    def __init__(self, state: "SolverState", name: str, profiler):
        self._state = state
        self._name = name
        self._profiler = profiler
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_ProfileScope":
        self._start = self._state.timers.clock.now()
        return self

    def __exit__(self, *exc) -> None:
        state = self._state
        self.elapsed = state.timers.clock.now() - self._start
        state.timers.record(self._name, self.elapsed)
        rank = state.comm.rank if state.comm is not None else 0
        self._profiler.record(self._name, self.elapsed, rank=rank,
                              step=state.step_index)


def _eval_on_points(fn, points: np.ndarray, time: float) -> np.ndarray:
    """Call a function coefficient on points, tolerating f(x) or f(x, t)."""
    try:
        return np.asarray(fn(points, time), dtype=np.float64)
    except TypeError:
        return np.asarray(fn(points), dtype=np.float64)


__all__ = ["SolverState"]
