"""Shared machinery for code-generation targets.

A target turns a validated :class:`~repro.dsl.problem.Problem` into a
:class:`GeneratedSolver`: real Python source (kept on the solver for
inspection — the paper stresses readable generated code and the ability to
hand-modify it), compiled into a namespace pre-loaded with the problem's
numeric environment, plus the :class:`~repro.codegen.state.SolverState` the
generated functions operate on.

Generation is split in two phases around the compilation cache
(:mod:`repro.tune.cache`):

* :meth:`CodegenTarget.build_artifact` — the expensive, cacheable half:
  symbolic lowering, IR construction, expression emission, placement
  optimisation, source assembly.  Its result is content-addressed by
  :func:`repro.tune.signature.cache_key` and reused across solves.
* :meth:`CodegenTarget.bind_artifact` — the cheap, per-solve half: a fresh
  :class:`~repro.codegen.state.SolverState`, live callbacks/closures/
  devices/clocks, and a :class:`GeneratedSolver` constructed from the
  artifact's precompiled code object (so a warm solve performs zero
  ``compile()`` calls — asserted by ``codegen_compile_total``).

:meth:`CodegenTarget.generate` is the template method tying them together;
targets implement only the two halves.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.codegen.state import SolverState
from repro.fvm import kernels
from repro.obs import (
    build_run_report,
    get_anomaly_monitor,
    get_event_log,
    get_tracer,
    phase_span,
)
from repro.util.errors import CodegenError

if TYPE_CHECKING:
    from repro.dsl.problem import Problem
    from repro.tune.cache import GenerationArtifact


class GeneratedSolver:
    """A compiled solver produced by one codegen target.

    Attributes
    ----------
    source:
        The generated Python source (write it to a file, read it, edit it —
        ``recompile()`` picks up changes).
    state:
        The live :class:`SolverState`.
    namespace:
        The module-level namespace the source was executed in (contains the
        generated functions plus the injected numeric environment).
    module_name:
        The filename the source compiles under.  Content-derived (target +
        cache-key prefix) so artifacts are stable across processes and
        re-generation is idempotent.
    """

    def __init__(
        self,
        target_name: str,
        source: str,
        env: dict[str, Any],
        state: SolverState,
        code: Any = None,
        module_name: str | None = None,
    ):
        self.target_name = target_name
        self.source = source
        self.state = state
        self.module_name = module_name or f"<generated:{target_name}>"
        self.namespace: dict[str, Any] = {}
        self._base_env = env
        # precompiled code object (cache hit) and the source it came from;
        # recompile() only calls compile() when the source has changed
        self._code = code
        self._compiled_source = source if code is not None else None
        # observability hooks: maps placement-task names to the phase timer
        # that measures them (filled in by targets that run the optimiser)
        self.task_timer_map: dict[str, str] = {}
        self.recompile()

    # ------------------------------------------------------------- compilation
    def recompile(self) -> None:
        """(Re)execute the source into a fresh namespace, compiling only
        when the source changed since the last compile (hand edits,
        fallback-path annotations)."""
        ns: dict[str, Any] = {
            "np": np,
            "kernels": kernels,
        }
        ns.update(self._base_env)
        if self._code is None or self._compiled_source != self.source:
            try:
                self._code = compile(self.source, self.module_name, "exec")
            except SyntaxError as exc:
                raise CodegenError(
                    f"generated source does not compile: {exc}\n{self.source}"
                ) from exc
            self._compiled_source = self.source
            from repro.obs.metrics import get_metrics

            get_metrics().counter(
                "codegen_compile_total",
                "compile() calls on generated source",
            ).inc(1, target=self.target_name)
        exec(self._code, ns)  # noqa: S102 - executing our own generated source is the point
        for required in ("step_once", "run_steps"):
            if required not in ns:
                raise CodegenError(
                    f"generated source defines no {required}() function"
                )
        self.namespace = ns

    @property
    def code(self) -> Any:
        """The compiled code object of ``source`` (shared with the cache)."""
        return self._code

    # ---------------------------------------------------------------- execution
    def step(self) -> None:
        """Advance one time step."""
        self.namespace["step_once"](self.state)

    def run(self, nsteps: int | None = None) -> SolverState:
        """Run ``nsteps`` (default: the configured count) and return state."""
        n = self.state.nsteps if nsteps is None else int(nsteps)
        # each run() gets a fresh spike-detector window so back-to-back runs
        # on one process don't alert against each other's step times
        get_anomaly_monitor().reset()
        with phase_span(f"run[{self.target_name}]", cat="run", nsteps=n):
            self.namespace["run_steps"](self.state, n)
        return self.state

    def solution(self) -> np.ndarray:
        """Copy of the unknown's values, ``(ncomp, ncells)``."""
        return self.state.u.copy()

    def breakdown(self) -> dict[str, float]:
        """Phase fractions of execution time (Figs. 5/8 shape)."""
        return self.state.breakdown()

    def run_report(self, tracer=None):
        """The merged :class:`~repro.obs.RunReport` for this solver's run
        (timers + comm + device + placement accuracy, whichever exist)."""
        return build_run_report(self, tracer if tracer is not None else get_tracer())

    def __repr__(self) -> str:
        return (
            f"GeneratedSolver(target={self.target_name!r}, "
            f"problem={self.state.problem.name!r})"
        )


class CodegenTarget:
    """Base class for generation targets (template method over the cache)."""

    name = "base"

    def generate(self, problem: "Problem") -> GeneratedSolver:
        """Generate a solver: cache lookup -> (build on miss) -> bind."""
        from repro.obs.metrics import get_metrics
        from repro.tune.cache import get_cache
        from repro.tune.signature import cache_key

        cache = get_cache()
        # a caller that already content-addressed this exact problem for
        # this target (the solver service keys every request before
        # scheduling) can pass the key down and skip re-hashing the
        # problem; always popped so a stale hint never outlives one call
        hint = problem.extra.pop("_cache_key_hint", None)
        if not cache.enabled:
            key = ""
        elif (isinstance(hint, tuple) and len(hint) == 2
                and hint[0] == self.name):
            key = hint[1]
        else:
            key = cache_key(problem, self.name)
        artifact = cache.get(key) if key else None
        info: dict[str, Any] = {"target": self.name, "key": key[:12]}
        if artifact is None:
            build_lock = cache.build_lock(key) if key else None
            if build_lock is not None:
                build_lock.acquire()
            try:
                # single-flight: while we waited for the lock, another thread
                # may have built and published this key — peek (stats-free:
                # our miss is already counted) and reuse instead of rebuilding
                artifact = cache.peek(key) if key else None
                if artifact is not None:
                    cache.record_coalesced(key, artifact)
                    info.update(cache="coalesced",
                                build_seconds=artifact.build_seconds)
                else:
                    metrics = get_metrics()
                    t0 = time.perf_counter()
                    with phase_span(f"codegen_build[{self.name}]", cat="codegen"):
                        artifact = self.build_artifact(problem)
                    build_s = time.perf_counter() - t0
                    artifact.key = key or artifact.key
                    artifact.build_seconds = build_s
                    cache.stats.builds += 1
                    metrics.counter(
                        "codegen_build_total", "full artifact builds (cache misses)"
                    ).inc(1, target=self.name)
                    metrics.histogram(
                        "codegen_build_seconds", "wall seconds per artifact build"
                    ).observe(build_s, target=self.name)
                    if key:
                        cache.put(key, artifact)
                    info.update(cache="miss", build_seconds=build_s)
            finally:
                if build_lock is not None:
                    build_lock.release()
        else:
            info.update(cache="hit", build_seconds=artifact.build_seconds)
        elog = get_event_log()
        if elog.enabled:
            elog.emit("codegen.cache", level="info", target=self.name,
                      result=info["cache"], key=info["key"],
                      build_seconds=info.get("build_seconds"))
        solver = self.bind_artifact(problem, artifact)
        solver.generation_info = info
        return solver

    # ------------------------------------------------------------ the two halves
    def build_artifact(self, problem: "Problem") -> "GenerationArtifact":
        """The expensive half: lowering + emission + placement + source."""
        raise NotImplementedError

    def bind_artifact(self, problem: "Problem",
                      artifact: "GenerationArtifact") -> GeneratedSolver:
        """The cheap half: fresh state + live environment + solver."""
        raise NotImplementedError

    # ----------------------------------------------------------------- helpers
    def make_artifact(self, problem: "Problem", source: str,
                      flavor: str = "default", **static) -> "GenerationArtifact":
        from repro.tune.cache import GenerationArtifact
        from repro.tune.signature import cache_key

        return GenerationArtifact(
            target_name=self.name,
            source=source,
            key=cache_key(problem, self.name),
            flavor=flavor,
            static_env=static.pop("static_env", {}),
            attrs=static.pop("attrs", {}),
        )


def attach_artifact_attrs(solver: GeneratedSolver, artifact) -> None:
    """Copy the artifact's picklable attachments onto the solver."""
    for name, value in artifact.attrs.items():
        setattr(solver, name, value)


def source_header(target: str, problem: "Problem", ir_text: str) -> list[str]:
    """Standard header: provenance comment + the IR as a comment block.

    ``dt``/``nsteps`` are deliberately *not* printed: they are runtime
    state (``state.dt`` / ``state.nsteps``), and embedding them would make
    otherwise-identical generations cache-distinct.
    """
    lines = [
        f'"""Generated by repro.codegen.{target} for problem {problem.name!r}.',
        "",
        f"equation: {problem.equation.source if problem.equation else '?'}",
        f"stepper:  {problem.config.stepper} "
        "(dt/nsteps bound at runtime via state)",
        "",
        "IR:",
    ]
    lines += ["    " + ln for ln in ir_text.splitlines()]
    lines += ['"""', ""]
    return lines


__all__ = [
    "CodegenTarget",
    "GeneratedSolver",
    "attach_artifact_attrs",
    "source_header",
]
