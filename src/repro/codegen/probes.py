"""In-situ diagnostics: probes and transient recorders.

Recorders are ordinary pre/post-step callbacks (the paper's hook
mechanism), so they work with every execution target that runs hooks.
Attach with ``problem.add_post_step(recorder)`` and read
``recorder.times`` / ``recorder.values`` afterwards.

>>> rec = TransientRecorder(lambda s: float(s.extra["T"].max()), every=5)
>>> problem.add_post_step(rec, name="record_Tmax")
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from repro.util.errors import ConfigError


class TransientRecorder:
    """Record a scalar (or small array) diagnostic every ``every`` steps.

    ``probe(state)`` may return anything ``np.asarray`` accepts; values are
    stored per sample together with the simulation time.
    """

    def __init__(self, probe: Callable[[Any], Any], every: int = 1, name: str = "probe"):
        if every < 1:
            raise ConfigError(f"recorder interval must be >= 1, got {every}")
        self.probe = probe
        self.every = int(every)
        self.__name__ = name
        self.times: list[float] = []
        self.values: list[Any] = []

    def __call__(self, state) -> None:
        if state.step_index % self.every == 0:
            self.times.append(float(state.time))
            self.values.append(self.probe(state))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` stacked as arrays."""
        return np.asarray(self.times), np.asarray(self.values)

    def reset(self) -> None:
        self.times.clear()
        self.values.clear()


class LineProbe:
    """Sample a cell field along a straight line through the domain.

    The probe snaps each requested point to its nearest cell centroid once
    (at first use) and then gathers values by index — cheap enough to run
    every step inside a :class:`TransientRecorder`.
    """

    def __init__(self, start, end, npoints: int = 32,
                 field: Callable[[Any], np.ndarray] | None = None):
        if npoints < 2:
            raise ConfigError("a line probe needs at least 2 points")
        self.start = np.asarray(start, dtype=np.float64)
        self.end = np.asarray(end, dtype=np.float64)
        self.npoints = int(npoints)
        self.field = field or (lambda state: state.extra["T"])
        self._cells: np.ndarray | None = None

    def _bind(self, state) -> np.ndarray:
        if self._cells is None:
            pts = np.linspace(self.start, self.end, self.npoints)
            centroids = state.mesh.cell_centroids
            if pts.shape[1] != centroids.shape[1]:
                raise ConfigError(
                    f"probe points are {pts.shape[1]}-D but the mesh is "
                    f"{centroids.shape[1]}-D"
                )
            d2 = ((centroids[None, :, :] - pts[:, None, :]) ** 2).sum(axis=2)
            self._cells = np.argmin(d2, axis=1)
        return self._cells

    def __call__(self, state) -> np.ndarray:
        cells = self._bind(state)
        values = np.asarray(self.field(state))
        return values[..., cells].copy()


def wall_heat_flux(state, model, region: int) -> float:
    """Net phonon energy flux through a boundary region [W per unit depth].

    Positive = energy leaving the domain.  Uses exactly what the solver
    applies on those faces: for FLUX-callback regions the callback's values
    (which, per the library convention, are the *classified signed
    integrand* ``-vg (s.n) I_upwind`` — the physical outward flux with the
    equation's minus sign), otherwise the ghost + upwind reconstruction.
    Because it mirrors the solver, the global energy budget
    ``dE/dt = -sum(wall_heat_flux)`` holds as an exact discrete identity
    (tested).
    """
    from repro.fvm.boundary import BCKind

    geom = state.geom
    if region not in geom.region_faces:
        raise ConfigError(f"mesh has no boundary region {region}")
    faces = geom.region_faces[region]
    u = state.u

    bc = state.bset.conditions.get(region)
    if bc is not None and bc.kind == BCKind.FLUX:
        for f_ids, values in state.bset.flux_overrides(
            u, state.time, state.dt, state.extra
        ):
            if np.array_equal(f_ids, faces):
                # values are the signed integrand: physical outward density
                # is its negation, reduced over the solid angle
                density = -(model.weight_comp @ values)
                return float((density * geom.area[faces]).sum())
        raise ConfigError(f"no flux override produced for region {region}")

    ghost = state.bset.ghost_values(u, state.time, state.dt, state.extra)
    u1, u2 = geom.gather_sides(u, ghost)
    sdotn = (model.dirs.vectors @ geom.normal[faces].T)[model.comp_dir]
    vg = model.vg_comp[:, None]
    upwound = np.where(sdotn > 0.0, u1[:, faces], u2[:, faces])
    # physical outward energy flux density per face: sum_d w vg (s.n) I
    density = (model.weight_comp[:, None] * vg * sdotn * upwound).sum(axis=0)
    return float((density * geom.area[faces]).sum())


__all__ = ["TransientRecorder", "LineProbe", "wall_heat_flux"]
