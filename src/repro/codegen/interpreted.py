"""Interpreted execution target — the emitter's cross-implementation oracle.

Instead of generating NumPy source, this target walks the classified
symbolic terms with :func:`repro.symbolic.evaluate.evaluate`, one component
at a time, binding leaves directly to mesh/field arrays.  It is orders of
magnitude slower than the generated code and exists for exactly one
reason: *an independent path from the same symbolic form to numbers*.  The
oracle tests in ``tests/codegen/test_interpreter_oracle.py`` demand that
the generated CPU solver and this interpreter agree to round-off on
arbitrary equations, which pins down the expression emitter far more
tightly than hand-picked cases could.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.codegen.state import SolverState
from repro.codegen.target_base import (
    CodegenTarget,
    GeneratedSolver,
    attach_artifact_attrs,
    source_header,
)
from repro.ir.build import build_ir
from repro.ir.fuse import fusion_mode, fusion_summary
from repro.ir.lowering import ClassifiedForm, lower_conservation_form
from repro.ir.nodes import print_ir
from repro.symbolic.evaluate import evaluate
from repro.symbolic.expr import (
    Expr,
    FaceDistance,
    FaceNormal,
    Indexed,
    Reconstruction,
    SideValue,
    Sym,
    preorder,
)
from repro.util.errors import CodegenError, DSLError

if TYPE_CHECKING:
    from repro.dsl.problem import Problem

_SOURCE_STUB = '''

def step_once(state):
    """Interpreted step: evaluate the classified symbolic form directly."""
    with state.profile_scope('solve'):
        rhs = interpret_rhs(state, state.u, state.time)
        state.u = state.u + state.dt * rhs
    state.time += state.dt
    state.step_index += 1


def run_steps(state, nsteps):
    state.log_run_event('run.start', target='interpreted', nsteps=nsteps)
    for _ in range(nsteps):
        if PRE_STEP_CALLBACKS:
            with state.profile_scope('pre_step'):
                for cb in PRE_STEP_CALLBACKS:
                    cb.fn(state)
        step_once(state)
        if POST_STEP_CALLBACKS:
            with state.profile_scope('post_step'):
                for cb in POST_STEP_CALLBACKS:
                    cb.fn(state)
        state.observe_step()
        state.sanitize_step()
        state.maybe_checkpoint()
        state.maybe_rebalance()
    state.check_health()
    state.log_run_event('run.end', target='interpreted')
    return state
'''


def compile_term_programs(form: ClassifiedForm, mode: str):
    """Fuse each classified integrand into its own vector program.

    The interpreter evaluates per component with node-bound leaves, so
    programs are compiled per *term* (matching its per-term ``evaluate``
    calls exactly) with ``slot_nodes`` retained for lookup binding.
    Returns ``(volume_programs, surface_programs, stats_programs)`` where
    the per-term lists hold a program or None (unfusable under 'auto').
    """
    from repro.ir.fuse import UnfusableError, compile_expr, node_leaf_key

    def fuse_all(terms, tag):
        out = []
        for i, term in enumerate(terms):
            if mode == "off":
                out.append(None)
                continue
            try:
                program = compile_expr(term, node_leaf_key())
            except UnfusableError as exc:
                if mode == "on":
                    raise CodegenError(
                        f"fusion='on' but {tag} term {i} is unfusable: {exc}"
                    ) from exc
                program = None
            out.append(program)
        return out

    volume = fuse_all(form.volume_terms, "volume")
    surface = fuse_all(form.surface_terms, "surface")
    stats = {
        **{f"volume{i}": p for i, p in enumerate(volume) if p is not None},
        **{f"surface{i}": p for i, p in enumerate(surface) if p is not None},
    }
    return volume, surface, stats


class _TermInterpreter:
    """Evaluates classified integrands against a solver state."""

    def __init__(self, problem: "Problem", form: ClassifiedForm, fusion: str = "off"):
        self.problem = problem
        self.form = form
        self.unknown = form.unknown
        self.space = self.unknown.space
        for term in form.surface_terms:
            for node in preorder(term):
                if isinstance(node, Reconstruction):
                    raise CodegenError(
                        "the interpreted target supports order-1 fluxes only"
                    )
        volume_programs, surface_programs, _ = compile_term_programs(form, fusion)
        from repro.codegen.vectorvm import VectorVM

        self.volume_vms = [
            VectorVM(p) if p is not None else None for p in volume_programs
        ]
        self.surface_vms = [
            VectorVM(p) if p is not None else None for p in surface_programs
        ]

    # ------------------------------------------------------------- leaf envs
    def _entity_value(self, name: str, comp_values: tuple[int, ...], state,
                      where: str) -> Any:
        """Value array of entity ``name`` at the unknown-component context."""
        ents = self.problem.entities
        kind = ents.kind_of(name)
        if kind == "variable":
            var = ents.variables[name]
            data = state.fields[name].data
            if not var.indices:
                return data[0]
            vcomp = tuple(
                comp_values[self.space.position(ix)] for ix in var.index_names()
            )
            return data[var.space.flatten(vcomp)]
        if kind == "coefficient":
            coef = ents.coefficients[name]
            if coef.is_function:
                points = (
                    state.geom.cell_center if where == "volume" else state.geom.center
                )
                try:
                    return np.asarray(coef.value(points, state.time), dtype=np.float64)
                except TypeError:
                    return np.asarray(coef.value(points), dtype=np.float64)
            if not coef.indices:
                return float(coef.value)
            ccomp = tuple(
                comp_values[self.space.position(ix)] for ix in coef.index_names()
            )
            return float(np.asarray(coef.value)[ccomp])
        raise DSLError(f"cannot interpret entity {name!r}")

    def rhs(self, state: SolverState, u: np.ndarray, t: float) -> np.ndarray:
        geom = state.geom
        ghost = state.bset.ghost_values(u, t, state.dt, state.extra)
        u1, u2 = geom.gather_sides(u, ghost)
        ncomp = state.ncomp
        out = np.zeros_like(u)

        for flat in range(ncomp):
            comp_values = self.space.unflatten(flat) if self.space.names else ()

            def lookup_volume(node: Expr) -> Any:
                if isinstance(node, Indexed):
                    return self._entity_value(node.base, comp_values, state, "volume")
                if isinstance(node, Sym):
                    if node.name == "dt":
                        return state.dt
                    if node.name.startswith("_") and node.name.endswith("_1"):
                        return self._entity_value(
                            node.name[1:-2], comp_values, state, "volume"
                        )
                raise DSLError(f"unbound volume leaf {node}")

            def lookup_surface(node: Expr) -> Any:
                if isinstance(node, SideValue):
                    inner = node.expr
                    name = inner.base if isinstance(inner, Indexed) else inner.name[1:-2]
                    if name != self.unknown.name:
                        raise DSLError("only the unknown has face sides")
                    return (u1 if node.side == 1 else u2)[flat]
                if isinstance(node, FaceNormal):
                    return geom.normal[:, node.component - 1]
                if isinstance(node, FaceDistance):
                    return geom.face_dist
                if isinstance(node, Indexed):
                    vals = self._entity_value(node.base, comp_values, state, "surface")
                    kind = self.problem.entities.kind_of(node.base)
                    if kind == "variable":
                        return vals[geom.owner]  # owner-side evaluation
                    return vals
                if isinstance(node, Sym):
                    if node.name == "dt":
                        return state.dt
                    name = node.name[1:-2]
                    vals = self._entity_value(name, comp_values, state, "surface")
                    if self.problem.entities.kind_of(name) == "variable":
                        return vals[geom.owner]
                    return vals
                raise DSLError(f"unbound surface leaf {node}")

            if self.form.volume_terms:
                for term, vm in zip(self.form.volume_terms, self.volume_vms):
                    value = (
                        vm.run(*[lookup_volume(n) for n in vm.program.slot_nodes])
                        if vm is not None
                        else evaluate(term, lookup_volume)
                    )
                    out[flat] += np.broadcast_to(value, (state.ncells,))
            if self.form.surface_terms:
                flux = np.zeros(geom.nfaces)
                for term, vm in zip(self.form.surface_terms, self.surface_vms):
                    value = (
                        vm.run(*[lookup_surface(n) for n in vm.program.slot_nodes])
                        if vm is not None
                        else evaluate(term, lookup_surface)
                    )
                    flux += np.broadcast_to(value, (geom.nfaces,))
                for faces, values in state.bset.flux_overrides(
                    u, t, state.dt, state.extra
                ):
                    flux[faces] = values[flat]
                out[flat] += geom.surface_divergence(flux)
        return out


class InterpretedTarget(CodegenTarget):
    """No-codegen execution path (slow; for oracle testing and debugging)."""

    name = "interp"

    def build_artifact(self, problem: "Problem"):
        if problem.equation is None:
            raise CodegenError("no conservation_form declared")
        if problem.config.stepper not in ("euler", "euler_explicit"):
            raise CodegenError("the interpreted target implements forward Euler only")
        unknown = problem.unknown
        expanded, form = lower_conservation_form(
            problem.equation.source, unknown, problem.entities, problem.operators
        )
        ir = build_ir(problem, form, flavor="cpu")
        fusion = fusion_mode(problem.extra)
        _, _, stats_programs = compile_term_programs(form, fusion)

        lines = source_header("interpreted", problem, print_ir(ir))
        lines.append("# no generated numerics: interpret_rhs walks the symbolic form")
        if stats_programs:
            lines.append(f"# fused per-term vector programs: {sorted(stats_programs)}")
        lines.append(_SOURCE_STUB)
        source = "\n".join(lines) + "\n"
        return self.make_artifact(
            problem, source,
            attrs={
                "ir": ir,
                "classified_form": form,
                "expanded_expr": expanded,
                "fusion_info": fusion_summary(fusion, stats_programs),
            },
        )

    def bind_artifact(self, problem: "Problem", artifact) -> GeneratedSolver:
        # the interpreter holds problem references, so it is rebuilt per
        # bind from the cached classified form (the expensive lowering)
        state = SolverState(problem)
        interp = _TermInterpreter(
            problem,
            artifact.attrs["classified_form"],
            fusion=fusion_mode(problem.extra),
        )
        env = {
            "interpret_rhs": interp.rhs,
            "PRE_STEP_CALLBACKS": list(problem.pre_step_callbacks),
            "POST_STEP_CALLBACKS": list(problem.post_step_callbacks),
        }
        solver = GeneratedSolver(
            self.name, artifact.source, env, state,
            code=artifact.code, module_name=artifact.module_name,
        )
        if artifact.code is None:
            artifact.code = solver.code
        attach_artifact_attrs(solver, artifact)
        return solver


__all__ = ["InterpretedTarget"]
