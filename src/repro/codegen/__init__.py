"""Code generation targets.

Three targets mirror the paper's generation modes:

* ``cpu`` (:mod:`~repro.codegen.cpu_serial`) — nested-loop serial solver,
  loop order from ``assemblyLoops``;
* ``distributed`` (:mod:`~repro.codegen.cpu_distributed`) — SPMD rank
  program over the simulated communicator, with cell (mesh) or band
  (equation) partitioning;
* ``gpu`` (:mod:`~repro.codegen.gpu_hybrid`) — flattened one-thread-per-DOF
  kernels on the simulated device, asynchronous launch overlapped with
  CPU-pinned boundary callbacks, data movement planned by the placement
  optimiser (:mod:`~repro.codegen.placement`).

All targets emit genuine Python source (inspect ``solver.source``), compile
it with :func:`compile`/``exec`` and drive it through a shared
:class:`~repro.codegen.state.SolverState`.
"""

from repro.codegen.target_base import CodegenTarget, GeneratedSolver
from repro.codegen.state import SolverState
from repro.codegen.emit import ExprEmitter, EmittedExpr
from repro.codegen.probes import TransientRecorder, LineProbe, wall_heat_flux
from repro.util.errors import CodegenError


def make_target(name: str) -> CodegenTarget:
    """Instantiate a codegen target by name: 'cpu', 'distributed' or 'gpu'."""
    if name == "cpu":
        from repro.codegen.cpu_serial import CPUSerialTarget

        return CPUSerialTarget()
    if name == "distributed":
        from repro.codegen.cpu_distributed import CPUDistributedTarget

        return CPUDistributedTarget()
    if name == "gpu":
        from repro.codegen.gpu_hybrid import GPUHybridTarget

        return GPUHybridTarget()
    if name == "gpu_distributed":
        from repro.codegen.gpu_multi import GPUMultiTarget

        return GPUMultiTarget()
    if name == "interp":
        from repro.codegen.interpreted import InterpretedTarget

        return InterpretedTarget()
    if name == "fem":
        from repro.codegen.fem_target import FEMTarget

        return FEMTarget()
    raise CodegenError(
        f"unknown codegen target {name!r} "
        "(cpu/distributed/gpu/gpu_distributed/interp)"
    )


__all__ = [
    "make_target",
    "CodegenTarget",
    "GeneratedSolver",
    "SolverState",
    "ExprEmitter",
    "EmittedExpr",
    "TransientRecorder",
    "LineProbe",
    "wall_heat_flux",
]
