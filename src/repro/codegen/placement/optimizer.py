"""Minimum-cut device assignment (Stone's formulation).

Build a flow network with terminals ``GPU`` (source) and ``CPU`` (sink):

* arc ``source -> task`` with capacity ``cost_cpu(task)`` — paid when the
  task ends up on the CPU side of the cut;
* arc ``task -> sink`` with capacity ``cost_gpu(task)`` — paid when the
  task runs on the GPU;
* for each data edge, arcs in both directions with capacity equal to the
  PCIe transfer time of its bytes — paid when the endpoints are split.

Pinning is an infinite terminal capacity.  The minimum s-t cut therefore
minimises ``sum(execution time on the assigned device) + sum(per-step
transfer time across the split)`` — the paper's "partitions the work into
CPU and GPU tasks while considering data movement costs".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from repro.codegen.placement.graph import TaskGraph
from repro.gpu.spec import DeviceSpec
from repro.util.errors import CodegenError
from repro.util.logging import get_logger

logger = get_logger("codegen.placement")

_SOURCE = "__GPU__"
_SINK = "__CPU__"
_INF = float("inf")


@dataclass
class PlacementPlan:
    """Result of one placement optimisation."""

    device: dict[str, str]  # task -> 'cpu' | 'gpu'
    objective_seconds: float  # modelled step cost (exec + transfers)
    cut_edges: list[tuple[str, str, float]]  # (src, dst, bytes) crossing devices
    bytes_moved_per_step: float
    graph: TaskGraph = field(repr=False, default=None)
    # task -> original device, for plans produced by degrade_to_cpu()
    degraded_from: dict[str, str] | None = None

    def gpu_tasks(self) -> list[str]:
        return sorted(t for t, d in self.device.items() if d == "gpu")

    def cpu_tasks(self) -> list[str]:
        return sorted(t for t, d in self.device.items() if d == "cpu")

    def predicted_cost(self, task: str) -> float | None:
        """Modelled per-step seconds of ``task`` on its assigned device.

        This is the quantity the min-cut optimised; the observability layer
        compares it against measured per-task times (the run report's
        placement-accuracy section).  ``None`` when the plan carries no
        graph (detached plans).
        """
        if self.graph is None or task not in self.graph.tasks:
            return None
        t = self.graph.tasks[task]
        return t.cost_gpu if self.device.get(task) == "gpu" else t.cost_cpu

    def predicted_costs(self) -> dict[str, float | None]:
        """Per-task predicted seconds on the assigned devices."""
        return {name: self.predicted_cost(name) for name in sorted(self.device)}

    def degrade_to_cpu(self, task: str) -> "PlacementPlan":
        """A new plan with ``task`` re-placed on the CPU (fault fallback).

        Used by the resilient runtime when the device executing ``task``
        faulted: the assignment moves, the crossing edges and per-step
        objective are recomputed from the original graph, and the returned
        plan records the degradation so reports can show the re-placement
        alongside the optimiser's original choice.
        """
        if task not in self.device:
            raise CodegenError(f"no task named {task!r} in this plan")
        device = dict(self.device)
        device[task] = "cpu"
        if self.graph is not None:
            cut_edges = [
                (e.src, e.dst, e.nbytes)
                for e in self.graph.edges
                if device[e.src] != device[e.dst]
            ]
            t = self.graph.tasks[task]
            objective = (
                self.objective_seconds
                - (t.cost_gpu if self.device[task] == "gpu" else t.cost_cpu)
                + t.cost_cpu
            )
        else:
            cut_edges = [e for e in self.cut_edges if task not in (e[0], e[1])]
            objective = self.objective_seconds
        return PlacementPlan(
            device=device,
            objective_seconds=objective,
            cut_edges=cut_edges,
            bytes_moved_per_step=sum(b for _, _, b in cut_edges),
            graph=self.graph,
            degraded_from={task: self.device[task]},
        )

    def report(self) -> str:
        """Human-readable placement summary (shown by the GPU examples)."""
        lines = ["placement plan (min-cut over the step task graph):"]
        for name in sorted(self.device):
            task = self.graph.tasks[name] if self.graph else None
            pin = ""
            if task is not None and task.pinned:
                pin = f"   [pinned {task.pinned}]"
            if self.degraded_from and name in self.degraded_from:
                pin += f"   [degraded from {self.degraded_from[name].upper()}]"
            lines.append(f"  {name:<24} -> {self.device[name].upper()}{pin}")
        lines.append(
            f"  data moved per step: {self.bytes_moved_per_step / 1e6:.3f} MB "
            f"({len(self.cut_edges)} crossing edge(s))"
        )
        lines.append(f"  modelled step cost: {self.objective_seconds * 1e3:.3f} ms")
        return "\n".join(lines)


def optimize_placement(graph: TaskGraph, link: DeviceSpec) -> PlacementPlan:
    """Solve the assignment by minimum s-t cut on ``graph``.

    ``link`` supplies the PCIe latency/bandwidth converting bytes to
    seconds so execution and transfer costs share a unit.
    """
    graph.validate()
    g = nx.DiGraph()

    def transfer_seconds(nbytes: float) -> float:
        if nbytes <= 0:
            return 0.0
        return link.pcie_latency_s + nbytes / link.pcie_bw_bytes()

    for task in graph.tasks.values():
        to_cpu_cost = _INF if task.pinned == "cpu" else task.cost_gpu
        to_gpu_cost = _INF if task.pinned == "gpu" else task.cost_cpu
        # source(GPU)->task capacity = cost if task lands CPU-side
        g.add_edge(_SOURCE, task.name, capacity=_cap(to_gpu_cost))
        # task->sink(CPU) capacity = cost if task lands GPU-side
        g.add_edge(task.name, _SINK, capacity=_cap(to_cpu_cost))

    for edge in graph.edges:
        w = transfer_seconds(edge.nbytes)
        for a, b in ((edge.src, edge.dst), (edge.dst, edge.src)):
            if g.has_edge(a, b):
                g[a][b]["capacity"] += w
            else:
                g.add_edge(a, b, capacity=w)

    cut_value, (gpu_side, cpu_side) = nx.minimum_cut(g, _SOURCE, _SINK)
    if math.isinf(cut_value):
        raise CodegenError("placement infeasible: conflicting pinned tasks")

    device = {
        name: ("gpu" if name in gpu_side else "cpu") for name in graph.tasks
    }
    cut_edges = [
        (e.src, e.dst, e.nbytes)
        for e in graph.edges
        if device[e.src] != device[e.dst]
    ]
    n_gpu = sum(1 for d in device.values() if d == "gpu")
    logger.info(
        "placement: %d task(s) -> GPU, %d -> CPU; objective %.3e s/step, "
        "%.3f MB moved over %d crossing edge(s)",
        n_gpu, len(device) - n_gpu, cut_value,
        sum(b for _, _, b in cut_edges) / 1e6, len(cut_edges),
    )
    for name in sorted(device):
        task = graph.tasks[name]
        logger.debug("  %-24s -> %s (cpu %.3e s, gpu %.3e s)",
                     name, device[name], task.cost_cpu, task.cost_gpu)
    return PlacementPlan(
        device=device,
        objective_seconds=float(cut_value),
        cut_edges=cut_edges,
        bytes_moved_per_step=sum(b for _, _, b in cut_edges),
        graph=graph,
    )


def _cap(value: float) -> float:
    # networkx treats missing 'capacity' as infinite; keep explicit floats
    return value if math.isfinite(value) else _INF


__all__ = ["PlacementPlan", "optimize_placement"]
