"""Task-graph model of one solver step.

Nodes are *tasks* (units of per-step work with a CPU and a GPU execution
cost; user callbacks are pinned to the CPU, per the paper's constraint) and
edges are *data dependencies* carrying bytes that must cross the PCIe link
whenever the two endpoint tasks land on different devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.errors import CodegenError


@dataclass(frozen=True)
class Task:
    """One unit of per-step work.

    ``cost_cpu``/``cost_gpu`` are seconds per step; ``pinned`` forces the
    device (``'cpu'`` for user callbacks — "unless these are intentionally
    written for GPU processing, they may be challenging to automatically
    port", Sec. I).
    """

    name: str
    cost_cpu: float
    cost_gpu: float = math.inf
    pinned: str | None = None

    def __post_init__(self) -> None:
        if self.pinned not in (None, "cpu", "gpu"):
            raise CodegenError(f"task {self.name}: pinned must be 'cpu'/'gpu'/None")
        if self.cost_cpu < 0 or self.cost_gpu < 0:
            raise CodegenError(f"task {self.name}: negative cost")


@dataclass(frozen=True)
class DataEdge:
    """Per-step data flowing between two tasks."""

    src: str
    dst: str
    nbytes: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise CodegenError(f"edge {self.src}->{self.dst}: negative bytes")


@dataclass
class TaskGraph:
    """All tasks + data edges of one step."""

    tasks: dict[str, Task] = field(default_factory=dict)
    edges: list[DataEdge] = field(default_factory=list)

    def add_task(self, task: Task) -> Task:
        if task.name in self.tasks:
            raise CodegenError(f"duplicate task {task.name!r}")
        self.tasks[task.name] = task
        return task

    def add_edge(self, src: str, dst: str, nbytes: float, label: str = "") -> DataEdge:
        for name in (src, dst):
            if name not in self.tasks:
                raise CodegenError(f"edge references unknown task {name!r}")
        edge = DataEdge(src, dst, nbytes, label)
        self.edges.append(edge)
        return edge

    def total_bytes(self) -> float:
        return sum(e.nbytes for e in self.edges)

    def validate(self) -> None:
        for t in self.tasks.values():
            if t.pinned == "gpu" and not math.isfinite(t.cost_gpu):
                raise CodegenError(f"task {t.name} pinned to gpu but has no gpu cost")


__all__ = ["Task", "DataEdge", "TaskGraph"]
