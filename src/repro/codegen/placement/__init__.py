"""CPU/GPU task placement minimising data movement.

The paper's central automation: "the DSL automatically partitions tasks
between the CPU and GPU by minimizing the data movement" with user callbacks
pinned to the CPU.  This package models the per-step computation as a task
graph (:mod:`~repro.codegen.placement.graph`) and solves the two-device
assignment as a minimum s-t cut (:mod:`~repro.codegen.placement.optimizer`)
— Stone's classical network-flow formulation of the module-allocation
problem, with execution costs on the terminal arcs and per-step transfer
costs on the data arcs.
"""

from repro.codegen.placement.graph import Task, DataEdge, TaskGraph
from repro.codegen.placement.optimizer import PlacementPlan, optimize_placement
from repro.codegen.placement.transfers import TransferPlan, plan_transfers

__all__ = [
    "Task",
    "DataEdge",
    "TaskGraph",
    "PlacementPlan",
    "optimize_placement",
    "TransferPlan",
    "plan_transfers",
]
