"""Per-step transfer planning from a placement.

"Finch will automatically determine what variables need to be updated and
communicated during each step.  Other values will either only be sent once,
or not at all." (Sec. II-B.)  Given which tasks read/write which arrays and
where the tasks landed, classify every array:

* ``static`` — read by GPU tasks, never written after setup: one H2D at
  initialisation (geometry, coefficient tables);
* ``h2d_each_step`` — written by a CPU task, read by a GPU task (``Io``,
  ``beta`` after the temperature update);
* ``d2h_each_step`` — written by a GPU task, read by a CPU task (the
  unknown, needed by the post-step);
* ``host_only`` / ``device_only`` — never cross.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.placement.optimizer import PlacementPlan


@dataclass(frozen=True)
class ArrayUse:
    """Which tasks read/write one named array, and its size.

    ``double_buffered`` marks arrays the generated code shadows on the
    device (the unknown: kernels write ``u_new`` while CPU tasks read
    ``u``): the race verifier exempts them from same-step read/write
    hazards.
    """

    name: str
    nbytes: float
    readers: tuple[str, ...] = ()
    writers: tuple[str, ...] = ()
    mutated_each_step: bool = True
    double_buffered: bool = False


@dataclass
class TransferPlan:
    """The communication schedule implied by a placement."""

    static_h2d: list[str] = field(default_factory=list)
    h2d_each_step: list[str] = field(default_factory=list)
    d2h_each_step: list[str] = field(default_factory=list)
    host_only: list[str] = field(default_factory=list)
    device_only: list[str] = field(default_factory=list)
    bytes_h2d_per_step: float = 0.0
    bytes_d2h_per_step: float = 0.0

    def report(self) -> str:
        lines = ["transfer plan:"]
        if self.static_h2d:
            lines.append(f"  once (setup H2D):   {', '.join(self.static_h2d)}")
        if self.h2d_each_step:
            lines.append(
                f"  every step H2D:     {', '.join(self.h2d_each_step)} "
                f"({self.bytes_h2d_per_step / 1e6:.3f} MB)"
            )
        if self.d2h_each_step:
            lines.append(
                f"  every step D2H:     {', '.join(self.d2h_each_step)} "
                f"({self.bytes_d2h_per_step / 1e6:.3f} MB)"
            )
        if self.host_only:
            lines.append(f"  host only:          {', '.join(self.host_only)}")
        if self.device_only:
            lines.append(f"  device only:        {', '.join(self.device_only)}")
        return "\n".join(lines)


def plan_transfers(plan: PlacementPlan, arrays: list[ArrayUse]) -> TransferPlan:
    """Classify arrays given the task placement."""
    out = TransferPlan()
    for arr in arrays:
        read_gpu = any(plan.device.get(t) == "gpu" for t in arr.readers)
        read_cpu = any(plan.device.get(t) == "cpu" for t in arr.readers)
        written_gpu = any(plan.device.get(t) == "gpu" for t in arr.writers)
        written_cpu = any(plan.device.get(t) == "cpu" for t in arr.writers)

        # an array can cross both ways each step (the unknown: updated on
        # the device, read and corrected by CPU tasks, read again next step)
        h2d = read_gpu and written_cpu and arr.mutated_each_step
        d2h = written_gpu and read_cpu
        if h2d:
            out.h2d_each_step.append(arr.name)
            out.bytes_h2d_per_step += arr.nbytes
        if d2h:
            out.d2h_each_step.append(arr.name)
            out.bytes_d2h_per_step += arr.nbytes
        if h2d or d2h:
            continue
        if read_gpu and not written_gpu and not written_cpu:
            out.static_h2d.append(arr.name)
        elif read_gpu or written_gpu:
            out.device_only.append(arr.name)
        else:
            out.host_only.append(arr.name)
    return out


__all__ = ["ArrayUse", "TransferPlan", "plan_transfers"]
