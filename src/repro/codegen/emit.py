"""Expression-to-NumPy source emission.

Translates classified symbolic terms into Python/NumPy expression strings
for the generated solvers, together with static work estimates (FLOPs and
bytes per value) that feed the simulated GPU's roofline timing.

Naming conventions in generated code (all bound on the ``state`` object or
as locals prepared by the generated function):

================  ==========================================================
``u``             unknown, ``(ncomp, ncells)``
``u1``, ``u2``    owner/neighbour face values, ``(ncomp, nfaces)``
``sel``           component-block selector from ``assemblyLoops`` (an index
                  array or ``slice(None)``)
``normal_x`` ...  face normal components, ``(nfaces,)``
``coef_<c>``      scalar coefficient (float) or per-component vector
``cmap_<v>``      component map of a known variable onto the unknown's
                  component axis, ``(ncomp,)`` int
``var_<v>``       known variable values ``(ncomp_v, ncells)``
``fcoef_<c>``     function coefficient evaluated on cell centres /
                  ``fcoef_<c>_face`` on face centres
================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.symbolic.expr import (
    Add,
    Call,
    Cmp,
    Conditional,
    Expr,
    FaceDistance,
    FaceNormal,
    Indexed,
    Mul,
    Num,
    Pow,
    Reconstruction,
    SideValue,
    Sym,
    preorder,
)
from repro.symbolic.functions import FUNCTION_CODES
from repro.util.errors import CodegenError

if TYPE_CHECKING:
    from repro.dsl.problem import Problem
    from repro.ir.fuse import FusedProgram
    from repro.ir.lowering import ClassifiedForm

_AXIS_NAMES = {1: "normal_x", 2: "normal_y", 3: "normal_z"}

#: math functions usable inside equation terms — the source-string view of
#: the unified :mod:`repro.symbolic.functions` registry (shared with the
#: interpreter's ``DEFAULT_FUNCTIONS`` and the fused vector VM)
_MATH_FUNCS = FUNCTION_CODES


@dataclass
class FusedStatement:
    """A statement compiled to a fused vector program plus its call site.

    ``code`` replaces the unfused expression string in the generated
    source: ``VM_<NAME>.run(<slot code strings>)``.  The slot keys *are*
    emitted source fragments, so the call site reads exactly the locals
    the unfused expression would.
    """

    name: str
    program: "FusedProgram"
    code: str


@dataclass
class EmittedExpr:
    """One emitted expression and its work estimate (per produced value).

    ``prelude`` carries hoisted common-subexpression assignments (state-free
    array temporaries); targets emit them immediately before the statement
    that uses ``code``.
    """

    code: str
    flops: int
    reads: set[str] = field(default_factory=set)
    prelude: list[str] = field(default_factory=list)

    @property
    def bytes_per_value(self) -> int:
        # one 8-byte read per distinct array leaf + the 8-byte result write
        return 8 * (len(self.reads) + 1)


class ExprEmitter:
    """Emits volume- and surface-context NumPy code for one problem."""

    def __init__(self, problem: "Problem", form: "ClassifiedForm", var_mode: str = "state"):
        """``var_mode``: how known-variable reads are emitted — ``'state'``
        (through the live ``state.fields`` dict; CPU targets) or ``'local'``
        (as plain ``var_<name>`` array names; the GPU kernel receives device
        buffers under those names as arguments)."""
        if var_mode not in ("state", "local"):
            raise CodegenError(f"unknown var_mode {var_mode!r}")
        self.problem = problem
        self.form = form
        self.unknown = form.unknown
        self.entities = problem.entities
        self.space = self.unknown.space
        self.var_mode = var_mode
        #: fused programs compiled by :meth:`try_fuse`, keyed by VM name;
        #: builds lift this into ``static_env["FUSED_PROGRAMS"]``
        self.fused_programs: dict[str, "FusedProgram"] = {}

    # ------------------------------------------------------------- public API
    def emit_volume(self, term: Expr) -> EmittedExpr:
        """Emit a volume integrand producing ``(nsel, ncells)`` values."""
        return self._emit(term, context="volume")

    def emit_surface(self, term: Expr) -> EmittedExpr:
        """Emit a surface integrand producing ``(nsel, nfaces)`` values."""
        return self._emit(term, context="surface")

    def emit_sum(self, terms: list[Expr], context: str, cse: bool = True,
                 tag: str | None = None) -> EmittedExpr:
        """Sum of several integrands (zero if empty).

        With ``cse`` (the default), repeated/compound *coefficient-only*
        subexpressions — e.g. the projected velocity ``vg*(Sx*nx + Sy*ny)``
        that first-order upwinding evaluates three times inside its
        conditional — are hoisted into prelude temporaries.  They read only
        normals/coefficients (never the solution or time), so evaluating
        them once per statement is always safe.
        """
        if not terms:
            return EmittedExpr("0.0", 0)
        self._cse_table = {} if cse else None
        self._cse_tag = tag if tag is not None else context[0]
        self._cse_lines: list[str] = []
        try:
            parts = [self._emit(t, context) for t in terms]
        finally:
            prelude = list(self._cse_lines)
            self._cse_table = None
            self._cse_lines = []
        code = " + ".join(f"({p.code})" for p in parts)
        flops = sum(p.flops for p in parts) + (len(parts) - 1)
        reads: set[str] = set()
        for p in parts:
            reads |= p.reads
        return EmittedExpr(code, flops, reads, prelude=prelude)

    def try_fuse(
        self, terms: list[Expr], context: str, vm_name: str, mode: str
    ) -> FusedStatement | None:
        """Compile a statement into a fused vector program (or fall back).

        Leaves keep their normal emitted code strings and become the
        program's slots, so the generated call passes exactly the arrays
        the unfused expression would read.  ``mode='auto'`` returns None
        on an unfusable statement; ``mode='on'`` raises.  Work estimates
        (FLOPs/bytes) always come from the unfused :meth:`emit_sum`, so
        placement and virtual timings are identical fused or unfused.
        """
        from repro.ir.fuse import UnfusableError, compile_terms

        if mode == "off" or not terms:
            return None
        reads: set[str] = set()
        saved = getattr(self, "_cse_table", None)
        self._cse_table = None  # slot code must be self-contained (no temps)
        try:
            program = compile_terms(
                terms, lambda node: self._walk(node, context, reads)
            )
        except UnfusableError as exc:
            if mode == "on":
                raise CodegenError(
                    f"fusion='on' but the {context} statement is unfusable: {exc}"
                ) from exc
            return None
        finally:
            self._cse_table = saved
        code = f"VM_{vm_name.upper()}.run({', '.join(program.slots)})"
        self.fused_programs[vm_name] = program
        return FusedStatement(vm_name, program, code)

    # ------------------------------------------------------------- internals
    #: leaf name prefixes that are constant within one RHS evaluation
    _INVARIANT_PREFIXES = ("normal_", "coef_", "face_dist")

    def _emit(self, term: Expr, context: str) -> EmittedExpr:
        reads: set[str] = set()
        flops = _count_flops(term)
        code = self._walk(term, context, reads)
        return EmittedExpr(code, flops, reads)

    def _is_invariant_compound(self, node: Expr) -> bool:
        """Compound expression built purely from coefficients/geometry."""
        if not isinstance(node, (Add, Mul, Pow)):
            return False
        n_leaves = 0
        for sub in preorder(node):
            if isinstance(sub, (Num,)):
                continue
            if isinstance(sub, (Add, Mul, Pow)):
                continue
            if isinstance(sub, FaceNormal) or isinstance(sub, FaceDistance):
                n_leaves += 1
                continue
            if isinstance(sub, Sym) and sub.name.startswith("_") and sub.name.endswith("_1"):
                coef = self.entities.coefficients.get(sub.name[1:-2])
                if coef is not None and not coef.is_function:
                    n_leaves += 1
                    continue
                return False
            if isinstance(sub, Indexed):
                coef = self.entities.coefficients.get(sub.base)
                if coef is not None and not coef.is_function:
                    n_leaves += 1
                    continue
                return False
            return False
        return n_leaves >= 2  # hoisting single leaves buys nothing

    def _walk(self, node: Expr, ctx: str, reads: set[str]) -> str:
        table = getattr(self, "_cse_table", None)
        if table is not None and self._is_invariant_compound(node):
            key = (ctx, node)
            if key not in table:
                # build the temp's code without re-entering the CSE path
                self._cse_table = None
                try:
                    code = self._walk(node, ctx, reads)
                finally:
                    self._cse_table = table
                name = f"cse_{self._cse_tag}{len(table)}"
                table[key] = name
                self._cse_lines.append(f"{name} = {code}")
            else:
                # leaves were already counted when the temp was defined
                pass
            return table[key]
        if isinstance(node, Num):
            return repr(float(node.value))
        if isinstance(node, Sym):
            return self._emit_sym(node, ctx, reads)
        if isinstance(node, Indexed):
            return self._emit_indexed(node, ctx, side=None, reads=reads)
        if isinstance(node, SideValue):
            return self._emit_side(node, ctx, reads)
        if isinstance(node, FaceNormal):
            if ctx != "surface":
                raise CodegenError("face normals only exist in surface terms")
            name = _AXIS_NAMES[node.component]
            reads.add(name)
            return f"{name}[None, :]"
        if isinstance(node, FaceDistance):
            if ctx != "surface":
                raise CodegenError("face distances only exist in surface terms")
            reads.add("face_dist")
            return "face_dist[None, :]"
        if isinstance(node, Add):
            return "(" + " + ".join(self._walk(a, ctx, reads) for a in node.args) + ")"
        if isinstance(node, Mul):
            return "(" + " * ".join(self._walk(a, ctx, reads) for a in node.args) + ")"
        if isinstance(node, Pow):
            base = self._walk(node.base, ctx, reads)
            if isinstance(node.exponent, Num):
                e = node.exponent.value
                if e == -1:
                    return f"(1.0 / {base})"
                return f"({base} ** {repr(float(e))})"
            exponent = self._walk(node.exponent, ctx, reads)
            return f"({base} ** {exponent})"
        if isinstance(node, Cmp):
            lhs = self._walk(node.lhs, ctx, reads)
            rhs = self._walk(node.rhs, ctx, reads)
            return f"({lhs} {node.op} {rhs})"
        if isinstance(node, Conditional):
            cond = self._walk(node.cond, ctx, reads)
            then = self._walk(node.then, ctx, reads)
            other = self._walk(node.otherwise, ctx, reads)
            return f"np.where({cond}, {then}, {other})"
        if isinstance(node, Reconstruction):
            if ctx != "surface":
                raise CodegenError("flux reconstructions only exist in surface terms")
            if node.scheme != "muscl":
                raise CodegenError(f"unknown reconstruction scheme {node.scheme!r}")
            qty = node.quantity
            is_unknown = (
                isinstance(qty, Indexed) and qty.base == self.unknown.name
            ) or (isinstance(qty, Sym) and qty.name == f"_{self.unknown.name}_1")
            if not is_unknown:
                raise CodegenError(
                    "second-order reconstruction supports only the unknown"
                )
            vn = self._walk(node.velocity_normal, ctx, reads)
            reads.update({"u", "ghost", "geom"})
            return f"kernels.muscl_flux(geom, {vn}, u[sel], ghost[sel])"
        if isinstance(node, Call):
            if node.func in _MATH_FUNCS:
                args = ", ".join(self._walk(a, ctx, reads) for a in node.args)
                return f"{_MATH_FUNCS[node.func]}({args})"
            raise CodegenError(
                f"callback {node.func!r} cannot appear inside an equation term; "
                "use a function coefficient or a boundary/step callback instead"
            )
        raise CodegenError(f"cannot emit node type {type(node).__name__}: {node}")

    # -- leaves -----------------------------------------------------------------
    def _emit_sym(self, node: Sym, ctx: str, reads: set[str]) -> str:
        name = node.name
        if name.startswith("_") and name.endswith("_1"):
            base = name[1:-2]
            kind = self.entities.kind_of(base)
            if kind == "variable":
                return self._emit_variable(base, ctx, side=None, reads=reads)
            if kind == "coefficient":
                return self._emit_coefficient(base, ctx, reads)
        if name == "dt":
            return "dt"
        raise CodegenError(f"cannot emit symbol {name!r}")

    def _emit_indexed(
        self, node: Indexed, ctx: str, side: int | None, reads: set[str]
    ) -> str:
        kind = self.entities.kind_of(node.base)
        if kind == "variable":
            return self._emit_variable(node.base, ctx, side, reads)
        if kind == "coefficient":
            return self._emit_coefficient(node.base, ctx, reads)
        raise CodegenError(f"cannot emit indexed entity {node.base!r}")

    def _emit_side(self, node: SideValue, ctx: str, reads: set[str]) -> str:
        if ctx != "surface":
            raise CodegenError("face-side values only exist in surface terms")
        inner = node.expr
        if isinstance(inner, Indexed) and inner.base == self.unknown.name:
            name = "u1" if node.side == 1 else "u2"
            reads.add(name)
            return f"{name}[sel]"
        if isinstance(inner, Sym) and inner.name == f"_{self.unknown.name}_1":
            name = "u1" if node.side == 1 else "u2"
            reads.add(name)
            return f"{name}[sel]"
        raise CodegenError(
            f"face reconstruction of {inner} is not supported (only the "
            "unknown can be upwinded/averaged)"
        )

    def _emit_variable(
        self, name: str, ctx: str, side: int | None, reads: set[str]
    ) -> str:
        if name == self.unknown.name:
            if ctx == "surface":
                raise CodegenError(
                    f"unknown {name!r} in a surface term must be wrapped in a "
                    "flux reconstruction (upwind/average)"
                )
            reads.add("u")
            return "u[sel]"
        # known variable: read through the live rank/serial state (each rank
        # owns its arrays) or as a direct array argument (GPU kernels), and
        # map its components onto the unknown's axis
        var = self.entities.variables[name]
        self._check_subspace(name, var.index_names())
        arr = (
            f"state.fields['{name}'].data" if self.var_mode == "state" else f"var_{name}"
        )
        cmap = f"cmap_{name}"
        reads.add(f"var_{name}")
        if ctx == "volume":
            return f"{arr}[{cmap}[sel], :]"
        # surface context: known variables are evaluated on the owner side
        return f"{arr}[{cmap}[sel], :][:, owner]"

    def _emit_coefficient(self, name: str, ctx: str, reads: set[str]) -> str:
        coef = self.entities.coefficients[name]
        if coef.is_function:
            tag = f"fcoef_{name}" if ctx == "volume" else f"fcoef_{name}_face"
            reads.add(tag)
            return f"{tag}[None, :]"
        if not coef.indices:
            return f"coef_{name}"  # plain float, no array read
        self._check_subspace(name, coef.index_names())
        arr = f"coef_{name}"
        reads.add(arr)
        return f"{arr}[sel][:, None]"

    def _check_subspace(self, name: str, index_names: tuple[str, ...]) -> None:
        for ix in index_names:
            if ix not in self.space.names:
                raise CodegenError(
                    f"entity {name!r} uses index {ix!r} which the unknown "
                    f"{self.unknown.name!r} does not carry"
                )

    # ------------------------------------------------------ environment tables
    def component_tables(self) -> dict[str, object]:
        """Numeric tables the generated code needs (computed once).

        Returns a dict with, for every known variable ``v`` referenced,
        ``cmap_v`` — the (ncomp_unknown,) map from unknown component to the
        variable's component — and for every array coefficient ``c``,
        ``coef_c`` broadcast to the unknown's component axis.
        """
        import numpy as np

        out: dict[str, object] = {}
        space = self.space
        referenced = self._referenced_entities()
        for name in referenced["variables"]:
            if name == self.unknown.name:
                continue
            var = self.entities.variables[name]
            if var.indices:
                vspace = var.space
                axes = [space.axis_values(ix) for ix in vspace.names]
                flat = np.zeros(space.ncomp, dtype=np.int64)
                for vals, size in zip(axes, vspace.sizes):
                    flat = flat * size + vals
                out[f"cmap_{name}"] = flat
            else:
                out[f"cmap_{name}"] = np.zeros(max(space.ncomp, 1), dtype=np.int64)
        for name in referenced["coefficients"]:
            coef = self.entities.coefficients[name]
            if coef.is_function:
                continue  # evaluated per step by the generated driver
            if coef.indices:
                cspace = coef.space
                axes = [space.axis_values(ix) for ix in cspace.names]
                flat = np.zeros(space.ncomp, dtype=np.int64)
                for vals, size in zip(axes, cspace.sizes):
                    flat = flat * size + vals
                values = np.asarray(coef.value, dtype=np.float64).reshape(-1)
                out[f"coef_{name}"] = values[flat]
            else:
                out[f"coef_{name}"] = float(coef.value)
        return out

    def _referenced_entities(self) -> dict[str, list[str]]:
        variables: list[str] = []
        coefficients: list[str] = []
        for term in list(self.form.volume_terms) + list(self.form.surface_terms):
            for node in preorder(term):
                name: str | None = None
                if isinstance(node, Indexed):
                    name = node.base
                elif isinstance(node, Sym) and node.name.startswith("_") and node.name.endswith("_1"):
                    name = node.name[1:-2]
                if name is None:
                    continue
                kind = self.entities.kind_of(name)
                if kind == "variable" and name not in variables:
                    variables.append(name)
                elif kind == "coefficient" and name not in coefficients:
                    coefficients.append(name)
        return {"variables": variables, "coefficients": coefficients}

    def referenced_known_variables(self) -> list[str]:
        """Known (non-unknown) variables the equation reads — the generated
        namespace must bind their live data arrays as ``var_<name>``."""
        return [
            name
            for name in self._referenced_entities()["variables"]
            if name != self.unknown.name
        ]

    def function_coefficients(self) -> dict[str, object]:
        """Function-valued coefficients referenced by the equation."""
        refs = self._referenced_entities()["coefficients"]
        return {
            name: self.entities.coefficients[name]
            for name in refs
            if self.entities.coefficients[name].is_function
        }


def _count_flops(term: Expr) -> int:
    """Static FLOP count per produced value of one integrand."""
    flops = 0
    for node in preorder(term):
        if isinstance(node, Add):
            flops += len(node.args) - 1
        elif isinstance(node, Mul):
            flops += len(node.args) - 1
        elif isinstance(node, Pow):
            if isinstance(node.exponent, Num) and node.exponent.value == -1:
                flops += 1  # division
            else:
                flops += 8  # general pow
        elif isinstance(node, Cmp):
            flops += 1
        elif isinstance(node, Conditional):
            flops += 1  # the select
        elif isinstance(node, Reconstruction):
            flops += 35  # gradients, offsets, limiter, select
    return flops


__all__ = ["ExprEmitter", "EmittedExpr", "FusedStatement"]
