"""FEM code-generation target (P1, lumped-mass explicit stepping).

Selected by ``solver_type(FEM)`` + ``weak_form(u, "...")``.  The weak-form
pipeline classifies the input into the paper's bilinear/linear groups
(:mod:`repro.fem.weakform`); this target assembles the corresponding sparse
operators once, composes the semi-discrete system

    M_L du/dt = A u + F        (A = sum of signed stiffness/mass/advection)

and generates the explicit step source around it.  Dirichlet regions pin
their boundary nodes after every update (strong enforcement); all other
regions are natural (zero-flux) boundaries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np
import scipy.sparse as sp

from repro.codegen.target_base import (
    CodegenTarget,
    GeneratedSolver,
    attach_artifact_attrs,
)
from repro.fem.assemble import (
    assemble_advection,
    assemble_load,
    assemble_mass,
    assemble_stiffness,
    boundary_lumped_mass,
    dirichlet_nodes,
    lumped_mass,
)
from repro.fem.p1 import build_p1
from repro.fem.weakform import lower_weak_form
from repro.fvm.boundary import BCKind
from repro.ir.fuse import fusion_mode, fusion_summary
from repro.symbolic.evaluate import evaluate
from repro.symbolic.expr import Expr, Sym
from repro.util.errors import CodegenError, ConfigError
from repro.util.misc import check_finite
from repro.util.timing import TimerRegistry

if TYPE_CHECKING:
    from repro.dsl.problem import Problem


class FEMState:
    """Nodal solver state (the FEM analogue of ``SolverState``)."""

    def __init__(self, problem: "Problem", p1) -> None:
        self.problem = problem
        self.mesh = problem.mesh
        self.p1 = p1
        self.dt = problem.config.dt
        self.nsteps = problem.config.nsteps
        self.time = 0.0
        self.step_index = 0
        self.timers = TimerRegistry()
        self.extra: dict[str, Any] = dict(problem.extra)
        self.nnodes = p1.nnodes
        self._u = np.zeros((1, self.nnodes))
        self._apply_initial()

    @property
    def u(self) -> np.ndarray:
        return self._u

    @u.setter
    def u(self, values: np.ndarray) -> None:
        self._u[...] = values

    def _apply_initial(self) -> None:
        unknown = self.problem.unknown.name
        init = self.problem.initial_values.get(unknown)
        if init is None:
            return
        if callable(init):
            vals = np.asarray(init(self.p1.mesh.nodes), dtype=np.float64)
            if vals.shape != (self.nnodes,):
                raise ConfigError(
                    f"FEM initial condition returned {vals.shape}, expected "
                    f"({self.nnodes},) nodal values"
                )
            self._u[0] = vals
        else:
            arr = np.asarray(init, dtype=np.float64)
            if arr.ndim == 0:
                self._u[0] = float(arr)
            elif arr.shape == (self.nnodes,):
                self._u[0] = arr
            else:
                raise ConfigError(
                    f"FEM initial condition shape {arr.shape} != ({self.nnodes},)"
                )

    def check_health(self) -> None:
        check_finite(self.problem.unknown.name, self._u)

    def sanitize_step(self) -> None:
        from repro.verify.sanitizer import get_sanitizer

        san = get_sanitizer()
        if san.enabled:
            san.check_state(self)

    def log_run_event(self, name: str, **fields: Any) -> None:
        """Run-lifecycle events with this state's provenance (no ranks here)."""
        from repro.obs import get_event_log

        elog = get_event_log()
        if elog.enabled and elog.wants("info"):
            elog.emit(name, level="info", step=self.step_index,
                      problem=self.problem.name, **fields)

    def profile_scope(self, name: str):
        """Phase timer + per-launch profiler probe (see ``SolverState``)."""
        from repro.obs.profile import get_profiler

        prof = get_profiler()
        if not prof.enabled:
            return self.timers.time(name)
        return _FEMProfileScope(self, name, prof)


class _FEMProfileScope:
    """FEM twin of ``repro.codegen.state._ProfileScope`` (rank-less)."""

    __slots__ = ("_state", "_name", "_profiler", "_start", "elapsed")

    def __init__(self, state: FEMState, name: str, profiler):
        self._state = state
        self._name = name
        self._profiler = profiler
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_FEMProfileScope":
        self._start = self._state.timers.clock.now()
        return self

    def __exit__(self, *exc) -> None:
        state = self._state
        self.elapsed = state.timers.clock.now() - self._start
        state.timers.record(self._name, self.elapsed)
        self._profiler.record(self._name, self.elapsed, rank=0,
                              step=state.step_index)


_SOURCE = '''

def step_once(state):
    """Explicit lumped-mass step: u += dt * invM_L * (A u + F)."""
    with state.profile_scope('solve'):
        rhs = A_OPERATOR @ state.u[0] + LOAD
        state.u[0] = state.u[0] + state.dt * rhs * INV_LUMPED_MASS
        # strong Dirichlet enforcement
        state.u[0][DIRICHLET_NODES] = DIRICHLET_VALUES
    state.time += state.dt
    state.step_index += 1


def run_steps(state, nsteps):
    state.log_run_event('run.start', target='fem', nsteps=nsteps)
    for _ in range(nsteps):
        for cb in PRE_STEP_CALLBACKS:
            cb.fn(state)
        step_once(state)
        for cb in POST_STEP_CALLBACKS:
            cb.fn(state)
        state.sanitize_step()
    state.check_health()
    state.log_run_event('run.end', target='fem')
    return state
'''


def _eval_coefficient(
    problem: "Problem",
    expr: Expr,
    points: np.ndarray,
    fusion: str = "off",
    programs: dict | None = None,
    tag: str = "",
):
    """Evaluate a weak-term coefficient product at points (or a scalar).

    Under the ``fusion`` knob the expression is compiled to a fused vector
    program and run through the VM at assembly time (bit-identical by the
    fusion equivalence contract), so the baked operators match the unfused
    build exactly; the program stats feed the build's ``fusion_info``.
    """
    ents = problem.entities

    def lookup(node: Expr):
        if isinstance(node, Sym):
            coef = ents.coefficients.get(node.name)
            if coef is None:
                raise CodegenError(f"unknown coefficient {node.name!r}")
            if coef.is_function:
                return np.asarray(coef.value(points), dtype=np.float64)
            return float(coef.value)
        raise CodegenError(f"cannot evaluate weak coefficient leaf {node}")

    if fusion != "off":
        from repro.codegen.vectorvm import VectorVM
        from repro.ir.fuse import UnfusableError, compile_expr, node_leaf_key

        try:
            program = compile_expr(expr, node_leaf_key())
        except UnfusableError as exc:
            if fusion == "on":
                raise CodegenError(
                    f"fusion='on' but weak coefficient {tag or expr} is "
                    f"unfusable: {exc}"
                ) from exc
        else:
            if programs is not None and tag:
                programs[tag] = program
            vm = VectorVM(program)
            return vm.run(*[lookup(n) for n in program.slot_nodes])
    return evaluate(expr, lookup)


class FEMTarget(CodegenTarget):
    """P1 explicit FEM generation."""

    name = "fem"

    def build_artifact(self, problem: "Problem"):
        if problem.equation is None or problem.equation.source is None:
            raise CodegenError("no weak_form declared")
        if getattr(problem, "equation_kind", "conservation") != "weak":
            raise CodegenError("the FEM target needs weak_form input")
        if problem.config.stepper not in ("euler", "euler_explicit"):
            raise CodegenError("the FEM target implements forward Euler")
        unknown = problem.unknown

        p1 = build_p1(problem.mesh)
        form = lower_weak_form(problem, unknown.name, problem.equation.source)

        # --- assemble the signed operator sum -------------------------------
        fusion = fusion_mode(problem.extra)
        fused_programs: dict = {}
        A = sp.csr_matrix((p1.nnodes, p1.nnodes))
        load = np.zeros(p1.nnodes)
        for i, term in enumerate(form.bilinear):
            coeff = _eval_coefficient(
                problem, term.coefficient, p1.mesh.cell_centroids,
                fusion=fusion, programs=fused_programs, tag=f"bilinear{i}",
            )
            if term.kind == "stiffness":
                A = A + assemble_stiffness(p1, coeff)
            elif term.kind == "mass":
                A = A + assemble_mass(p1, coeff)
            elif term.kind == "advection":
                vel_cols = [
                    _eval_coefficient(
                        problem, c, p1.mesh.cell_centroids,
                        fusion=fusion, programs=fused_programs,
                        tag=f"bilinear{i}_vel{j}",
                    )
                    * np.ones(p1.nelem)
                    for j, c in enumerate(term.velocity)
                ]
                A = A + assemble_advection(p1, np.stack(vel_cols, axis=1))
            else:  # pragma: no cover - guarded by the classifier
                raise CodegenError(f"unexpected bilinear kind {term.kind}")
        for i, term in enumerate(form.linear):
            coeff = term.coefficient
            # the load integrates f * phi_i with nodal quadrature: evaluate
            # the coefficient at the nodes
            values = _eval_coefficient(
                problem, coeff, p1.mesh.nodes,
                fusion=fusion, programs=fused_programs, tag=f"linear{i}",
            )
            load += lumped_mass(p1) * (values * np.ones(p1.nnodes))

        inv_ml = 1.0 / lumped_mass(p1)

        # --- boundary bookkeeping ---------------------------------------------
        dir_regions: list[int] = []
        dir_values: dict[int, float] = {}
        neumann_listing: list[str] = []
        for spec in problem.boundaries:
            if spec.variable != unknown.name:
                continue
            if spec.kind == BCKind.DIRICHLET:
                dir_regions.append(spec.region)
                dir_values[spec.region] = float(np.asarray(spec.value))
            elif spec.kind == BCKind.NEUMANN0:
                continue  # natural zero-flux boundary
            elif spec.kind == BCKind.NEUMANN:
                # the boundary linear group: ∮ g v dA  (outward flux g into
                # the domain enters with +, the weak-form sign convention)
                g = float(np.asarray(spec.value))
                load += g * boundary_lumped_mass(p1, spec.region)
                neumann_listing.append(
                    f"  boundary load(region={spec.region}, g={g})"
                )
            else:
                raise CodegenError(
                    f"FEM target supports DIRICHLET/NEUMANN0/NEUMANN "
                    f"boundaries, got {spec.kind} on region {spec.region}"
                )
        node_table = p1.node_regions()
        nodes_list: list[int] = []
        values_list: list[float] = []
        for r in dir_regions:
            for nd in node_table[r]:
                nodes_list.append(int(nd))
                values_list.append(dir_values[r])
        dir_nodes = np.array(nodes_list, dtype=np.int64)
        dir_vals = np.array(values_list)

        # --- source ------------------------------------------------------------
        lines = [
            f'"""Generated by repro.codegen.fem_target for {problem.name!r}.',
            "",
            f"weak form: {problem.equation.source}",
            "classification (paper Sec. II-A, weak-form path):",
        ]
        lines += ["    " + ln for ln in form.listing().splitlines()]
        if neumann_listing:
            lines.append("    Linear boundary:")
            lines += ["    " + ln for ln in neumann_listing]
        lines += ['"""', _SOURCE]
        source = "\n".join(lines) + "\n"

        # operators, load, boundary tables: all picklable — the whole
        # assembly is the cacheable half (function coefficients are baked
        # in here; their code identity is part of the cache key)
        return self.make_artifact(
            problem, source,
            static_env={
                "A_OPERATOR": A,
                "LOAD": load,
                "INV_LUMPED_MASS": inv_ml,
                "DIRICHLET_NODES": dir_nodes,
                "DIRICHLET_VALUES": dir_vals,
            },
            attrs={
                "weak_form": form,
                "p1": p1,
                "operators": {"A": A, "load": load, "lumped_mass": 1.0 / inv_ml},
                "fusion_info": fusion_summary(fusion, fused_programs),
            },
        )

    def bind_artifact(self, problem: "Problem", artifact) -> GeneratedSolver:
        state = FEMState(problem, artifact.attrs["p1"])
        dir_nodes = artifact.static_env["DIRICHLET_NODES"]
        if len(dir_nodes):
            # consistent initial boundary
            state.u[0, dir_nodes] = artifact.static_env["DIRICHLET_VALUES"]
        env = dict(artifact.static_env)
        env["PRE_STEP_CALLBACKS"] = list(problem.pre_step_callbacks)
        env["POST_STEP_CALLBACKS"] = list(problem.post_step_callbacks)
        solver = GeneratedSolver(
            self.name, artifact.source, env, state,
            code=artifact.code, module_name=artifact.module_name,
        )
        if artifact.code is None:
            artifact.code = solver.code
        attach_artifact_attrs(solver, artifact)
        return solver


__all__ = ["FEMTarget", "FEMState"]
