"""Multi-GPU distributed target: band partitioning across devices.

This is the configuration of the paper's Figure 7: "The number of GPU
devices and CPU processes is set so that each process is paired with one
device.  Partitioning between these is the same as the band-parallel
strategy."  Each rank owns a contiguous block of spectral bands, drives its
own simulated device (interior kernel over its components, asynchronous,
overlapped with its CPU boundary work), and the ranks couple only through
the temperature update's band-energy allreduce — band partitioning's
advantage "when working across multiple GPUs, where communication between
devices can be particularly expensive" (Sec. III-E).

Correctness: rank programs exchange real data and must agree bitwise-ish
with the serial solver (tested).  Timing: each rank's host clock advances
with device-model kernel/transfer times plus cost-model host work, and is
mirrored onto its communicator clock, so ``SPMDResult.makespan`` is the
hybrid run's virtual time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.codegen.cpu_distributed import _band_count, _split_components
from repro.codegen.emit import ExprEmitter
from repro.codegen.gpu_hybrid import (
    DEFAULT_BYTE_FACTOR,
    DEFAULT_FLOP_FACTOR,
    _emit_boundary_source,
    _emit_kernel_source,
    _record_degraded,
)
from repro.codegen.state import SolverState
from repro.codegen.target_base import (
    CodegenTarget,
    GeneratedSolver,
    attach_artifact_attrs,
    source_header,
)
from repro.codegen.vectorvm import install_vms
from repro.gpu.device import Device
from repro.gpu.kernel import Kernel
from repro.ir.build import build_ir
from repro.ir.fuse import fusion_mode, fusion_summary
from repro.ir.lowering import lower_conservation_form
from repro.ir.nodes import print_ir
from repro.obs import get_tracer, phase_span
from repro.perfmodel.costs import CostModel
from repro.perfmodel.machines import CASCADE_LAKE_FINCH, default_gpu_spec
from repro.runtime.executor import run_spmd
from repro.runtime.netmodel import IB_CLUSTER
from repro.util.errors import CodegenError, DeviceOOMError, KernelFaultError
from repro.util.timing import VirtualClock

if TYPE_CHECKING:
    from repro.dsl.problem import Problem


_RANK_PROGRAM = '''

def rank_program(comm):
    """One rank = one CPU process + one device, owning a band block."""
    state = make_rank_state(comm.rank)
    state.comm = comm
    own = state.owned_comps
    dev = make_device(comm.rank)
    host = VirtualClock()
    trace = get_tracer()
    htrack = 'hybrid/rank%d' % comm.rank

    # device-resident buffers (geometry/coefficient tables ride in the
    # module namespace; they were sent once, like the static H2D plan)
    dev.alloc('u', state.u)
    dev.alloc_empty('u_new', state.u.shape)
    for name in KERNEL_VAR_NAMES:
        dev.alloc(name, state.fields[name.replace('var_', '')].data)

    for _ in range(RUN_NSTEPS[0]):
        t = state.time
        for cb in PRE_STEP_CALLBACKS:
            with state.profile_scope('pre_step'):
                cb.fn(state)

        # H2D: the unknown + the refreshed closure fields; device faults
        # (OOM / kernel fault) degrade the step onto the host CPU below
        faulted = None
        mark = host.now()
        try:
            end = dev.h2d('u', state.u, mark)
            for name in KERNEL_VAR_NAMES:
                end = max(end, dev.h2d(name, state.fields[name.replace('var_', '')].data, mark))
            host.advance_to(end)
            trace.complete(htrack, 'h2d', mark, host.now(), cat='transfer')
            comm.compute(host.now() - mark, phase='communication')

            # asynchronous interior kernel over the owned components,
            # overlapped with the CPU boundary contribution (Fig. 6)
            mark = host.now()
            kernel_args = [dev.buffers['u'].array] \\
                + [dev.buffers[n].array for n in KERNEL_VAR_NAMES] \\
                + [dev.buffers['u_new'].array]
            with state.profile_scope('solve'):
                dev.launch(KERNEL, len(own) * NCELLS, *kernel_args, own,
                           host_time=mark)
        except GPU_FAULTS as exc:
            faulted = exc
            mark = host.now()
        with state.profile_scope('boundary'), trace_phase('boundary'):
            du_bdry = compute_boundary_contribution(state, state.u, t)
        host.advance(COST_BOUNDARY[comm.rank])
        trace.complete(htrack, 'boundary_callbacks', mark, host.now(), cat='phase')
        if faulted is None:
            sync_time = dev.synchronize(host.now())
            if sync_time > host.now():
                trace.complete(htrack, 'sync_wait', host.now(), sync_time, cat='sync')
            host.advance_to(sync_time)
            comm.compute(host.now() - mark, phase='solve for intensity')

            # fetch and combine (owned rows only)
            mark = host.now()
            u_new, end = dev.d2h('u_new', host_time=mark)
            host.advance_to(end)
            trace.complete(htrack, 'd2h', mark, host.now(), cat='transfer')
            comm.compute(host.now() - mark, phase='communication')
        else:
            # graceful degradation: the same generated kernel body over the
            # host arrays (bit-identical result), charged at the CPU rate
            record_degraded('interior_update', dev.name, 'cpu',
                            type(faulted).__name__, rank=comm.rank,
                            step=state.step_index)
            u_new = state.buffer('u_new_degraded', state.u.shape)
            with state.profile_scope('solve'):
                interior_kernel(state.u,
                                *[state.fields[n.replace('var_', '')].data
                                  for n in KERNEL_VAR_NAMES],
                                u_new, own)
            host.advance(COST_INTERIOR_CPU[comm.rank])
            trace.complete(htrack, 'interior_update[degraded:cpu]', mark,
                           host.now(), cat='fault',
                           reason=type(faulted).__name__)
            comm.compute(host.now() - mark, phase='solve for intensity')
        state.sanitize_kernel_output(KERNEL.name, u_new[own])
        state.u[own] = u_new[own] + state.dt * du_bdry[own]

        # CPU temperature update; its band-energy allreduce advances the
        # communicator clock itself — mirror that back onto the host
        for cb in POST_STEP_CALLBACKS:
            with state.profile_scope('post_step'), trace_phase('post_step'):
                cb.fn(state)
        comm.compute(COST_TEMP[comm.rank], phase='temperature update')
        host.advance_to(comm.clock.now())

        state.time += state.dt
        state.step_index += 1
        state.observe_step()
        state.sanitize_step()
        state.maybe_checkpoint()
        state.maybe_rebalance()

    T = state.extra.get('T')
    return {
        'u_owned': state.u[own].copy(),
        'T': None if T is None else np.asarray(T).copy(),
        'device_profile': dev.profiler.report(KERNEL.name),
        # the full per-launch profiler, for the per-kernel rows of the
        # run report's gpu section and the repro.profile/1 artifact
        'device_profiler': dev.profiler,
        'timers': state.timers,
    }


def step_once(state):
    run_steps(state, 1)


def run_steps(state, nsteps):
    RUN_NSTEPS[0] = nsteps
    state.log_run_event('run.start', target='gpu_multi',
                        nsteps=nsteps, nranks=NPARTS)
    if ELASTIC is None:
        result = run_spmd(NPARTS, rank_program, NETWORK,
                          heartbeat_s=HEARTBEAT_S)
    else:
        result = ELASTIC.run(rank_program, nsteps, RUN_NSTEPS)
    merge_results(state, result, nsteps)
    state.spmd_result = result
    state.device_profiles = [r['device_profile'] for r in result.results]
    state.device_profilers = [r['device_profiler'] for r in result.results]
    state.check_health()
    state.log_run_event('run.end', target='gpu_multi',
                        makespan_s=result.makespan)
    return state
'''


class GPUMultiTarget(CodegenTarget):
    """Band-partitioned hybrid execution across several simulated devices."""

    name = "gpu_distributed"

    def build_artifact(self, problem: "Problem"):
        if problem.equation is None:
            raise CodegenError("no conservation_form declared")
        cfg = problem.config
        if cfg.partition_strategy != "bands":
            raise CodegenError(
                "the multi-GPU target uses band partitioning "
                "(set_partitioning('bands', ndevices, index=...)), matching "
                "the paper's Fig. 7 configuration"
            )
        if cfg.stepper not in ("euler", "euler_explicit"):
            raise CodegenError(
                "the multi-GPU target implements the paper's forward-Euler "
                f"scheme; got {cfg.stepper!r}"
            )
        nparts = cfg.nparts
        unknown = problem.unknown
        expanded, form = lower_conservation_form(
            problem.equation.source, unknown, problem.entities, problem.operators
        )
        from repro.codegen.gpu_hybrid import _reject_reconstructions

        _reject_reconstructions(form)
        ir = build_ir(problem, form, flavor="gpu")
        emitter = ExprEmitter(problem, form, var_mode="local")

        machine = problem.extra.get("machine_rates", CASCADE_LAKE_FINCH)
        cost = CostModel(machine)
        ncomp = unknown.space.ncomp
        ncells = problem.mesh.ncells

        owned_sets = _split_components(problem, nparts)
        nbands = _band_count(problem)
        ndirs = max(1, ncomp // max(nbands, 1))
        n_comp_max = max(len(o) for o in owned_sets)

        surface = emitter.emit_sum(form.surface_terms, "surface")
        volume = emitter.emit_sum(form.volume_terms, "volume")
        # faces_per_cell needs the face count; compute it from a throwaway
        # geometry-bearing state (the same one the cost terms need below)
        probe = SolverState(problem)
        geom = probe.geom
        faces_per_cell = 2.0 * geom.nfaces / geom.ncells
        flop_factor = float(problem.extra.get("gpu_flop_factor", DEFAULT_FLOP_FACTOR))
        byte_factor = float(problem.extra.get("gpu_byte_factor", DEFAULT_BYTE_FACTOR))
        flops_per_dof = (
            faces_per_cell * (surface.flops + 2) + volume.flops + 3
        ) * flop_factor
        bytes_per_dof = (
            faces_per_cell * surface.bytes_per_value / 2.0 + volume.bytes_per_value
        ) * byte_factor

        lines = source_header("gpu_multi", problem, print_ir(ir))
        lines.append(f"# band partitioning across {nparts} device(s); each rank")
        lines.append("# pairs one CPU process with one GPU (paper Fig. 7)")
        fusion = fusion_mode(problem.extra)
        lines += _emit_kernel_source(problem, emitter, fusion=fusion)
        lines += _emit_boundary_source(problem, emitter, fusion=fusion)
        lines.append(_RANK_PROGRAM)
        source = "\n".join(lines) + "\n"

        known_vars = emitter.referenced_known_variables()

        static: dict = dict(emitter.component_tables())
        static["FUSED_PROGRAMS"] = dict(emitter.fused_programs)
        static["NCOMP"] = ncomp
        static["NCELLS"] = ncells
        static["NPARTS"] = nparts
        static["KERNEL_VAR_NAMES"] = [f"var_{n}" for n in known_vars]
        # per-rank cost vectors (each rank's clock advances by its own band
        # block's work — the elastic runtime rewrites these on migration)
        boundary_costs, temp_costs, interior_costs = _gpu_rank_costs(
            cost, geom.boundary_face_count(), ncells, owned_sets, ndirs
        )
        static["COST_BOUNDARY"] = boundary_costs
        static["COST_TEMP"] = temp_costs
        static["COST_INTERIOR_CPU"] = interior_costs

        return self.make_artifact(
            problem, source,
            static_env=static,
            attrs={
                "ir": ir,
                "classified_form": form,
                "expanded_expr": expanded,
                "kernel_spec": {
                    "name": f"{unknown.name}_interior_step",
                    "flops_per_thread": flops_per_dof,
                    "bytes_per_thread": bytes_per_dof,
                },
                "fusion_info": fusion_summary(fusion, emitter.fused_programs),
            },
        )

    def bind_artifact(self, problem: "Problem", artifact) -> GeneratedSolver:
        cfg = problem.config
        master = SolverState(problem)
        geom = master.geom
        spec = cfg.gpu_spec or default_gpu_spec()
        network = problem.extra.get("network_model", IB_CLUSTER)
        # shared box: the elastic runtime swaps the owned sets mid-run;
        # make_rank_state and the merger read the box, not a fixed list
        owned_box = [_split_components(problem, cfg.nparts)]
        int_faces = np.flatnonzero(geom.interior_mask)

        env: dict = dict(artifact.static_env)
        env["RUN_NSTEPS"] = [cfg.nsteps]
        env["DT"] = cfg.dt  # runtime-bound: not part of the cache key
        env["NETWORK"] = network
        env["OWNER_INT"] = geom.owner[int_faces]
        env["NEIGH_INT"] = geom.neighbor[int_faces]
        env["NORMALS_INT"] = geom.normal[int_faces]
        env["FACEDIST_INT"] = geom.face_dist[int_faces]
        env["DIV_INT"] = geom.divergence[:, int_faces]
        env["DIV_BDRY"] = geom.divergence[:, geom.bfaces]
        env["BFACE_SLOT"] = geom.bface_slot
        env["PRE_STEP_CALLBACKS"] = list(problem.pre_step_callbacks)
        env["POST_STEP_CALLBACKS"] = list(problem.post_step_callbacks)
        env["GPU_FAULTS"] = (DeviceOOMError, KernelFaultError)
        env["record_degraded"] = _record_degraded
        env["run_spmd"] = run_spmd
        env["VirtualClock"] = VirtualClock
        env["get_tracer"] = get_tracer
        env["trace_phase"] = phase_span
        # rank threads share this namespace: the VMs keep thread-local scratch
        install_vms(env, env.pop("FUSED_PROGRAMS", None))

        controller = _make_gpu_controller(problem, owned_box, network, geom)

        def make_rank_state(rank: int) -> SolverState:
            st = SolverState(problem)
            st.owned_comps = owned_box[0][rank]
            if controller is not None:
                controller.prepare_rank_state(st)
            return st

        def make_device(rank: int) -> Device:
            return Device(spec, name=f"gpu{rank}:{spec.name}")

        def merge_results(state: SolverState, result, nsteps: int) -> None:
            owned_sets = owned_box[0]
            for rank, out in enumerate(result.results):
                state.u[owned_sets[rank]] = out["u_owned"]
            if result.results and result.results[0]["T"] is not None:
                state.extra["T"] = result.results[0]["T"]
            state.time += state.dt * nsteps
            state.step_index += nsteps

        env["make_rank_state"] = make_rank_state
        env["make_device"] = make_device
        env["merge_results"] = merge_results
        env["ELASTIC"] = controller
        env["HEARTBEAT_S"] = problem.extra.get("heartbeat_s")

        solver = GeneratedSolver(
            self.name, artifact.source, env, master,
            code=artifact.code, module_name=artifact.module_name,
        )
        if artifact.code is None:
            artifact.code = solver.code
        kspec = artifact.attrs["kernel_spec"]
        kernel = Kernel(
            kspec["name"],
            body=solver.namespace["interior_kernel"],
            flops_per_thread=kspec["flops_per_thread"],
            bytes_per_thread=kspec["bytes_per_thread"],
        )
        solver.namespace["KERNEL"] = kernel
        solver.kernel = kernel
        solver.task_timer_map = {
            "interior_update": "solve",
            "boundary_callbacks": "boundary",
            "post_step_callbacks": "post_step",
        }
        attach_artifact_attrs(solver, artifact)
        if controller is not None:
            # the namespace is rebuilt by recompile(); partition swaps must
            # rewrite the live dict, so hand it over post-construction
            controller.attach(solver.namespace)
        return solver


def _gpu_rank_costs(cost: CostModel, n_bfaces: int, ncells: int, owned_sets,
                    ndirs: int):
    """Per-rank (boundary, temperature, degraded-interior) virtual costs."""
    boundary = [cost.boundary_step(n_bfaces, len(o)) for o in owned_sets]
    temp = [
        cost.newton_step(ncells)
        + cost.iobeta_step(ncells, max(1, len(o) // ndirs))
        for o in owned_sets
    ]
    interior = [cost.intensity_step(ncells, len(o)) for o in owned_sets]
    return boundary, temp, interior


def _make_gpu_controller(problem: "Problem", owned_box: list, network, geom):
    """The multi-GPU target's :class:`ElasticRunner` (``rebalance`` extra)."""
    extra = problem.extra
    if not extra.get("rebalance"):
        return None
    from repro.runtime.rebalance import ElasticRunner, RebalancePolicy

    cfg = problem.config
    cost = CostModel(extra.get("machine_rates", CASCADE_LAKE_FINCH))
    ncomp = problem.unknown.space.ncomp
    ncells = problem.mesh.ncells
    nbands = _band_count(problem)
    ndirs = max(1, ncomp // max(nbands, 1))
    n_bfaces = geom.boundary_face_count()

    def repartition(nranks: int, weights):
        return _split_components(problem, nranks, weights)

    def install(owned_sets, namespace):
        owned_box[0] = owned_sets
        boundary, temp, interior = _gpu_rank_costs(
            cost, n_bfaces, ncells, owned_sets, ndirs)
        namespace["COST_BOUNDARY"] = boundary
        namespace["COST_TEMP"] = temp
        namespace["COST_INTERIOR_CPU"] = interior
        namespace["NPARTS"] = len(owned_sets)

    policy = RebalancePolicy(
        heartbeat_s=extra.get("heartbeat_s"),
        imbalance_threshold=float(extra.get("imbalance_threshold", 1.5)),
        check_every=int(extra.get("rebalance_check_every", 4)),
        max_rebalances=int(extra.get("max_rebalances", 1)),
    )
    return ElasticRunner(
        policy=policy, nranks=cfg.nparts, axis="comps",
        repartition=repartition, install=install,
        owned_of=lambda owned_sets: owned_sets, current=owned_box[0],
        network=network, state_bytes=ncomp * ncells * 8,
        workdir=extra.get("checkpoint_dir"),
    )


__all__ = ["GPUMultiTarget"]
