"""CPU serial code-generation target.

Generates the nested-loop solver of the paper's Section II-B sketch: a
sequential time loop around a (vectorised) cell sweep, with the component
loop structure taken from ``assemblyLoops``.  The emitted source is plain
Python over NumPy + :mod:`repro.fvm.kernels`, kept deliberately readable
(comments carry the classified symbolic terms they implement).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.codegen.emit import ExprEmitter
from repro.codegen.state import SolverState
from repro.codegen.target_base import (
    CodegenTarget,
    GeneratedSolver,
    attach_artifact_attrs,
    source_header,
)
from repro.codegen.vectorvm import install_vms
from repro.ir.build import build_ir
from repro.ir.fuse import fusion_mode, fusion_summary
from repro.ir.lowering import lower_conservation_form
from repro.ir.nodes import print_ir
from repro.fvm.timesteppers import make_stepper
from repro.obs import phase_span
from repro.util.errors import CodegenError

if TYPE_CHECKING:
    from repro.dsl.problem import Problem


def _indent(lines: list[str], level: int = 1) -> list[str]:
    pad = "    " * level
    return [pad + ln if ln else ln for ln in lines]


def emit_rhs_function(
    problem: "Problem", emitter: ExprEmitter, fusion: str = "off"
) -> list[str]:
    """Source of ``compute_rhs(state, u, t)`` — shared by CPU targets.

    With ``fusion`` 'auto'/'on' the surface and volume statements are
    compiled into fused vector programs and the statement bodies become
    single ``VM_*.run(...)`` calls over the same leaf arrays; the unfused
    emission is still performed for its reads/FLOP estimates, so the
    prologue (normals, function coefficients) is identical either way.
    """
    form = emitter.form
    fcoefs = emitter.function_coefficients()
    surface = emitter.emit_sum(form.surface_terms, "surface")
    volume = emitter.emit_sum(form.volume_terms, "volume")
    fused_surface = emitter.try_fuse(form.surface_terms, "surface", "surface", fusion)
    fused_volume = emitter.try_fuse(form.volume_terms, "volume", "volume", fusion)

    body: list[str] = [
        '"""Semi-discrete RHS du/dt: volume sources + surface divergence."""',
        "geom = state.geom",
        "dt = state.dt",
    ]
    if form.surface_terms:
        body += [
            "owner = geom.owner",
        ]
        for axis in range(problem.config.dimension):
            name = ("normal_x", "normal_y", "normal_z")[axis]
            if name in surface.reads:
                body.append(f"{name} = geom.normal[:, {axis}]")
        if "face_dist" in surface.reads:
            body.append("face_dist = geom.face_dist")
    for name, coef in fcoefs.items():
        body += [
            f"# function coefficient {name!r} evaluated on centres",
            f"fcoef_{name} = eval_fcoef(state, coef_fn_{name}, geom.cell_center, t)",
        ]
        if f"fcoef_{name}_face" in (surface.reads | volume.reads):
            body.append(
                f"fcoef_{name}_face = eval_fcoef(state, coef_fn_{name}, geom.center, t)"
            )
    body += [
        "",
        "# boundary ghost values (user callbacks execute on the CPU)",
        "ghost = state.bset.ghost_values(u, t, dt, state.extra)",
    ]
    if form.surface_terms:
        body += [
            "u1, u2 = geom.gather_sides(u, ghost)",
            "flux = state.buffer('flux', (NCOMP, geom.nfaces))",
        ]
    body += [
        "source = state.buffer('source', (NCOMP, geom.ncells))"
        if form.volume_terms
        else "source = 0.0"
    ]
    body += [
        "",
        "# component blocks follow assemblyLoops order: "
        + ", ".join(problem.config.assembly_order),
        "for sel in state.comp_blocks:",
    ]
    block: list[str] = []
    if form.surface_terms:
        block += [f"# RHS surface: {t}" for t in map(str, form.surface_terms)]
        if fused_surface is not None:
            stats = fused_surface.program.stats
            block.append(
                f"# fused: {stats['n_instructions']} instrs over "
                f"{stats['n_registers']} registers"
            )
            block.append(f"flux[sel] = {fused_surface.code}")
        else:
            if surface.prelude:
                block.append("# hoisted coefficient-only subexpressions")
                block += surface.prelude
            block.append(f"flux[sel] = {surface.code}")
    if form.volume_terms:
        block += [f"# RHS volume: {t}" for t in map(str, form.volume_terms)]
        if fused_volume is not None:
            stats = fused_volume.program.stats
            block.append(
                f"# fused: {stats['n_instructions']} instrs over "
                f"{stats['n_registers']} registers"
            )
            block.append(f"source[sel] = {fused_volume.code}")
        else:
            block += volume.prelude
            block.append(f"source[sel] = {volume.code}")
    if not block:
        block = ["pass"]
    body += _indent(block)
    if form.surface_terms:
        body += [
            "",
            "# FLUX-type boundary callbacks override their faces",
            "for faces, values in state.bset.flux_overrides(u, t, dt, state.extra):",
            "    flux[:, faces] = values",
            "div = geom.surface_divergence(flux)",
            "return source + div",
        ]
    else:
        body += ["return source + np.zeros((NCOMP, geom.ncells))"]

    return ["def compute_rhs(state, u, t):"] + _indent(body)


def emit_step_and_run(problem: "Problem", scheme: str) -> list[str]:
    """Source of ``step_once``/``run_steps`` (serial time loop)."""
    lines: list[str] = ["", ""]
    lines.append("def step_once(state):")
    step_body = ['"""Advance one explicit step (Eq. 3 of the paper)."""']
    if scheme == "euler":
        step_body += [
            "with state.profile_scope('solve'), trace_phase('solve'):",
            "    rhs = compute_rhs(state, state.u, state.time)",
            "    state.u = kernels.euler_update(state.u, state.dt, rhs, 0.0)",
        ]
    else:
        step_body += [
            "with state.profile_scope('solve'), trace_phase('solve'):",
            "    u_new = stepper.advance(state.u, state.time, state.dt,",
            "                            lambda uu, tt: compute_rhs(state, uu, tt))",
            "    state.u = u_new",
        ]
    step_body += [
        "state.time += state.dt",
        "state.step_index += 1",
    ]
    lines += _indent(step_body)
    lines += ["", ""]
    lines.append("def run_steps(state, nsteps):")
    run_body = [
        '"""The sequential time loop (paper: "the time step loop is always',
        'done sequentially").  Hooks run on the CPU around each step."""',
        "state.log_run_event('run.start', target='cpu_serial', nsteps=nsteps)",
        "for _ in range(nsteps):",
        "    for cb in PRE_STEP_CALLBACKS:",
        "        with state.profile_scope('pre_step'), trace_phase('pre_step'):",
        "            cb.fn(state)",
        "    step_once(state)",
        "    for cb in POST_STEP_CALLBACKS:",
        "        with state.profile_scope('post_step'), trace_phase('post_step'):",
        "            cb.fn(state)",
        "    state.observe_step()",
        "    state.sanitize_step()",
        "    state.maybe_checkpoint()",
        "    state.maybe_rebalance()",
        "state.check_health()",
        "state.log_run_event('run.end', target='cpu_serial')",
        "return state",
    ]
    lines += _indent(run_body)
    return lines


# shared helper injected into every generated namespace
def eval_fcoef(state, fn, points, t):
    """Evaluate a function coefficient on points (f(x) or f(x, t))."""
    import numpy as np

    try:
        return np.asarray(fn(points, t), dtype=np.float64)
    except TypeError:
        return np.asarray(fn(points), dtype=np.float64)


def build_cpu_artifact(target: CodegenTarget, problem: "Problem"):
    """The serial CPU build phase, reusable by the hybrid target's
    CPU-fallback flavor: lowering + IR + emission + source."""
    if problem.equation is None:
        raise CodegenError("no conservation_form declared")
    unknown = problem.unknown
    expanded, form = lower_conservation_form(
        problem.equation.source, unknown, problem.entities, problem.operators
    )
    ir = build_ir(problem, form, flavor="cpu")
    emitter = ExprEmitter(problem, form)
    fusion = fusion_mode(problem.extra)

    lines = source_header("cpu_serial", problem, print_ir(ir))
    lines += emit_rhs_function(problem, emitter, fusion=fusion)
    lines += emit_step_and_run(problem, problem.config.stepper)
    source = "\n".join(lines) + "\n"

    return target.make_artifact(
        problem, source,
        static_env={
            **emitter.component_tables(),
            "NCOMP": unknown.space.ncomp,
            "FUSED_PROGRAMS": dict(emitter.fused_programs),
        },
        attrs={
            "ir": ir,
            "classified_form": form,
            "expanded_expr": expanded,
            "fusion_info": fusion_summary(fusion, emitter.fused_programs),
        },
    )


def bind_cpu_env(problem: "Problem", artifact) -> dict:
    """Live (non-picklable / per-solve) environment of the serial solver."""
    env = dict(artifact.static_env)
    env["PRE_STEP_CALLBACKS"] = list(problem.pre_step_callbacks)
    env["POST_STEP_CALLBACKS"] = list(problem.post_step_callbacks)
    env["stepper"] = make_stepper(problem.config.stepper)
    env["eval_fcoef"] = eval_fcoef
    env["trace_phase"] = phase_span
    install_vms(env, env.pop("FUSED_PROGRAMS", None))
    # function coefficients bind live: callables come from the problem's
    # entity table, not the artifact (their code identity is in the key)
    for name, coef in problem.entities.coefficients.items():
        if coef.is_function:
            env[f"coef_fn_{name}"] = coef.value
    return env


class CPUSerialTarget(CodegenTarget):
    """Serial CPU generation (the baseline the paper's Fig. 9 starts from)."""

    name = "cpu"

    def build_artifact(self, problem: "Problem"):
        return build_cpu_artifact(self, problem)

    def bind_artifact(self, problem: "Problem", artifact) -> GeneratedSolver:
        state = SolverState(problem)
        env = bind_cpu_env(problem, artifact)
        solver = GeneratedSolver(
            self.name, artifact.source, env, state,
            code=artifact.code, module_name=artifact.module_name,
        )
        if artifact.code is None:
            artifact.code = solver.code  # memory layer reuses the compile
        attach_artifact_attrs(solver, artifact)
        return solver


__all__ = [
    "CPUSerialTarget",
    "bind_cpu_env",
    "build_cpu_artifact",
    "emit_rhs_function",
    "emit_step_and_run",
    "eval_fcoef",
]
