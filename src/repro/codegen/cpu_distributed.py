"""Distributed CPU code-generation target (SPMD over the simulated runtime).

Implements the paper's two CPU parallel strategies (Sec. III-C, Fig. 3):

* ``cells`` — the mesh is partitioned (Metis-style, via
  :mod:`repro.mesh.partition`); every rank updates its owned cells and
  exchanges the interface values of *all* ``I[d,b]`` components with its
  neighbours each step;
* ``bands`` — the equations are partitioned: every rank owns a contiguous
  block of the partition index's values over the whole mesh; no halo is
  needed and the only communication is the per-step allreduce inside the
  temperature update.

Rank programs execute real numerics on real exchanged data (tests assert
agreement with the serial solver to round-off) while virtual clocks are
charged from the calibrated :class:`~repro.perfmodel.costs.CostModel` — see
DESIGN.md for the substitution rationale.  Per-rank work is computed on
full-size arrays with writes restricted to the owned portion: stale entries
are never *read* (ghost columns are refreshed by the halo exchange before
each step; unowned outputs are discarded), which keeps the generated code
close to the serial version it derives from.

Note: a distributed run always starts from the declared initial conditions
(each rank builds its state from the problem), so ``run_steps`` describes a
whole run, not an increment on the master state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.codegen.cpu_serial import emit_rhs_function, eval_fcoef
from repro.codegen.emit import ExprEmitter
from repro.codegen.vectorvm import install_vms
from repro.ir.fuse import fusion_mode, fusion_summary
from repro.codegen.state import SolverState
from repro.codegen.target_base import (
    CodegenTarget,
    GeneratedSolver,
    attach_artifact_attrs,
    source_header,
)
from repro.ir.build import build_ir
from repro.ir.lowering import lower_conservation_form
from repro.ir.nodes import print_ir
from repro.mesh.partition import (
    build_partition_layout,
    partition_cells,
    weighted_counts,
)
from repro.obs import phase_span
from repro.perfmodel.costs import CostModel
from repro.perfmodel.machines import CASCADE_LAKE_FINCH
from repro.runtime.executor import run_spmd
from repro.runtime.netmodel import IB_CLUSTER
from repro.util.errors import CodegenError

if TYPE_CHECKING:
    from repro.dsl.problem import Problem


_RANK_PROGRAM_CELLS = '''

def rank_program(comm):
    """One rank of the cell-partitioned solver (Fig. 3, top)."""
    state = make_rank_state(comm.rank)
    state.comm = comm
    owned = state.owned_cells
    for _ in range(RUN_NSTEPS[0]):
        for cb in PRE_STEP_CALLBACKS:
            cb.fn(state)
        # refresh ghost columns: send owned interface cells, receive theirs
        with trace_phase('halo_exchange', cat='comm'):
            sends = {q: np.ascontiguousarray(state.u[:, cells])
                     for q, cells in SEND_CELLS[comm.rank].items()}
            received = comm.exchange(sends, tag=7)
            for q, data in received.items():
                state.u[:, RECV_CELLS[comm.rank][q]] = data
        with state.profile_scope('solve'), trace_phase('solve'):
            rhs = compute_rhs(state, state.u, state.time)
            state.u[:, owned] = kernels.euler_update(
                state.u[:, owned], state.dt, rhs[:, owned], 0.0)
        comm.compute(COST_SOLVE[comm.rank], phase='solve for intensity')
        for cb in POST_STEP_CALLBACKS:
            with state.profile_scope('post_step'), trace_phase('post_step'):
                cb.fn(state)
        comm.compute(COST_TEMP[comm.rank], phase='temperature update')
        state.time += state.dt
        state.step_index += 1
        state.observe_step()
        state.sanitize_step()
        state.maybe_checkpoint()
        state.maybe_rebalance()
    T = state.extra.get('T')
    return {
        'u_owned': state.u[:, owned].copy(),
        'T': None if T is None else np.asarray(T)[owned].copy(),
        'timers': state.timers,
    }
'''

_RANK_PROGRAM_BANDS = '''

def rank_program(comm):
    """One rank of the band-partitioned solver (Fig. 3, bottom).

    No halo: bands couple only through the temperature update's energy
    reduction (done inside the post-step callback via comm.allreduce).
    """
    state = make_rank_state(comm.rank)
    state.comm = comm
    owned = state.owned_comps
    for _ in range(RUN_NSTEPS[0]):
        for cb in PRE_STEP_CALLBACKS:
            cb.fn(state)
        with state.profile_scope('solve'), trace_phase('solve'):
            rhs = compute_rhs(state, state.u, state.time)
            state.u[owned] = kernels.euler_update(
                state.u[owned], state.dt, rhs[owned], 0.0)
        comm.compute(COST_SOLVE[comm.rank], phase='solve for intensity')
        for cb in POST_STEP_CALLBACKS:
            with state.profile_scope('post_step'), trace_phase('post_step'):
                cb.fn(state)
        comm.compute(COST_TEMP[comm.rank], phase='temperature update')
        state.time += state.dt
        state.step_index += 1
        state.observe_step()
        state.sanitize_step()
        state.maybe_checkpoint()
        state.maybe_rebalance()
    T = state.extra.get('T')
    return {
        'u_owned': state.u[owned].copy(),
        'T': None if T is None else np.asarray(T).copy(),
        'timers': state.timers,
    }
'''

_DRIVER = '''

def step_once(state):
    """Single-step SPMD run (mostly for tests; prefer run_steps)."""
    run_steps(state, 1)


def run_steps(state, nsteps):
    """Launch one rank program per partition and merge the results.

    With the elastic runtime bound (``--rebalance``), the runner wraps
    ``run_spmd`` in its recover/rebalance retry loop; the merge then reads
    the *final* partition through the shared layout boxes.
    """
    RUN_NSTEPS[0] = nsteps
    state.log_run_event('run.start', target='cpu_distributed',
                        nsteps=nsteps, nranks=NPARTS)
    if ELASTIC is None:
        result = run_spmd(NPARTS, rank_program, NETWORK,
                          heartbeat_s=HEARTBEAT_S)
    else:
        result = ELASTIC.run(rank_program, nsteps, RUN_NSTEPS)
    merge_results(state, result, nsteps)
    state.spmd_result = result
    state.check_health()
    state.log_run_event('run.end', target='cpu_distributed',
                        makespan_s=result.makespan)
    return state
'''


class CPUDistributedTarget(CodegenTarget):
    """Cell- or band-partitioned SPMD generation."""

    name = "distributed"

    def build_artifact(self, problem: "Problem"):
        if problem.equation is None:
            raise CodegenError("no conservation_form declared")
        cfg = problem.config
        if cfg.partition_strategy not in ("cells", "bands"):
            raise CodegenError(
                "distributed target needs partitioning('cells'|'bands', nparts)"
            )
        if cfg.stepper not in ("euler", "euler_explicit"):
            raise CodegenError(
                "the distributed rank programs implement the paper's "
                f"forward-Euler scheme; got {cfg.stepper!r}"
            )
        nparts = cfg.nparts
        unknown = problem.unknown
        expanded, form = lower_conservation_form(
            problem.equation.source, unknown, problem.entities, problem.operators
        )
        ir = build_ir(problem, form, flavor="distributed")
        emitter = ExprEmitter(problem, form)
        fusion = fusion_mode(problem.extra)

        lines = source_header("cpu_distributed", problem, print_ir(ir))
        lines += emit_rhs_function(problem, emitter, fusion=fusion)
        lines.append(
            _RANK_PROGRAM_CELLS if cfg.partition_strategy == "cells" else _RANK_PROGRAM_BANDS
        )
        lines.append(_DRIVER)
        source = "\n".join(lines) + "\n"

        machine = problem.extra.get("machine_rates", CASCADE_LAKE_FINCH)
        cost = CostModel(machine)
        ncomp = unknown.space.ncomp

        static: dict = dict(emitter.component_tables())
        static["NCOMP"] = ncomp
        static["NPARTS"] = nparts
        static["FUSED_PROGRAMS"] = dict(emitter.fused_programs)

        # partitioning is part of the build: the Metis-style cut and the
        # halo layout are pure functions of (mesh, nparts, flux_order)
        layout = None
        owned_comp_sets: list[np.ndarray] | None = None
        nbands = _band_count(problem)
        if cfg.partition_strategy == "cells":
            parts = partition_cells(problem.mesh, nparts, method="graph")
            # second-order reconstructions read neighbours-of-neighbours:
            # they need a two-layer halo
            layout = build_partition_layout(
                problem.mesh, parts, halo_layers=max(1, cfg.flux_order)
            )
            static["SEND_CELLS"] = layout.send_cells
            static["RECV_CELLS"] = layout.recv_cells
            # per-rank cost vectors: each rank's clock advances by *its own*
            # owned work, so partition skew is visible to the imbalance
            # watcher (and correctable by a weighted repartition)
            solve_costs, temp_costs = _cell_costs(cost, layout, ncomp, nbands)
            static["COST_SOLVE"] = solve_costs
            static["COST_TEMP"] = temp_costs
        else:
            owned_comp_sets = _split_components(problem, nparts)
            solve_costs, temp_costs = _band_costs(
                cost, problem.mesh.ncells, owned_comp_sets, ncomp, nbands
            )
            static["COST_SOLVE"] = solve_costs
            static["COST_TEMP"] = temp_costs

        return self.make_artifact(
            problem, source,
            static_env=static,
            attrs={
                "ir": ir,
                "classified_form": form,
                "expanded_expr": expanded,
                "layout": layout,
                "fusion_info": fusion_summary(fusion, emitter.fused_programs),
            },
        )

    def bind_artifact(self, problem: "Problem", artifact) -> GeneratedSolver:
        cfg = problem.config
        master = SolverState(problem)
        network = problem.extra.get("network_model", IB_CLUSTER)
        layout = artifact.attrs["layout"]

        env: dict = dict(artifact.static_env)
        env["RUN_NSTEPS"] = [cfg.nsteps]  # boxed so run_steps can set it
        env["NETWORK"] = network
        env["PRE_STEP_CALLBACKS"] = list(problem.pre_step_callbacks)
        env["POST_STEP_CALLBACKS"] = list(problem.post_step_callbacks)
        env["run_spmd"] = run_spmd
        env["eval_fcoef"] = eval_fcoef
        env["trace_phase"] = phase_span
        # rank programs run on real threads; the VMs keep thread-local scratch
        install_vms(env, env.pop("FUSED_PROGRAMS", None))
        for name, coef in problem.entities.coefficients.items():
            if coef.is_function:
                env[f"coef_fn_{name}"] = coef.value

        # the current partition lives in a shared box so the elastic
        # runtime can swap it mid-run; make_rank_state and the merger read
        # the box instead of closing over a fixed layout
        strategy = cfg.partition_strategy
        if strategy == "cells":
            layout_box = [layout]
        else:
            layout_box = [_split_components(problem, cfg.nparts)]

        controller = _make_controller(problem, layout_box, network)

        if strategy == "cells":
            def make_rank_state(rank: int) -> SolverState:
                st = SolverState(problem)
                st.owned_cells = layout_box[0].owned[rank]
                if controller is not None:
                    controller.prepare_rank_state(st)
                return st
        else:
            def make_rank_state(rank: int) -> SolverState:
                st = SolverState(problem)
                st.owned_comps = layout_box[0][rank]
                if controller is not None:
                    controller.prepare_rank_state(st)
                return st

        env["make_rank_state"] = make_rank_state
        env["merge_results"] = _make_merger(problem, strategy, layout_box)
        env["ELASTIC"] = controller
        env["HEARTBEAT_S"] = problem.extra.get("heartbeat_s")

        solver = GeneratedSolver(
            self.name, artifact.source, env, master,
            code=artifact.code, module_name=artifact.module_name,
        )
        if artifact.code is None:
            artifact.code = solver.code
        attach_artifact_attrs(solver, artifact)
        if controller is not None:
            # recompile() built a fresh namespace dict; partition swaps
            # must rewrite *that* dict, so hand it over post-construction
            controller.attach(solver.namespace)
        return solver


def _band_count(problem: "Problem") -> int:
    """Size of the partition index (or the unknown's last index) used to
    split the temperature-update cost."""
    unknown = problem.unknown
    cfg = problem.config
    if cfg.partition_index and cfg.partition_index in unknown.space.names:
        return unknown.space.size(cfg.partition_index)
    if unknown.space.names:
        return unknown.space.sizes[-1]
    return 1


def _split_components(
    problem: "Problem", nparts: int, weights=None
) -> list[np.ndarray]:
    """Owned component sets for band partitioning: contiguous blocks of the
    partition index's values, all other indices complete.

    ``weights`` skews block sizes (elastic rebalancing); the default split
    is bit-identical to the historical ``np.array_split`` blocks.
    """
    unknown = problem.unknown
    space = unknown.space
    ix = problem.config.partition_index
    if ix is None:
        raise CodegenError("band partitioning needs partition_index")
    size = space.size(ix)
    if nparts > size:
        raise CodegenError(
            f"cannot split index {ix!r} of size {size} over {nparts} ranks "
            "(the paper's band-strategy limit)"
        )
    values = space.axis_values(ix)
    counts = weighted_counts(size, nparts, weights)
    bounds = np.cumsum([0] + counts)
    blocks = [np.arange(bounds[i], bounds[i + 1]) for i in range(nparts)]
    return [np.flatnonzero(np.isin(values, blk)) for blk in blocks]


def _cell_costs(cost: CostModel, layout, ncomp: int, nbands: int):
    """Per-rank (solve, temperature) virtual costs for a cell partition."""
    solve = [cost.intensity_step(len(o), ncomp) for o in layout.owned]
    temp = [cost.temperature_step(len(o), nbands) for o in layout.owned]
    return solve, temp


def _band_costs(cost: CostModel, ncells: int, owned_comp_sets, ncomp: int,
                nbands: int):
    """Per-rank (solve, temperature) virtual costs for a band partition.

    Newton runs redundantly on every rank; the Io/tau refresh only covers
    the rank's own bands (the paper's Fig. 5 asymmetry).
    """
    ndirs = max(1, ncomp // max(nbands, 1))
    solve = [cost.intensity_step(ncells, len(o)) for o in owned_comp_sets]
    temp = [
        cost.newton_step(ncells)
        + cost.iobeta_step(ncells, max(1, len(o) // ndirs))
        for o in owned_comp_sets
    ]
    return solve, temp


def _make_merger(problem: "Problem", strategy: str, layout_box: list):
    """Build the function that folds rank results into the master state.

    The partition is read through ``layout_box`` at merge time: an elastic
    run may have migrated to a different layout (or rank count) than the
    one the solver was bound with.
    """

    def merge(state: SolverState, result, nsteps: int) -> None:
        ranks = result.results
        if strategy == "cells":
            layout = layout_box[0]
            T = None
            for rank, out in enumerate(ranks):
                owned = layout.owned[rank]
                state.u[:, owned] = out["u_owned"]
                if out["T"] is not None:
                    if T is None:
                        T = np.full(state.ncells, float(problem.extra.get("T0", 0.0)))
                    T[owned] = out["T"]
            if T is not None:
                state.extra["T"] = T
        else:
            owned_comp_sets = layout_box[0]
            for rank, out in enumerate(ranks):
                state.u[owned_comp_sets[rank]] = out["u_owned"]
            if ranks and ranks[0]["T"] is not None:
                state.extra["T"] = ranks[0]["T"]
        state.time += state.dt * nsteps
        state.step_index += nsteps

    return merge


def _make_controller(problem: "Problem", layout_box: list, network):
    """Build the :class:`~repro.runtime.rebalance.ElasticRunner` when the
    problem opted into the elastic runtime (``rebalance`` extra), else
    ``None`` (zero overhead: the driver then calls ``run_spmd`` directly).
    """
    extra = problem.extra
    if not extra.get("rebalance"):
        return None
    from repro.runtime.rebalance import ElasticRunner, RebalancePolicy

    cfg = problem.config
    cost = CostModel(extra.get("machine_rates", CASCADE_LAKE_FINCH))
    ncomp = problem.unknown.space.ncomp
    nbands = _band_count(problem)

    if cfg.partition_strategy == "cells":
        axis = "cells"

        def repartition(nranks: int, weights):
            parts = partition_cells(
                problem.mesh, nranks, method="graph", weights=weights)
            return build_partition_layout(
                problem.mesh, parts, halo_layers=max(1, cfg.flux_order))

        def install(layout, namespace):
            layout_box[0] = layout
            solve, temp = _cell_costs(cost, layout, ncomp, nbands)
            namespace["SEND_CELLS"] = layout.send_cells
            namespace["RECV_CELLS"] = layout.recv_cells
            namespace["COST_SOLVE"] = solve
            namespace["COST_TEMP"] = temp
            namespace["NPARTS"] = layout.nparts

        def owned_of(layout):
            return layout.owned
    else:
        axis = "comps"

        def repartition(nranks: int, weights):
            return _split_components(problem, nranks, weights)

        def install(owned_sets, namespace):
            layout_box[0] = owned_sets
            solve, temp = _band_costs(
                cost, problem.mesh.ncells, owned_sets, ncomp, nbands)
            namespace["COST_SOLVE"] = solve
            namespace["COST_TEMP"] = temp
            namespace["NPARTS"] = len(owned_sets)

        def owned_of(owned_sets):
            return owned_sets

    policy = RebalancePolicy(
        heartbeat_s=extra.get("heartbeat_s"),
        imbalance_threshold=float(extra.get("imbalance_threshold", 1.5)),
        check_every=int(extra.get("rebalance_check_every", 4)),
        max_rebalances=int(extra.get("max_rebalances", 1)),
    )
    return ElasticRunner(
        policy=policy, nranks=cfg.nparts, axis=axis,
        repartition=repartition, install=install, owned_of=owned_of,
        current=layout_box[0], network=network,
        state_bytes=ncomp * problem.mesh.ncells * 8,
        workdir=extra.get("checkpoint_dir"),
    )


__all__ = ["CPUDistributedTarget"]
