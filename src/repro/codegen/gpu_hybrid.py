"""Hybrid CPU/GPU code-generation target (paper Sec. II-B and III-D).

Per step, exactly the paper's "one example configuration":

.. code-block:: text

    GPU kernel:  interior flux + source + explicit update, loops flattened,
                 one thread per degree of freedom (launched asynchronously)
    CPU code:    boundary contribution via the user callbacks, overlapped
                 with the kernel (Fig. 6)
                 synchronize, fetch u_new from the device
                 u = u_new + u_bdry
                 post-step temperature update (user callback, CPU)
                 send the mutated arrays back to the device

Before generating, the target builds the step's task graph and runs the
min-cut placement optimiser (:mod:`repro.codegen.placement`) — the paper's
"automatically partitions tasks between the CPU and GPU by minimizing the
data movement"; the resulting plan and transfer schedule are attached to
the solver (``solver.placement``, ``solver.transfer_plan``) and honoured by
the generated code (user callbacks are pinned to the CPU; if the optimiser
decides the interior update is not worth offloading — tiny problems — the
kernel simply runs on the host path).

Numerics run for real on the simulated device's buffers; kernel and PCIe
times come from the device model (see DESIGN.md).  Host work is charged to
the virtual host clock via the calibrated cost model, so the per-step
timeline reproduces the overlap structure of Fig. 6.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.codegen.emit import ExprEmitter
from repro.codegen.placement import Task, TaskGraph, optimize_placement, plan_transfers
from repro.codegen.placement.transfers import ArrayUse
from repro.codegen.state import SolverState
from repro.codegen.target_base import (
    CodegenTarget,
    GeneratedSolver,
    attach_artifact_attrs,
    source_header,
)
from repro.gpu.device import Device
from repro.gpu.kernel import Kernel, model_launch
from repro.codegen.vectorvm import install_vms
from repro.ir.build import build_ir
from repro.ir.fuse import fusion_mode, fusion_summary
from repro.ir.lowering import lower_conservation_form
from repro.ir.nodes import print_ir
from repro.obs import get_tracer, phase_span
from repro.perfmodel.costs import CostModel
from repro.perfmodel.machines import CASCADE_LAKE_FINCH, default_gpu_spec
from repro.util.errors import CodegenError, DeviceOOMError, KernelFaultError
from repro.util.timing import VirtualClock

if TYPE_CHECKING:
    from repro.dsl.problem import Problem

#: Executed-work multipliers calibrated against the paper's Nsight profile
#: of the one-GPU BTE kernel (49 % of FP64 peak, 11 % DRAM throughput, the
#: ~18x end-to-end speedup).  The flattened one-thread-per-DOF kernel
#: executes far more device work than the integrand's minimal operation
#: count: every thread privately redoes the face loop (geometry fetch,
#: index arithmetic, projections), FP64 divides occupy many issue slots on
#: GA102, the upwind conditional splits warps, and the neighbour gathers
#: replay uncoalesced transactions.  Override per problem via
#: ``problem.extra['gpu_flop_factor' / 'gpu_byte_factor']``.
DEFAULT_FLOP_FACTOR = 200.0
DEFAULT_BYTE_FACTOR = 16.0


def _indent(lines: list[str], level: int = 1) -> list[str]:
    pad = "    " * level
    return [pad + ln if ln else ln for ln in lines]


def _record_degraded(task: str, from_device: str, to_device: str,
                     reason: str, **labels) -> None:
    """Generated-code hook: log a fault-driven CPU re-placement."""
    from repro.runtime.resilience import get_resilience_log

    get_resilience_log().record_degraded(task, from_device, to_device,
                                         reason, **labels)


def _reject_reconstructions(form) -> None:
    """Second-order reconstructions need gradient operators and ghost data
    the flattened device kernels do not carry — fail with guidance."""
    from repro.symbolic.expr import Reconstruction, preorder

    for term in form.surface_terms:
        if any(isinstance(n, Reconstruction) for n in preorder(term)):
            raise CodegenError(
                "flux_order(2) reconstructions are CPU-only in this "
                "reproduction; use the cpu or distributed targets"
            )


def _emit_kernel_source(
    problem: "Problem", emitter: ExprEmitter, fusion: str = "off"
) -> list[str]:
    """The flattened interior kernel (one thread per DOF, vectorised body)."""
    form = emitter.form
    surface = emitter.emit_sum(form.surface_terms, "surface")
    volume = emitter.emit_sum(form.volume_terms, "volume")
    fused_surface = emitter.try_fuse(form.surface_terms, "surface", "surface", fusion)
    fused_volume = emitter.try_fuse(form.volume_terms, "volume", "volume", fusion)
    known = emitter.referenced_known_variables()
    args = ["u"] + [f"var_{n}" for n in known] + ["u_new"]
    lines = [
        "",
        "",
        f"def interior_kernel({', '.join(args)}, sel=slice(None)):",
    ]
    body = [
        '"""Interior bulk: uniform work, no thread divergence between DOFs',
        '(paper Sec. III-D).  Boundary faces contribute zero here; the CPU',
        'adds their part after the device result returns.  ``sel`` restricts',
        'the component rows (multi-device band partitioning launches one',
        'kernel per rank over its own bands)."""',
    ]
    if form.surface_terms:
        body += [
            "# owner/neighbour gathers restricted to interior faces",
            "owner = OWNER_INT",
            "u1 = u[:, owner]",
            "u2 = u[:, NEIGH_INT]",
        ]
        for axis, name in enumerate(("normal_x", "normal_y", "normal_z")):
            if name in surface.reads:
                body.append(f"{name} = NORMALS_INT[:, {axis}]")
        if "face_dist" in surface.reads:
            body.append("face_dist = FACEDIST_INT")
        body += [f"# face flux: {t}" for t in map(str, form.surface_terms)]
        if fused_surface is not None:
            body.append(f"flux = {fused_surface.code}")
        else:
            body += surface.prelude
            body.append(f"flux = {surface.code}")
        body.append("div = (DIV_INT @ flux.T).T")
    else:
        body.append("div = 0.0")
    if form.volume_terms:
        body += [f"# volume source: {t}" for t in map(str, form.volume_terms)]
        if fused_volume is not None:
            body.append(f"source = {fused_volume.code}")
        else:
            body += volume.prelude
            body.append(f"source = {volume.code}")
    else:
        body.append("source = 0.0")
    body += [
        "# explicit update, Eq. (3)",
        "u_new[sel] = u[sel] + DT * (source + div)",
    ]
    return lines + _indent(body)


def _emit_boundary_source(
    problem: "Problem", emitter: ExprEmitter, fusion: str = "off"
) -> list[str]:
    """CPU-side boundary contribution (rhs part from boundary faces)."""
    form = emitter.form
    surface = emitter.emit_sum(form.surface_terms, "surface")
    # same surface program, its own VM: boundary shapes (nbfaces) differ from
    # the interior kernel's, and a VM's scratch assumes stable shapes
    fused = emitter.try_fuse(form.surface_terms, "surface", "surface_bdry", fusion)
    lines = [
        "",
        "",
        "def compute_boundary_contribution(state, u, t):",
    ]
    body = [
        '"""Boundary part of the RHS (per paper Fig. 6 this runs on the CPU,',
        'concurrently with the interior kernel).  Returns du/dt|_boundary."""',
        "geom = state.geom",
        "dt = state.dt",
        "sel = slice(None)",
    ]
    if not form.surface_terms:
        body.append("return np.zeros((NCOMP, geom.ncells))")
        return lines + _indent(body)
    body += [
        "bfaces = geom.bfaces",
        "owner = geom.owner[bfaces]",
        "# ghost values from the boundary conditions (user callbacks)",
        "ghost = state.bset.ghost_values(u, t, dt, state.extra)",
        "u1 = u[:, owner]",
        "u2 = ghost",
    ]
    for axis, name in enumerate(("normal_x", "normal_y", "normal_z")):
        if name in surface.reads:
            body.append(f"{name} = geom.normal[bfaces, {axis}]")
    if "face_dist" in surface.reads:
        body.append("face_dist = geom.face_dist[bfaces]")
    body += [f"# face flux: {t}" for t in map(str, form.surface_terms)]
    if fused is not None:
        body.append(f"flux = {fused.code}")
    else:
        body += surface.prelude
        body.append(f"flux = {surface.code}")
    body += [
        "# FLUX-type callbacks override their faces",
        "for faces, values in state.bset.flux_overrides(u, t, dt, state.extra):",
        "    flux[:, BFACE_SLOT[faces]] = values",
        "return (DIV_BDRY @ flux.T).T",
    ]
    return lines + _indent(body)


_STEP_AND_RUN = '''

def step_once(state):
    """One hybrid step (the paper's host-code sketch, Sec. II-B).

    Device faults (OOM during the H2D batch, kernel launch faults) are
    treated as transient: the step degrades gracefully by re-executing the
    interior update on the host with the same generated kernel body — the
    numerics are identical, only the timeline pays the CPU cost.
    """
    dev = state.device
    host = state.host_clock
    trace = get_tracer()
    t = state.time

    faulted = None
    t0 = host.now()
    try:
        # --- send per-step host-mutated arrays to the device ---------------
        with state.profile_scope('h2d'):
            end = dev.h2d('u', state.u, t0)
            for name in H2D_EACH_STEP:
                end = max(end, dev.h2d(name, state.fields[name.replace('var_', '')].data, t0))
        host.advance_to(end)
        trace.complete(HOST_TRACK, 'h2d', t0, host.now(), cat='transfer')
        state.gpu_phases['communication'] += host.now() - t0

        # --- asynchronous interior kernel (one thread per DOF) -------------
        launch_time = host.now()
        kernel_args = [dev.buffers[n].array for n in ['u'] + KERNEL_VAR_NAMES] \
            + [dev.buffers['u_new'].array]
        with state.profile_scope('solve'):
            if KERNEL_CHUNKS is None:
                dev.launch(KERNEL, NDOF, *kernel_args, host_time=launch_time)
            else:
                # tuned chunking: one launch per component-row block (same
                # numerics; smaller launches queue back-to-back on the device)
                for chunk in KERNEL_CHUNKS:
                    dev.launch(KERNEL, len(chunk) * NCELLS, *kernel_args,
                               chunk, host_time=launch_time)
    except GPU_FAULTS as exc:
        faulted = exc
        launch_time = host.now()

    # --- CPU boundary contribution, overlapped with the kernel (Fig. 6) ----
    with state.profile_scope('boundary'), trace_phase('boundary'):
        du_bdry = compute_boundary_contribution(state, state.u, t)
    host.advance(COST_BOUNDARY)
    # the host-timeline boundary span sits under the device kernel span —
    # the paper's Fig. 6 overlap, directly visible in the exported trace
    trace.complete(HOST_TRACK, 'boundary_callbacks', launch_time, host.now(),
                   cat='phase')

    if faulted is None:
        # --- synchronize, fetch, combine -----------------------------------
        sync_time = dev.synchronize(host.now())
        if sync_time > host.now():
            trace.complete(HOST_TRACK, 'sync_wait', host.now(), sync_time, cat='sync')
        state.gpu_phases['solve for intensity'] += sync_time - launch_time
        host.advance_to(sync_time)
        d2h_start = host.now()
        with state.profile_scope('d2h'):
            u_new, end = dev.d2h('u_new', host_time=d2h_start)
        host.advance_to(end)
        trace.complete(HOST_TRACK, 'd2h', d2h_start, host.now(), cat='transfer')
        state.gpu_phases['communication'] += host.now() - d2h_start
    else:
        # --- graceful degradation: interior update re-placed on the host ---
        # same generated body over the host field arrays, so the result is
        # bit-identical; the device buffers for u/u_new are stale but are
        # fully rewritten by the next successful h2d + launch before any read
        record_degraded('interior_update', dev.name, 'cpu',
                        type(faulted).__name__, step=state.step_index)
        u_new = state.buffer('u_new_degraded', state.u.shape)
        with state.profile_scope('solve'):
            interior_kernel(state.u,
                            *[state.fields[n.replace('var_', '')].data
                              for n in KERNEL_VAR_NAMES],
                            u_new)
        host.advance(COST_INTERIOR_CPU)
        trace.complete(HOST_TRACK, 'interior_update[degraded:cpu]',
                       launch_time, host.now(), cat='fault',
                       reason=type(faulted).__name__)
        state.gpu_phases['solve for intensity'] += COST_INTERIOR_CPU
    state.sanitize_kernel_output(KERNEL.name, u_new)
    # u = u_new + u_bdry (the boundary part of the explicit update)
    state.u = u_new + state.dt * du_bdry

    state.time += state.dt
    state.step_index += 1


def run_steps(state, nsteps):
    """Sequential time loop around the hybrid step + CPU hooks."""
    trace = get_tracer()
    state.log_run_event('run.start', target='gpu_hybrid', nsteps=nsteps)
    for _ in range(nsteps):
        for cb in PRE_STEP_CALLBACKS:
            with state.profile_scope('pre_step'), trace_phase('pre_step'):
                cb.fn(state)
        step_once(state)
        for cb in POST_STEP_CALLBACKS:
            with state.profile_scope('post_step'), trace_phase('post_step'):
                cb.fn(state)
        if POST_STEP_CALLBACKS:
            t0 = state.host_clock.now()
            state.host_clock.advance(COST_TEMP)
            trace.complete(HOST_TRACK, 'temperature_update', t0,
                           state.host_clock.now(), cat='phase')
            state.gpu_phases['temperature update'] += COST_TEMP
        state.observe_step()
        state.sanitize_step()
        state.maybe_checkpoint()
        state.maybe_rebalance()
    state.check_health()
    state.log_run_event('run.end', target='gpu_hybrid')
    return state
'''


def _repin_graph(tg: TaskGraph, pins: dict[str, str]) -> TaskGraph:
    """Copy a task graph with some tasks re-pinned (placement overrides)."""
    out = TaskGraph()
    for t in tg.tasks.values():
        out.add_task(Task(t.name, t.cost_cpu, t.cost_gpu,
                          pinned=pins.get(t.name, t.pinned)))
    for e in tg.edges:
        out.add_edge(e.src, e.dst, e.nbytes, e.label)
    return out


class GPUHybridTarget(CodegenTarget):
    """Generation for the simulated-GPU hybrid path (``use_gpu()``)."""

    name = "gpu"

    def build_artifact(self, problem: "Problem"):
        if problem.equation is None:
            raise CodegenError("no conservation_form declared")
        if problem.config.stepper not in ("euler", "euler_explicit"):
            raise CodegenError(
                "the hybrid GPU target implements the paper's forward-Euler "
                f"scheme; got {problem.config.stepper!r} (use the cpu target "
                "for RK schemes)"
            )
        unknown = problem.unknown
        expanded, form = lower_conservation_form(
            problem.equation.source, unknown, problem.entities, problem.operators
        )
        _reject_reconstructions(form)
        ir = build_ir(problem, form, flavor="gpu")
        emitter = ExprEmitter(problem, form, var_mode="local")

        state = SolverState(problem)
        geom = state.geom
        spec = problem.config.gpu_spec or default_gpu_spec()
        machine = problem.extra.get("machine_rates", CASCADE_LAKE_FINCH)
        cost = CostModel(machine)

        # ---- work estimates for the device model --------------------------
        surface = emitter.emit_sum(form.surface_terms, "surface")
        volume = emitter.emit_sum(form.volume_terms, "volume")
        faces_per_cell = 2.0 * geom.nfaces / geom.ncells
        flops_per_dof = (
            faces_per_cell * (surface.flops + 2)  # flux + area-weighted gather
            + volume.flops
            + 3  # explicit update
        )
        bytes_per_dof = (
            faces_per_cell * surface.bytes_per_value / 2.0 + volume.bytes_per_value
        )
        flop_factor = float(problem.extra.get("gpu_flop_factor", DEFAULT_FLOP_FACTOR))
        byte_factor = float(problem.extra.get("gpu_byte_factor", DEFAULT_BYTE_FACTOR))

        # ---- placement optimisation ---------------------------------------
        ndof = state.ncomp * state.ncells
        nbands = unknown.space.sizes[-1] if unknown.space.names else 1
        kernel_stub = Kernel(
            f"{unknown.name}_interior_step",
            body=lambda *a: None,
            flops_per_thread=flops_per_dof * flop_factor,
            bytes_per_thread=bytes_per_dof * byte_factor,
        )
        gpu_interior_time = model_launch(spec, kernel_stub, ndof).duration
        known_vars = emitter.referenced_known_variables()

        tg = TaskGraph()
        tg.add_task(Task(
            "interior_update",
            cost_cpu=cost.intensity_step(state.ncells, state.ncomp),
            cost_gpu=gpu_interior_time,
        ))
        tg.add_task(Task(
            "boundary_callbacks",
            cost_cpu=cost.boundary_step(geom.boundary_face_count(), state.ncomp),
            pinned="cpu",
        ))
        tg.add_task(Task(
            "post_step_callbacks",
            cost_cpu=cost.temperature_step(state.ncells, nbands),
            pinned="cpu",
        ))
        u_bytes = float(state.u.nbytes)
        tg.add_edge("interior_update", "post_step_callbacks", u_bytes, label=unknown.name)
        tg.add_edge("boundary_callbacks", "post_step_callbacks",
                    geom.boundary_face_count() * state.ncomp * 8.0, label="u_bdry")
        known_bytes = 0.0
        for name in known_vars:
            nb = float(state.fields[name].data.nbytes)
            known_bytes += nb
            tg.add_edge("post_step_callbacks", "interior_update", nb, label=name)
        # explicit per-task placement overrides (tuner / user hook): re-pin
        # before optimising so the transfer schedule matches the final plan
        override = dict(problem.extra.get("placement_override") or {})
        if override:
            tg = _repin_graph(tg, override)
        placement = optimize_placement(tg, spec)

        if placement.device["interior_update"] == "cpu" and problem.extra.get(
            "gpu_force_offload", False
        ):
            # the user overrode the optimiser: rebuild the plan with the
            # interior pinned to the device so the transfer schedule (the
            # per-step Io/beta H2D, the u round trip) matches the code that
            # will actually run
            placement = optimize_placement(
                _repin_graph(tg, {"interior_update": "gpu"}), spec
            )

        if placement.device["interior_update"] == "cpu" and not problem.extra.get(
            "gpu_force_offload", False
        ):
            # the optimiser decided offloading does not pay (tiny problem or
            # transfer-dominated): build the serial CPU artifact instead,
            # annotated with the plan so callers can see why
            from repro.codegen.cpu_serial import build_cpu_artifact

            artifact = build_cpu_artifact(self, problem)
            artifact.flavor = "cpu_fallback"
            artifact.source = (
                "# NOTE: the placement optimiser kept every task on the CPU\n"
                "# (offload would cost more in transfers than it saves):\n"
                + "\n".join("#   " + ln for ln in placement.report().splitlines())
                + "\n\n"
                + artifact.source
            )
            artifact.attrs["placement"] = placement
            return artifact

        arrays = [
            # the unknown is double-buffered: the kernel writes u_new while
            # the overlapped CPU boundary callbacks read u (Fig. 6 is safe)
            ArrayUse("u", u_bytes,
                     readers=("interior_update", "boundary_callbacks", "post_step_callbacks"),
                     writers=("interior_update", "post_step_callbacks"),
                     double_buffered=True),
            ArrayUse("geometry", float(geom.normal.nbytes + geom.area.nbytes),
                     readers=("interior_update",), writers=(), mutated_each_step=False),
        ] + [
            ArrayUse(f"var_{name}", float(state.fields[name].data.nbytes),
                     readers=("interior_update",), writers=("post_step_callbacks",))
            for name in known_vars
        ]
        transfer_plan = plan_transfers(placement, arrays)

        # ---- source ---------------------------------------------------------
        lines = source_header("gpu_hybrid", problem, print_ir(ir))
        lines.append("# placement decided by the min-cut optimiser:")
        lines += ["#   " + ln for ln in placement.report().splitlines()]
        lines += ["#   " + ln for ln in transfer_plan.report().splitlines()]
        fusion = fusion_mode(problem.extra)
        lines += _emit_kernel_source(problem, emitter, fusion=fusion)
        lines += _emit_boundary_source(problem, emitter, fusion=fusion)
        lines.append(_STEP_AND_RUN)
        source = "\n".join(lines) + "\n"

        static: dict = dict(emitter.component_tables())
        static["FUSED_PROGRAMS"] = dict(emitter.fused_programs)
        static["NCOMP"] = state.ncomp
        static["NCELLS"] = state.ncells
        static["NDOF"] = ndof
        static["COST_BOUNDARY"] = cost.boundary_step(
            geom.boundary_face_count(), state.ncomp
        )
        static["COST_TEMP"] = cost.temperature_step(state.ncells, nbands)
        static["COST_INTERIOR_CPU"] = cost.intensity_step(state.ncells, state.ncomp)
        # kernel argument order is fixed by the generated signature; the
        # per-step H2D list is the subset the transfer plan marked as
        # host-mutated (for the BTE: Io and beta after the temperature update)
        static["KERNEL_VAR_NAMES"] = [f"var_{n}" for n in known_vars]
        static["H2D_EACH_STEP"] = [
            n for n in static["KERNEL_VAR_NAMES"] if n in transfer_plan.h2d_each_step
        ]
        static["HOST_TRACK"] = "hybrid/host"
        # tuned kernel chunking: split the launch over component-row blocks
        chunks = int(problem.extra.get("gpu_kernel_chunks", 0) or 0)
        static["KERNEL_CHUNKS"] = (
            [np.asarray(c)
             for c in np.array_split(np.arange(state.ncomp),
                                     min(chunks, state.ncomp))]
            if chunks > 1 else None
        )

        return self.make_artifact(
            problem, source,
            static_env=static,
            attrs={
                "ir": ir,
                "classified_form": form,
                "expanded_expr": expanded,
                "placement": placement,
                "transfer_plan": transfer_plan,
                # kept for the layer-2 verifier (transfer completeness, races)
                "array_uses": arrays,
                "kernel_spec": {
                    "name": f"{unknown.name}_interior_step",
                    "flops_per_thread": flops_per_dof * flop_factor,
                    "bytes_per_thread": bytes_per_dof * byte_factor,
                },
                "fusion_info": fusion_summary(fusion, emitter.fused_programs),
            },
        )

    def bind_artifact(self, problem: "Problem", artifact) -> GeneratedSolver:
        if artifact.flavor == "cpu_fallback":
            from repro.codegen.cpu_serial import bind_cpu_env

            state = SolverState(problem)
            env = bind_cpu_env(problem, artifact)
            solver = GeneratedSolver(
                "cpu", artifact.source, env, state,
                code=artifact.code, module_name=artifact.module_name,
            )
            if artifact.code is None:
                artifact.code = solver.code
            attach_artifact_attrs(solver, artifact)
            solver.task_timer_map = {
                "interior_update": "solve",
                "post_step_callbacks": "post_step",
            }
            solver.transfer_plan = None
            return solver

        state = SolverState(problem)
        geom = state.geom
        spec = problem.config.gpu_spec or default_gpu_spec()
        int_faces = np.flatnonzero(geom.interior_mask)

        env: dict = dict(artifact.static_env)
        env["DT"] = problem.config.dt  # runtime-bound: not part of the key
        env["OWNER_INT"] = geom.owner[int_faces]
        env["NEIGH_INT"] = geom.neighbor[int_faces]
        env["NORMALS_INT"] = geom.normal[int_faces]
        env["FACEDIST_INT"] = geom.face_dist[int_faces]
        env["DIV_INT"] = geom.divergence[:, int_faces]
        env["DIV_BDRY"] = geom.divergence[:, geom.bfaces]
        env["BFACE_SLOT"] = geom.bface_slot
        env["PRE_STEP_CALLBACKS"] = list(problem.pre_step_callbacks)
        env["POST_STEP_CALLBACKS"] = list(problem.post_step_callbacks)
        # resilience: the degraded (CPU re-execution) path for device faults
        env["GPU_FAULTS"] = (DeviceOOMError, KernelFaultError)
        env["record_degraded"] = _record_degraded
        env["get_tracer"] = get_tracer
        env["trace_phase"] = phase_span
        # one VM per call site (interior kernel vs boundary assembler); the
        # degraded host path re-runs the same kernel, so faults stay fused
        install_vms(env, env.pop("FUSED_PROGRAMS", None))

        solver = GeneratedSolver(
            self.name, artifact.source, env, state,
            code=artifact.code, module_name=artifact.module_name,
        )
        if artifact.code is None:
            artifact.code = solver.code
        # observability: which wall-clock timer measures each placement task
        solver.task_timer_map = {
            "interior_update": "solve",
            "boundary_callbacks": "boundary",
            "post_step_callbacks": "post_step",
        }

        # the kernel object wraps the *generated* body with the work estimates
        kspec = artifact.attrs["kernel_spec"]
        kernel = Kernel(
            kspec["name"],
            body=solver.namespace["interior_kernel"],
            flops_per_thread=kspec["flops_per_thread"],
            bytes_per_thread=kspec["bytes_per_thread"],
            doc="generated flattened interior step",
        )
        solver.namespace["KERNEL"] = kernel

        # device-resident buffers: the unknown (both directions each step),
        # per-step refreshed known variables, static geometry (sent once)
        device = Device(spec, name=f"gpu0:{spec.name}")
        device.alloc("u", state.u)
        device.alloc_empty("u_new", state.u.shape)
        for vname in env["KERNEL_VAR_NAMES"]:
            device.alloc(vname, state.fields[vname.replace("var_", "")].data)
        state.device = device
        state.host_clock = VirtualClock()
        state.gpu_phases = {
            "solve for intensity": 0.0,
            "temperature update": 0.0,
            "communication": 0.0,
        }

        attach_artifact_attrs(solver, artifact)
        solver.device = device
        solver.kernel = kernel
        return solver


__all__ = ["GPUHybridTarget", "DEFAULT_FLOP_FACTOR", "DEFAULT_BYTE_FACTOR"]
