"""A small vector VM executing fused programs from :mod:`repro.ir.fuse`.

Each instruction applies one whole-array NumPy operation, so a statement
that used to allocate a temporary per expression node now runs in a single
pass over a bounded register file.  Registers keep their backing float64
arrays between ``run()`` calls and arithmetic writes in place with
``out=`` whenever shapes/dtypes allow, eliminating per-step allocation in
the hot cell/band/direction loops.

Two execution engines share one semantics:

* ``run()`` — the fast path: the program is specialised once, at VM
  construction, into straight-line Python source (registers become local
  variables, opcode dispatch disappears) and compiled.  This is what
  generated kernels call.
* ``run_interpreted()`` — a direct instruction-by-instruction interpreter
  of the same program.  It exists as the cross-implementation oracle for
  the differential tests: ``run`` and ``run_interpreted`` must agree
  bit-for-bit on every program.

Bit-identity contract: every opcode reproduces exactly what
:func:`repro.symbolic.evaluate.evaluate` and the unfused emitted source
compute — Python operators (not hand-rolled ufunc variants) for mixed
scalar/array semantics, the ``exponent == -1 → 1.0 / base`` power rule,
and ``np.where`` only for array conditions.  The ``out=`` fast path is
restricted to elementwise float64 ufuncs writing VM-owned scratch of the
exact broadcast shape, which cannot change a single bit of the result.

Thread safety: SPMD rank programs run on real threads and may share one
generated namespace, so all register state lives in ``threading.local``.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Mapping
from typing import Any

import numpy as np

from repro.ir.fuse import FusedProgram
from repro.symbolic.functions import function_callables
from repro.util.errors import CodegenError

_F64 = np.dtype(np.float64)

_CMP_OPS: dict[str, Callable[[Any, Any], Any]] = {
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

#: opcodes whose results are fresh float64 arrays the VM may adopt as
#: scratch and later overwrite via ``out=`` (pure elementwise arithmetic)
_ADOPTABLE = ("add", "mul", "recip", "pow_const")

#: The fast path only adopts scratch for arrays at least this large: for
#: small operands the ufunc ``out=`` keyword costs more than the
#: allocation it saves.  Purely a speed heuristic — both paths are
#: bit-identical (the interpreted oracle adopts unconditionally, which is
#: exactly what lets the differential tests pin the ``out=`` path down).
_MIN_INPLACE = 4096

#: Compiled specialisations keyed by generated source (programs repeat
#: across binds of the same cached artifact; compiling once is enough).
_CODE_CACHE: dict[str, Any] = {}


def _specialize(program: FusedProgram) -> tuple[str, dict[str, Any]]:
    """Unroll ``program`` into straight-line Python source.

    Registers become local variables ``r0..rN``; the opcode dispatch loop
    disappears entirely.  Every conditional of the interpreter (the
    ``out=`` scratch gate, power's ``-1`` rule, ``where``'s scalar branch)
    is emitted verbatim so the compiled function is bit-identical to
    ``run_interpreted`` by construction.  The common all-shapes-equal case
    short-circuits before ``np.broadcast_shapes`` — same acceptance set,
    cheaper test.  Returns ``(source, globals)`` ready for ``exec``.
    """
    consts: list[Any] = []

    def const_ref(value: Any) -> str:
        consts.append(value)
        return f"_consts[{len(consts) - 1}]"

    lines = ["def _fused_run(slots, bufs):"]
    emit = lines.append
    names: dict[str, Any] = {}
    for instr in program.instructions:
        d = instr.dst
        op = instr.op
        if op == "load":
            emit(f"    r{d} = slots[{instr.imm}]")
        elif op == "const":
            emit(f"    r{d} = {const_ref(instr.imm)}")
        elif op in ("add", "mul"):
            i, j = instr.args
            sym = "+" if op == "add" else "*"
            ufunc = "_np_add" if op == "add" else "_np_mul"
            emit(f"    _b = bufs[{d}]")
            emit(f"    if (_b is not None and type(r{i}) is _nd "
                 f"and type(r{j}) is _nd")
            emit(f"            and r{i}.dtype is _F64 and r{j}.dtype is _F64")
            emit(f"            and (r{i}.shape == r{j}.shape == _b.shape")
            emit(f"                 or _b.shape == _bshape(r{i}.shape, "
                 f"r{j}.shape))):")
            emit(f"        r{d} = {ufunc}(r{i}, r{j}, out=_b)")
            emit("    else:")
            emit(f"        r{d} = r{i} {sym} r{j}")
            emit(f"        if (type(r{d}) is _nd and r{d}.dtype is _F64")
            emit(f"                and r{d}.size >= _MIN_INPLACE):")
            emit(f"            bufs[{d}] = r{d}")
        elif op == "recip":
            (i,) = instr.args
            emit(f"    _b = bufs[{d}]")
            emit(f"    if (_b is not None and type(r{i}) is _nd "
                 f"and r{i}.dtype is _F64 and _b.shape == r{i}.shape):")
            emit(f"        r{d} = _np_div(1.0, r{i}, out=_b)")
            emit("    else:")
            emit(f"        r{d} = 1.0 / r{i}")
            emit(f"        if (type(r{d}) is _nd and r{d}.dtype is _F64")
            emit(f"                and r{d}.size >= _MIN_INPLACE):")
            emit(f"            bufs[{d}] = r{d}")
        elif op == "pow_const":
            (i,) = instr.args
            e = const_ref(instr.imm)
            emit(f"    _b = bufs[{d}]")
            emit(f"    if (_b is not None and type(r{i}) is _nd "
                 f"and r{i}.dtype is _F64 and _b.shape == r{i}.shape):")
            emit(f"        r{d} = _np_pow(r{i}, {e}, out=_b)")
            emit("    else:")
            emit(f"        r{d} = r{i} ** {e}")
            emit(f"        if (type(r{d}) is _nd and r{d}.dtype is _F64")
            emit(f"                and r{d}.size >= _MIN_INPLACE):")
            emit(f"            bufs[{d}] = r{d}")
        elif op == "pow":
            i, j = instr.args
            # mirror evaluate(): scalar -1 exponent means true division
            emit(f"    if _isscalar(r{j}) and r{j} == -1:")
            emit(f"        r{d} = 1.0 / r{i}")
            emit("    else:")
            emit(f"        r{d} = r{i} ** r{j}")
        elif op == "cmp":
            i, j = instr.args
            if instr.imm not in _CMP_OPS:  # pragma: no cover - compiler gated
                raise CodegenError(f"unknown comparison {instr.imm!r}")
            emit(f"    r{d} = r{i} {instr.imm} r{j}")
        elif op == "where":
            c, t, o = instr.args
            emit(f"    r{d} = (_np_where(r{c}, r{t}, r{o}) "
                 f"if isinstance(r{c}, _nd) else (r{t} if r{c} else r{o}))")
        elif op == "call":
            fn = f"_fn{len([k for k in names if k.startswith('_fn')])}"
            names[fn] = instr.imm  # resolved to the callable by the caller
            args = ", ".join(f"r{a}" for a in instr.args)
            emit(f"    r{d} = {fn}({args})")
        else:  # pragma: no cover - compiler emits only known opcodes
            raise CodegenError(f"unknown fused opcode {op!r}")
    emit(f"    return r{program.out_reg}")
    names["_consts"] = tuple(consts)
    return "\n".join(lines) + "\n", names


class VectorVM:
    """Executes one :class:`FusedProgram`; create one VM per call site.

    A VM instance assumes stable operand shapes across calls (that is what
    makes scratch reuse effective), so generated code binds a separate
    instance per statement — e.g. the GPU interior kernel and the boundary
    assembler each get their own VM for the surface program.
    """

    def __init__(
        self,
        program: FusedProgram,
        functions: Mapping[str, Callable[..., Any]] | None = None,
    ):
        self.program = program
        # snapshot the unified registry (plus overrides) at bind time
        self._functions = function_callables(functions)
        for instr in program.instructions:
            if instr.op == "call" and instr.imm not in self._functions:
                raise CodegenError(
                    f"fused program calls unregistered function {instr.imm!r}"
                )
        self._tls = threading.local()
        self.source, names = _specialize(program)
        namespace: dict[str, Any] = {
            "_nd": np.ndarray, "_F64": _F64,
            "_np_add": np.add, "_np_mul": np.multiply,
            "_np_div": np.true_divide, "_np_pow": np.power,
            "_np_where": np.where, "_isscalar": np.isscalar,
            "_bshape": np.broadcast_shapes,
            "_MIN_INPLACE": _MIN_INPLACE,
        }
        for key, value in names.items():
            namespace[key] = (
                self._functions[value] if key.startswith("_fn") else value
            )
        code = _CODE_CACHE.get(self.source)
        if code is None:
            code = _CODE_CACHE[self.source] = compile(
                self.source, "<fused program>", "exec"
            )
        exec(code, namespace)  # noqa: S102 - our own generated source
        self._exec = namespace["_fused_run"]
        # `run` is rebound per instance as a closure: the generated hot
        # loops call it tens of thousands of times, so the method lookup /
        # attribute-chase overhead of a plain method is worth shaving
        tls = self._tls
        exec_fn = self._exec
        n_slots = len(program.slots)
        n_regs = program.n_registers

        def run(*slots: Any) -> Any:
            if len(slots) != n_slots:
                raise CodegenError(
                    f"fused program expects {n_slots} slots, got {len(slots)}"
                )
            bufs = getattr(tls, "bufs", None)
            if bufs is None:
                bufs = tls.bufs = [None] * n_regs
            return exec_fn(slots, bufs)

        run.__doc__ = VectorVM.run.__doc__
        self.run = run  # type: ignore[method-assign]

    def _check_slots(self, slots: tuple) -> None:
        if len(slots) != len(self.program.slots):
            raise CodegenError(
                f"fused program expects {len(self.program.slots)} slots, "
                f"got {len(slots)}"
            )

    # ------------------------------------------------------------------ run
    def run(self, *slots: Any) -> Any:
        """Execute the specialised program over the given slot values.

        Returns the result array/scalar; when it is VM-owned scratch the
        caller must copy it out (generated code assigns into ``flux[sel]``
        etc.) or consume it before the next ``run()``.

        (Replaced per instance by a specialised closure in ``__init__``;
        this body exists for the docstring and as the fallback.)
        """
        self._check_slots(slots)
        tls = self._tls
        bufs = getattr(tls, "bufs", None)
        if bufs is None:
            bufs = tls.bufs = [None] * self.program.n_registers
        return self._exec(slots, bufs)

    # --------------------------------------------------------- oracle engine
    def run_interpreted(self, *slots: Any) -> Any:
        """Instruction-by-instruction reference execution of the program.

        Same semantics as :meth:`run` (the differential tests hold the two
        engines bit-identical); uses its own scratch registers so the two
        engines never share buffers.
        """
        self._check_slots(slots)
        program = self.program
        tls = self._tls
        regs = getattr(tls, "interp_regs", None)
        if regs is None:
            regs = tls.interp_regs = [None] * program.n_registers
            tls.interp_bufs = [None] * program.n_registers
        bufs = tls.interp_bufs
        functions = self._functions

        for instr in program.instructions:
            op = instr.op
            args = instr.args
            dst = instr.dst
            if op == "add":
                a = regs[args[0]]
                b = regs[args[1]]
                buf = bufs[dst]
                if (
                    buf is not None
                    and type(a) is np.ndarray
                    and type(b) is np.ndarray
                    and a.dtype is _F64
                    and b.dtype is _F64
                    and buf.shape == np.broadcast_shapes(a.shape, b.shape)
                ):
                    np.add(a, b, out=buf)
                    value = buf
                else:
                    value = a + b
            elif op == "mul":
                a = regs[args[0]]
                b = regs[args[1]]
                buf = bufs[dst]
                if (
                    buf is not None
                    and type(a) is np.ndarray
                    and type(b) is np.ndarray
                    and a.dtype is _F64
                    and b.dtype is _F64
                    and buf.shape == np.broadcast_shapes(a.shape, b.shape)
                ):
                    np.multiply(a, b, out=buf)
                    value = buf
                else:
                    value = a * b
            elif op == "load":
                value = slots[instr.imm]
            elif op == "const":
                value = instr.imm
            elif op == "recip":
                a = regs[args[0]]
                buf = bufs[dst]
                if (
                    buf is not None
                    and type(a) is np.ndarray
                    and a.dtype is _F64
                    and buf.shape == a.shape
                ):
                    np.true_divide(1.0, a, out=buf)
                    value = buf
                else:
                    value = 1.0 / a
            elif op == "pow_const":
                a = regs[args[0]]
                buf = bufs[dst]
                if (
                    buf is not None
                    and type(a) is np.ndarray
                    and a.dtype is _F64
                    and buf.shape == a.shape
                ):
                    np.power(a, instr.imm, out=buf)
                    value = buf
                else:
                    value = a ** instr.imm
            elif op == "pow":
                base = regs[args[0]]
                exponent = regs[args[1]]
                # mirror evaluate(): scalar -1 exponent means true division
                if np.isscalar(exponent) and exponent == -1:
                    value = 1.0 / base
                else:
                    value = base ** exponent
            elif op == "cmp":
                value = _CMP_OPS[instr.imm](regs[args[0]], regs[args[1]])
            elif op == "where":
                cond = regs[args[0]]
                then = regs[args[1]]
                other = regs[args[2]]
                value = (
                    np.where(cond, then, other)
                    if isinstance(cond, np.ndarray)
                    else (then if cond else other)
                )
            elif op == "call":
                value = functions[instr.imm](*[regs[a] for a in args])
            else:  # pragma: no cover - compiler emits only known opcodes
                raise CodegenError(f"unknown fused opcode {op!r}")

            regs[dst] = value
            if (
                op in _ADOPTABLE
                and value is not bufs[dst]
                and type(value) is np.ndarray
                and value.dtype is _F64
            ):
                # a fresh array from pure arithmetic: adopt it as scratch
                bufs[dst] = value

        return regs[program.out_reg]


def install_vms(
    env: dict,
    programs: Mapping[str, FusedProgram] | None,
    functions: Mapping[str, Callable[..., Any]] | None = None,
) -> None:
    """Bind one VM per program into a generated namespace as ``VM_<NAME>``.

    Called at artifact *bind* time: :class:`FusedProgram` is picklable and
    travels in ``static_env["FUSED_PROGRAMS"]``, while VM instances hold
    live scratch and must be rebuilt per solver.
    """
    if not programs:
        return
    for name, program in programs.items():
        env[f"VM_{name.upper()}"] = VectorVM(program, functions)


__all__ = ["VectorVM", "install_vms"]
