"""IR node types: an abstract computational graph of the per-step program.

The IR stays "at a relatively abstract level to be compatible with several
different code generation targets" (paper, Sec. II-A): nodes describe *what*
must happen each step — ghost computation, face-flux evaluation, the cell
update, halo exchange, callbacks, device transfers — not how a target lays
it out.  Comment nodes and metadata ride along so targets can emit readable
source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.symbolic.expr import Expr


@dataclass
class IRNode:
    """Base IR node; ``meta`` carries target hints and provenance."""

    meta: dict[str, Any] = field(default_factory=dict, kw_only=True)

    def children(self) -> list["IRNode"]:
        return []

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class Comment(IRNode):
    """A comment that survives into generated source."""

    text: str = ""

    def describe(self) -> str:
        return f"# {self.text}"


@dataclass
class Block(IRNode):
    """Ordered sequence of nodes."""

    body: list[IRNode] = field(default_factory=list)

    def children(self) -> list[IRNode]:
        return self.body

    def describe(self) -> str:
        return "block"


@dataclass
class TimeLoop(IRNode):
    """``for step = 1:Nsteps`` — always sequential (paper, Sec. II-B)."""

    body: Block = field(default_factory=Block)
    nsteps_symbol: str = "nsteps"
    dt_symbol: str = "dt"

    def children(self) -> list[IRNode]:
        return [self.body]

    def describe(self) -> str:
        return f"for step = 1:{self.nsteps_symbol}"


@dataclass
class AssemblyLoops(IRNode):
    """Loop nest over 'cells' and index names, in user-chosen order.

    ``order`` is e.g. ``['b', 'cells', 'd']`` from ``assemblyLoops``; the
    body describes the per-iterate work.  Targets may honour the order
    literally (CPU nest), use it to pick the partition axis (distributed),
    or flatten it entirely (GPU one-thread-per-DOF).
    """

    order: list[str] = field(default_factory=lambda: ["cells"])
    body: Block = field(default_factory=Block)

    def children(self) -> list[IRNode]:
        return [self.body]

    def describe(self) -> str:
        return "for " + " / ".join(self.order)


@dataclass
class ComputeGhosts(IRNode):
    """Evaluate boundary ghost values of the unknown."""

    variable: str = ""
    has_callbacks: bool = False

    def describe(self) -> str:
        extra = " (user callbacks on CPU)" if self.has_callbacks else ""
        return f"ghosts({self.variable}){extra}"


@dataclass
class ComputeFaceFlux(IRNode):
    """Evaluate the surface integrands on all faces (signed, per unit area)."""

    variable: str = ""
    terms: list[Expr] = field(default_factory=list)

    def describe(self) -> str:
        return f"face_flux({self.variable}) = " + " + ".join(str(t) for t in self.terms)


@dataclass
class ApplyFluxBC(IRNode):
    """Override boundary-face fluxes from FLUX-type callback conditions."""

    variable: str = ""
    regions: list[int] = field(default_factory=list)

    def describe(self) -> str:
        return f"flux_bc({self.variable}, regions={self.regions})"


@dataclass
class ComputeVolumeSource(IRNode):
    """Evaluate the volume integrands on all cells."""

    variable: str = ""
    terms: list[Expr] = field(default_factory=list)

    def describe(self) -> str:
        return f"source({self.variable}) = " + " + ".join(str(t) for t in self.terms)


@dataclass
class ExplicitUpdate(IRNode):
    """``u_new = u + dt * (source + surface_divergence)`` (Eq. 3)."""

    variable: str = ""
    scheme: str = "euler"

    def describe(self) -> str:
        return f"{self.variable} += dt * rhs   [{self.scheme}]"


@dataclass
class HaloExchange(IRNode):
    """Distributed neighbour exchange of the unknown's interface cells."""

    variable: str = ""

    def describe(self) -> str:
        return f"halo_exchange({self.variable})"


@dataclass
class CallbackCall(IRNode):
    """Invoke a user callback (pre-step / post-step hooks); CPU-pinned."""

    name: str = ""
    when: str = "post_step"  # or "pre_step"

    def describe(self) -> str:
        return f"callback {self.name}()   [{self.when}, CPU]"


@dataclass
class DeviceTransfer(IRNode):
    """Host<->device copy of named arrays ('h2d' or 'd2h')."""

    direction: str = "h2d"
    arrays: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return f"{self.direction}({', '.join(self.arrays)})"


@dataclass
class KernelLaunch(IRNode):
    """Asynchronous launch of a generated GPU kernel covering some nodes."""

    kernel: str = ""
    covers: list[IRNode] = field(default_factory=list)
    asynchronous: bool = True

    def children(self) -> list[IRNode]:
        return self.covers

    def describe(self) -> str:
        mode = "async" if self.asynchronous else "sync"
        return f"launch {self.kernel} [{mode}]"


@dataclass
class DeviceSync(IRNode):
    """Join host and device timelines (cudaDeviceSynchronize)."""

    def describe(self) -> str:
        return "synchronize device"


@dataclass
class GlobalReduction(IRNode):
    """Cross-rank reduction (the band-coupled temperature update needs one)."""

    what: str = ""
    op: str = "sum"

    def describe(self) -> str:
        return f"allreduce({self.what}, {self.op})"


@dataclass
class IRProgram(IRNode):
    """Root node: prelude (setup) + the time loop, plus problem metadata."""

    name: str = "program"
    prelude: Block = field(default_factory=Block)
    time_loop: TimeLoop = field(default_factory=TimeLoop)

    def children(self) -> list[IRNode]:
        return [self.prelude, self.time_loop]

    def describe(self) -> str:
        return f"program {self.name}"


def print_ir(node: IRNode, indent: int = 0) -> str:
    """Readable indented rendering of an IR (sub)tree."""
    pad = "  " * indent
    lines = [pad + node.describe()]
    for child in node.children():
        lines.append(print_ir(child, indent + 1))
    return "\n".join(lines)


__all__ = [
    "IRNode",
    "Comment",
    "Block",
    "TimeLoop",
    "AssemblyLoops",
    "ComputeGhosts",
    "ComputeFaceFlux",
    "ApplyFluxBC",
    "ComputeVolumeSource",
    "ExplicitUpdate",
    "HaloExchange",
    "CallbackCall",
    "DeviceTransfer",
    "KernelLaunch",
    "DeviceSync",
    "GlobalReduction",
    "IRProgram",
    "print_ir",
]
