"""Graphviz (DOT) export of the IR computational graph.

The paper describes the IR as "a computational graph" with "metadata about
the parts of the computation and comment nodes"; :func:`to_dot` renders it
so the structure can be inspected visually (``dot -Tsvg``), with node
shapes distinguishing control flow, computation, communication and
callbacks.
"""

from __future__ import annotations

from repro.ir.nodes import (
    AssemblyLoops,
    Block,
    CallbackCall,
    Comment,
    ComputeFaceFlux,
    ComputeGhosts,
    ComputeVolumeSource,
    DeviceSync,
    DeviceTransfer,
    ExplicitUpdate,
    GlobalReduction,
    HaloExchange,
    IRNode,
    KernelLaunch,
    TimeLoop,
)

_SHAPES = {
    TimeLoop: ("box", "lightblue"),
    AssemblyLoops: ("box", "lightblue"),
    Block: ("point", "gray"),
    Comment: ("note", "lightyellow"),
    ComputeGhosts: ("ellipse", "white"),
    ComputeFaceFlux: ("ellipse", "white"),
    ComputeVolumeSource: ("ellipse", "white"),
    ExplicitUpdate: ("ellipse", "palegreen"),
    HaloExchange: ("parallelogram", "lightsalmon"),
    DeviceTransfer: ("parallelogram", "lightsalmon"),
    GlobalReduction: ("parallelogram", "lightsalmon"),
    KernelLaunch: ("box3d", "plum"),
    DeviceSync: ("hexagon", "plum"),
    CallbackCall: ("component", "khaki"),
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


_DEVICE_FILL = {"cpu": "lightblue", "gpu": "plum"}


def _human_bytes(nbytes: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(nbytes) < 1024.0 or unit == "GiB":
            return f"{nbytes:.0f} {unit}" if unit == "B" else f"{nbytes:.1f} {unit}"
        nbytes /= 1024.0
    return f"{nbytes:.1f} GiB"


def placement_to_dot(placement: dict, name: str = "placement") -> str:
    """Render a placement plan's task graph as DOT, colored by device.

    Consumes the ``placement`` section of a run report (or any dict with
    the same shape): ``tasks`` rows carrying ``task``/``device``/``pinned``
    and per-step costs, ``edges`` rows carrying ``src``/``dst``/``bytes``
    and a ``cut`` flag.  CPU tasks render lightblue, GPU tasks plum;
    pinned tasks get a bold border; edges are annotated with the modelled
    transfer bytes and cut edges (device boundary crossings the min-cut
    paid for) draw dashed red.
    """
    lines = [
        f'digraph "{_escape(name)}" {{',
        "  rankdir=LR;",
        '  node [fontname="monospace", fontsize=10, shape=box, style=filled];',
        '  edge [fontname="monospace", fontsize=9];',
    ]
    ids: dict[str, str] = {}
    for row in placement.get("tasks", []):
        task = row["task"]
        ids[task] = f"t{len(ids)}"
        device = row.get("device", "cpu")
        fill = _DEVICE_FILL.get(device, "white")
        cost = row.get("predicted_s_per_step")
        label = f"{_escape(task)}\\n[{device}]"
        if cost is not None:
            label += f" {cost:.2e} s/step"
        style = "filled,bold" if row.get("pinned") else "filled"
        lines.append(
            f'  {ids[task]} [label="{label}", fillcolor={fill}, '
            f'style="{style}"];'
        )
    for edge in placement.get("edges", []):
        src, dst = edge.get("src"), edge.get("dst")
        if src not in ids or dst not in ids:
            continue
        label = _human_bytes(float(edge.get("bytes", 0)))
        attrs = f'label="{_escape(label)}"'
        if edge.get("cut"):
            attrs += ", color=red, style=dashed"
        lines.append(f"  {ids[src]} -> {ids[dst]} [{attrs}];")
    lines.append("}")
    return "\n".join(lines)


def to_dot(root: IRNode, name: str = "ir") -> str:
    """Render the IR (sub)tree as a DOT digraph string."""
    lines = [
        f'digraph "{_escape(name)}" {{',
        "  rankdir=TB;",
        '  node [fontname="monospace", fontsize=10];',
    ]
    counter = [0]

    def emit(node: IRNode, parent_id: str | None) -> None:
        nid = f"n{counter[0]}"
        counter[0] += 1
        shape, fill = _SHAPES.get(type(node), ("ellipse", "white"))
        label = _escape(node.describe())
        if len(label) > 60:
            label = label[:57] + "..."
        lines.append(
            f'  {nid} [label="{label}", shape={shape}, style=filled, '
            f'fillcolor={fill}];'
        )
        if parent_id is not None:
            lines.append(f"  {parent_id} -> {nid};")
        for child in node.children():
            emit(child, nid)

    emit(root, None)
    lines.append("}")
    return "\n".join(lines)


__all__ = ["placement_to_dot", "to_dot"]
