"""Graphviz (DOT) export of the IR computational graph.

The paper describes the IR as "a computational graph" with "metadata about
the parts of the computation and comment nodes"; :func:`to_dot` renders it
so the structure can be inspected visually (``dot -Tsvg``), with node
shapes distinguishing control flow, computation, communication and
callbacks.
"""

from __future__ import annotations

from repro.ir.nodes import (
    AssemblyLoops,
    Block,
    CallbackCall,
    Comment,
    ComputeFaceFlux,
    ComputeGhosts,
    ComputeVolumeSource,
    DeviceSync,
    DeviceTransfer,
    ExplicitUpdate,
    GlobalReduction,
    HaloExchange,
    IRNode,
    KernelLaunch,
    TimeLoop,
)

_SHAPES = {
    TimeLoop: ("box", "lightblue"),
    AssemblyLoops: ("box", "lightblue"),
    Block: ("point", "gray"),
    Comment: ("note", "lightyellow"),
    ComputeGhosts: ("ellipse", "white"),
    ComputeFaceFlux: ("ellipse", "white"),
    ComputeVolumeSource: ("ellipse", "white"),
    ExplicitUpdate: ("ellipse", "palegreen"),
    HaloExchange: ("parallelogram", "lightsalmon"),
    DeviceTransfer: ("parallelogram", "lightsalmon"),
    GlobalReduction: ("parallelogram", "lightsalmon"),
    KernelLaunch: ("box3d", "plum"),
    DeviceSync: ("hexagon", "plum"),
    CallbackCall: ("component", "khaki"),
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(root: IRNode, name: str = "ir") -> str:
    """Render the IR (sub)tree as a DOT digraph string."""
    lines = [
        f'digraph "{_escape(name)}" {{',
        "  rankdir=TB;",
        '  node [fontname="monospace", fontsize=10];',
    ]
    counter = [0]

    def emit(node: IRNode, parent_id: str | None) -> None:
        nid = f"n{counter[0]}"
        counter[0] += 1
        shape, fill = _SHAPES.get(type(node), ("ellipse", "white"))
        label = _escape(node.describe())
        if len(label) > 60:
            label = label[:57] + "..."
        lines.append(
            f'  {nid} [label="{label}", shape={shape}, style=filled, '
            f'fillcolor={fill}];'
        )
        if parent_id is not None:
            lines.append(f"  {parent_id} -> {nid};")
        for child in node.children():
            emit(child, nid)

    emit(root, None)
    lines.append("}")
    return "\n".join(lines)


__all__ = ["to_dot"]
