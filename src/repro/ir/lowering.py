"""Symbolic lowering: input expression -> expanded -> time-discretised ->
classified terms.

This reproduces, stage for stage, the pipeline shown in Section II of the
paper (including the textual listings, which the tests assert against):

>>> # input:    conservationForm(u, "-k*u - surface(upwind(b, u))")
>>> # stage 1:  -TIMEDERIVATIVE*_u_1 - _k_1*_u_1 - SURFACE*conditional(...)
>>> # stage 2:  _u_1 = _u_1 - dt*_k_1*_u_1 - dt*SURFACE*conditional(...)
>>> # stage 3:  LHS volume: -_u_1
>>> #           RHS volume: _u_1 - dt*_k_1*_u_1
>>> #           RHS surface: -dt*conditional(...)

Sign convention: ``conservation_form(u, expr)`` declares ``du/dt = expr``
where every ``surface(f)`` factor inside ``expr`` denotes the surface-
integral contribution ``(1/V) \\oint f dA`` *with the sign written in the
expression*.  (The paper's Sec. III-B listing and its appendix disagree on
the sign of the BTE's surface term; we follow the general rule of Sec. II —
outflux enters with a minus — and note the discrepancy in DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.entities import EntityTable, Variable
from repro.symbolic.expr import (
    Add,
    Call,
    Expr,
    Indexed,
    Mul,
    Num,
    SideValue,
    Surface,
    Sym,
    TimeDerivative,
    preorder,
    substitute,
)
from repro.symbolic.operators import OperatorRegistry, default_registry
from repro.symbolic.parser import parse
from repro.symbolic.simplify import collect_terms, simplify
from repro.util.errors import DSLError


# ---------------------------------------------------------------------------
# stage 1: expansion
# ---------------------------------------------------------------------------

def expand(
    expr: Expr,
    unknown: Variable,
    entities: EntityTable,
    registry: OperatorRegistry | None = None,
) -> Expr:
    """Resolve entities/operators and attach the implicit time derivative.

    * registered operator :class:`Call` nodes are rewritten by the registry
      (``upwind`` becomes the ``conditional`` construct, ``surface`` becomes
      the :class:`Surface` marker);
    * calls to registered *callback functions* are kept as opaque
      :class:`Call` nodes;
    * scalar variable/coefficient references are flattened to the paper's
      component naming: ``u -> _u_1``, ``k -> _k_1``; indexed references
      keep their index labels;
    * the implicit ``-TIMEDERIVATIVE * unknown`` term is prepended.
    """
    reg = registry or default_registry()

    def rewrite(node: Expr) -> Expr | None:
        if isinstance(node, Call):
            if node.func in reg:
                return reg.expand_call(node)
            if entities.kind_of(node.func) == "callback":
                return None  # keep as host-side call
            from repro.symbolic.evaluate import DEFAULT_FUNCTIONS

            if node.func in DEFAULT_FUNCTIONS:
                return None  # plain math function, evaluated elementwise
            raise DSLError(
                f"unknown function {node.func!r}: neither a registered "
                "symbolic operator, a math function, nor an imported callback"
            )
        if isinstance(node, Sym):
            kind = entities.kind_of(node.name)
            if kind in ("variable", "coefficient"):
                ent = (
                    entities.variables[node.name]
                    if kind == "variable"
                    else entities.coefficients[node.name]
                )
                if getattr(ent, "indices", ()):
                    raise DSLError(
                        f"{kind} {node.name!r} is indexed and must be "
                        f"referenced as {node.name}[{','.join(ent.index_names())}]"
                    )
                return Sym(f"_{node.name}_1")
            if kind == "index":
                return None  # bare index symbols appear inside callback args
            if kind == "callback":
                raise DSLError(f"callback {node.name!r} must be called, not referenced")
            if node.name in _RESERVED:
                return None
            raise DSLError(f"unknown symbol {node.name!r} in equation input")
        if isinstance(node, Indexed):
            _check_indexed(node, entities)
            return None
        return None

    resolved = substitute(expr, rewrite)
    _check_surface_nesting(resolved)
    unknown_ref = _unknown_reference(unknown)
    return Add(Mul(Num(-1), TimeDerivative(unknown_ref)), resolved)


_RESERVED = {"dt", "t", "time", "normal", "x", "y", "z"}


def _unknown_reference(unknown: Variable) -> Expr:
    if unknown.indices:
        return Indexed(unknown.name, unknown.index_names())
    return Sym(f"_{unknown.name}_1")


def _check_indexed(node: Indexed, entities: EntityTable) -> None:
    kind = entities.kind_of(node.base)
    if kind == "variable":
        declared = entities.variables[node.base].index_names()
    elif kind == "coefficient":
        declared = entities.coefficients[node.base].index_names()
    else:
        raise DSLError(f"unknown indexed entity {node.base!r}")
    if len(node.indices) != len(declared):
        raise DSLError(
            f"{node.base}[{','.join(map(str, node.indices))}]: expected "
            f"{len(declared)} indices {declared}"
        )
    for given, want in zip(node.indices, declared):
        if isinstance(given, str) and given != want:
            raise DSLError(
                f"{node.base}: index {given!r} does not match declared {want!r}"
            )


def _check_surface_nesting(expr: Expr) -> None:
    """Surface markers must not nest (an integral of an integral)."""
    for node in preorder(expr):
        if isinstance(node, Surface):
            for inner in preorder(node.expr):
                if isinstance(inner, Surface):
                    raise DSLError("nested surface(...) integrals are not allowed")


# ---------------------------------------------------------------------------
# stage 2: explicit time integration (Eq. 2 of the paper)
# ---------------------------------------------------------------------------

def euler_form(expanded: Expr, unknown: Variable) -> Expr:
    """Forward-Euler transform of the expanded equation.

    ``-TIMEDERIVATIVE*u + R(u) = 0`` becomes the update expression
    ``u - u0 - dt*R(u0) = 0`` rendered as ``-u + u0 + dt*R(u0)`` so the
    classification below reads off the paper's listing directly.  The
    right-hand side references are left textually identical (the *known*
    previous-step value is implied, as in the paper).
    """
    unknown_ref = _unknown_reference(unknown)
    dt = Sym("dt")

    def rewrite(node: Expr) -> Expr | None:
        if isinstance(node, TimeDerivative):
            # TIMEDERIVATIVE*u integrates to (u_new - u0); the new-time value
            # is tagged with a marker so classification can move it to the LHS
            return Add(_NewTime(node.expr), Mul(Num(-1), node.expr))
        return None

    # distribute dt over all non-time-derivative terms
    terms = []
    for term in Add(expanded).args if isinstance(expanded, Add) else [expanded]:
        if _contains_time_derivative(term):
            terms.append(substitute(term, rewrite))
        else:
            terms.append(Mul(dt, term))
    del unknown_ref
    return Add(*terms)


class _NewTime(Expr):
    """Internal marker wrapping the new-time-level unknown."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr):
        object.__setattr__(self, "expr", expr)

    def __setattr__(self, name, value):  # noqa: ANN001
        raise AttributeError("Expr nodes are immutable")

    def _key(self) -> tuple:
        return (self.expr,)

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.expr,)

    def rebuild(self, *children: Expr) -> "_NewTime":
        (e,) = children
        return _NewTime(e)

    def __str__(self) -> str:
        return str(self.expr)


def _contains_time_derivative(expr: Expr) -> bool:
    return any(isinstance(n, TimeDerivative) for n in preorder(expr))


def _contains(expr: Expr, kind: type) -> bool:
    return any(isinstance(n, kind) for n in preorder(expr))


# ---------------------------------------------------------------------------
# stage 3: classification
# ---------------------------------------------------------------------------

@dataclass
class ClassifiedForm:
    """Sorted terms of one equation, plus the semi-discrete integrands.

    ``lhs_volume`` / ``rhs_volume`` / ``rhs_surface`` are the dt-folded
    textual groups of the paper's listing.  ``volume_terms`` and
    ``surface_terms`` are the semi-discrete integrands (no ``dt``, Surface
    markers stripped) that the code generators evaluate:

        du/dt  =  sum(volume_terms)  +  (1/V) * sum_f A_f * sum(surface_terms)

    Surface integrands reference face-side values via :class:`SideValue`.
    """

    unknown: Variable
    lhs_volume: list[Expr] = field(default_factory=list)
    rhs_volume: list[Expr] = field(default_factory=list)
    rhs_surface: list[Expr] = field(default_factory=list)
    volume_terms: list[Expr] = field(default_factory=list)
    surface_terms: list[Expr] = field(default_factory=list)
    callbacks_used: list[str] = field(default_factory=list)


def classify(expanded: Expr, unknown: Variable, entities: EntityTable) -> ClassifiedForm:
    """Sort the Euler-form terms into the paper's LHS/RHS x volume/surface
    groups and extract the semi-discrete integrands."""
    euler = euler_form(expanded, unknown)
    form = ClassifiedForm(unknown=unknown)

    for term in collect_terms(euler):
        if _contains(term, _NewTime):
            # the new-time term stays on the LHS as written (paper: "-_u_1")
            lhs = simplify(
                substitute(term, lambda n: n.expr if isinstance(n, _NewTime) else None)
            )
            form.lhs_volume.append(lhs)
        elif _contains(term, Surface):
            form.rhs_surface.append(simplify(_strip_surface(term)))
        else:
            form.rhs_volume.append(simplify(term))

    # semi-discrete integrands: divide the dt factor back out
    inv_dt = Mul(Sym("dt"), Num(-1))  # placeholder, replaced below
    del inv_dt
    for term in form.rhs_surface:
        form.surface_terms.append(_drop_dt(term))
    for term in form.rhs_volume:
        if _is_bare_unknown(term, unknown):
            continue  # the u0 carried over by Euler, not part of the RHS
        form.volume_terms.append(_drop_dt(term))

    for node in preorder(expanded):
        if isinstance(node, Call) and entities.kind_of(node.func) == "callback":
            if node.func not in form.callbacks_used:
                form.callbacks_used.append(node.func)

    _validate_classified(form, unknown)
    return form


def _strip_surface(term: Expr) -> Expr:
    """Replace ``Surface(x)`` factors by ``x`` within a term."""
    return substitute(term, lambda n: n.expr if isinstance(n, Surface) else None)


def _drop_dt(term: Expr) -> Expr:
    """Remove one factor of the symbol ``dt`` from a product term."""
    dt = Sym("dt")

    def walk(node: Expr) -> Expr:
        if node == dt:
            return Num(1)
        if isinstance(node, Mul):
            args = list(node.args)
            for i, a in enumerate(args):
                if a == dt:
                    args[i] = Num(1)
                    return simplify(Mul(*args))
            return node
        return node

    out = walk(term)
    if out == term:
        raise DSLError(f"internal: term {term} carries no dt factor")
    return simplify(out)


def _is_bare_unknown(term: Expr, unknown: Variable) -> bool:
    return term == _unknown_reference(unknown)


def _validate_classified(form: ClassifiedForm, unknown: Variable) -> None:
    if len(form.lhs_volume) != 1:
        raise DSLError(
            "explicit schemes need exactly one time-derivative term; got "
            f"{len(form.lhs_volume)} (is the unknown missing from the equation?)"
        )
    expected = simplify(Mul(Num(-1), _unknown_reference(unknown)))
    if simplify(form.lhs_volume[0]) != expected:
        raise DSLError(
            f"unsupported LHS term {form.lhs_volume[0]} (expected {expected})"
        )
    for term in form.volume_terms:
        if _contains(term, SideValue):
            raise DSLError(f"volume term {term} references face-side values")
    for term in form.surface_terms:
        if _contains(term, Surface):
            raise DSLError(f"nested surface marker survived in {term}")


# ---------------------------------------------------------------------------
# driver + paper-style listings
# ---------------------------------------------------------------------------

def lower_conservation_form(
    source: str,
    unknown: Variable,
    entities: EntityTable,
    registry: OperatorRegistry | None = None,
) -> tuple[Expr, ClassifiedForm]:
    """Full pipeline: parse -> expand -> classify.  Returns
    ``(expanded_expr, classified_form)``."""
    parsed = parse(source)
    expanded = expand(parsed, unknown, entities, registry)
    form = classify(expanded, unknown, entities)
    return expanded, form


def render_stage_listing(expanded: Expr, form: ClassifiedForm, unknown: Variable) -> str:
    """The three textual stages as the paper prints them."""
    euler = simplify(euler_form(expanded, unknown))
    lines = [
        "expanded:",
        f"  {simplify(expanded)}",
        "time-discretized (forward Euler):",
        f"  {_unknown_reference(unknown)} = {_render_euler_rhs(euler)}",
        "LHS volume:",
        f"  {' + '.join(str(t) for t in form.lhs_volume)}",
        "RHS volume:",
        f"  {_join_terms(form.rhs_volume)}",
        "RHS surface:",
        f"  {_join_terms(form.rhs_surface)}",
    ]
    return "\n".join(lines)


def _join_terms(terms: list[Expr]) -> str:
    if not terms:
        return "0"
    out = str(terms[0])
    for t in terms[1:]:
        s = str(t)
        out += s if s.startswith("-") else f"+{s}"
    return out


def _render_euler_rhs(euler: Expr) -> str:
    """Render the Euler form as 'u_new = <rhs>' by moving _NewTime left."""
    rhs = [t for t in collect_terms(euler) if not _contains(t, _NewTime)]
    return _join_terms([simplify(t) for t in rhs])


__all__ = [
    "ClassifiedForm",
    "expand",
    "euler_form",
    "classify",
    "lower_conservation_form",
    "render_stage_listing",
]
