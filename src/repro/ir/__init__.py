"""Intermediate representation: lowering pipeline + computational graph.

The stages mirror Section II of the paper:

1. :func:`~repro.ir.lowering.expand` — resolve entities and symbolic
   operators, flatten scalar components (``u -> _u_1``) and attach the
   implicit time-derivative term, producing the "expanded symbolic
   representation";
2. :func:`~repro.ir.lowering.euler_form` — apply the explicit
   time-integration transform (Eq. 2), producing the update form;
3. :func:`~repro.ir.lowering.classify` — sort terms into LHS/RHS x
   volume/surface groups (the paper's listing), keeping the semi-discrete
   volume/surface integrands the code generators consume;
4. :func:`~repro.ir.build.build_ir` — combine the classified form with the
   solver configuration into an :class:`~repro.ir.nodes.IRProgram`, a
   computational graph "including metadata ... and comment nodes to
   facilitate generation of easily readable code".

An optional fifth stage, :mod:`repro.ir.fuse`, collapses each kernel's
arithmetic expression tree into a single-pass fused vector program
(register-allocated, CSE-shared, constant-folded) executed by
:mod:`repro.codegen.vectorvm`; it is gated by the ``fusion`` knob and is
bit-identical to evaluating the emitted expression.
"""

from repro.ir.nodes import (
    IRNode,
    IRProgram,
    Block,
    Comment,
    TimeLoop,
    AssemblyLoops,
    ComputeGhosts,
    ComputeFaceFlux,
    ApplyFluxBC,
    ComputeVolumeSource,
    ExplicitUpdate,
    HaloExchange,
    CallbackCall,
    DeviceTransfer,
    KernelLaunch,
    DeviceSync,
    GlobalReduction,
    print_ir,
)
from repro.ir.lowering import (
    ClassifiedForm,
    expand,
    euler_form,
    classify,
    lower_conservation_form,
    render_stage_listing,
)
from repro.ir.build import build_ir
from repro.ir.fuse import (
    MAX_REGISTERS,
    OPCODES,
    UnfusableError,
    Instr,
    FusedProgram,
    compile_terms,
    compile_expr,
    fusion_mode,
    fusion_summary,
)

__all__ = [
    "IRNode",
    "IRProgram",
    "Block",
    "Comment",
    "TimeLoop",
    "AssemblyLoops",
    "ComputeGhosts",
    "ComputeFaceFlux",
    "ApplyFluxBC",
    "ComputeVolumeSource",
    "ExplicitUpdate",
    "HaloExchange",
    "CallbackCall",
    "DeviceTransfer",
    "KernelLaunch",
    "DeviceSync",
    "GlobalReduction",
    "print_ir",
    "ClassifiedForm",
    "expand",
    "euler_form",
    "classify",
    "lower_conservation_form",
    "render_stage_listing",
    "build_ir",
    "MAX_REGISTERS",
    "OPCODES",
    "UnfusableError",
    "Instr",
    "FusedProgram",
    "compile_terms",
    "compile_expr",
    "fusion_mode",
    "fusion_summary",
]
