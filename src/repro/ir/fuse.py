"""Expression fusion: symbolic trees → register-allocated vector programs.

The code generators normally emit one NumPy expression per statement, so
every operator node pays a dispatcher round-trip and allocates a full-size
temporary.  This pass collapses a statement's whole arithmetic tree (a sum
of classified integrands) into a single *fused vector program* — a compact
sequence of instructions over a small register file — executed in one pass
by :class:`repro.codegen.vectorvm.VectorVM`, one whole-array operation per
instruction.

The pipeline, modeled on numexpr's compiler:

1. **Lowering** — walk the trees, hash-consed memoisation sharing common
   subexpressions, whole constant subtrees folded at compile time, n-ary
   ``Add``/``Mul`` lowered to binary left-folds (the exact fold order
   ``evaluate()`` and the emitted source use — fusion must be bit-identical,
   not just close).  Leaves become *slots*: values the caller passes to
   ``run()``, keyed by whatever string the caller's ``leaf_key`` returns
   (emitted source fragments for codegen, ``str(node)`` for the
   interpreter).  The result is a linear SSA value list.
2. **Liveness + register allocation** — each SSA value's last use is
   computed and registers are recycled from a free list (lowest index
   first, for stable disassembly) over a bounded register file.  Dead
   temporaries therefore share storage; the VM reuses the backing arrays
   across calls.

Statements the pass cannot express raise :class:`UnfusableError`; targets
fall back to the unfused emission per statement (``fusion="auto"``) or
surface the error (``fusion="on"``).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any

from repro.symbolic.expr import (
    Add,
    Call,
    Cmp,
    Conditional,
    Expr,
    Mul,
    Num,
    Pow,
    Surface,
    TimeDerivative,
)
from repro.symbolic.functions import get_function
from repro.util.errors import CodegenError

#: bound on the register file; programs needing more fall back to unfused
MAX_REGISTERS = 64

#: instruction opcodes (dst ← op(args)); ``imm`` use per opcode:
#: load: slot index · const: literal value · pow_const: exponent ·
#: cmp: operator string · call: function name
OPCODES = (
    "load",       # dst ← slots[imm]
    "const",      # dst ← imm
    "add",        # dst ← r[a] + r[b]
    "mul",        # dst ← r[a] * r[b]
    "recip",      # dst ← 1.0 / r[a]
    "pow_const",  # dst ← r[a] ** imm
    "pow",        # dst ← r[a] ** r[b]   (runtime -1 → reciprocal, as evaluate())
    "cmp",        # dst ← r[a] <imm> r[b]
    "where",      # dst ← select(r[a], r[b], r[c])
    "call",       # dst ← functions[imm](*r[args])
)


class UnfusableError(CodegenError):
    """The statement cannot be expressed as a fused vector program."""


@dataclass(frozen=True)
class Instr:
    """One VM instruction: ``r[dst] = op(args..., imm)``."""

    op: str
    dst: int
    args: tuple[int, ...] = ()
    imm: Any = None

    def render(self) -> str:
        parts = [f"r{a}" for a in self.args]
        if self.op == "load":
            parts.append(f"s{self.imm}")
        elif self.imm is not None:
            parts.append(repr(self.imm))
        operands = ", ".join(parts)
        return f"r{self.dst} = {self.op} {operands}".rstrip()


@dataclass(frozen=True)
class FusedProgram:
    """A compiled vector program (picklable; lives in artifact static envs).

    ``slots`` are the caller-provided inputs of ``run()``, in first-use
    order; each entry is the ``leaf_key`` string the caller compiled with.
    ``slot_nodes`` keeps the originating leaf nodes for callers that bind
    slots by node rather than by emitted source (interpreter, FEM).
    """

    slots: tuple[str, ...]
    instructions: tuple[Instr, ...]
    n_registers: int
    out_reg: int
    slot_nodes: tuple[Expr, ...] | None = None
    stats: dict = field(default_factory=dict)

    def disassemble(self) -> str:
        """Stable, diffable text form (the golden-fixture format)."""
        lines = ["; fused vector program (repro.fuse/1)"]
        lines.append(
            f"; slots={len(self.slots)} registers={self.n_registers} "
            f"instructions={len(self.instructions)}"
        )
        for i, key in enumerate(self.slots):
            lines.append(f"slot s{i} = {key}")
        for instr in self.instructions:
            lines.append(instr.render())
        lines.append(f"ret r{self.out_reg}")
        return "\n".join(lines) + "\n"


class _NotConstant(Exception):
    pass


class _Compiler:
    """Single-use lowering context for one statement."""

    def __init__(self, leaf_key: Callable[[Expr], str], max_registers: int):
        self.leaf_key = leaf_key
        self.max_registers = max_registers
        # linear SSA list: (op, operand value indices, imm)
        self.values: list[tuple[str, tuple[int, ...], Any]] = []
        self.memo: dict[Expr, int] = {}
        self.slots: list[str] = []
        self.slot_nodes: list[Expr] = []
        self.slot_index: dict[str, int] = {}
        self.slot_value: dict[int, int] = {}
        self.const_value: dict[tuple, int] = {}
        self.cse_hits = 0
        self.constants_folded = 0

    # ------------------------------------------------------------- lowering
    def emit(self, op: str, args: tuple[int, ...] = (), imm: Any = None) -> int:
        self.values.append((op, args, imm))
        return len(self.values) - 1

    def const(self, value: Any) -> int:
        # key by type as well: 2 == 2.0 to a dict, but int vs float literals
        # can differ numerically (2**53 + 1) — never alias them
        try:
            key = (type(value), value)
            idx = self.const_value.get(key)
        except TypeError:  # unhashable — never happens for numbers, stay safe
            key, idx = None, None
        if idx is not None:
            return idx
        idx = self.emit("const", imm=value)
        if key is not None:
            self.const_value[key] = idx
        return idx

    def visit(self, node: Expr) -> int:
        # Expr is hash-consed: structurally equal subtrees are one object,
        # so memoisation doubles as common-subexpression elimination.
        cached = self.memo.get(node)
        if cached is not None:
            self.cse_hits += 1
            return cached
        idx = self._lower(node)
        self.memo[node] = idx
        return idx

    def _lower(self, node: Expr) -> int:
        if isinstance(node, Num):
            return self.const(node.value)
        if isinstance(node, (Surface, TimeDerivative)):
            # markers are transparent, as in evaluate()
            return self.visit(node.expr)
        if isinstance(node, (Add, Mul)):
            folded = self._fold(node)
            if folded is not None:
                return self.const(folded)
            op = "add" if isinstance(node, Add) else "mul"
            acc = self.visit(node.args[0])
            for a in node.args[1:]:
                acc = self.emit(op, (acc, self.visit(a)))
            return acc
        if isinstance(node, Pow):
            folded = self._fold(node)
            if folded is not None:
                return self.const(folded)
            if isinstance(node.exponent, Num):
                e = node.exponent.value
                base = self.visit(node.base)
                if e == -1:
                    return self.emit("recip", (base,))
                return self.emit("pow_const", (base,), imm=e)
            base = self.visit(node.base)
            exponent = self.visit(node.exponent)
            return self.emit("pow", (base, exponent))
        if isinstance(node, Cmp):
            lhs = self.visit(node.lhs)
            rhs = self.visit(node.rhs)
            return self.emit("cmp", (lhs, rhs), imm=node.op)
        if isinstance(node, Conditional):
            cond = self.visit(node.cond)
            then = self.visit(node.then)
            other = self.visit(node.otherwise)
            return self.emit("where", (cond, then, other))
        if isinstance(node, Call):
            if get_function(node.func) is None:
                raise UnfusableError(
                    f"function {node.func!r} is not in the unified registry"
                )
            args = tuple(self.visit(a) for a in node.args)
            return self.emit("call", args, imm=node.func)
        # anything else is a leaf the caller must supply as a slot
        return self._leaf(node)

    def _leaf(self, node: Expr) -> int:
        key = self.leaf_key(node)
        if not isinstance(key, str) or not key:
            raise UnfusableError(f"cannot fuse leaf node {node!r}")
        slot = self.slot_index.get(key)
        if slot is None:
            slot = len(self.slots)
            self.slot_index[key] = slot
            self.slots.append(key)
            self.slot_nodes.append(node)
        cached = self.slot_value.get(slot)
        if cached is not None:
            return cached
        idx = self.emit("load", imm=slot)
        self.slot_value[slot] = idx
        return idx

    def _fold(self, node: Expr) -> float | None:
        """Fold a whole pure-constant Add/Mul/Pow subtree.

        Uses exactly the runtime fold order and the ``-1 → reciprocal``
        power rule, so the folded value is bit-identical to what the
        unfused code would compute.  Anything that would raise at runtime
        (0**-1, overflow) is left unfolded so it still raises at runtime.
        """

        def go(n: Expr) -> Any:
            if isinstance(n, Num):
                return n.value
            if isinstance(n, Add):
                total = go(n.args[0])
                for a in n.args[1:]:
                    total = total + go(a)
                return total
            if isinstance(n, Mul):
                prod = go(n.args[0])
                for a in n.args[1:]:
                    prod = prod * go(a)
                return prod
            if isinstance(n, Pow):
                base = go(n.base)
                exponent = go(n.exponent)
                if exponent == -1:
                    return 1.0 / base
                return base ** exponent
            raise _NotConstant

        if isinstance(node, Num):
            return None  # already a constant; nothing to fold
        try:
            value = go(node)
        except _NotConstant:
            return None
        except ArithmeticError:
            return None  # would raise at runtime too — keep runtime semantics
        self.constants_folded += 1
        return value

    # ---------------------------------------------------------- allocation
    def allocate(self, roots: list[int]) -> FusedProgram:
        """Liveness analysis + linear-scan register allocation."""
        # sum the statement's terms left-to-right, matching " + ".join(...)
        acc = roots[0]
        for r in roots[1:]:
            acc = self.emit("add", (acc, r))
        out = acc

        n = len(self.values)
        last_use = list(range(n))
        for i, (_op, args, _imm) in enumerate(self.values):
            for a in args:
                last_use[a] = i
        last_use[out] = n  # the result outlives the program

        reg_of: dict[int, int] = {}
        free: list[int] = []
        n_registers = 0
        instrs: list[Instr] = []
        for i, (op, args, imm) in enumerate(self.values):
            arg_regs = tuple(reg_of[a] for a in args)
            for a in set(args):
                if last_use[a] == i:
                    heappush(free, reg_of.pop(a))
            if free:
                dst = heappop(free)
            else:
                dst = n_registers
                n_registers += 1
                if n_registers > self.max_registers:
                    raise UnfusableError(
                        f"program needs more than {self.max_registers} registers"
                    )
            reg_of[i] = dst
            instrs.append(Instr(op, dst, arg_regs, imm))

        n_arith = sum(1 for ins in instrs if ins.op not in ("load", "const"))
        stats = {
            "n_instructions": len(instrs),
            "n_registers": n_registers,
            "n_slots": len(self.slots),
            # naive per-node evaluation allocates one temporary per
            # operation; the register file is all the storage fusion needs
            "temporaries_eliminated": max(0, n_arith - n_registers),
            "cse_hits": self.cse_hits,
            "constants_folded": self.constants_folded,
        }
        return FusedProgram(
            slots=tuple(self.slots),
            instructions=tuple(instrs),
            n_registers=n_registers,
            out_reg=reg_of[out],
            slot_nodes=tuple(self.slot_nodes),
            stats=stats,
        )


def compile_terms(
    terms: Iterable[Expr],
    leaf_key: Callable[[Expr], str],
    max_registers: int = MAX_REGISTERS,
) -> FusedProgram:
    """Compile a statement (sum of integrand trees) into a fused program.

    ``leaf_key`` maps a leaf node to its slot key string; raising
    :class:`UnfusableError` (or returning a non-string) rejects the whole
    statement.  Terms are summed left-to-right exactly like the unfused
    ``" + ".join(...)`` emission and ``evaluate()``'s Add fold.
    """
    terms = list(terms)
    if not terms:
        raise UnfusableError("cannot fuse an empty statement")
    compiler = _Compiler(leaf_key, max_registers)
    roots = [compiler.visit(t) for t in terms]
    return compiler.allocate(roots)


def compile_expr(
    expr: Expr,
    leaf_key: Callable[[Expr], str],
    max_registers: int = MAX_REGISTERS,
) -> FusedProgram:
    """Compile a single expression tree (convenience wrapper)."""
    return compile_terms([expr], leaf_key, max_registers)


def fusion_mode(extra: dict | None) -> str:
    """Resolve a problem's ``fusion`` knob to ``on``/``off``/``auto``.

    ``off`` (the default) keeps the classic per-expression emission;
    ``auto`` fuses every statement that compiles and silently falls back
    per statement; ``on`` additionally turns an unfusable statement into
    a hard :class:`CodegenError`.
    """
    raw = (extra or {}).get("fusion")
    mode = str(raw).lower() if raw is not None else "off"
    if mode not in ("on", "off", "auto"):
        raise CodegenError(f"fusion must be 'on', 'off' or 'auto', got {raw!r}")
    return mode


def node_leaf_key() -> Callable[[Expr], str]:
    """Per-program slot keys for node-bound leaves (interpreter/FEM paths).

    Keys are assigned in first-visit order and disambiguated by index, so
    two *different* leaf nodes that happen to print alike never share a
    slot, while the hash-consed identity of equal subtrees still dedups.
    Callers bind slots via ``program.slot_nodes``, not the key strings.
    """
    seen: dict[Expr, str] = {}

    def key(node: Expr) -> str:
        k = seen.get(node)
        if k is None:
            k = f"{node}#{len(seen)}"
            seen[node] = k
        return k

    return key


def fusion_summary(mode: str, programs: dict[str, FusedProgram]) -> dict:
    """The ``fusion_info`` dict attached to solvers and run reports."""
    return {
        "mode": mode,
        "programs": {
            name: dict(programs[name].stats) for name in sorted(programs)
        },
    }


__all__ = [
    "MAX_REGISTERS",
    "OPCODES",
    "UnfusableError",
    "Instr",
    "FusedProgram",
    "compile_terms",
    "compile_expr",
    "fusion_mode",
    "fusion_summary",
    "node_leaf_key",
]
