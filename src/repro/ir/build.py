"""Build the IR computational graph from a classified form + configuration.

``build_ir(problem, form, flavor)`` assembles the per-step program the
paper sketches in Section II-B: the sequential time loop, the parallel
cell/DOF work (flux + source + update), boundary handling, the user hooks,
and — per flavour — halo exchanges (distributed) or kernel launches with
host/device transfers (gpu).  Code generators walk this graph; its printed
form (:func:`repro.ir.nodes.print_ir`) is also asserted by tests and shown
in the docs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ir.lowering import ClassifiedForm
from repro.ir.nodes import (
    ApplyFluxBC,
    AssemblyLoops,
    Block,
    CallbackCall,
    Comment,
    ComputeFaceFlux,
    ComputeGhosts,
    ComputeVolumeSource,
    DeviceSync,
    DeviceTransfer,
    ExplicitUpdate,
    GlobalReduction,
    HaloExchange,
    IRProgram,
    KernelLaunch,
    TimeLoop,
)
from repro.util.errors import CodegenError

if TYPE_CHECKING:
    from repro.dsl.problem import Problem


def build_ir(problem: "Problem", form: ClassifiedForm, flavor: str = "cpu") -> IRProgram:
    """Assemble the IR for one of the three generation flavours."""
    if flavor not in ("cpu", "distributed", "gpu"):
        raise CodegenError(f"unknown IR flavour {flavor!r}")
    unknown = form.unknown
    cfg = problem.config

    flux_regions = sorted(
        b.region
        for b in problem.boundaries
        if b.variable == unknown.name and b.kind.value == "flux"
    )
    bc_has_callbacks = any(
        b.variable == unknown.name and (b.call is not None or b.python_callback is not None)
        for b in problem.boundaries
    )

    prelude = Block(
        body=[
            Comment(f"problem '{problem.name}': {cfg.dimension}-D {cfg.solver_type}, "
                    f"{unknown.ncomp} component(s) of {unknown.name!r} per cell"),
            Comment(f"equation: {problem.equation.source}" if problem.equation else ""),
        ],
        meta={"unknown": unknown.name, "ncomp": unknown.ncomp},
    )

    step = Block()

    for cb in problem.pre_step_callbacks:
        step.body.append(CallbackCall(name=cb.name, when="pre_step"))

    # the per-DOF work (flux + source + update), wrapped per flavour
    core = Block(
        body=[
            ComputeGhosts(variable=unknown.name, has_callbacks=bc_has_callbacks),
            ComputeFaceFlux(variable=unknown.name, terms=list(form.surface_terms)),
            ApplyFluxBC(variable=unknown.name, regions=flux_regions),
            ComputeVolumeSource(variable=unknown.name, terms=list(form.volume_terms)),
            ExplicitUpdate(variable=unknown.name, scheme=cfg.stepper),
        ]
    )

    if flavor == "cpu":
        step.body.append(
            Comment("cell loop parallelisable; order from assemblyLoops: "
                    + ", ".join(cfg.assembly_order))
        )
        step.body.append(AssemblyLoops(order=list(cfg.assembly_order), body=core))
    elif flavor == "distributed":
        if cfg.partition_strategy == "cells":
            step.body.append(Comment("cell partitioning: ghost values live on "
                                     "neighbour ranks (Fig. 3, top)"))
            step.body.append(HaloExchange(variable=unknown.name))
        else:
            step.body.append(Comment("band partitioning: no halo needed; bands "
                                     "couple only through the reduction below "
                                     "(Fig. 3, bottom)"))
        step.body.append(AssemblyLoops(order=list(cfg.assembly_order), body=core))
        if cfg.partition_strategy == "bands" and problem.post_step_callbacks:
            step.body.append(GlobalReduction(what="band energy", op="sum"))
    else:  # gpu
        interior = Block(
            body=[
                Comment("interior bulk: uniform work, one thread per DOF "
                        "(loops flattened)"),
                ComputeFaceFlux(variable=unknown.name, terms=list(form.surface_terms)),
                ComputeVolumeSource(variable=unknown.name, terms=list(form.volume_terms)),
                ExplicitUpdate(variable=unknown.name, scheme=cfg.stepper),
            ]
        )
        step.body.append(
            KernelLaunch(kernel=f"{unknown.name}_interior_step", covers=[interior],
                         asynchronous=True)
        )
        step.body.append(Comment("boundary handled on CPU while the kernel runs "
                                 "(user callbacks stay host code; Fig. 6)"))
        step.body.append(ComputeGhosts(variable=unknown.name, has_callbacks=bc_has_callbacks))
        step.body.append(ApplyFluxBC(variable=unknown.name, regions=flux_regions))
        step.body.append(DeviceSync())
        step.body.append(DeviceTransfer(direction="d2h", arrays=[unknown.name]))
        step.body.append(Comment("combine interior + boundary contributions"))

    for cb in problem.post_step_callbacks:
        step.body.append(CallbackCall(name=cb.name, when="post_step"))

    if flavor == "gpu":
        # values the post-step mutated must return to the device
        mutated = [v for v in problem.entities.variables if v != unknown.name]
        if problem.post_step_callbacks and mutated:
            step.body.append(
                DeviceTransfer(direction="h2d", arrays=sorted(mutated),
                               meta={"reason": "post-step updates"})
            )

    return IRProgram(
        name=problem.name,
        prelude=prelude,
        time_loop=TimeLoop(body=step, nsteps_symbol=str(cfg.nsteps), dt_symbol="dt"),
    )


__all__ = ["build_ir"]
