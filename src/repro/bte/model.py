"""BTEModel: the glue between the physics and the DSL callbacks.

Owns the spectral bands, the direction set and the component flattening
(components are (direction, band) row-major, matching the DSL's
``index=[d, b]`` declaration order) and provides:

* the post-step temperature update ("the BTE also involves an additional
  processing step to evolve the temperature in each cell", Sec. II-B) —
  intensity -> energy reduction, Newton temperature inversion, refresh of
  the ``Io`` and ``beta`` (=tau) variables;
* the isothermal flux boundary callback of the paper's
  ``boundary(I, 1, FLUX, "isothermal(I,vg,Sx,Sy,b,d,normal,300)")``;
* specular-symmetry reflection maps for Eq. (6);
* initial equilibrium intensities.

Flux-callback sign convention: FLUX callbacks return the *classified signed
face integrand*, i.e. exactly what the interior expression
``-vg[b] * (s_d . n) * I_upwind`` would produce on those faces, with ghost
intensities substituted per Eq. (6).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.bte.angular import (
    DirectionSet,
    component_reflection_map,
    reflection_map,
    uniform_directions_2d,
)
from repro.bte.dispersion import BandSet, silicon_bands
from repro.bte.equilibrium import (
    equilibrium_intensity,
    pseudo_temperature,
)
from repro.bte.scattering import relaxation_times
from repro.fvm.boundary import BoundaryContext
from repro.util.errors import ConfigError


class BTEModel:
    """Bands x directions bundle with the BTE's coupling operations."""

    def __init__(self, bands: BandSet | None = None, directions: DirectionSet | None = None):
        self.bands = bands if bands is not None else silicon_bands(40)
        self.dirs = directions if directions is not None else uniform_directions_2d(20)
        nb, nd = self.bands.nbands, self.dirs.ndirs
        self.ncomp = nd * nb
        # flattened (d, b) component axis, row-major over (direction, band)
        comp = np.arange(self.ncomp)
        self.comp_dir = comp // nb
        self.comp_band = comp % nb
        self.weight_comp = self.dirs.weights[self.comp_dir]
        self.vg_comp = self.bands.vg[self.comp_band]

    # ------------------------------------------------------------- reductions
    def energy_from_intensity(self, I: np.ndarray) -> np.ndarray:
        """Per-cell energy density: ``E = sum_d w_d sum_b I_{d,b}``.

        ``I`` has shape ``(ncomp, ncells)``; the result ``(ncells,)``.
        """
        if I.shape[0] != self.ncomp:
            raise ConfigError(
                f"intensity has {I.shape[0]} components, model expects {self.ncomp}"
            )
        return self.weight_comp @ I

    def band_energies(self, I: np.ndarray, comps: np.ndarray | None = None) -> np.ndarray:
        """Per-band direction-integrated energy, ``(nbands, ncells)``.

        With ``comps`` given, only those components contribute (band
        partitioning: each rank sums its own bands, zeros elsewhere, and the
        allreduce completes the picture).
        """
        nb = self.bands.nbands
        out = np.zeros((nb, I.shape[1]))
        if comps is None:
            w = self.weight_comp
            np.add.at(out, self.comp_band, w[:, None] * I)
        else:
            w = self.weight_comp[comps]
            np.add.at(out, self.comp_band[comps], w[:, None] * I[comps])
        return out

    def heat_flux(self, I: np.ndarray) -> np.ndarray:
        """Per-cell heat-flux vector ``q = sum w_d vg_b s_d I`` , (dim, ncells)."""
        s = self.dirs.vectors[self.comp_dir]  # (ncomp, dim)
        wv = (self.weight_comp * self.vg_comp)[:, None] * s  # (ncomp, dim)
        return wv.T @ I

    # --------------------------------------------------------------- post-step
    def temperature_update(self, state) -> None:
        """The paper's ``postStepFunction``: E -> T -> (Io, beta).

        Reads the intensity from ``state.u``; keeps the per-cell temperature
        in ``state.extra['T']`` (also the Newton starting guess).
        """
        I = state.u
        T_prev = state.extra.get("T")
        if T_prev is None:
            T_prev = np.full(I.shape[1], float(state.extra.get("T0", 300.0)))

        if getattr(state, "owned_comps", None) is not None:
            # band partitioning: each rank holds only its components' valid
            # intensities; the closure needs all bands -> allreduce of the
            # partial per-band, per-cell sums (the paper's only band-strategy
            # communication, Sec. III-C)
            own = state.owned_comps
            e_partial = self.band_energies(I, comps=own)
            e_act = state.comm.allreduce(e_partial)
            T = pseudo_temperature(self.bands, e_act, T_prev)
            state.extra["T"] = T
            state.fields["Io"].data[...] = equilibrium_intensity(self.bands, T)
            state.fields["beta"].data[...] = relaxation_times(self.bands, T)
            return

        if getattr(state, "owned_cells", None) is not None:
            # cell partitioning: bands are all local, the update restricts
            # to owned cells (ghost columns never feed volume terms)
            own = state.owned_cells
            e_act = self.band_energies(I[:, own])
            T_own = pseudo_temperature(self.bands, e_act, T_prev[own])
            T = T_prev.copy()
            T[own] = T_own
            state.extra["T"] = T
            state.fields["Io"].data[:, own] = equilibrium_intensity(self.bands, T_own)
            state.fields["beta"].data[:, own] = relaxation_times(self.bands, T_own)
            return

        e_act = self.band_energies(I)
        T = pseudo_temperature(self.bands, e_act, T_prev)
        state.extra["T"] = T
        state.fields["Io"].data[...] = equilibrium_intensity(self.bands, T)
        state.fields["beta"].data[...] = relaxation_times(self.bands, T)

    def initialize_state(self, state, T0: float) -> None:
        """Set the uniform-equilibrium initial condition at temperature T0."""
        ncells = state.ncells
        T = np.full(ncells, float(T0))
        state.extra["T"] = T
        Io = equilibrium_intensity(self.bands, T)  # (nbands, ncells)
        state.fields["Io"].data[...] = Io
        state.fields["beta"].data[...] = relaxation_times(self.bands, T)
        state.fields["I"].data[...] = Io[self.comp_band, :]

    def initial_intensity(self, T0: float) -> np.ndarray:
        """Per-component equilibrium intensity at uniform ``T0``, (ncomp,)."""
        Io = equilibrium_intensity(self.bands, float(T0))  # (nbands,)
        return Io[self.comp_band]

    # ---------------------------------------------------------------- boundary
    def isothermal(self, ctx: BoundaryContext, I_owner, vg, *args):
        """The paper's isothermal flux callback (DSL-string signature).

        2-D deck: ``isothermal(I, vg, Sx, Sy, b, d, normal, 300)``;
        3-D deck: ``isothermal(I, vg, Sx, Sy, Sz, b, d, normal, 300)``.

        Ghost intensities are the wall-equilibrium ``Io(T_wall)`` for
        incoming directions (Eq. 6, isothermal row); outgoing directions
        upwind the interior value.  Returns the signed integrand
        ``-vg * (s.n) * I_upwind``.
        """
        *s_components, _b, _d, normals, T_wall = args
        if len(s_components) != self.dirs.dim:
            raise ConfigError(
                f"isothermal callback received {len(s_components)} direction "
                f"components for a {self.dirs.dim}-D ordinate set"
            )
        sdotn = np.zeros((self.ncomp, normals.shape[0]))
        for axis, s in enumerate(s_components):
            sdotn += s[self.comp_dir][:, None] * normals[:, axis][None, :]
        ghost = equilibrium_intensity(self.bands, float(T_wall))[self.comp_band]
        upwound = np.where(sdotn > 0.0, I_owner, ghost[:, None])
        return -(vg[self.comp_band][:, None] * sdotn * upwound)

    def make_isothermal_profile_bc(
        self, T_profile: Callable[[np.ndarray], np.ndarray]
    ) -> Callable[[BoundaryContext], np.ndarray]:
        """Isothermal wall with a position-dependent temperature.

        ``T_profile(face_centers) -> (nfaces,)`` — this is how the hot wall's
        Gaussian hot spot enters (Fig. 1).  Returns a FLUX callback.
        """

        def hot_wall(ctx: BoundaryContext) -> np.ndarray:
            T_face = np.asarray(T_profile(ctx.centers), dtype=np.float64)
            if T_face.shape != (ctx.nfaces,):
                raise ConfigError(
                    f"temperature profile returned shape {T_face.shape}, "
                    f"expected ({ctx.nfaces},)"
                )
            sdotn = (self.dirs.vectors @ ctx.normals.T)[self.comp_dir]
            # (nbands, nfaces) wall equilibrium, lifted to components
            Io_face = equilibrium_intensity(self.bands, T_face)
            ghost = Io_face[self.comp_band, :]
            upwound = np.where(sdotn > 0.0, ctx.owner_values, ghost)
            return -(self.vg_comp[:, None] * sdotn * upwound)

        hot_wall.__name__ = "isothermal_profile"
        return hot_wall

    def stable_dt(self, mesh, T_max: float = 400.0, safety: float = 0.4) -> float:
        """A stable explicit step for this model on ``mesh``.

        Two constraints bind (both discussed implicitly by the paper's
        choice of 1 ps steps): the advective CFL ``h_min / vg_max`` and the
        stiffest relaxation time ``tau_min`` (evaluated at ``T_max``, since
        scattering strengthens with temperature).
        """
        from repro.bte.scattering import relaxation_times

        # smallest cell extent: volume / largest face area is a robust
        # lower bound for arbitrary cells
        h_min = float(np.min(mesh.cell_volumes) ** (1.0 / mesh.dim))
        vg_max = float(self.bands.vg.max())
        tau_min = float(relaxation_times(self.bands, float(T_max)).min())
        return safety * min(h_min / vg_max, tau_min)

    def symmetry_map(self, normal: np.ndarray) -> np.ndarray:
        """Component permutation for a specular symmetry wall (Eq. 6)."""
        dmap = reflection_map(self.dirs, normal)
        return component_reflection_map(dmap, self.bands.nbands)

    def __repr__(self) -> str:
        return (
            f"BTEModel({self.bands!r}, ndirs={self.dirs.ndirs}, "
            f"ncomp={self.ncomp})"
        )


__all__ = ["BTEModel"]
