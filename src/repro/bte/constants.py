"""Physical constants and silicon material parameters.

Dispersion: quadratic fits to the [100] direction of silicon's phonon
spectrum (Pop et al. / Mazumder-Majumdar form), the standard inputs of the
gray/non-gray BTE literature the paper builds on ([2], [4], [14]):

    omega(k) = v_s * k + c * k^2,     k in [0, K_MAX]

Scattering: impurity + Umklapp/normal relaxation rates with the
Terris-et-al. constants used by the reference large-scale BTE solver
(Ali, Kollu, Mazumder, Sadayappan 2014 — the paper's ref [14]).
"""

from __future__ import annotations

import math

# fundamental constants (SI)
HBAR = 1.054571817e-34  # J s
KB = 1.380649e-23  # J / K

# silicon lattice constant and Brillouin-zone edge along [100]
A_SI = 5.43e-10  # m
K_MAX = 2.0 * math.pi / A_SI  # 1/m  (~1.157e10)

# quadratic dispersion fits: omega = VS * k + C * k^2
LA_VS = 9.01e3  # m/s
LA_C = -2.00e-7  # m^2/s
TA_VS = 5.23e3  # m/s
TA_C = -2.26e-7  # m^2/s

# TA is doubly degenerate
TA_DEGENERACY = 2
LA_DEGENERACY = 1

# relaxation-time constants (Matthiessen: 1/tau = sum of rates)
#   impurity:        1/tau_i  = A_IMP * omega^4
#   LA normal+U:     1/tau_NL = B_L * omega^2 * T^3
#   TA normal (omega < OMEGA_12):  1/tau_NT = B_TN * omega * T^4
#   TA Umklapp (omega >= OMEGA_12): 1/tau_UT = B_TU * omega^2 / sinh(hbar*omega/(kB*T))
A_IMP = 1.498e-45  # s^3
B_L = 1.180e-24  # s K^-3
B_TN = 8.708e-13  # K^-4
B_TU = 2.890e-18  # s

#: TA branch frequency at half the zone edge — the normal/Umklapp crossover.
OMEGA_12 = TA_VS * (K_MAX / 2) + TA_C * (K_MAX / 2) ** 2  # rad/s

# default simulation temperatures (paper Sec. III-A)
T_COLD = 300.0  # K — initial equilibrium and cold wall
T_HOT = 350.0  # K — hot-spot peak
HOTSPOT_SIGMA = 10e-6  # m — 1/e^2 radius of the Gaussian hot spot
DOMAIN_SIZE = 525e-6  # m — 525 um square domain

__all__ = [
    "HBAR",
    "KB",
    "A_SI",
    "K_MAX",
    "LA_VS",
    "LA_C",
    "TA_VS",
    "TA_C",
    "TA_DEGENERACY",
    "LA_DEGENERACY",
    "A_IMP",
    "B_L",
    "B_TN",
    "B_TU",
    "OMEGA_12",
    "T_COLD",
    "T_HOT",
    "HOTSPOT_SIGMA",
    "DOMAIN_SIZE",
]
