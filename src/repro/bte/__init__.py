"""Phonon Boltzmann Transport Equation application (paper Section III).

Everything the paper's demonstration needs, built from scratch:

* :mod:`~repro.bte.dispersion` — silicon LA/TA quadratic dispersion and the
  spectral band discretisation (40 frequency bands -> 40 LA + 15 TA = 55
  polarised bands, exactly the paper's setup);
* :mod:`~repro.bte.scattering` — impurity + Umklapp/normal relaxation times
  (Matthiessen's rule), temperature dependent;
* :mod:`~repro.bte.angular` — discrete ordinates (uniform 2-D direction
  sets) with solid-angle weights and specular reflection maps;
* :mod:`~repro.bte.equilibrium` — Bose-Einstein statistics, per-band
  equilibrium intensity, and the vectorised Newton inversion of the
  nonlinear energy <-> temperature relation;
* :mod:`~repro.bte.model` — :class:`BTEModel`: the glue consumed by DSL
  callbacks (temperature post-step update, isothermal flux boundary,
  symmetry reflection maps);
* :mod:`~repro.bte.problem` — DSL problem builders for the paper's two
  scenarios (hot-spot, Fig. 1/2; corner source, Fig. 10);
* :mod:`~repro.bte.reference` — the hand-written band-parallel solver
  standing in for the authors' Fortran comparator (Fig. 9).
"""

from repro.bte.dispersion import Branch, BandSet, silicon_bands, LA_BRANCH, TA_BRANCH
from repro.bte.angular import (
    DirectionSet,
    uniform_directions_2d,
    product_directions_3d,
    reflection_map,
)
from repro.bte.scattering import relaxation_times
from repro.bte.equilibrium import (
    bose_einstein,
    pseudo_temperature,
    band_energy_density,
    equilibrium_intensity,
    energy_to_temperature,
    total_energy_density,
)
from repro.bte.model import BTEModel
from repro.bte.problem import (
    BTEScenario,
    BTEScenario3D,
    hotspot_scenario,
    corner_source_scenario,
    coarse_3d_scenario,
    build_bte_problem,
    build_bte_problem_3d,
)
from repro.bte.reference import ReferenceBTESolver
from repro.bte.conductivity import (
    ConductivityResult,
    bulk_conductivity,
    mean_free_path,
    majumdar_eprt,
    effective_conductivity,
    size_effect_curve,
)

__all__ = [
    "Branch",
    "BandSet",
    "silicon_bands",
    "LA_BRANCH",
    "TA_BRANCH",
    "DirectionSet",
    "uniform_directions_2d",
    "product_directions_3d",
    "reflection_map",
    "relaxation_times",
    "bose_einstein",
    "band_energy_density",
    "equilibrium_intensity",
    "energy_to_temperature",
    "pseudo_temperature",
    "total_energy_density",
    "BTEModel",
    "BTEScenario",
    "BTEScenario3D",
    "hotspot_scenario",
    "corner_source_scenario",
    "coarse_3d_scenario",
    "build_bte_problem",
    "build_bte_problem_3d",
    "ReferenceBTESolver",
    "ConductivityResult",
    "bulk_conductivity",
    "mean_free_path",
    "majumdar_eprt",
    "effective_conductivity",
    "size_effect_curve",
]
