"""DSL problem builders for the paper's BTE scenarios.

:func:`hotspot_scenario` is the configuration of Sections III-A/B and
Figures 1-2: a square domain with a cold isothermal bottom wall, an
isothermal top wall carrying a narrow Gaussian hot spot, and specular
symmetry on the left/right sides.  :func:`corner_source_scenario` is the
second demonstration (Fig. 10): an elongated domain with the heat source in
one corner.  Both default to the paper's full resolution; tests and examples
pass reduced sizes.

:func:`build_bte_problem` turns a scenario into a ready-to-generate
:class:`~repro.dsl.problem.Problem` — the Python equivalent of the appendix
input deck — plus the :class:`~repro.bte.model.BTEModel` behind its
callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bte import constants as C
from repro.bte.angular import uniform_directions_2d
from repro.bte.dispersion import silicon_bands
from repro.bte.model import BTEModel
from repro.dsl.entities import CELL, VAR_ARRAY
from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.grid import structured_grid
from repro.util.errors import ConfigError

#: The BTE conservation-form input (cf. the appendix listing; the surface
#: term enters with the minus sign of the general rule in Sec. II — see the
#: sign note in DESIGN.md).
BTE_EQUATION = (
    "(Io[b] - I[d,b]) / beta[b] - "
    "surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))"
)


@dataclass
class BTEScenario:
    """Geometry, discretisation and thermal configuration of one run."""

    name: str = "bte-hotspot"
    nx: int = 120
    ny: int = 120
    lx: float = C.DOMAIN_SIZE
    ly: float = C.DOMAIN_SIZE
    ndirs: int = 20
    n_freq_bands: int = 40
    dt: float = 1e-12
    nsteps: int = 100
    T0: float = C.T_COLD
    T_hot: float = C.T_HOT
    sigma: float = C.HOTSPOT_SIGMA
    hot_center_frac: float = 0.5  # hot-spot centre along the hot wall (0..1)
    # wall -> role; walls use the structured-grid region convention
    # (1=x-min, 2=x-max, 3=y-min, 4=y-max)
    cold_regions: tuple[int, ...] = (3,)
    hot_regions: tuple[int, ...] = (4,)
    symmetry_regions: tuple[int, ...] = (1, 2)
    metadata: dict = field(default_factory=dict)

    def validate(self) -> None:
        regions = set(self.cold_regions) | set(self.hot_regions) | set(self.symmetry_regions)
        if regions != {1, 2, 3, 4}:
            raise ConfigError(f"scenario must cover walls 1-4 exactly once, got {regions}")
        if len(self.cold_regions) + len(self.hot_regions) + len(self.symmetry_regions) != 4:
            raise ConfigError("scenario assigns a wall to two roles")

    def hot_wall_profile(self):
        """Gaussian temperature profile along the hot wall (1/e^2 radius sigma)."""
        xc = self.hot_center_frac * self.lx
        T0, dT, sigma = self.T0, self.T_hot - self.T0, self.sigma

        def profile(centers: np.ndarray) -> np.ndarray:
            x = centers[:, 0]
            return T0 + dT * np.exp(-2.0 * np.square((x - xc) / sigma))

        return profile


def hotspot_scenario(
    nx: int = 120,
    ny: int = 120,
    ndirs: int = 20,
    n_freq_bands: int = 40,
    dt: float = 1e-12,
    nsteps: int = 100,
) -> BTEScenario:
    """Figures 1-2: 525 um square, cold bottom, Gaussian hot spot on top."""
    return BTEScenario(
        name="bte-hotspot",
        nx=nx, ny=ny, ndirs=ndirs, n_freq_bands=n_freq_bands,
        dt=dt, nsteps=nsteps,
    )


def corner_source_scenario(
    nx: int = 160,
    ny: int = 40,
    ndirs: int = 20,
    n_freq_bands: int = 40,
    dt: float = 1e-12,
    nsteps: int = 100,
) -> BTEScenario:
    """Figure 10: smaller elongated material, heat source in one corner,
    isothermal bottom, symmetry left/right."""
    lx, ly = 200e-6, 50e-6
    return BTEScenario(
        name="bte-corner-source",
        nx=nx, ny=ny, lx=lx, ly=ly,
        ndirs=ndirs, n_freq_bands=n_freq_bands,
        dt=dt, nsteps=nsteps,
        T0=100.0, T_hot=150.0, sigma=8e-6,
        hot_center_frac=0.0,  # the corner
    )


def build_bte_problem(scenario: BTEScenario, model: BTEModel | None = None) -> tuple[Problem, BTEModel]:
    """Assemble the DSL problem for a scenario (the appendix deck in Python)."""
    scenario.validate()
    if model is None:
        model = BTEModel(
            bands=silicon_bands(scenario.n_freq_bands),
            directions=uniform_directions_2d(scenario.ndirs),
        )
    bands, dirs = model.bands, model.dirs

    problem = Problem(scenario.name)
    problem.set_domain(2)
    problem.set_solver_type("FV")
    problem.set_stepper("euler")
    problem.set_steps(scenario.dt, scenario.nsteps)
    problem.set_mesh(
        structured_grid(
            (scenario.nx, scenario.ny),
            [(0.0, scenario.lx), (0.0, scenario.ly)],
            name=scenario.name,
        )
    )

    # indices and entities (the appendix listing)
    d = problem.add_index("d", (1, dirs.ndirs))
    b = problem.add_index("b", (1, bands.nbands))
    problem.add_variable("I", VAR_ARRAY, CELL, index=[d, b])
    problem.add_variable("Io", VAR_ARRAY, CELL, index=[b])
    problem.add_variable("beta", VAR_ARRAY, CELL, index=[b])
    problem.add_coefficient("Sx", dirs.sx, VAR_ARRAY, index=[d])
    problem.add_coefficient("Sy", dirs.sy, VAR_ARRAY, index=[d])
    problem.add_coefficient("vg", bands.vg, VAR_ARRAY, index=[b])

    # the isothermal callback is imported and used through the DSL string
    # (exercising the paper's automatic argument interpretation)
    problem.add_callback(model.isothermal, name="isothermal")

    for region in scenario.cold_regions:
        problem.add_boundary(
            "I", region, BCKind.FLUX,
            f"isothermal(I, vg, Sx, Sy, b, d, normal, {scenario.T0})",
        )
    hot_profile_bc = model.make_isothermal_profile_bc(scenario.hot_wall_profile())
    for region in scenario.hot_regions:
        problem.add_boundary("I", region, BCKind.FLUX, hot_profile_bc)
    for region in scenario.symmetry_regions:
        # wall outward normal from the structured-grid region convention
        normal = {
            1: np.array([-1.0, 0.0]),
            2: np.array([1.0, 0.0]),
            3: np.array([0.0, -1.0]),
            4: np.array([0.0, 1.0]),
        }[region]
        problem.add_boundary(
            "I", region, BCKind.SYMMETRY, reflection_map=model.symmetry_map(normal)
        )

    # initial thermal equilibrium at T0 (paper Sec. III-A)
    from repro.bte.equilibrium import equilibrium_intensity
    from repro.bte.scattering import relaxation_times

    Io0 = equilibrium_intensity(bands, scenario.T0)  # (nbands,)
    problem.set_initial("I", model.initial_intensity(scenario.T0))
    problem.set_initial("Io", Io0)
    problem.set_initial("beta", relaxation_times(bands, scenario.T0))
    problem.extra["T0"] = scenario.T0
    problem.extra["bte_model"] = model
    problem.extra["scenario"] = scenario

    # the per-step temperature evolution is a CPU post-step callback
    problem.add_post_step(model.temperature_update, name="temperature_update")

    problem.set_conservation_form("I", BTE_EQUATION)
    return problem, model


# ---------------------------------------------------------------------------
# 3-D (the paper: "Some very coarse-grained 3-dimensional runs were also
# performed successfully")
# ---------------------------------------------------------------------------

BTE_EQUATION_3D = (
    "(Io[b] - I[d,b]) / beta[b] - "
    "surface(vg[b] * upwind([Sx[d];Sy[d];Sz[d]], I[d,b]))"
)


@dataclass
class BTEScenario3D:
    """Coarse 3-D configuration: hot spot on the z-max face, cold z-min,
    specular symmetry on the four sides."""

    name: str = "bte-hotspot-3d"
    nx: int = 12
    ny: int = 12
    nz: int = 12
    lx: float = 100e-6
    ly: float = 100e-6
    lz: float = 100e-6
    n_azimuthal: int = 8
    n_polar: int = 4
    n_freq_bands: int = 10
    dt: float = 1e-12
    nsteps: int = 50
    T0: float = C.T_COLD
    T_hot: float = C.T_HOT
    sigma: float = 30e-6

    def hot_wall_profile(self):
        xc, yc = 0.5 * self.lx, 0.5 * self.ly
        T0, dT, sigma = self.T0, self.T_hot - self.T0, self.sigma

        def profile(centers: np.ndarray) -> np.ndarray:
            r2 = np.square(centers[:, 0] - xc) + np.square(centers[:, 1] - yc)
            return T0 + dT * np.exp(-2.0 * r2 / sigma**2)

        return profile


def coarse_3d_scenario(**overrides) -> BTEScenario3D:
    """The coarse-grained 3-D run the paper mentions, at test-friendly size."""
    return BTEScenario3D(**overrides)


def build_bte_problem_3d(scenario: BTEScenario3D, model: BTEModel | None = None
                         ) -> tuple[Problem, BTEModel]:
    """Assemble the 3-D BTE problem (20x20-style product ordinates)."""
    from repro.bte.angular import product_directions_3d
    from repro.bte.equilibrium import equilibrium_intensity
    from repro.bte.scattering import relaxation_times

    if model is None:
        model = BTEModel(
            bands=silicon_bands(scenario.n_freq_bands),
            directions=product_directions_3d(scenario.n_azimuthal, scenario.n_polar),
        )
    bands, dirs = model.bands, model.dirs

    problem = Problem(scenario.name)
    problem.set_domain(3)
    problem.set_solver_type("FV")
    problem.set_stepper("euler")
    problem.set_steps(scenario.dt, scenario.nsteps)
    problem.set_mesh(
        structured_grid(
            (scenario.nx, scenario.ny, scenario.nz),
            [(0.0, scenario.lx), (0.0, scenario.ly), (0.0, scenario.lz)],
            name=scenario.name,
        )
    )

    d = problem.add_index("d", (1, dirs.ndirs))
    b = problem.add_index("b", (1, bands.nbands))
    problem.add_variable("I", VAR_ARRAY, CELL, index=[d, b])
    problem.add_variable("Io", VAR_ARRAY, CELL, index=[b])
    problem.add_variable("beta", VAR_ARRAY, CELL, index=[b])
    problem.add_coefficient("Sx", dirs.sx, VAR_ARRAY, index=[d])
    problem.add_coefficient("Sy", dirs.sy, VAR_ARRAY, index=[d])
    problem.add_coefficient("Sz", dirs.sz, VAR_ARRAY, index=[d])
    problem.add_coefficient("vg", bands.vg, VAR_ARRAY, index=[b])

    problem.add_callback(model.isothermal, name="isothermal")
    # region convention: 1/2 = x walls, 3/4 = y walls, 5 = z-min, 6 = z-max
    problem.add_boundary(
        "I", 5, BCKind.FLUX,
        f"isothermal(I, vg, Sx, Sy, Sz, b, d, normal, {scenario.T0})",
    )
    problem.add_boundary(
        "I", 6, BCKind.FLUX, model.make_isothermal_profile_bc(scenario.hot_wall_profile())
    )
    normals = {
        1: np.array([-1.0, 0.0, 0.0]),
        2: np.array([1.0, 0.0, 0.0]),
        3: np.array([0.0, -1.0, 0.0]),
        4: np.array([0.0, 1.0, 0.0]),
    }
    for region, normal in normals.items():
        problem.add_boundary(
            "I", region, BCKind.SYMMETRY, reflection_map=model.symmetry_map(normal)
        )

    Io0 = equilibrium_intensity(bands, scenario.T0)
    problem.set_initial("I", model.initial_intensity(scenario.T0))
    problem.set_initial("Io", Io0)
    problem.set_initial("beta", relaxation_times(bands, scenario.T0))
    problem.extra["T0"] = scenario.T0
    problem.extra["bte_model"] = model
    problem.extra["scenario"] = scenario
    problem.add_post_step(model.temperature_update, name="temperature_update")
    problem.set_conservation_form("I", BTE_EQUATION_3D)
    return problem, model


__all__ = [
    "BTEScenario",
    "BTEScenario3D",
    "BTE_EQUATION",
    "BTE_EQUATION_3D",
    "hotspot_scenario",
    "corner_source_scenario",
    "coarse_3d_scenario",
    "build_bte_problem",
    "build_bte_problem_3d",
]
