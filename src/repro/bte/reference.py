"""Hand-written reference BTE solver (the Fortran comparator stand-in).

The paper validates the DSL-generated solver against "a previously developed
Fortran code that was hand-written and optimized for band-based parallelism"
and uses it as the performance reference of Fig. 9.  This module plays that
role: a direct, DSL-free implementation of the same model formulation —
first-order upwind FV, forward Euler, Eq. (6) boundaries, post-step
temperature update — organised band-by-band the way the Fortran code is.

``tests/bte/test_reference_agreement.py`` asserts the generated solver and
this one agree to round-off over many steps ("our solutions matched
theirs").
"""

from __future__ import annotations

import numpy as np

from repro.bte.angular import reflection_map
from repro.bte.equilibrium import (
    equilibrium_intensity,
    pseudo_temperature,
)
from repro.bte.model import BTEModel
from repro.bte.problem import BTEScenario
from repro.bte.scattering import relaxation_times
from repro.fvm.geometry import FVGeometry
from repro.mesh.grid import structured_grid
from repro.util.errors import SolverError
from repro.util.timing import TimerRegistry


class ReferenceBTESolver:
    """Band-loop BTE solver, no code generation involved."""

    def __init__(self, scenario: BTEScenario, model: BTEModel | None = None):
        scenario.validate()
        self.scenario = scenario
        if model is None:
            from repro.bte.dispersion import silicon_bands
            from repro.bte.angular import uniform_directions_2d

            model = BTEModel(
                bands=silicon_bands(scenario.n_freq_bands),
                directions=uniform_directions_2d(scenario.ndirs),
            )
        self.model = model
        self.bands = model.bands
        self.dirs = model.dirs

        self.mesh = structured_grid(
            (scenario.nx, scenario.ny), [(0.0, scenario.lx), (0.0, scenario.ly)]
        )
        self.geom = FVGeometry(self.mesh)
        nb, nd, nc = self.bands.nbands, self.dirs.ndirs, self.mesh.ncells

        # state arrays: intensity stored per band as (ndirs, ncells) blocks —
        # the band-outermost layout the Fortran code uses
        self.T = np.full(nc, scenario.T0)
        Io0 = equilibrium_intensity(self.bands, scenario.T0)
        self.I = np.empty((nb, nd, nc))
        self.I[...] = Io0[:, None, None]
        self.Io = np.tile(Io0[:, None], (1, nc))
        self.tau = np.tile(relaxation_times(self.bands, scenario.T0)[:, None], (1, nc))

        # per-direction projected velocities on every face: (ndirs, nfaces)
        g = self.geom
        self.sdotn = self.dirs.vectors @ g.normal.T
        # boundary precomputation
        self.hot_profile = scenario.hot_wall_profile()
        self._setup_boundaries()

        self.time = 0.0
        self.step_index = 0
        self.timers = TimerRegistry()

    # ------------------------------------------------------------------ setup
    def _setup_boundaries(self) -> None:
        g, sc = self.geom, self.scenario
        self.cold_faces = np.concatenate(
            [g.region_faces[r] for r in sc.cold_regions]
        )
        self.hot_faces = np.concatenate([g.region_faces[r] for r in sc.hot_regions])
        self.sym_faces: dict[int, np.ndarray] = {
            r: g.region_faces[r] for r in sc.symmetry_regions
        }
        normals = {
            1: np.array([-1.0, 0.0]),
            2: np.array([1.0, 0.0]),
            3: np.array([0.0, -1.0]),
            4: np.array([0.0, 1.0]),
        }
        self.sym_dir_map: dict[int, np.ndarray] = {
            r: reflection_map(self.dirs, normals[r]) for r in sc.symmetry_regions
        }
        # wall-equilibrium intensities (cold wall constant, hot wall per face)
        self.I_wall_cold = equilibrium_intensity(self.bands, sc.T0)  # (nb,)
        T_hot_faces = self.hot_profile(g.center[self.hot_faces])
        self.I_wall_hot = equilibrium_intensity(self.bands, T_hot_faces)  # (nb, nf_hot)

    # ------------------------------------------------------------------- step
    def step(self) -> None:
        """One forward-Euler step, band by band (the Fortran loop order)."""
        g = self.geom
        dt = self.scenario.dt
        owner, neigh = g.owner, g.neighbor_safe

        with self.timers.time("solve"):
            for b in range(self.bands.nbands):
                vg = self.bands.vg[b]
                Ib = self.I[b]  # (ndirs, ncells)
                u1 = Ib[:, owner]
                u2 = Ib[:, neigh].copy()
                # ghost values on boundary faces
                self._fill_ghosts(b, Ib, u2)
                vn = vg * self.sdotn  # (ndirs, nfaces)
                flux = np.where(vn > 0.0, vn * u1, vn * u2)
                div = g.surface_divergence(flux)
                relax = (self.Io[b][None, :] - Ib) / self.tau[b][None, :]
                self.I[b] = Ib + dt * (relax - div)

        with self.timers.time("post_step"):
            self._update_temperature()

        self.time += dt
        self.step_index += 1

    def _fill_ghosts(self, b: int, Ib: np.ndarray, u2: np.ndarray) -> None:
        """Eq. (6): wall equilibrium on isothermal faces, mirrored direction
        on symmetry faces (writes into the neighbour-side gather)."""
        g = self.geom
        u2[:, self.cold_faces] = self.I_wall_cold[b]
        u2[:, self.hot_faces] = self.I_wall_hot[b][None, :]
        for r, faces in self.sym_faces.items():
            dmap = self.sym_dir_map[r]
            u2[:, faces] = Ib[dmap][:, g.owner[faces]]

    def _update_temperature(self) -> None:
        w = self.dirs.weights  # (ndirs,)
        # per-band energies e_b = sum_d w_d I[b, d, c]
        e_act = np.einsum("d,bdc->bc", w, self.I)
        if np.any(~np.isfinite(e_act)):
            raise SolverError("reference solver diverged (non-finite energy)")
        self.T = pseudo_temperature(self.bands, e_act, self.T)
        self.Io = equilibrium_intensity(self.bands, self.T)
        self.tau = relaxation_times(self.bands, self.T)

    def run(self, nsteps: int | None = None) -> None:
        for _ in range(nsteps if nsteps is not None else self.scenario.nsteps):
            self.step()

    # ------------------------------------------------------------- inspection
    def intensity_dsl_layout(self) -> np.ndarray:
        """The intensity in the generated solver's (ncomp, ncells) layout
        (components row-major over (direction, band))."""
        return np.transpose(self.I, (1, 0, 2)).reshape(self.model.ncomp, -1)

    def temperature(self) -> np.ndarray:
        return self.T.copy()


__all__ = ["ReferenceBTESolver"]
