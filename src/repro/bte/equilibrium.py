"""Bose-Einstein statistics and the energy <-> temperature relation.

The per-band equilibrium energy density (J/m^3) is

    e_b(T) = hbar * omega_b * n_BE(omega_b, T) * D_b * domega_b

and the *equilibrium intensity* (the BTE's ``Io``) is its isotropic
per-solid-angle share ``Io_b = e_b / (4 pi)``.

The post-step temperature update inverts the nonlinear relation
``sum_b e_b(T) = E`` for the per-cell energy ``E`` obtained by integrating
the intensity over directions and bands — "the relationship between the
non-linear phonon energy distribution and temperature is highly non-linear"
(paper Sec. II-B).  :func:`energy_to_temperature` does this with a
vectorised, safeguarded Newton iteration over all cells simultaneously.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bte import constants as C
from repro.bte.dispersion import BandSet
from repro.util.errors import SolverError


def bose_einstein(omega: np.ndarray, T: np.ndarray | float) -> np.ndarray:
    """Equilibrium occupancy ``1 / (exp(hbar w / kB T) - 1)``."""
    x = C.HBAR * np.asarray(omega) / (C.KB * np.asarray(T, dtype=np.float64))
    return 1.0 / np.expm1(np.clip(x, 1e-12, 700.0))


def _dn_dT(omega: np.ndarray, T: np.ndarray) -> np.ndarray:
    """d n_BE / d T (used by the Newton step)."""
    x = C.HBAR * np.asarray(omega) / (C.KB * T)
    x = np.clip(x, 1e-12, 350.0)
    ex = np.exp(x)
    return (x / T) * ex / np.square(ex - 1.0)


def band_energy_density(bands: BandSet, T: np.ndarray | float) -> np.ndarray:
    """``e_b(T)``: per-band equilibrium energy density.

    ``T`` scalar -> ``(nbands,)``; ``T`` of shape ``(ncells,)`` ->
    ``(nbands, ncells)``.
    """
    T = np.asarray(T, dtype=np.float64)
    scalar = T.ndim == 0
    Tc = T.reshape(1, -1)
    omega = bands.omega[:, None]
    e = (
        C.HBAR
        * omega
        * bose_einstein(omega, Tc)
        * bands.dos[:, None]
        * bands.domega[:, None]
    )
    return e[:, 0] if scalar else e


def equilibrium_intensity(bands: BandSet, T: np.ndarray | float) -> np.ndarray:
    """``Io_b(T) = e_b(T) / (4 pi)`` — the DSL variable ``Io``."""
    return band_energy_density(bands, T) / (4.0 * math.pi)


def total_energy_density(bands: BandSet, T: np.ndarray | float) -> np.ndarray | float:
    """``E(T) = sum_b e_b(T)`` (the function Newton inverts)."""
    e = band_energy_density(bands, T)
    total = e.sum(axis=0)
    return float(total[()]) if np.ndim(T) == 0 else total


def _dE_dT(bands: BandSet, T: np.ndarray) -> np.ndarray:
    """Volumetric heat capacity ``dE/dT`` at ``T`` (per cell)."""
    Tc = T.reshape(1, -1)
    omega = bands.omega[:, None]
    de = (
        C.HBAR
        * omega
        * _dn_dT(omega, Tc)
        * bands.dos[:, None]
        * bands.domega[:, None]
    )
    return de.sum(axis=0)


def _band_heat_capacity(bands: BandSet, T: np.ndarray) -> np.ndarray:
    """Per-band ``d e_b / d T`` at ``T``, shape (nbands, ncells)."""
    Tc = T.reshape(1, -1)
    omega = bands.omega[:, None]
    return (
        C.HBAR
        * omega
        * _dn_dT(omega, Tc)
        * bands.dos[:, None]
        * bands.domega[:, None]
    )


def pseudo_temperature(
    bands: BandSet,
    band_energy: np.ndarray,
    T_guess: np.ndarray | float = 300.0,
    tol: float = 1e-10,
    max_iter: int = 60,
    T_floor: float = 1.0,
    T_ceil: float = 5000.0,
) -> np.ndarray:
    """The energy-conserving SMRT closure temperature.

    Solves, per cell, the 1/tau-weighted balance used by the non-gray BTE
    literature the paper builds on (refs [4], [14]):

        sum_b [ e_b(T) - e_b^actual ] / tau_b(T)  =  0

    so that the net relaxation source ``sum_b (4 pi Io_b - e_b)/tau_b``
    vanishes identically and the scattering step conserves energy exactly.
    ``band_energy`` is the direction-integrated actual energy per band,
    shape ``(nbands, ncells)``.

    Quasi-Newton iteration (the weak dtau/dT dependence is dropped from the
    Jacobian) with safeguarded steps; converges in 2-4 iterations from the
    previous step's temperature.
    """
    from repro.bte.scattering import relaxation_times  # local: no cycle at import

    band_energy = np.asarray(band_energy, dtype=np.float64)
    if band_energy.ndim != 2 or band_energy.shape[0] != bands.nbands:
        raise SolverError(
            f"band_energy must be (nbands, ncells); got {band_energy.shape}"
        )
    ncells = band_energy.shape[1]
    if np.ndim(T_guess) == 0:
        T = np.full(ncells, float(T_guess))
    else:
        T = np.array(T_guess, dtype=np.float64, copy=True)
    T = np.clip(T, T_floor, T_ceil)

    # converged cells are frozen so a cell's result does not depend on
    # which other cells share its batch — required for the distributed
    # solvers to agree bitwise with the serial one
    active = np.ones(ncells, dtype=bool)
    for _ in range(max_iter):
        tau = relaxation_times(bands, T)  # (nbands, ncells)
        e_T = band_energy_density(bands, T)
        resid = ((e_T - band_energy) / tau).sum(axis=0)
        scale = (np.abs(band_energy) / tau).sum(axis=0)
        active &= np.abs(resid) > tol * np.maximum(scale, 1e-300)
        if not active.any():
            return T
        slope = (_band_heat_capacity(bands, T) / tau).sum(axis=0)
        step = np.clip(resid / np.maximum(slope, 1e-300), -100.0, 100.0)
        T = np.where(active, np.clip(T - step, T_floor, T_ceil), T)

    tau = relaxation_times(bands, T)
    resid = ((band_energy_density(bands, T) - band_energy) / tau).sum(axis=0)
    scale = (np.abs(band_energy) / tau).sum(axis=0)
    worst = float(np.max(np.abs(resid) / np.maximum(scale, 1e-300)))
    raise SolverError(
        f"pseudo-temperature iteration did not converge (worst residual {worst:.2e})"
    )


def energy_to_temperature(
    bands: BandSet,
    energy: np.ndarray,
    T_guess: np.ndarray | float = 300.0,
    tol: float = 1e-10,
    max_iter: int = 50,
    T_floor: float = 1.0,
    T_ceil: float = 5000.0,
) -> np.ndarray:
    """Invert ``E(T) = energy`` per cell (vectorised safeguarded Newton).

    Converges in 2-4 iterations from the previous step's temperature (the
    solver always passes that as ``T_guess``), relative tolerance ``tol``
    on the energy residual.
    """
    energy = np.asarray(energy, dtype=np.float64)
    if np.any(energy <= 0):
        raise SolverError("non-positive phonon energy density in temperature solve")
    T = np.full_like(energy, float(np.mean(T_guess))) if np.ndim(T_guess) == 0 else (
        np.array(T_guess, dtype=np.float64, copy=True)
    )
    T = np.clip(T, T_floor, T_ceil)
    scale = np.abs(energy)
    active = np.ones(energy.shape, dtype=bool)
    for _ in range(max_iter):
        resid = total_energy_density(bands, T) - energy
        active &= np.abs(resid) > tol * scale
        if not active.any():
            return T
        slope = _dE_dT(bands, T)
        # safeguard: cap the Newton step to keep T physical; frozen once
        # converged (batch-independent results)
        step = np.clip(resid / np.maximum(slope, 1e-300), -100.0, 100.0)
        T = np.where(active, np.clip(T - step, T_floor, T_ceil), T)
    resid = total_energy_density(bands, T) - energy
    worst = float(np.max(np.abs(resid) / scale))
    raise SolverError(
        f"temperature inversion did not converge (worst residual {worst:.2e})"
    )


__all__ = [
    "bose_einstein",
    "band_energy_density",
    "equilibrium_intensity",
    "total_energy_density",
    "energy_to_temperature",
]
