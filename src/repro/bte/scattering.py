"""Phonon relaxation times (single-mode relaxation-time approximation).

Matthiessen's rule over the standard silicon channels (constants in
:mod:`repro.bte.constants`, after Terris et al. as used by the paper's
reference solver [14]):

* impurity scattering  ``1/tau_i  = A * omega^4``  (all branches);
* LA normal+Umklapp    ``1/tau_NL = B_L * omega^2 * T^3``;
* TA normal            ``1/tau_NT = B_TN * omega * T^4``     (omega < omega_12);
* TA Umklapp           ``1/tau_UT = B_TU * omega^2 / sinh(hbar*omega/(kB*T))``
  (omega >= omega_12).

The rates are temperature dependent, which is why the BTE must refresh
``tau`` (the ``beta`` variable of the input deck) from the new temperature
field after every step — the coupling that forces the paper's CPU post-step.
"""

from __future__ import annotations

import numpy as np

from repro.bte import constants as C
from repro.bte.dispersion import BandSet


def impurity_rate(omega: np.ndarray) -> np.ndarray:
    """Impurity (Rayleigh) scattering rate, 1/s."""
    return C.A_IMP * omega**4


def la_phonon_rate(omega: np.ndarray, T: np.ndarray | float) -> np.ndarray:
    """Combined normal+Umklapp rate for the LA branch."""
    return C.B_L * omega**2 * np.asarray(T, dtype=np.float64) ** 3


def ta_phonon_rate(omega: np.ndarray, T: np.ndarray | float) -> np.ndarray:
    """Normal/Umklapp rate for the TA branch (piecewise in frequency)."""
    omega = np.asarray(omega, dtype=np.float64)
    T = np.asarray(T, dtype=np.float64)
    normal = C.B_TN * omega * T**4
    x = C.HBAR * omega / (C.KB * np.maximum(T, 1.0))
    umklapp = C.B_TU * omega**2 / np.sinh(np.clip(x, 1e-12, 50.0))
    return np.where(omega < C.OMEGA_12, normal, umklapp)


def relaxation_times(bands: BandSet, T: np.ndarray | float) -> np.ndarray:
    """Per-band relaxation time ``tau`` at temperature ``T``.

    ``T`` is a scalar or an ``(ncells,)`` array; the result has shape
    ``(nbands,)`` or ``(nbands, ncells)`` accordingly.
    """
    T = np.asarray(T, dtype=np.float64)
    scalar = T.ndim == 0
    Tc = T.reshape(1, -1)  # (1, ncells)
    omega = bands.omega[:, None]  # (nbands, 1)
    rate = impurity_rate(omega) * np.ones_like(Tc)
    is_la = np.array([b == "LA" for b in bands.branch])[:, None]
    rate = rate + np.where(
        is_la,
        la_phonon_rate(omega, Tc),
        ta_phonon_rate(omega, Tc),
    )
    tau = 1.0 / rate
    return tau[:, 0] if scalar else tau


__all__ = ["impurity_rate", "la_phonon_rate", "ta_phonon_rate", "relaxation_times"]
