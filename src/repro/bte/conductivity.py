"""Effective thermal conductivity extraction from BTE slab simulations.

The paper's reference [15] (Saurav & Mazumder 2023) uses exactly this kind
of BTE simulation to extract thermal conductivity; here we provide the
canonical cross-plane film experiment: a slab of thickness ``L`` between
two isothermal walls is run to (quasi-)steady state, and

    k_eff = q * L / (T1 - T2)

is read off the computed heat flux.  Sweeping the film thickness maps the
classical *size effect*: ``k_eff`` falls from the bulk value toward the
ballistic (Casimir) limit as the Knudsen number ``Kn = mfp / L`` grows —
the quantitative form of the paper's introduction ("continuum equations
such as Fourier's law ... are inadequate").

For the gray model the result can be compared against Majumdar's EPRT
interpolation ``k_eff / k_bulk = 1 / (1 + 4 Kn / 3)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bte.equilibrium import _band_heat_capacity
from repro.bte.model import BTEModel
from repro.bte.problem import BTEScenario, build_bte_problem
from repro.bte.scattering import relaxation_times
from repro.util.errors import SolverError


def bulk_conductivity(model: BTEModel, T: float) -> float:
    """Kinetic-theory bulk conductivity ``k = sum_b C_b vg_b mfp_b / 3``."""
    C = _band_heat_capacity(model.bands, np.array([float(T)]))[:, 0]
    tau = relaxation_times(model.bands, float(T))
    return float(np.sum(C * model.bands.vg**2 * tau) / 3.0)


def mean_free_path(model: BTEModel, T: float) -> float:
    """Heat-capacity-weighted gray mean free path at temperature ``T``."""
    C = _band_heat_capacity(model.bands, np.array([float(T)]))[:, 0]
    tau = relaxation_times(model.bands, float(T))
    return float(np.sum(C * model.bands.vg * tau) / np.sum(C))


def majumdar_eprt(knudsen: float | np.ndarray) -> float | np.ndarray:
    """Majumdar's EPRT size-effect interpolation ``1 / (1 + 4 Kn / 3)``."""
    return 1.0 / (1.0 + 4.0 * np.asarray(knudsen) / 3.0)


@dataclass
class ConductivityResult:
    """Outcome of one film experiment."""

    thickness: float
    knudsen: float
    k_eff: float
    k_bulk: float
    flux: float
    steps_run: int

    @property
    def suppression(self) -> float:
        """``k_eff / k_bulk`` — the size-effect ratio."""
        return self.k_eff / self.k_bulk


def effective_conductivity(
    model: BTEModel,
    thickness: float,
    T_hot: float,
    T_cold: float,
    nx: int | None = None,
    max_steps: int = 60000,
    check_every: int = 100,
    steady_tol: float = 0.02,
) -> ConductivityResult:
    """Run the cross-plane film experiment and extract ``k_eff``.

    The slab spans ``x in [0, thickness]`` with the hot wall at ``x = 0``.
    Steadiness is judged by the *physical* steady-state property: at steady
    state the heat flux is uniform across the slab, so the run stops when
    the spread of the column-averaged flux falls below ``steady_tol`` of
    its mean.  ``nx`` defaults to enough cells to keep the cell size well
    below the mean free path (limits the upwind scheme's artificial
    diffusion, which would otherwise inflate ``k_eff`` at small Knudsen
    numbers).

    .. note::
       Intended for ``Kn >~ 1`` (the ballistic/transition regime of the
       paper's devices), where flux uniformity is reached after a handful
       of wall-to-wall flight times.  Deep-diffusive films (``Kn << 1``)
       settle on the diffusive timescale ``L^2 / alpha`` — around 1e6
       explicit steps — and additionally develop a *ballistic flux plateau*
       early on that satisfies the uniformity test; extracting their
       conductivity honestly requires an implicit or accelerated scheme,
       which is outside this reproduction's scope.
    """
    if T_hot <= T_cold:
        raise SolverError("need T_hot > T_cold for a defined conductivity")
    T_mean = 0.5 * (T_hot + T_cold)
    mfp = mean_free_path(model, T_mean)
    if nx is None:
        nx = int(np.clip(8 * thickness / mfp, 16, 96))
    vg_max = float(model.bands.vg.max())
    tau_min = float(relaxation_times(model.bands, T_hot).min())
    h = thickness / nx
    dt = 0.4 * min(h / vg_max, tau_min)

    scenario = BTEScenario(
        name="film",
        nx=nx, ny=2, lx=thickness, ly=thickness / nx * 2,
        ndirs=model.dirs.ndirs,
        n_freq_bands=model.bands.n_freq_bands,
        dt=dt, nsteps=max_steps,
        T0=T_cold, T_hot=T_hot, sigma=1e3,  # uniform hot wall
        cold_regions=(2,), hot_regions=(1,), symmetry_regions=(3, 4),
    )
    problem, _ = build_bte_problem(scenario, model=model)
    solver = problem.generate()
    ny = 2

    flux_prev = None
    steps = 0
    while steps < max_steps:
        solver.run(check_every)
        steps += check_every
        q_cols = model.heat_flux(solver.state.u)[0].reshape(ny, nx).mean(axis=0)
        q = float(q_cols.mean())
        if q > 0:
            spread = float(q_cols.max() - q_cols.min()) / q
            if spread <= steady_tol:
                flux_prev = q
                break
        flux_prev = q
    if flux_prev is None or flux_prev <= 0:
        raise SolverError("film experiment produced no positive heat flux")

    k_bulk = bulk_conductivity(model, T_mean)
    mfp = mean_free_path(model, T_mean)
    k_eff = flux_prev * thickness / (T_hot - T_cold)
    return ConductivityResult(
        thickness=thickness,
        knudsen=mfp / thickness,
        k_eff=k_eff,
        k_bulk=k_bulk,
        flux=flux_prev,
        steps_run=steps,
    )


def size_effect_curve(
    model: BTEModel,
    knudsen_numbers: list[float],
    T_hot: float = 105.0,
    T_cold: float = 95.0,
    **kwargs,
) -> list[ConductivityResult]:
    """Sweep film thicknesses chosen to hit the requested Knudsen numbers."""
    T_mean = 0.5 * (T_hot + T_cold)
    mfp = mean_free_path(model, T_mean)
    return [
        effective_conductivity(model, mfp / kn, T_hot, T_cold, **kwargs)
        for kn in knudsen_numbers
    ]


__all__ = [
    "ConductivityResult",
    "bulk_conductivity",
    "mean_free_path",
    "majumdar_eprt",
    "effective_conductivity",
    "size_effect_curve",
]
