"""Angular discretisation: discrete ordinates and specular reflection.

The paper's 2-D demonstration uses "a set of 20 uniformly distributed
direction vectors".  :func:`uniform_directions_2d` places ``ndirs`` unit
vectors at angles offset by half a spacing (so no direction is exactly
parallel to an axis-aligned wall, which would make ``s . n = 0`` faces
ambiguous for upwinding), with equal solid-angle weights normalised to
``4*pi`` (the axisymmetric convention: each in-plane ordinate represents a
slice of the full sphere).

:func:`reflection_map` produces, for a wall normal, the permutation
``d -> r`` with ``s_r = s_d - 2 (s_d . n) n`` that the symmetry boundary of
Eq. (6) needs.  With half-offset uniform 2-D sets and axis-aligned walls the
reflected vector always lands exactly on another ordinate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class DirectionSet:
    """Discrete ordinates: unit vectors and quadrature weights."""

    vectors: np.ndarray  # (ndirs, dim) unit vectors
    weights: np.ndarray  # (ndirs,), sums to 4*pi

    @property
    def ndirs(self) -> int:
        return len(self.weights)

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    @property
    def sx(self) -> np.ndarray:
        return self.vectors[:, 0]

    @property
    def sy(self) -> np.ndarray:
        return self.vectors[:, 1]

    @property
    def sz(self) -> np.ndarray:
        if self.dim < 3:
            raise ConfigError("2-D direction sets have no z component")
        return self.vectors[:, 2]

    def validate(self) -> None:
        norms = np.linalg.norm(self.vectors, axis=1)
        if np.any(np.abs(norms - 1.0) > 1e-12):
            raise ConfigError("direction vectors must be unit length")
        if abs(self.weights.sum() - 4.0 * math.pi) > 1e-9:
            raise ConfigError("direction weights must sum to 4*pi")
        # first moment of an isotropic set vanishes (no spurious drift)
        moment = (self.vectors * self.weights[:, None]).sum(axis=0)
        if np.any(np.abs(moment) > 1e-9):
            raise ConfigError("direction set is not balanced (nonzero first moment)")


def uniform_directions_2d(ndirs: int) -> DirectionSet:
    """``ndirs`` uniformly spaced in-plane ordinates (half-offset angles)."""
    if ndirs < 4 or ndirs % 2:
        raise ConfigError(f"ndirs must be an even number >= 4, got {ndirs}")
    angles = 2.0 * math.pi * (np.arange(ndirs) + 0.5) / ndirs
    vectors = np.stack([np.cos(angles), np.sin(angles)], axis=1)
    weights = np.full(ndirs, 4.0 * math.pi / ndirs)
    ds = DirectionSet(vectors=vectors, weights=weights)
    ds.validate()
    return ds


def product_directions_3d(n_azimuthal: int, n_polar: int) -> DirectionSet:
    """3-D product quadrature: ``n_azimuthal x n_polar`` ordinates.

    The discretisation the paper quotes for general 3-D problems ("around
    20 x 20 = 400" directions): azimuthal angles uniform with half-offset,
    polar angles at the midpoints of equal-``cos(theta)`` slabs (so every
    ordinate carries the same solid angle ``4*pi / (n_az * n_pol)`` and the
    set integrates constants and first moments exactly).

    Reflections about the coordinate planes map the set onto itself, so
    axis-aligned symmetry walls work exactly as in 2-D.
    """
    if n_azimuthal < 4 or n_azimuthal % 2:
        raise ConfigError(
            f"n_azimuthal must be an even number >= 4, got {n_azimuthal}"
        )
    if n_polar < 2 or n_polar % 2:
        raise ConfigError(f"n_polar must be an even number >= 2, got {n_polar}")
    phi = 2.0 * math.pi * (np.arange(n_azimuthal) + 0.5) / n_azimuthal
    # equal-measure polar levels: mu = cos(theta) at slab midpoints
    mu = -1.0 + 2.0 * (np.arange(n_polar) + 0.5) / n_polar
    sin_t = np.sqrt(1.0 - mu**2)
    vectors = np.stack(
        [
            np.outer(np.cos(phi), sin_t).ravel(),
            np.outer(np.sin(phi), sin_t).ravel(),
            np.outer(np.ones_like(phi), mu).ravel(),
        ],
        axis=1,
    )
    ndirs = n_azimuthal * n_polar
    weights = np.full(ndirs, 4.0 * math.pi / ndirs)
    ds = DirectionSet(vectors=vectors, weights=weights)
    ds.validate()
    return ds


def reflection_map(directions: DirectionSet, normal: np.ndarray, tol: float = 1e-9) -> np.ndarray:
    """Specular reflection permutation about a wall with outward ``normal``.

    Returns ``r`` with ``directions.vectors[r[d]] == s_d - 2 (s_d.n) n``.
    Raises :class:`ConfigError` if a reflected vector does not coincide with
    an existing ordinate (symmetry walls require a compatible set).
    """
    n = np.asarray(normal, dtype=np.float64)
    n = n / np.linalg.norm(n)
    s = directions.vectors
    reflected = s - 2.0 * (s @ n)[:, None] * n[None, :]
    out = np.empty(directions.ndirs, dtype=np.int64)
    for d in range(directions.ndirs):
        dist = np.linalg.norm(s - reflected[d], axis=1)
        j = int(np.argmin(dist))
        if dist[j] > tol:
            raise ConfigError(
                f"reflection of direction {d} does not land on the ordinate set "
                f"(closest miss {dist[j]:.2e}); use a direction set compatible "
                "with this wall orientation"
            )
        out[d] = j
    # a specular reflection is an involution
    if not np.array_equal(out[out], np.arange(directions.ndirs)):
        raise ConfigError("reflection map is not an involution")
    return out


def component_reflection_map(dir_map: np.ndarray, nbands: int) -> np.ndarray:
    """Lift a direction permutation to the flattened (d, b) component axis
    (row-major over (direction, band), matching
    :class:`repro.fvm.fields.IndexSpace` flattening)."""
    ndirs = len(dir_map)
    comp = np.arange(ndirs * nbands).reshape(ndirs, nbands)
    return comp[dir_map, :].reshape(-1)


__all__ = [
    "DirectionSet",
    "uniform_directions_2d",
    "product_directions_3d",
    "reflection_map",
    "component_reflection_map",
]
