"""Silicon phonon dispersion and the spectral band discretisation.

The frequency axis ``[0, omega_max(LA)]`` is cut into ``n_freq_bands`` equal
bands.  Every band yields an LA "polarised band"; bands whose centre lies
below the TA branch cutoff additionally yield a TA band.  With the paper's
40 frequency bands this gives 40 LA + 15 TA = 55 polarised bands — the
numbers quoted in Sections I and III-A.

For each (band, polarisation):

* the wavevector ``k`` solving ``omega(k) = omega_centre`` (the physical
  root of the quadratic),
* group velocity ``vg = domega/dk = v_s + 2 c k``,
* density of states ``D(omega) = g * k^2 / (2 pi^2 vg)`` (per polarisation,
  degeneracy ``g``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.bte import constants as C
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class Branch:
    """One phonon branch with quadratic dispersion ``omega = vs*k + c*k^2``."""

    name: str
    vs: float
    c: float
    k_max: float
    degeneracy: int

    def omega(self, k: np.ndarray | float) -> np.ndarray | float:
        return self.vs * k + self.c * np.square(k)

    @property
    def omega_max(self) -> float:
        """Maximum frequency on the branch (at the zone edge, since the
        quadratic fits stay monotonic up to ``k_max``)."""
        return float(self.omega(self.k_max))

    def k_of_omega(self, omega: np.ndarray | float) -> np.ndarray:
        """Invert the dispersion (physical root of the quadratic)."""
        omega = np.asarray(omega, dtype=np.float64)
        if np.any(omega < 0) or np.any(omega > self.omega_max * (1 + 1e-12)):
            raise ConfigError(
                f"branch {self.name}: frequency outside [0, {self.omega_max:.4g}]"
            )
        if self.c == 0.0:
            return omega / self.vs
        disc = self.vs**2 + 4.0 * self.c * omega
        disc = np.maximum(disc, 0.0)
        return (-self.vs + np.sqrt(disc)) / (2.0 * self.c)

    def group_velocity(self, k: np.ndarray | float) -> np.ndarray | float:
        return self.vs + 2.0 * self.c * np.asarray(k, dtype=np.float64)

    def dos(self, k: np.ndarray | float, vg: np.ndarray | float) -> np.ndarray:
        """Density of states per unit volume and frequency (isotropic 3-D)."""
        k = np.asarray(k, dtype=np.float64)
        return self.degeneracy * np.square(k) / (2.0 * math.pi**2 * np.asarray(vg))


LA_BRANCH = Branch("LA", C.LA_VS, C.LA_C, C.K_MAX, C.LA_DEGENERACY)
TA_BRANCH = Branch("TA", C.TA_VS, C.TA_C, C.K_MAX, C.TA_DEGENERACY)


@dataclass
class BandSet:
    """The polarised spectral bands of one discretisation.

    All arrays have length ``nbands`` (polarised bands).  ``freq_band[i]``
    maps back to the underlying frequency band (0-based), ``branch[i]`` is
    ``'LA'`` or ``'TA'``.
    """

    n_freq_bands: int
    omega: np.ndarray  # band-centre frequencies (rad/s)
    domega: np.ndarray  # band widths (rad/s)
    vg: np.ndarray  # group velocities (m/s)
    dos: np.ndarray  # density of states at the centre (s/m^3/rad)
    branch: list[str] = field(default_factory=list)
    freq_band: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def nbands(self) -> int:
        return len(self.omega)

    @property
    def n_la(self) -> int:
        return sum(1 for b in self.branch if b == "LA")

    @property
    def n_ta(self) -> int:
        return sum(1 for b in self.branch if b == "TA")

    def __repr__(self) -> str:
        return (
            f"BandSet(n_freq_bands={self.n_freq_bands}, nbands={self.nbands} "
            f"[{self.n_la} LA + {self.n_ta} TA])"
        )


def silicon_bands(n_freq_bands: int = 40) -> BandSet:
    """The paper's spectral discretisation for silicon.

    >>> bands = silicon_bands(40)
    >>> bands.nbands, bands.n_la, bands.n_ta
    (55, 40, 15)
    """
    if n_freq_bands < 1:
        raise ConfigError(f"need at least one frequency band, got {n_freq_bands}")
    omega_max = LA_BRANCH.omega_max
    edges = np.linspace(0.0, omega_max, n_freq_bands + 1)
    centres = 0.5 * (edges[:-1] + edges[1:])
    widths = np.diff(edges)

    omega: list[float] = []
    domega: list[float] = []
    vg: list[float] = []
    dos: list[float] = []
    branch: list[str] = []
    freq_band: list[int] = []

    for br in (LA_BRANCH, TA_BRANCH):
        for i, (w, dw) in enumerate(zip(centres, widths)):
            # a band belongs to a branch only if the branch covers the whole
            # band (partial top bands are dropped) — this reproduces the
            # paper's 40 LA + 15 TA = 55 polarised bands
            if w + 0.5 * dw > br.omega_max:
                continue
            k = float(br.k_of_omega(w))
            v = float(br.group_velocity(k))
            if v <= 0.0:
                continue  # zone-edge TA modes with vanishing velocity carry no flux
            omega.append(float(w))
            domega.append(float(dw))
            vg.append(v)
            dos.append(float(br.dos(k, v)))
            branch.append(br.name)
            freq_band.append(i)

    return BandSet(
        n_freq_bands=n_freq_bands,
        omega=np.array(omega),
        domega=np.array(domega),
        vg=np.array(vg),
        dos=np.array(dos),
        branch=branch,
        freq_band=np.array(freq_band, dtype=np.int64),
    )


__all__ = ["Branch", "BandSet", "silicon_bands", "LA_BRANCH", "TA_BRANCH"]
