r"""LaTeX rendering of expression trees.

The DSL's goal is input "in an intuitive form that closely resembles the
mathematics" (paper Sec. III-B); this renderer closes the loop by printing
any expression — raw input, the expanded form, classified terms — back as
mathematics.  Useful in notebooks and for documentation:

>>> to_latex(parse("(Io[b] - I[d,b]) / beta[b]"))
'\\frac{Io_{b} - I_{d,b}}{\\beta_{b}}'
"""

from __future__ import annotations

from repro.symbolic.expr import (
    Add,
    Call,
    Cmp,
    Conditional,
    Expr,
    FaceDistance,
    FaceNormal,
    Indexed,
    Mul,
    Num,
    Pow,
    Reconstruction,
    SideValue,
    Surface,
    Sym,
    TimeDerivative,
    Vector,
)
from repro.util.errors import DSLError

#: symbol names rendered as Greek letters
_GREEK = {
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    "kappa", "lambda", "mu", "nu", "xi", "rho", "sigma", "tau", "phi",
    "chi", "psi", "omega",
}

_CMP_TEX = {">": ">", "<": "<", ">=": r"\geq", "<=": r"\leq",
            "==": "=", "!=": r"\neq"}


def _name_tex(name: str) -> str:
    base = name
    if base.startswith("_") and base.endswith("_1"):
        base = base[1:-2]
    if base.lower() in _GREEK:
        return "\\" + base.lower()
    if len(base) > 1:
        return rf"\mathrm{{{base}}}"
    return base


def _wrap_sum(expr: Expr, tex: str) -> str:
    return rf"\left({tex}\right)" if isinstance(expr, Add) else tex


def to_latex(expr: Expr) -> str:
    """Render an expression tree as LaTeX source."""
    if isinstance(expr, Num):
        v = expr.value
        return str(v) if v >= 0 else rf"-{abs(v)}"
    if isinstance(expr, Sym):
        return _name_tex(expr.name)
    if isinstance(expr, Indexed):
        idx = ",".join(str(i) for i in expr.indices)
        return rf"{_name_tex(expr.base)}_{{{idx}}}"
    if isinstance(expr, FaceNormal):
        return rf"n_{{{('x', 'y', 'z')[expr.component - 1]}}}"
    if isinstance(expr, FaceDistance):
        return r"\delta_{f}"
    if isinstance(expr, SideValue):
        side = "+" if expr.side == 1 else "-"
        inner = to_latex(expr.expr)
        return rf"{inner}^{{{side}}}"
    if isinstance(expr, Add):
        out = to_latex(expr.args[0])
        for a in expr.args[1:]:
            t = to_latex(a)
            out += t if t.startswith("-") else f" + {t}"
        return out.replace("+ -", "- ")
    if isinstance(expr, Mul):
        # split off a leading -1 and denominator powers
        args = list(expr.args)
        sign = ""
        if args and isinstance(args[0], Num) and args[0].value == -1 and len(args) > 1:
            sign = "-"
            args = args[1:]
        num_parts: list[str] = []
        den_parts: list[str] = []
        for a in args:
            if isinstance(a, Pow) and isinstance(a.exponent, Num) and a.exponent.value < 0:
                flipped = Pow(a.base, Num(-a.exponent.value))
                den_parts.append(to_latex(flipped if a.exponent.value != -1 else a.base))
            else:
                num_parts.append(_wrap_sum(a, to_latex(a)))
        num = r" \, ".join(num_parts) if num_parts else "1"
        if den_parts:
            den = r" \, ".join(den_parts)
            return rf"{sign}\frac{{{num}}}{{{den}}}"
        return sign + num
    if isinstance(expr, Pow):
        base = _wrap_sum(expr.base, to_latex(expr.base))
        if isinstance(expr.base, (Mul, Pow)):
            base = rf"\left({base}\right)"
        return rf"{base}^{{{to_latex(expr.exponent)}}}"
    if isinstance(expr, Cmp):
        return rf"{to_latex(expr.lhs)} {_CMP_TEX[expr.op]} {to_latex(expr.rhs)}"
    if isinstance(expr, Conditional):
        return (
            r"\begin{cases}"
            + rf"{to_latex(expr.then)} & {to_latex(expr.cond)}\\"
            + rf"{to_latex(expr.otherwise)} & \text{{otherwise}}"
            + r"\end{cases}"
        )
    if isinstance(expr, Vector):
        inner = r" \\ ".join(to_latex(c) for c in expr.components)
        return rf"\begin{{pmatrix}}{inner}\end{{pmatrix}}"
    if isinstance(expr, Surface):
        return rf"\frac{{1}}{{V}}\oint_{{\partial V}} {to_latex(expr.expr)} \, dA"
    if isinstance(expr, TimeDerivative):
        return rf"\frac{{\partial}}{{\partial t}}\left({to_latex(expr.expr)}\right)"
    if isinstance(expr, Reconstruction):
        return (
            rf"\mathcal{{R}}_{{\mathrm{{{expr.scheme}}}}}"
            rf"\left({to_latex(expr.velocity_normal)}, {to_latex(expr.quantity)}\right)"
        )
    if isinstance(expr, Call):
        if expr.func == "grad":
            return rf"\nabla {to_latex(expr.args[0])}"
        if expr.func == "dot" and len(expr.args) == 2:
            return rf"{to_latex(expr.args[0])} \cdot {to_latex(expr.args[1])}"
        if expr.func == "abs" and len(expr.args) == 1:
            return rf"\left|{to_latex(expr.args[0])}\right|"
        if expr.func == "sqrt" and len(expr.args) == 1:
            return rf"\sqrt{{{to_latex(expr.args[0])}}}"
        args = ", ".join(to_latex(a) for a in expr.args)
        return rf"\mathrm{{{expr.func}}}\left({args}\right)"
    raise DSLError(f"cannot render node type {type(expr).__name__} as LaTeX")


__all__ = ["to_latex"]
