"""Algebraic simplification and canonicalisation.

:func:`simplify` performs the cleanup the paper's pipeline relies on after
expansion ("expanded, sorted, and simplified"):

* flatten and canonically order n-ary sums/products,
* fold numeric constants,
* drop additive zeros / multiplicative ones, kill products containing zero,
* collect like terms in sums (``2*x + 3*x -> 5*x``),
* collect repeated factors into powers (``x*x -> x^2``),
* elementary power rules (``x^0 -> 1``, ``x^1 -> x``, numeric folding),
* collapse conditionals with identical branches.

Simplification is value-preserving; the property tests in
``tests/symbolic/test_simplify_properties.py`` check
``evaluate(simplify(e)) == evaluate(e)`` on random trees and environments.
"""

from __future__ import annotations

import math
from collections import OrderedDict

from repro.symbolic.expr import (
    Add,
    Call,
    Cmp,
    Conditional,
    Expr,
    Mul,
    Num,
    Pow,
    Surface,
    TimeDerivative,
    as_expr,
)


def simplify(expr: Expr) -> Expr:
    """Return a canonical, simplified version of ``expr``."""
    return _simplify(as_expr(expr))


def _simplify(expr: Expr) -> Expr:
    # simplify children first, then dispatch on the node type
    kids = expr.children
    if kids:
        new_kids = tuple(_simplify(k) for k in kids)
        if new_kids != kids:
            expr = expr.rebuild(*new_kids)

    if isinstance(expr, Add):
        return _simplify_add(expr)
    if isinstance(expr, Mul):
        return _simplify_mul(expr)
    if isinstance(expr, Pow):
        return _simplify_pow(expr)
    if isinstance(expr, Conditional):
        if expr.then == expr.otherwise:
            return expr.then
        return expr
    if isinstance(expr, (Surface, TimeDerivative)):
        # a surface/time-derivative integral of zero is zero
        if isinstance(expr.expr, Num) and expr.expr.value == 0:
            return Num(0)
        return expr
    return expr


def _split_coefficient(term: Expr) -> tuple[float | int, Expr]:
    """Split a term into (numeric coefficient, residual symbolic part)."""
    if isinstance(term, Num):
        return term.value, Num(1)
    if isinstance(term, Mul):
        coeff: float | int = 1
        rest: list[Expr] = []
        for a in term.args:
            if isinstance(a, Num):
                coeff *= a.value
            else:
                rest.append(a)
        if not rest:
            return coeff, Num(1)
        residual = rest[0] if len(rest) == 1 else Mul(*rest)
        return coeff, residual
    return 1, term


def _simplify_add(expr: Add) -> Expr:
    # collect like terms: map residual -> accumulated numeric coefficient
    buckets: "OrderedDict[Expr, float | int]" = OrderedDict()
    const: float | int = 0
    for term in expr.args:  # already flattened by construction
        coeff, residual = _split_coefficient(term)
        if residual == Num(1):
            const += coeff
        else:
            buckets[residual] = buckets.get(residual, 0) + coeff

    terms: list[Expr] = []
    for residual, coeff in buckets.items():
        if coeff == 0:
            continue
        if coeff == 1:
            terms.append(residual)
        else:
            terms.append(_simplify_mul(Mul(Num(coeff), residual)))
    if const != 0 or not terms:
        terms.append(Num(const))

    terms.sort(key=_add_term_key)
    if len(terms) == 1:
        return terms[0]
    return Add(*terms)


def _add_term_key(term: Expr) -> tuple:
    """Sum-term ordering: time-derivative terms first, surface terms last
    (the order the paper's listings use), plain terms in canonical order."""
    from repro.symbolic.expr import preorder  # local import avoids a cycle

    rank = 1
    for node in preorder(term):
        if isinstance(node, TimeDerivative):
            rank = 0
            break
        if isinstance(node, Surface):
            rank = 2
    return (rank, term.sort_key())


def _simplify_mul(expr: Mul) -> Expr:
    coeff: float | int = 1
    # collect repeated bases into powers: map base -> accumulated exponent expr
    powers: "OrderedDict[Expr, Expr]" = OrderedDict()
    for factor in expr.args:
        if isinstance(factor, Num):
            coeff *= factor.value
            continue
        if isinstance(factor, Pow):
            base, exp = factor.base, factor.exponent
        else:
            base, exp = factor, Num(1)
        if base in powers:
            powers[base] = _simplify_add(Add(powers[base], exp))
        else:
            powers[base] = exp

    if coeff == 0:
        return Num(0)

    factors: list[Expr] = []
    for base, exp in powers.items():
        f = _simplify_pow(Pow(base, exp))
        if isinstance(f, Num):
            coeff *= f.value
        else:
            factors.append(f)

    if not factors:
        return Num(coeff)
    factors.sort(key=lambda t: t.sort_key())
    if coeff != 1:
        factors.insert(0, Num(coeff))
    if len(factors) == 1:
        return factors[0]
    return Mul(*factors)


def _simplify_pow(expr: Pow) -> Expr:
    base, exp = expr.base, expr.exponent
    if isinstance(exp, Num):
        if exp.value == 0:
            return Num(1)
        if exp.value == 1:
            return base
        if isinstance(base, Num):
            try:
                val = base.value ** exp.value
            except (OverflowError, ZeroDivisionError):
                return expr  # leave 0^-1 etc. symbolic rather than raising
            if isinstance(val, complex) or (isinstance(val, float) and not math.isfinite(val)):
                return expr
            return Num(val)
        if isinstance(base, Pow) and isinstance(base.exponent, Num):
            # (x^a)^b -> x^(a*b) only when safe: integer outer exponent
            if isinstance(exp.value, int) or float(exp.value).is_integer():
                return _simplify_pow(
                    Pow(base.base, Num(base.exponent.value * exp.value))
                )
    if isinstance(base, Num) and base.value == 1:
        return Num(1)
    return Pow(base, exp)


def expand_products(expr: Expr) -> Expr:
    """Distribute products over sums: ``a*(b+c) -> a*b + a*c`` (recursively).

    The classifier needs a *sum of products* form so each additive term can be
    assigned to exactly one LHS/RHS × volume/surface bucket.  Conditionals and
    calls are treated as opaque factors (their insides are not distributed):
    classification only needs top-level additive structure, and keeping
    conditionals intact preserves the paper's printed form.
    """
    expr = as_expr(expr)
    if isinstance(expr, (Conditional, Call, Cmp)):
        return expr
    kids = expr.children
    if kids:
        new_kids = tuple(expand_products(k) for k in kids)
        if new_kids != kids:
            expr = expr.rebuild(*new_kids)

    if isinstance(expr, Mul):
        # find the first Add factor and distribute over it
        for i, factor in enumerate(expr.args):
            if isinstance(factor, Add):
                others = expr.args[:i] + expr.args[i + 1 :]
                terms = [
                    expand_products(Mul(*(others + (t,)))) if others else t
                    for t in factor.args
                ]
                return Add(*terms)
    return expr


def collect_terms(expr: Expr) -> list[Expr]:
    """Flatten ``expr`` (after expansion) into its list of additive terms."""
    expr = expand_products(simplify(expand_products(expr)))
    if isinstance(expr, Add):
        return list(expr.args)
    if isinstance(expr, Num) and expr.value == 0:
        return []
    return [expr]


def negate(expr: Expr) -> Expr:
    """Convenience: simplified ``-expr``."""
    return simplify(Mul(Num(-1), expr))


def is_zero(expr: Expr) -> bool:
    """True if ``expr`` simplifies to the literal 0."""
    s = simplify(expr)
    return isinstance(s, Num) and s.value == 0


__all__ = [
    "simplify",
    "expand_products",
    "collect_terms",
    "negate",
    "is_zero",
]
