"""The single registry of named numeric functions usable from expressions.

Historically :data:`repro.symbolic.evaluate.DEFAULT_FUNCTIONS` (numpy
callables for the interpreter) and ``repro.codegen.emit._MATH_FUNCS``
(numpy source strings for the code generators) were two hand-maintained
copies of the same table.  This module is now the one source of truth:
both views are derived from it, and the fused vector VM
(:mod:`repro.codegen.vectorvm`) resolves ``call`` instructions against it,
so a function registered here is automatically usable by ``evaluate()``,
by emitted source (when it has a ``code`` string), and by fused programs.

Registered functions must be *pure* and elementwise-broadcasting over
scalars and numpy arrays — the differential tests rely on a function
returning bit-identical values wherever it is evaluated.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.util.errors import DSLError


@dataclass(frozen=True)
class RegisteredFunction:
    """One named function: the callable plus (optionally) its numpy source.

    ``code`` is a Python expression string naming the callable inside a
    generated module's namespace (e.g. ``"np.abs"``).  Functions without a
    ``code`` string cannot appear in emitted source, but still work in the
    interpreter and in fused vector programs, which call ``fn`` directly.
    """

    name: str
    fn: Callable[..., Any]
    code: str | None = None


_BUILTINS: dict[str, RegisteredFunction] = {
    name: RegisteredFunction(name, fn, code)
    for name, fn, code in (
        ("abs", np.abs, "np.abs"),
        ("min", np.minimum, "np.minimum"),
        ("max", np.maximum, "np.maximum"),
        ("sqrt", np.sqrt, "np.sqrt"),
        ("exp", np.exp, "np.exp"),
        ("log", np.log, "np.log"),
        ("sin", np.sin, "np.sin"),
        ("cos", np.cos, "np.cos"),
        ("tanh", np.tanh, "np.tanh"),
    )
}

_REGISTRY: dict[str, RegisteredFunction] = dict(_BUILTINS)


def register_function(name: str, fn: Callable[..., Any], code: str | None = None) -> None:
    """Register (or override) a named function for use in expressions.

    ``fn`` must accept scalars and numpy arrays and broadcast elementwise.
    Pass ``code`` (a source expression such as ``"np.hypot"``) only when the
    callable is importable from a generated module's namespace; without it
    the function is interpreter/fused-VM only.
    """
    if not name or not isinstance(name, str):
        raise DSLError(f"function name must be a non-empty string, got {name!r}")
    if not callable(fn):
        raise DSLError(f"function {name!r} must be callable, got {type(fn).__name__}")
    _REGISTRY[name] = RegisteredFunction(name, fn, code)


def unregister_function(name: str) -> None:
    """Remove a registered function (builtins are restored, not removed)."""
    if name in _BUILTINS:
        _REGISTRY[name] = _BUILTINS[name]
    else:
        _REGISTRY.pop(name, None)


def get_function(name: str) -> RegisteredFunction | None:
    """The registry entry for ``name``, or None."""
    return _REGISTRY.get(name)


def function_callables(extra: Mapping[str, Callable[..., Any]] | None = None) -> dict[str, Callable[..., Any]]:
    """Name → callable snapshot (registry plus per-call ``extra`` overrides)."""
    table = {name: entry.fn for name, entry in _REGISTRY.items()}
    if extra:
        table.update(extra)
    return table


class _LiveView(Mapping):
    """Read-through mapping over the registry, projecting one field.

    Keeps the legacy module-level tables (``DEFAULT_FUNCTIONS``,
    ``_MATH_FUNCS``) live: functions registered after import are visible
    without re-importing.
    """

    def __init__(self, project: Callable[[RegisteredFunction], Any], keep: Callable[[RegisteredFunction], bool]):
        self._project = project
        self._keep = keep

    def _table(self) -> dict[str, Any]:
        return {
            name: self._project(entry)
            for name, entry in _REGISTRY.items()
            if self._keep(entry)
        }

    def __getitem__(self, name: str) -> Any:
        entry = _REGISTRY.get(name)
        if entry is None or not self._keep(entry):
            raise KeyError(name)
        return self._project(entry)

    def __iter__(self) -> Iterator[str]:
        return iter(self._table())

    def __len__(self) -> int:
        return len(self._table())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(self._table())


#: live name → numpy-callable view (the interpreter's function table)
FUNCTION_CALLABLES: Mapping[str, Callable[..., Any]] = _LiveView(
    lambda entry: entry.fn, lambda entry: True
)

#: live name → source-string view (the code generators' function table);
#: only functions with a ``code`` string appear here
FUNCTION_CODES: Mapping[str, str] = _LiveView(
    lambda entry: entry.code, lambda entry: entry.code is not None
)


__all__ = [
    "RegisteredFunction",
    "register_function",
    "unregister_function",
    "get_function",
    "function_callables",
    "FUNCTION_CALLABLES",
    "FUNCTION_CODES",
]
