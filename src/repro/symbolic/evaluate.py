"""Numeric evaluation of expression trees.

Used by the property-based tests (simplification must preserve value), by the
interpreted fallback solver, and by the codegen self-checks.  Works with
scalars *and* numpy arrays: every operation maps to elementwise numpy, so an
environment can bind symbols to whole per-cell arrays and a single
:func:`evaluate` call computes the expression for all cells at once.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

import numpy as np

from repro.symbolic.expr import (
    Add,
    Call,
    Cmp,
    Conditional,
    Expr,
    FaceDistance,
    FaceNormal,
    Indexed,
    Mul,
    Num,
    Pow,
    SideValue,
    Surface,
    Sym,
    TimeDerivative,
    Vector,
)
from repro.symbolic.functions import FUNCTION_CALLABLES, function_callables
from repro.util.errors import DSLError

#: Callables usable from expressions by default — a live view of the unified
#: :mod:`repro.symbolic.functions` registry, so functions registered there
#: (or via the DSL) are immediately evaluatable.  Per-call overrides still
#: arrive through the ``functions`` argument.
DEFAULT_FUNCTIONS: Mapping[str, Callable[..., Any]] = FUNCTION_CALLABLES

_CMP_FUNCS: dict[str, Callable[[Any, Any], Any]] = {
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def evaluate(
    expr: Expr,
    env: Mapping[str, Any] | Callable[[Expr], Any],
    functions: Mapping[str, Callable[..., Any]] | None = None,
) -> Any:
    """Evaluate ``expr`` numerically.

    Parameters
    ----------
    expr:
        The expression tree.
    env:
        Either a mapping from *symbol/indexed string form* to value
        (``{"x": 2.0, "I[d,b]": arr}``) or a callable receiving the leaf node
        (:class:`Sym`, :class:`Indexed`, :class:`FaceNormal`,
        :class:`SideValue`) and returning its value.  The string form keys
        use ``str(node)``.
    functions:
        Extra named functions for :class:`Call` nodes (overrides defaults).

    Raises
    ------
    DSLError
        If a leaf or function is unbound.
    """
    funcs = function_callables(functions)

    if callable(env) and not isinstance(env, Mapping):
        lookup = env
    else:
        table: Mapping[str, Any] = env  # type: ignore[assignment]

        def lookup(node: Expr) -> Any:
            key = str(node)
            if key not in table:
                raise DSLError(f"unbound symbol {key!r} during evaluation")
            return table[key]

    return _eval(expr, lookup, funcs)


def _eval(expr: Expr, lookup: Callable[[Expr], Any], funcs: Mapping[str, Callable[..., Any]]) -> Any:
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, (Sym, Indexed, FaceNormal, FaceDistance, SideValue)):
        return lookup(expr)
    if isinstance(expr, Add):
        total = _eval(expr.args[0], lookup, funcs)
        for a in expr.args[1:]:
            total = total + _eval(a, lookup, funcs)
        return total
    if isinstance(expr, Mul):
        prod = _eval(expr.args[0], lookup, funcs)
        for a in expr.args[1:]:
            prod = prod * _eval(a, lookup, funcs)
        return prod
    if isinstance(expr, Pow):
        base = _eval(expr.base, lookup, funcs)
        exponent = _eval(expr.exponent, lookup, funcs)
        # integer negative powers on array inputs: use true division to avoid
        # numpy integer-power errors
        if np.isscalar(exponent) and exponent == -1:
            return 1.0 / base
        return base ** exponent
    if isinstance(expr, Cmp):
        return _CMP_FUNCS[expr.op](_eval(expr.lhs, lookup, funcs), _eval(expr.rhs, lookup, funcs))
    if isinstance(expr, Conditional):
        cond = _eval(expr.cond, lookup, funcs)
        then = _eval(expr.then, lookup, funcs)
        other = _eval(expr.otherwise, lookup, funcs)
        return np.where(cond, then, other) if isinstance(cond, np.ndarray) else (then if cond else other)
    if isinstance(expr, Call):
        fn = funcs.get(expr.func)
        if fn is None:
            raise DSLError(
                f"no numeric implementation for function {expr.func!r}; "
                "register it via the `functions` argument"
            )
        return fn(*[_eval(a, lookup, funcs) for a in expr.args])
    if isinstance(expr, Vector):
        return np.array([_eval(c, lookup, funcs) for c in expr.components])
    if isinstance(expr, (Surface, TimeDerivative)):
        # markers are transparent for plain evaluation
        return _eval(expr.expr, lookup, funcs)
    raise DSLError(f"cannot evaluate node type {type(expr).__name__}")


__all__ = ["evaluate", "DEFAULT_FUNCTIONS"]
