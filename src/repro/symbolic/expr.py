"""Immutable expression-tree nodes.

Design notes
------------
* Nodes are immutable and structurally hashable, so they can be used as dict
  keys during collection/classification and memoised safely.
* ``Add``/``Mul`` are n-ary and kept flat; construction through the
  ``+ - * /`` operators does **not** simplify (that is
  :func:`repro.symbolic.simplify.simplify`'s job) but does flatten
  same-class children so trees stay shallow.
* Subtraction and division are sugar: ``a - b == Add(a, Mul(-1, b))`` and
  ``a / b == Mul(a, Pow(b, -1))`` — the same canonical form SymEngine uses.
* The lowering markers :class:`Surface`, :class:`TimeDerivative`,
  :class:`SideValue` and :class:`FaceNormal` give the "expanded symbolic
  representation" of the paper its structure (``SURFACE*...``,
  ``TIMEDERIVATIVE*...``, ``CELL1_u_1``, ``NORMAL_1``).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Any

from repro.util.errors import ExprError

_NUMERIC = (int, float)


def as_expr(value: "Expr | int | float") -> "Expr":
    """Coerce a Python number to :class:`Num`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("booleans are not valid expression leaves")
    if isinstance(value, _NUMERIC):
        return Num(value)
    raise TypeError(f"cannot convert {type(value).__name__} to Expr")


class Expr:
    """Base class for all symbolic nodes.

    Subclasses define ``args`` (a tuple of children / payload) and the class
    identity; equality and hashing are structural over
    ``(type, identity_key)``.
    """

    __slots__ = ("_hash",)

    # ---- identity ---------------------------------------------------------
    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[union-attr]

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        h = getattr(self, "_hash", None)
        if h is None:
            h = hash((type(self).__name__, self._key()))
            object.__setattr__(self, "_hash", h)
        return h

    # ---- pickling ----------------------------------------------------------
    # slotted + immutable: the default slot restore goes through the raising
    # ``__setattr__``, so spell out the state protocol (the compilation cache
    # persists IR/classified forms, which are Expr trees)
    def __getstate__(self) -> dict:
        state: dict = {}
        for cls in type(self).__mro__:
            for slot in getattr(cls, "__slots__", ()):
                if slot != "_hash" and hasattr(self, slot):
                    state[slot] = getattr(self, slot)
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # ---- tree protocol ----------------------------------------------------
    @property
    def children(self) -> tuple["Expr", ...]:
        """Sub-expressions (empty for leaves)."""
        return ()

    def rebuild(self, *children: "Expr") -> "Expr":
        """Reconstruct this node with replaced children (same arity)."""
        if children:
            raise TypeError(f"{type(self).__name__} is a leaf; cannot rebuild with children")
        return self

    # ---- ordering (canonical arg sort in Add/Mul) --------------------------
    def sort_key(self) -> tuple:
        """Total order used to canonicalise Add/Mul argument order."""
        return (_CLASS_RANK.get(type(self).__name__, 99), str(self))

    # ---- arithmetic sugar ---------------------------------------------------
    def __add__(self, other: Any) -> "Expr":
        return Add(self, as_expr(other))

    def __radd__(self, other: Any) -> "Expr":
        return Add(as_expr(other), self)

    def __sub__(self, other: Any) -> "Expr":
        return Add(self, Mul(Num(-1), as_expr(other)))

    def __rsub__(self, other: Any) -> "Expr":
        return Add(as_expr(other), Mul(Num(-1), self))

    def __mul__(self, other: Any) -> "Expr":
        return Mul(self, as_expr(other))

    def __rmul__(self, other: Any) -> "Expr":
        return Mul(as_expr(other), self)

    def __truediv__(self, other: Any) -> "Expr":
        return Mul(self, Pow(as_expr(other), Num(-1)))

    def __rtruediv__(self, other: Any) -> "Expr":
        return Mul(as_expr(other), Pow(self, Num(-1)))

    def __pow__(self, other: Any) -> "Expr":
        return Pow(self, as_expr(other))

    def __neg__(self) -> "Expr":
        return Mul(Num(-1), self)

    def __pos__(self) -> "Expr":
        return self

    # comparisons build Cmp nodes (used in conditionals), they do NOT compare
    def __gt__(self, other: Any) -> "Cmp":
        return Cmp(">", self, as_expr(other))

    def __lt__(self, other: Any) -> "Cmp":
        return Cmp("<", self, as_expr(other))

    def __ge__(self, other: Any) -> "Cmp":
        return Cmp(">=", self, as_expr(other))

    def __le__(self, other: Any) -> "Cmp":
        return Cmp("<=", self, as_expr(other))

    def __repr__(self) -> str:
        return str(self)


# Rank drives canonical ordering: numbers first in products, symbols before
# compound nodes, markers last.
_CLASS_RANK = {
    "Num": 0,
    "Sym": 1,
    "FaceNormal": 2,
    "FaceDistance": 2,
    "Indexed": 3,
    "SideValue": 4,
    "Pow": 5,
    "Mul": 6,
    "Add": 7,
    "Call": 8,
    "Cmp": 9,
    "Conditional": 10,
    "Vector": 11,
    "Surface": 12,
    "TimeDerivative": 13,
}


class Num(Expr):
    """Numeric literal (int or float)."""

    __slots__ = ("value",)

    def __init__(self, value: int | float):
        if isinstance(value, bool) or not isinstance(value, _NUMERIC):
            raise TypeError(f"Num expects int/float, got {type(value).__name__}")
        if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
            value = int(value)
        object.__setattr__(self, "value", value)

    def _key(self) -> tuple:
        return (self.value,)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Expr nodes are immutable")

    def sort_key(self) -> tuple:
        return (0, float(self.value))

    def __str__(self) -> str:
        return str(self.value)


class _Leaf(Expr):
    """Shared immutability plumbing for payload-only leaves."""

    __slots__ = ()

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Expr nodes are immutable")


class Sym(_Leaf):
    """A named scalar symbol, e.g. ``dt`` or the flattened ``_u_1``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ExprError("symbol name must be non-empty")
        object.__setattr__(self, "name", name)

    def _key(self) -> tuple:
        return (self.name,)

    def __str__(self) -> str:
        return self.name


class Indexed(_Leaf):
    """Reference to an indexed entity component, e.g. ``I[d,b]``.

    ``base`` is the entity name, ``indices`` a tuple of index labels (strings
    for symbolic index names like ``d``, ints for literal positions).
    """

    __slots__ = ("base", "indices")

    def __init__(self, base: str, indices: tuple[str | int, ...]):
        if not indices:
            raise ExprError(f"Indexed('{base}') needs at least one index")
        for ix in indices:
            if not isinstance(ix, (str, int)) or isinstance(ix, bool):
                raise TypeError(f"index must be str or int, got {ix!r}")
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "indices", tuple(indices))

    def _key(self) -> tuple:
        return (self.base, self.indices)

    def __str__(self) -> str:
        inner = ",".join(str(i) for i in self.indices)
        return f"{self.base}[{inner}]"


class FaceNormal(_Leaf):
    """Component of the outward face normal: prints as ``NORMAL_i``."""

    __slots__ = ("component",)

    def __init__(self, component: int):
        if component < 1 or component > 3:
            raise ExprError("face-normal component must be 1, 2 or 3")
        object.__setattr__(self, "component", int(component))

    def _key(self) -> tuple:
        return (self.component,)

    def __str__(self) -> str:
        return f"NORMAL_{self.component}"


class FaceDistance(_Leaf):
    """Gradient distance across a face: prints as ``FACEDIST``.

    For interior faces this is the owner-to-neighbour centroid distance
    projected on the face normal; on boundary faces, the owner-to-face
    distance (ghost values live *at the face* under the Dirichlet
    face-value convention).  Used by two-point diffusive flux
    reconstructions (the ``diffuse`` operator).
    """

    __slots__ = ()

    def __init__(self) -> None:
        pass

    def _key(self) -> tuple:
        return ()

    def __str__(self) -> str:
        return "FACEDIST"


class SideValue(Expr):
    """A quantity evaluated on one side of a face.

    ``side=1`` is the cell that owns the face ("CELL1"), ``side=2`` the
    neighbour across it ("CELL2") — matching the paper's
    ``CELL1_u_1``/``CELL2_u_1`` notation in the expanded form.
    """

    __slots__ = ("expr", "side")

    def __init__(self, expr: Expr, side: int):
        if side not in (1, 2):
            raise ExprError("side must be 1 (owner) or 2 (neighbour)")
        object.__setattr__(self, "expr", as_expr(expr))
        object.__setattr__(self, "side", int(side))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Expr nodes are immutable")

    def _key(self) -> tuple:
        return (self.expr, self.side)

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.expr,)

    def rebuild(self, *children: Expr) -> "SideValue":
        (expr,) = children
        return SideValue(expr, self.side)

    def __str__(self) -> str:
        inner = str(self.expr)
        # flattened component names already start with '_': CELL1_u_1, not CELL1__u_1
        if inner.startswith("_"):
            inner = inner[1:]
        return f"CELL{self.side}_{inner}"


class _Nary(Expr):
    __slots__ = ("args",)

    def __init__(self, *args: Expr | int | float):
        coerced: list[Expr] = []
        for a in args:
            a = as_expr(a)
            # flatten same-class children so trees stay shallow
            if type(a) is type(self):
                coerced.extend(a.args)  # type: ignore[attr-defined]
            else:
                coerced.append(a)
        if len(coerced) < 1:
            raise ExprError(f"{type(self).__name__} needs at least one argument")
        object.__setattr__(self, "args", tuple(coerced))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Expr nodes are immutable")

    def _key(self) -> tuple:
        return (self.args,)

    @property
    def children(self) -> tuple[Expr, ...]:
        return self.args

    def rebuild(self, *children: Expr) -> "Expr":
        return type(self)(*children)


def _needs_parens_in_product(e: Expr) -> bool:
    return isinstance(e, Add) or (isinstance(e, Num) and e.value < 0)


class Add(_Nary):
    """n-ary sum."""

    __slots__ = ()

    def __str__(self) -> str:
        parts: list[str] = []
        for a in self.args:
            s = str(a)
            if parts:
                if s.startswith("-"):
                    parts.append(s)
                else:
                    parts.append(f"+{s}")
            else:
                parts.append(s)
        return "".join(parts)


class Mul(_Nary):
    """n-ary product.  ``Mul(-1, x)`` prints as ``-x``."""

    __slots__ = ()

    def __str__(self) -> str:
        args = list(self.args)
        sign = ""
        if args and isinstance(args[0], Num) and args[0].value == -1 and len(args) > 1:
            sign = "-"
            args = args[1:]
        parts = []
        for a in args:
            s = str(a)
            if _needs_parens_in_product(a):
                s = f"({s})"
            parts.append(s)
        return sign + "*".join(parts)


class Pow(Expr):
    """``base ** exponent``.  Division is ``Pow(x, -1)``."""

    __slots__ = ("base", "exponent")

    def __init__(self, base: Expr | int | float, exponent: Expr | int | float):
        object.__setattr__(self, "base", as_expr(base))
        object.__setattr__(self, "exponent", as_expr(exponent))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Expr nodes are immutable")

    def _key(self) -> tuple:
        return (self.base, self.exponent)

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.base, self.exponent)

    def rebuild(self, *children: Expr) -> "Pow":
        base, exponent = children
        return Pow(base, exponent)

    def __str__(self) -> str:
        b = str(self.base)
        if isinstance(self.base, (Add, Mul, Pow)) or (
            isinstance(self.base, Num) and self.base.value < 0
        ):
            b = f"({b})"
        e = str(self.exponent)
        if isinstance(self.exponent, (Add, Mul, Pow)) or (
            isinstance(self.exponent, Num) and self.exponent.value < 0
        ):
            e = f"({e})"
        return f"{b}^{e}"


class Call(Expr):
    """Application of a named function/operator: ``name(args...)``.

    Used both for registered symbolic operators awaiting expansion
    (``upwind``, ``surface``) and for user callback functions that survive
    all the way into generated code as host-side calls.
    """

    __slots__ = ("func", "args")

    def __init__(self, func: str, *args: Expr | int | float):
        if not func:
            raise ExprError("function name must be non-empty")
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", tuple(as_expr(a) for a in args))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Expr nodes are immutable")

    def _key(self) -> tuple:
        return (self.func, self.args)

    @property
    def children(self) -> tuple[Expr, ...]:
        return self.args

    def rebuild(self, *children: Expr) -> "Call":
        return Call(self.func, *children)

    def __str__(self) -> str:
        return f"{self.func}({','.join(str(a) for a in self.args)})"


_CMP_OPS = (">", "<", ">=", "<=", "==", "!=")


class Cmp(Expr):
    """Binary comparison producing a boolean — only valid inside conditionals."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr | int | float, rhs: Expr | int | float):
        if op not in _CMP_OPS:
            raise ExprError(f"unknown comparison operator {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "lhs", as_expr(lhs))
        object.__setattr__(self, "rhs", as_expr(rhs))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Expr nodes are immutable")

    def _key(self) -> tuple:
        return (self.op, self.lhs, self.rhs)

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def rebuild(self, *children: Expr) -> "Cmp":
        lhs, rhs = children
        return Cmp(self.op, lhs, rhs)

    # Cmp deliberately does not override __bool__ usefully: symbolic
    # comparisons must not be used in Python `if`s.
    def __bool__(self) -> bool:
        raise TypeError("symbolic comparison has no truth value; use Conditional")

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


class Conditional(Expr):
    """``conditional(cond, then, otherwise)`` — the paper's upwind switch."""

    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: Expr, then: Expr | int | float, otherwise: Expr | int | float):
        if not isinstance(cond, Cmp):
            raise TypeError("Conditional condition must be a comparison (Cmp)")
        object.__setattr__(self, "cond", cond)
        object.__setattr__(self, "then", as_expr(then))
        object.__setattr__(self, "otherwise", as_expr(otherwise))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Expr nodes are immutable")

    def _key(self) -> tuple:
        return (self.cond, self.then, self.otherwise)

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.then, self.otherwise)

    def rebuild(self, *children: Expr) -> "Conditional":
        cond, then, otherwise = children
        if not isinstance(cond, Cmp):
            raise TypeError("Conditional condition must remain a comparison")
        return Conditional(cond, then, otherwise)

    def __str__(self) -> str:
        return f"conditional({self.cond}, {self.then}, {self.otherwise})"


class Vector(Expr):
    """Column vector literal ``[a; b; c]`` (used for e.g. ``[Sx[d];Sy[d]]``)."""

    __slots__ = ("components",)

    def __init__(self, *components: Expr | int | float):
        if len(components) < 1:
            raise ExprError("Vector needs at least one component")
        object.__setattr__(self, "components", tuple(as_expr(c) for c in components))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Expr nodes are immutable")

    def _key(self) -> tuple:
        return (self.components,)

    @property
    def children(self) -> tuple[Expr, ...]:
        return self.components

    def rebuild(self, *children: Expr) -> "Vector":
        return Vector(*children)

    def __len__(self) -> int:
        return len(self.components)

    def __str__(self) -> str:
        return "[" + ";".join(str(c) for c in self.components) + "]"


class Reconstruction(Expr):
    """A named higher-order face reconstruction of an advective flux.

    First-order upwinding expands into explicit ``conditional`` trees (the
    paper's listings); higher orders need cell gradients and limiters that
    have no compact closed form, so they stay opaque nodes that the code
    generators lower onto library kernels (``kernels.muscl_flux``).  Prints
    as ``RECONSTRUCT<scheme>(v.n, u)``.
    """

    __slots__ = ("scheme", "velocity_normal", "quantity")

    def __init__(self, scheme: str, velocity_normal: "Expr", quantity: "Expr"):
        if not scheme:
            raise ExprError("reconstruction scheme name must be non-empty")
        object.__setattr__(self, "scheme", scheme)
        object.__setattr__(self, "velocity_normal", as_expr(velocity_normal))
        object.__setattr__(self, "quantity", as_expr(quantity))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Expr nodes are immutable")

    def _key(self) -> tuple:
        return (self.scheme, self.velocity_normal, self.quantity)

    @property
    def children(self) -> tuple["Expr", ...]:
        return (self.velocity_normal, self.quantity)

    def rebuild(self, *children: "Expr") -> "Reconstruction":
        vn, qty = children
        return Reconstruction(self.scheme, vn, qty)

    def __str__(self) -> str:
        return f"RECONSTRUCT{self.scheme}({self.velocity_normal}, {self.quantity})"


class Surface(Expr):
    """Marks a term as a *surface integral* contribution.

    Prints in the paper's expanded style: ``SURFACE*<expr>``.
    """

    __slots__ = ("expr",)

    def __init__(self, expr: Expr | int | float):
        object.__setattr__(self, "expr", as_expr(expr))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Expr nodes are immutable")

    def _key(self) -> tuple:
        return (self.expr,)

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.expr,)

    def rebuild(self, *children: Expr) -> "Surface":
        (expr,) = children
        return Surface(expr)

    def __str__(self) -> str:
        return f"SURFACE*{self.expr}"


class TimeDerivative(Expr):
    """Marks the implicit time-derivative term: prints ``TIMEDERIVATIVE*<expr>``."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr | int | float):
        object.__setattr__(self, "expr", as_expr(expr))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Expr nodes are immutable")

    def _key(self) -> tuple:
        return (self.expr,)

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.expr,)

    def rebuild(self, *children: Expr) -> "TimeDerivative":
        (expr,) = children
        return TimeDerivative(expr)

    def __str__(self) -> str:
        return f"TIMEDERIVATIVE*{self.expr}"


# ---------------------------------------------------------------------------
# tree utilities
# ---------------------------------------------------------------------------

def preorder(expr: Expr) -> Iterator[Expr]:
    """Depth-first pre-order traversal of all nodes (including ``expr``)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def free_symbols(expr: Expr) -> set[str]:
    """Names of all :class:`Sym` leaves in the tree."""
    return {n.name for n in preorder(expr) if isinstance(n, Sym)}


def free_indices(expr: Expr) -> set[str]:
    """Symbolic index labels used by :class:`Indexed` leaves (e.g. {'d','b'})."""
    out: set[str] = set()
    for n in preorder(expr):
        if isinstance(n, Indexed):
            out.update(i for i in n.indices if isinstance(i, str))
    return out


def substitute(expr: Expr, mapping: dict[Expr, Expr] | Callable[[Expr], Expr | None]) -> Expr:
    """Bottom-up substitution.

    ``mapping`` is either a dict of exact-node replacements or a callable
    returning a replacement (or ``None`` to keep the node).  Children are
    rewritten before the node itself is looked up, so rules can match the
    rewritten form.
    """
    if callable(mapping) and not isinstance(mapping, dict):
        lookup = mapping
    else:
        table: dict[Expr, Expr] = dict(mapping)  # type: ignore[arg-type]

        def lookup(node: Expr) -> Expr | None:
            return table.get(node)

    def rec(node: Expr) -> Expr:
        kids = node.children
        if kids:
            new_kids = tuple(rec(k) for k in kids)
            if new_kids != kids:
                node = node.rebuild(*new_kids)
        repl = lookup(node)
        return node if repl is None else repl

    return rec(expr)
