"""Registry of symbolic operators used in DSL input.

The paper highlights that "a powerful feature of the DSL is the ability to
define and import any custom symbolic operator".  That is modelled here: an
:class:`OperatorRegistry` maps names appearing as :class:`Call` nodes in the
parsed input onto expansion functions that rewrite them into core expression
nodes.  The built-ins are the ones the paper uses:

``surface(f)``
    wraps its argument as a surface-integral term;
``upwind(v, u)``
    first-order upwind flux reconstruction, expanded into the
    ``conditional(v.n > 0, (v.n)*CELL1_u, (v.n)*CELL2_u)`` form shown in the
    paper's expanded representation;
``conditional(cond, a, b)``
    explicit two-way switch;
``dot(a, b)``
    vector dot product;
``average(u)``
    central (arithmetic mean) face reconstruction — the order-2 alternative
    to ``upwind``;
``burgers_flux`` style operators can be registered by users the same way.

Unregistered call names are treated as *callback functions* and survive to
code generation as host-side calls (see :mod:`repro.dsl.callbacks`).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.symbolic.expr import (
    Add,
    Call,
    Cmp,
    Conditional,
    Expr,
    FaceDistance,
    FaceNormal,
    Mul,
    Num,
    Pow,
    SideValue,
    Surface,
    Vector,
)
from repro.util.errors import DSLError


@dataclass(frozen=True)
class SymbolicOperator:
    """A named symbolic operator.

    ``arity`` of ``None`` means variadic.  ``expand`` receives the (already
    parsed) argument expressions and returns the rewritten expression.
    """

    name: str
    arity: int | None
    expand: Callable[..., Expr]
    doc: str = ""


class OperatorRegistry:
    """Name → :class:`SymbolicOperator` lookup with user registration."""

    def __init__(self) -> None:
        self._ops: dict[str, SymbolicOperator] = {}

    def register(self, op: SymbolicOperator, replace: bool = False) -> None:
        if op.name in self._ops and not replace:
            raise DSLError(f"operator {op.name!r} is already registered")
        self._ops[op.name] = op

    def define(
        self, name: str, expand: Callable[..., Expr], arity: int | None = None, doc: str = ""
    ) -> SymbolicOperator:
        """Shorthand to build + register a custom operator."""
        op = SymbolicOperator(name=name, arity=arity, expand=expand, doc=doc)
        self.register(op)
        return op

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def names(self) -> list[str]:
        return sorted(self._ops)

    def expand_call(self, call: Call) -> Expr:
        """Expand one registered :class:`Call`; raises if the name is unknown."""
        op = self._ops.get(call.func)
        if op is None:
            raise DSLError(f"unknown symbolic operator {call.func!r}")
        if op.arity is not None and len(call.args) != op.arity:
            raise DSLError(
                f"operator {call.func!r} expects {op.arity} argument(s), "
                f"got {len(call.args)}"
            )
        return op.expand(*call.args)

    def copy(self) -> "OperatorRegistry":
        new = OperatorRegistry()
        new._ops = dict(self._ops)
        return new


# ---------------------------------------------------------------------------
# built-in expansions
# ---------------------------------------------------------------------------

def _vector_components(v: Expr) -> tuple[Expr, ...]:
    if isinstance(v, Vector):
        return v.components
    return (v,)  # scalar velocity == 1-D problem


def dot_with_normal(velocity: Expr) -> Expr:
    """``v . n`` where ``n`` is the outward face normal."""
    comps = _vector_components(velocity)
    terms = [Mul(c, FaceNormal(i + 1)) for i, c in enumerate(comps)]
    return terms[0] if len(terms) == 1 else Add(*terms)


def expand_upwind(velocity: Expr, quantity: Expr) -> Expr:
    """First-order upwind reconstruction of an advective face flux.

    Produces exactly the structure of the paper's expanded representation::

        conditional(v.n > 0, (v.n)*CELL1_u, (v.n)*CELL2_u)

    i.e. when the advection velocity points out of the owning cell the
    upstream value is the owner's (``CELL1``); otherwise it is the
    neighbour's (``CELL2``).
    """
    vn = dot_with_normal(velocity)
    return Conditional(
        Cmp(">", vn, Num(0)),
        Mul(vn, SideValue(quantity, 1)),
        Mul(vn, SideValue(quantity, 2)),
    )


def expand_average(quantity: Expr) -> Expr:
    """Central face reconstruction: mean of the two side values."""
    return Mul(Num(0.5), Add(SideValue(quantity, 1), SideValue(quantity, 2)))


def expand_jump(quantity: Expr) -> Expr:
    """Face jump ``CELL2_u - CELL1_u`` (used e.g. by diffusive fluxes)."""
    return Add(SideValue(quantity, 2), Mul(Num(-1), SideValue(quantity, 1)))


def expand_upwind2(velocity: Expr, quantity: Expr) -> Expr:
    """Second-order MUSCL upwind reconstruction (limited linear).

    Expands to an opaque :class:`~repro.symbolic.expr.Reconstruction` node —
    gradients and limiters have no compact symbolic form — that the code
    generators lower onto ``kernels.muscl_flux``.  Selected by
    ``flux_order(2)``; the paper notes order one is "the default flux
    reconstruction order", implying exactly this knob.
    """
    from repro.symbolic.expr import Reconstruction

    return Reconstruction("muscl", dot_with_normal(velocity), quantity)


def expand_diffuse(diffusivity: Expr, quantity: Expr) -> Expr:
    """Two-point diffusive flux: ``D * (CELL2_u - CELL1_u) / FACEDIST``.

    This is the compact finite-volume approximation of ``D * grad(u) . n``
    on orthogonal meshes; ``surface(diffuse(D, u))`` therefore contributes
    ``div(D grad u)`` to the equation.
    """
    return Mul(
        diffusivity,
        Add(SideValue(quantity, 2), Mul(Num(-1), SideValue(quantity, 1))),
        Pow(FaceDistance(), Num(-1)),
    )


def expand_surface(expr: Expr) -> Expr:
    return Surface(expr)


def expand_conditional(cond: Expr, then: Expr, otherwise: Expr) -> Expr:
    if not isinstance(cond, Cmp):
        raise DSLError("conditional(...) requires a comparison as first argument")
    return Conditional(cond, then, otherwise)


def expand_dot(a: Expr, b: Expr) -> Expr:
    ca, cb = _vector_components(a), _vector_components(b)
    if len(ca) != len(cb):
        raise DSLError(f"dot(): dimension mismatch {len(ca)} vs {len(cb)}")
    terms = [Mul(x, y) for x, y in zip(ca, cb)]
    return terms[0] if len(terms) == 1 else Add(*terms)


def default_registry() -> OperatorRegistry:
    """The registry pre-loaded with the paper's built-in operators."""
    reg = OperatorRegistry()
    reg.register(
        SymbolicOperator(
            "surface", 1, expand_surface, "marks a surface-integral flux term"
        )
    )
    reg.register(
        SymbolicOperator(
            "upwind", 2, expand_upwind, "first-order upwind flux reconstruction"
        )
    )
    reg.register(
        SymbolicOperator(
            "average", 1, expand_average, "central (mean) face reconstruction"
        )
    )
    reg.register(SymbolicOperator("jump", 1, expand_jump, "face jump CELL2 - CELL1"))
    reg.register(
        SymbolicOperator(
            "diffuse", 2, expand_diffuse, "two-point diffusive flux D*grad(u).n"
        )
    )
    reg.register(
        SymbolicOperator(
            "upwind2", 2, expand_upwind2,
            "second-order MUSCL upwind flux reconstruction",
        )
    )
    reg.register(
        SymbolicOperator("conditional", 3, expand_conditional, "two-way switch")
    )
    reg.register(SymbolicOperator("dot", 2, expand_dot, "vector dot product"))
    return reg


__all__ = [
    "SymbolicOperator",
    "OperatorRegistry",
    "default_registry",
    "expand_upwind",
    "expand_average",
    "expand_jump",
    "expand_diffuse",
    "dot_with_normal",
]
