"""Tokenizer and recursive-descent parser for conservation-form input.

Accepts the expression language shown in the paper, e.g.::

    -k*u - surface(upwind(b, u))
    (Io[b] - I[d,b]) / beta[b] + surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))
    isothermal(I, vg, Sx, Sy, b, d, normal, 300)

Grammar (precedence climbing)::

    comparison :=  sum (('>'|'<'|'>='|'<='|'=='|'!=') sum)?
    sum        :=  product (('+'|'-') product)*
    product    :=  unary  (('*'|'/') unary)*
    unary      :=  '-' unary | power
    power      :=  postfix ('^' unary)?
    postfix    :=  atom ('[' indices ']')?
    atom       :=  NUMBER | IDENT call? | '(' comparison ')' | vector
    call       :=  '(' (comparison (',' comparison)*)? ')'
    vector     :=  '[' comparison (';' comparison)+ ']'
    indices    :=  (IDENT|INT) (',' (IDENT|INT))*

Identifiers become :class:`~repro.symbolic.expr.Sym` (or
:class:`~repro.symbolic.expr.Indexed` when subscripted); calls become
:class:`~repro.symbolic.expr.Call` nodes to be resolved by the operator
registry during lowering.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.symbolic.expr import (
    Add,
    Call,
    Cmp,
    Expr,
    Indexed,
    Mul,
    Num,
    Pow,
    Sym,
    Vector,
)
from repro.util.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|==|!=|[-+*/^()\[\],;<>])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind`` in {'number','ident','op','end'}."""

    kind: str
    text: str
    pos: int


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens; raises :class:`ParseError` on junk."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(f"unexpected character {source[pos]!r}", source, pos)
        if m.lastgroup != "ws":
            kind = m.lastgroup
            assert kind is not None
            # normalise the verbose-group names
            if kind not in ("number", "ident", "op"):
                kind = "op"
            tokens.append(Token(kind, m.group(), pos))
        pos = m.end()
    tokens.append(Token("end", "", len(source)))
    return tokens


_CMP_OPS = (">", "<", ">=", "<=", "==", "!=")


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.i = 0

    # -- token stream helpers -------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.i]

    def advance(self) -> Token:
        tok = self.tokens[self.i]
        if tok.kind != "end":
            self.i += 1
        return tok

    def accept(self, text: str) -> bool:
        if self.cur.kind == "op" and self.cur.text == text:
            self.advance()
            return True
        return False

    def expect(self, text: str) -> None:
        if not self.accept(text):
            raise ParseError(
                f"expected {text!r}, found {self.cur.text or 'end of input'!r}",
                self.source,
                self.cur.pos,
            )

    def fail(self, message: str) -> ParseError:
        return ParseError(message, self.source, self.cur.pos)

    # -- grammar ---------------------------------------------------------------
    def parse(self) -> Expr:
        expr = self.comparison()
        if self.cur.kind != "end":
            raise self.fail(f"unexpected trailing input {self.cur.text!r}")
        return expr

    def comparison(self) -> Expr:
        lhs = self.sum()
        if self.cur.kind == "op" and self.cur.text in _CMP_OPS:
            op = self.advance().text
            rhs = self.sum()
            return Cmp(op, lhs, rhs)
        return lhs

    def sum(self) -> Expr:
        expr = self.product()
        while self.cur.kind == "op" and self.cur.text in ("+", "-"):
            op = self.advance().text
            rhs = self.product()
            if op == "+":
                expr = Add(expr, rhs)
            else:
                expr = Add(expr, Mul(Num(-1), rhs))
        return expr

    def product(self) -> Expr:
        expr = self.unary()
        while self.cur.kind == "op" and self.cur.text in ("*", "/"):
            op = self.advance().text
            rhs = self.unary()
            if op == "*":
                expr = Mul(expr, rhs)
            else:
                expr = Mul(expr, Pow(rhs, Num(-1)))
        return expr

    def unary(self) -> Expr:
        if self.accept("-"):
            return Mul(Num(-1), self.unary())
        if self.accept("+"):
            return self.unary()
        return self.power()

    def power(self) -> Expr:
        base = self.postfix()
        if self.accept("^"):
            # right associative, and unary minus binds looser: x^-2 parses
            exponent = self.unary()
            return Pow(base, exponent)
        return base

    def postfix(self) -> Expr:
        expr = self.atom()
        if self.cur.kind == "op" and self.cur.text == "[":
            if not isinstance(expr, Sym):
                raise self.fail("only identifiers can be subscripted")
            self.advance()
            indices = [self.index_label()]
            while self.accept(","):
                indices.append(self.index_label())
            self.expect("]")
            return Indexed(expr.name, tuple(indices))
        return expr

    def index_label(self) -> str | int:
        tok = self.cur
        if tok.kind == "ident":
            self.advance()
            return tok.text
        if tok.kind == "number":
            self.advance()
            if "." in tok.text or "e" in tok.text or "E" in tok.text:
                raise ParseError("index literal must be an integer", self.source, tok.pos)
            return int(tok.text)
        raise self.fail(f"expected an index name or integer, found {tok.text!r}")

    def atom(self) -> Expr:
        tok = self.cur
        if tok.kind == "number":
            self.advance()
            text = tok.text
            if "." in text or "e" in text or "E" in text:
                return Num(float(text))
            return Num(int(text))
        if tok.kind == "ident":
            self.advance()
            if self.cur.kind == "op" and self.cur.text == "(":
                return self.call(tok.text)
            return Sym(tok.text)
        if self.accept("("):
            expr = self.comparison()
            self.expect(")")
            return expr
        if self.cur.kind == "op" and self.cur.text == "[":
            return self.vector()
        raise self.fail(f"unexpected token {tok.text or 'end of input'!r}")

    def call(self, name: str) -> Expr:
        self.expect("(")
        args: list[Expr] = []
        if not (self.cur.kind == "op" and self.cur.text == ")"):
            args.append(self.comparison())
            while self.accept(","):
                args.append(self.comparison())
        self.expect(")")
        return Call(name, *args)

    def vector(self) -> Expr:
        self.expect("[")
        comps = [self.comparison()]
        while self.accept(";"):
            comps.append(self.comparison())
        self.expect("]")
        if len(comps) == 1:
            # a one-element "[x]" literal is just x (no 1-vectors in input)
            return comps[0]
        return Vector(*comps)


def parse(source: str) -> Expr:
    """Parse a conservation-form expression string into an expression tree."""
    if not source or not source.strip():
        raise ParseError("empty expression", source, 0)
    return _Parser(source).parse()


__all__ = ["parse", "tokenize", "Token"]
