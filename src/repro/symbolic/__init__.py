"""Symbolic expression engine (the SymEngine.jl stand-in).

The DSL front end parses conservation-form input strings into the expression
trees defined here; the lowering pipeline (:mod:`repro.ir`) then applies the
time-integration transform and classifies terms, exactly mirroring the stages
shown in Section II of the paper.

Public surface:

* node types: :class:`Num`, :class:`Sym`, :class:`Indexed`, :class:`Add`,
  :class:`Mul`, :class:`Pow`, :class:`Call`, :class:`Cmp`,
  :class:`Conditional`, :class:`Vector`, plus the lowering markers
  :class:`Surface`, :class:`TimeDerivative`, :class:`SideValue`,
  :class:`FaceNormal`;
* :func:`parse` — string → tree;
* :func:`simplify` — canonicalisation + algebraic cleanup;
* :func:`evaluate` — numeric evaluation against an environment;
* the operator registry in :mod:`repro.symbolic.operators` (``upwind`` etc.,
  including user-defined custom operators).
"""

from repro.symbolic.expr import (
    Expr,
    Num,
    Sym,
    Indexed,
    Add,
    Mul,
    Pow,
    Call,
    Cmp,
    Conditional,
    Vector,
    Surface,
    TimeDerivative,
    SideValue,
    FaceNormal,
    FaceDistance,
    Reconstruction,
    as_expr,
    free_symbols,
    free_indices,
    substitute,
    preorder,
)
from repro.symbolic.simplify import simplify, expand_products, collect_terms
from repro.symbolic.parser import parse, tokenize, Token
from repro.symbolic.evaluate import evaluate
from repro.symbolic.latex import to_latex
from repro.symbolic.operators import (
    OperatorRegistry,
    SymbolicOperator,
    default_registry,
)

__all__ = [
    "Expr",
    "Num",
    "Sym",
    "Indexed",
    "Add",
    "Mul",
    "Pow",
    "Call",
    "Cmp",
    "Conditional",
    "Vector",
    "Surface",
    "TimeDerivative",
    "SideValue",
    "FaceNormal",
    "FaceDistance",
    "Reconstruction",
    "as_expr",
    "free_symbols",
    "free_indices",
    "substitute",
    "preorder",
    "simplify",
    "expand_products",
    "collect_terms",
    "parse",
    "tokenize",
    "Token",
    "evaluate",
    "to_latex",
    "OperatorRegistry",
    "SymbolicOperator",
    "default_registry",
]
