"""Workload descriptions and the cost model.

:class:`BTEWorkload` counts the work of one configuration;
:class:`CostModel` converts counted work into seconds on a
:class:`~repro.perfmodel.machines.MachineRates` machine.  The distributed
and GPU targets charge these times onto their virtual clocks while the real
numerics run, so virtual timelines and the analytic scaling evaluators agree
by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perfmodel.machines import MachineRates


@dataclass(frozen=True)
class BTEWorkload:
    """Problem-size counts of one BTE configuration."""

    ncells: int
    ndirs: int
    nbands: int
    nsteps: int = 100
    n_boundary_faces: int = 0

    @property
    def ncomp(self) -> int:
        return self.ndirs * self.nbands

    @property
    def ndof(self) -> int:
        return self.ncomp * self.ncells

    @classmethod
    def paper_configuration(cls) -> "BTEWorkload":
        """The paper's Sec. III-A setup: 120x120 cells, 20 dirs, 55 bands,
        100 steps (~1.6e7 intensity DOF)."""
        return cls(
            ncells=120 * 120,
            ndirs=20,
            nbands=55,
            nsteps=100,
            n_boundary_faces=4 * 120,
        )


@dataclass(frozen=True)
class CostModel:
    """Seconds-per-phase for a workload on a machine."""

    machine: MachineRates

    # ---------------------------------------------------------------- per step
    def intensity_step(self, ncells: int, ncomp: int) -> float:
        """Intensity sweep over ``ncells`` cells x ``ncomp`` components."""
        return self.machine.intensity_per_dof * ncells * ncomp

    def newton_step(self, ncells: int) -> float:
        """Energy -> temperature Newton inversion over ``ncells`` cells."""
        return self.machine.newton_per_cell * ncells

    def iobeta_step(self, ncells: int, nbands: int) -> float:
        """Io/tau refresh over ``ncells`` x ``nbands``."""
        return self.machine.iobeta_per_cell_band * ncells * nbands

    def temperature_step(self, ncells: int, nbands: int) -> float:
        """Full temperature update (Newton + refresh)."""
        return self.newton_step(ncells) + self.iobeta_step(ncells, nbands)

    def boundary_step(self, n_boundary_faces: int, ncomp: int) -> float:
        """CPU boundary-callback work."""
        return self.machine.boundary_per_face_comp * n_boundary_faces * ncomp

    # --------------------------------------------------------------- aggregates
    def serial_step(self, w: BTEWorkload) -> float:
        """One full serial step (the paper's 1-process reference point)."""
        return (
            self.intensity_step(w.ncells, w.ncomp)
            + self.temperature_step(w.ncells, w.nbands)
            + self.boundary_step(w.n_boundary_faces, w.ncomp)
        )

    def serial_total(self, w: BTEWorkload) -> float:
        return w.nsteps * self.serial_step(w)


def predicted_phase_costs(cost: CostModel, *, ncells: float, ncomp: float,
                          nbands: float, n_boundary_faces: float
                          ) -> dict[str, float]:
    """Per-step seconds the model predicts for each *timed phase* of the
    generated run loops, keyed by the timer names the targets use.

    This is the prediction side of the profile's drift column
    (:mod:`repro.obs.profile`): ``solve`` is the intensity sweep,
    ``boundary`` the boundary callbacks, ``post_step`` the temperature
    update that rides the post-step callbacks.
    """
    return {
        "solve": cost.intensity_step(int(ncells), int(ncomp)),
        "boundary": cost.boundary_step(int(n_boundary_faces), int(ncomp)),
        "post_step": cost.temperature_step(int(ncells), int(nbands)),
    }


def bands_per_rank(nbands: int, nranks: int) -> int:
    """Largest band count any rank owns under a contiguous band split —
    the quantity that gates band-parallel scaling (max 55 useful ranks)."""
    return math.ceil(nbands / nranks)


def halo_cells_per_rank(ncells: int, nranks: int, dim: int = 2) -> float:
    """Ghost-layer size estimate for a balanced cell partition.

    For a compact 2-D part of ``ncells/nranks`` cells the interface is
    ~``4 sqrt(n_local)`` cells (perimeter of a square patch); 3-D analog is
    ~``6 n_local^(2/3)``.
    """
    n_local = ncells / nranks
    if nranks == 1:
        return 0.0
    if dim == 2:
        return 4.0 * math.sqrt(n_local)
    if dim == 3:
        return 6.0 * n_local ** (2.0 / 3.0)
    return 2.0


__all__ = [
    "BTEWorkload",
    "CostModel",
    "bands_per_rank",
    "halo_cells_per_rank",
    "predicted_phase_costs",
]
