"""Live calibration of the cost model against this machine.

The default :class:`~repro.perfmodel.machines.MachineRates` encode the
paper's testbed.  For experiments that want virtual times anchored to *this*
machine's NumPy kernels instead, :func:`calibrate_cpu_rate` measures the
real per-DOF cost of the generated intensity sweep on a small configuration
and returns a rescaled rate set.
"""

from __future__ import annotations

import time

import numpy as np

from repro.perfmodel.machines import MachineRates


def calibrate_cpu_rate(
    machine: MachineRates,
    solver=None,
    repeats: int = 3,
) -> tuple[MachineRates, float]:
    """Measure this machine's per-DOF intensity cost and rescale ``machine``.

    ``solver`` is a generated CPU solver (e.g. from a small BTE problem);
    when ``None``, a synthetic upwind sweep of comparable arithmetic is
    timed instead.  Returns ``(scaled_rates, measured_per_dof_seconds)``.
    """
    if solver is not None:
        state = solver.state
        ndof = state.ncomp * state.ncells
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            solver.step()
            best = min(best, time.perf_counter() - t0)
        per_dof = best / ndof
    else:
        ncomp, ncells = 64, 4096
        nfaces = 2 * ncells
        rng = np.random.default_rng(0)
        u1 = rng.random((ncomp, nfaces))
        u2 = rng.random((ncomp, nfaces))
        vn = rng.standard_normal((ncomp, nfaces))
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            flux = np.where(vn > 0, vn * u1, vn * u2)
            _ = u1 + 1e-3 * flux
            best = min(best, time.perf_counter() - t0)
        per_dof = best / (ncomp * ncells)
    factor = per_dof / machine.intensity_per_dof
    return machine.scaled(factor), per_dof


__all__ = ["calibrate_cpu_rate"]
