"""Live calibration of the cost model against this machine.

The default :class:`~repro.perfmodel.machines.MachineRates` encode the
paper's testbed.  For experiments that want virtual times anchored to *this*
machine's NumPy kernels instead, :func:`calibrate_cpu_rate` measures the
real per-DOF cost of the generated intensity sweep on a small configuration
and returns a rescaled rate set.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.perfmodel.machines import MachineRates
from repro.util.errors import ReproError

#: Schema tag of a persisted calibration document.
SCHEMA = "repro.calibration/1"


class CalibrationError(ReproError):
    """Malformed calibration file."""

    default_code = "RPR702"


def calibrate_cpu_rate(
    machine: MachineRates,
    solver=None,
    repeats: int = 3,
) -> tuple[MachineRates, float]:
    """Measure this machine's per-DOF intensity cost and rescale ``machine``.

    ``solver`` is a generated CPU solver (e.g. from a small BTE problem);
    when ``None``, a synthetic upwind sweep of comparable arithmetic is
    timed instead.  Returns ``(scaled_rates, measured_per_dof_seconds)``.
    """
    if solver is not None:
        state = solver.state
        ndof = state.ncomp * state.ncells
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            solver.step()
            best = min(best, time.perf_counter() - t0)
        per_dof = best / ndof
    else:
        ncomp, ncells = 64, 4096
        nfaces = 2 * ncells
        rng = np.random.default_rng(0)
        u1 = rng.random((ncomp, nfaces))
        u2 = rng.random((ncomp, nfaces))
        vn = rng.standard_normal((ncomp, nfaces))
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            flux = np.where(vn > 0, vn * u1, vn * u2)
            _ = u1 + 1e-3 * flux
            best = min(best, time.perf_counter() - t0)
        per_dof = best / (ncomp * ncells)
    factor = per_dof / machine.intensity_per_dof
    return machine.scaled(factor), per_dof


def save_rates(machine: MachineRates, path: str | Path,
               *, measured_per_dof: float | None = None) -> Path:
    """Persist a (calibrated) rate set as a ``repro.calibration/1`` JSON
    document, so later runs reuse the measurement instead of repeating it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": SCHEMA,
        "name": machine.name,
        "rates": {
            "intensity_per_dof": machine.intensity_per_dof,
            "newton_per_cell": machine.newton_per_cell,
            "iobeta_per_cell_band": machine.iobeta_per_cell_band,
            "boundary_per_face_comp": machine.boundary_per_face_comp,
        },
    }
    if measured_per_dof is not None:
        doc["measured_per_dof"] = float(measured_per_dof)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path


def load_rates(path: str | Path) -> MachineRates:
    """Load a rate set saved by :func:`save_rates`.

    Round-trip guarantee (tested): ``load_rates(save_rates(m, p))`` produces
    a machine whose :class:`~repro.perfmodel.costs.CostModel` predictions
    are identical to ``m``'s.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CalibrationError(f"{path}: unreadable calibration: {exc}") from exc
    if not str(doc.get("schema", "")).startswith("repro.calibration/"):
        raise CalibrationError(
            f"{path}: not a calibration file (schema={doc.get('schema')!r})"
        )
    rates = doc.get("rates")
    if not isinstance(rates, dict):
        raise CalibrationError(f"{path}: calibration has no 'rates' mapping")
    try:
        return MachineRates(
            name=str(doc.get("name", "calibrated")),
            intensity_per_dof=float(rates["intensity_per_dof"]),
            newton_per_cell=float(rates["newton_per_cell"]),
            iobeta_per_cell_band=float(rates["iobeta_per_cell_band"]),
            boundary_per_face_comp=float(rates["boundary_per_face_comp"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CalibrationError(f"{path}: incomplete rates: {exc}") from exc


def calibration_from_rows(state, ranks: list[dict]) -> dict | None:
    """Recalibration suggestion from profiled drift rows.

    ``ranks`` is the per-rank row structure of a ``repro.profile/1``
    document under construction (:func:`repro.obs.profile.build_profile`
    calls this when the drift column exceeds tolerance).  The intensity
    sweep dominates the serial cost (Fig. 5), so its measured/predicted
    ratio is the rescale factor; the returned mapping carries everything
    ``save_rates`` needs to persist the corrected machine.
    """
    drift = None
    for entry in ranks:
        for row in entry.get("kernels", []):
            if (row.get("kind") == "phase" and row.get("name") == "solve"
                    and row.get("drift") is not None):
                drift = float(row["drift"])
                break
        if drift is not None:
            break
    if drift is None or drift <= 0:
        return None
    machine = state.problem.extra.get("machine_rates")
    if machine is None:
        from repro.perfmodel.machines import CASCADE_LAKE_FINCH

        machine = CASCADE_LAKE_FINCH
    scaled = machine.scaled(drift)
    ndof = state.ncells * state.ncomp
    measured_per_dof = machine.intensity_per_dof * drift
    return {
        "factor": drift,
        "machine": machine.name,
        "suggested_intensity_per_dof": scaled.intensity_per_dof,
        "measured_per_dof": measured_per_dof,
        "ndof": ndof,
        "note": ("cost-model drift exceeded tolerance; rerun with "
                 "machine_rates scaled by 'factor' or persist via "
                 "'bte profile --calibrate-out'"),
    }


def machine_from_calibration(suggestion: dict, machine: MachineRates
                             ) -> MachineRates:
    """The rescaled machine a drift suggestion describes."""
    try:
        return machine.scaled(float(suggestion["factor"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise CalibrationError(
            f"malformed drift-calibration suggestion: {exc}") from exc


__all__ = [
    "SCHEMA",
    "CalibrationError",
    "calibrate_cpu_rate",
    "calibration_from_rows",
    "load_rates",
    "machine_from_calibration",
    "save_rates",
]
