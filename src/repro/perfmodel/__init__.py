"""Performance models behind the paper's scaling figures.

Pure Python timings cannot stand in for the paper's compiled Julia/Fortran
on a 40-core Cascade Lake cluster, so the scaling results (Figs. 4, 5, 7,
8, 9) are produced by cost models that charge *virtual* seconds:

* :mod:`~repro.perfmodel.machines` — machine descriptions: per-DOF compute
  rates of the generated CPU code, the hand-written Fortran comparator, and
  the simulated A6000 (whose kernel times come from the
  :mod:`repro.gpu` roofline model);
* :mod:`~repro.perfmodel.costs` — :class:`CostModel`: work-counts of each
  BTE phase (intensity sweep, temperature update, boundary handling) mapped
  to seconds on a machine;
* :mod:`~repro.perfmodel.scaling` — strong-scaling evaluators for every
  strategy in the paper (band-parallel, cell-parallel, GPU-hybrid,
  reference Fortran) returning the execution-time series and phase
  breakdowns the benchmark harness prints;
* :mod:`~repro.perfmodel.calibrate` — optional live calibration: measures
  this machine's NumPy kernel rates and rescales the model (documented in
  EXPERIMENTS.md; the defaults are the datasheet-derived rates).

The *same* cost model also drives the virtual clocks of the simulated
communicator runs, so the analytic curves and the executed small-scale SPMD
runs agree by construction — tests assert that.
"""

from repro.perfmodel.machines import (
    MachineRates,
    CASCADE_LAKE_FINCH,
    CASCADE_LAKE_FORTRAN,
    default_gpu_spec,
)
from repro.perfmodel.costs import CostModel, BTEWorkload
from repro.perfmodel.scaling import (
    StrategyTimes,
    band_parallel_times,
    cell_parallel_times,
    gpu_hybrid_times,
    fortran_reference_times,
    strong_scaling_table,
)
from repro.perfmodel.calibrate import calibrate_cpu_rate, load_rates, save_rates

__all__ = [
    "MachineRates",
    "CASCADE_LAKE_FINCH",
    "CASCADE_LAKE_FORTRAN",
    "default_gpu_spec",
    "CostModel",
    "BTEWorkload",
    "StrategyTimes",
    "band_parallel_times",
    "cell_parallel_times",
    "gpu_hybrid_times",
    "fortran_reference_times",
    "strong_scaling_table",
    "calibrate_cpu_rate",
    "load_rates",
    "save_rates",
]
