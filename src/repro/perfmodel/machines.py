"""Machine descriptions: per-phase compute rates.

The rates below are chosen so the *serial* behaviour matches what the paper
reports for its testbed (two-socket Cascade Lake, one rank per core):

* the full 2-D BTE configuration (120x120 cells, 20 directions, 55 bands,
  1.58e7 DOF) costs ~20 s per step serially in the DSL-generated code,
  ~97 % of it in the intensity solve (Fig. 5, small p);
* the hand-written Fortran comparator is ~2x faster serially (Sec. III-E);
* the temperature update splits into a per-cell Newton inversion (which the
  band-parallel strategy executes redundantly on every rank — the paper's
  growing temperature-update share in Fig. 5) and per-(cell, band)
  equilibrium/relaxation refreshes (parallel over bands).

``calibrate_cpu_rate`` can rescale everything from a live measurement on
the current machine; the figures in EXPERIMENTS.md use these defaults so
they are machine-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gpu.spec import A6000, DeviceSpec


@dataclass(frozen=True)
class MachineRates:
    """Per-unit-work compute costs (seconds) of one implementation."""

    name: str
    #: intensity sweep: per DOF (cell x component) per step, including the
    #: face-flux reconstruction and the explicit update
    intensity_per_dof: float
    #: temperature update, part 1: Newton energy inversion, per cell
    newton_per_cell: float
    #: temperature update, part 2: Io/tau refresh, per (cell, band)
    iobeta_per_cell_band: float
    #: boundary handling, per (boundary face, component)
    boundary_per_face_comp: float

    def scaled(self, factor: float) -> "MachineRates":
        """All rates multiplied by ``factor`` (used by live calibration)."""
        return replace(
            self,
            name=f"{self.name} (x{factor:.3g})",
            intensity_per_dof=self.intensity_per_dof * factor,
            newton_per_cell=self.newton_per_cell * factor,
            iobeta_per_cell_band=self.iobeta_per_cell_band * factor,
            boundary_per_face_comp=self.boundary_per_face_comp * factor,
        )


#: DSL-generated code on one Cascade Lake core.
CASCADE_LAKE_FINCH = MachineRates(
    name="CascadeLake/Finch-generated",
    intensity_per_dof=1.22e-6,
    newton_per_cell=8.3e-6,
    iobeta_per_cell_band=6.1e-7,
    boundary_per_face_comp=2.0e-7,
)

#: Hand-written Fortran comparator: ~2x faster serially (paper Sec. III-E).
CASCADE_LAKE_FORTRAN = MachineRates(
    name="CascadeLake/Fortran",
    intensity_per_dof=0.61e-6,
    newton_per_cell=4.2e-6,
    iobeta_per_cell_band=3.0e-7,
    boundary_per_face_comp=1.0e-7,
)


def default_gpu_spec() -> DeviceSpec:
    """The paper's primary accelerator (NVIDIA A6000)."""
    return A6000


__all__ = ["MachineRates", "CASCADE_LAKE_FINCH", "CASCADE_LAKE_FORTRAN", "default_gpu_spec"]
