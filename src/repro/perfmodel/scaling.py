"""Strong-scaling evaluators for every strategy in the paper.

Each evaluator returns a :class:`StrategyTimes` with per-process-count total
execution times and the per-phase split ("solve for intensity",
"temperature update", "communication") that Figures 4, 5, 7, 8 and 9 plot.

Modelling assumptions (derived from the paper's text, see EXPERIMENTS.md):

* **band-parallel** (Sec. III-C): ranks own contiguous band blocks; no halo
  — the only communication is the per-step allreduce of the cell energies.
  The Newton inversion of the temperature update runs redundantly on every
  rank (all bands are needed), which is what makes the temperature share
  grow in Fig. 5; the Io/tau refresh is parallel over owned bands.  Useful
  ranks are capped at the band count (55).
* **cell-parallel**: every phase parallelises over owned cells, at the cost
  of a per-step halo exchange of all ``I[d,b]`` interface values (Fig. 3,
  top).  Scales past 55 ranks — the paper runs it to 320.
* **Fortran reference** (Sec. III-E): ~2x faster serially, but "a slightly
  different parallelization of one part" leaves its temperature update
  serial, so it flattens at higher process counts (Fig. 9).
* **GPU hybrid** (Sec. III-D): the intensity kernel runs on one simulated
  device per rank (time from the :mod:`repro.gpu` roofline model), the
  boundary callbacks run on the CPU *overlapped* with the kernel (Fig. 6),
  the unknown returns to the host each step for the CPU temperature update,
  and the mutated Io/tau go back to the device (PCIe-modelled transfers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.gpu.kernel import Kernel, model_launch
from repro.gpu.spec import DeviceSpec
from repro.perfmodel.costs import (
    BTEWorkload,
    CostModel,
    bands_per_rank,
    halo_cells_per_rank,
)
from repro.perfmodel.machines import (
    CASCADE_LAKE_FINCH,
    CASCADE_LAKE_FORTRAN,
    MachineRates,
    default_gpu_spec,
)
from repro.runtime.netmodel import IB_CLUSTER, NetworkModel
from repro.util.errors import ScalingModelError

#: Effective per-thread work of the flattened BTE interior kernel.  The
#: one-thread-per-DOF flattening recomputes the whole face loop (geometry
#: fetch, direction projections, upwind select, divisions — FP64 divides
#: cost many issue slots on GA102) privately per thread with no
#: shared-memory reuse, so the *executed* work is far above the minimal
#: operation count of the integrand.  These values are calibrated so the roofline
#: model lands on the paper's measured profile (49 % of DP peak, 11 % DRAM,
#: kernel ~0.45 s/step at the full configuration); see EXPERIMENTS.md.
DEFAULT_KERNEL_FLOPS_PER_THREAD = 9400.0
DEFAULT_KERNEL_BYTES_PER_THREAD = 2400.0

PHASE_INTENSITY = "solve for intensity"
PHASE_TEMPERATURE = "temperature update"
PHASE_COMMUNICATION = "communication"


@dataclass
class StrategyTimes:
    """Execution times of one strategy over a process-count sweep."""

    strategy: str
    procs: list[int]
    total: list[float]  # seconds for the full nsteps run
    phases: dict[str, list[float]] = field(default_factory=dict)

    def breakdown_fractions(self, p: int) -> dict[str, float]:
        """Phase shares at process count ``p`` (Figs. 5/8 bars)."""
        i = self.procs.index(p)
        total = sum(series[i] for series in self.phases.values())
        if total <= 0:
            return {k: 0.0 for k in self.phases}
        return {k: series[i] / total for k, series in self.phases.items()}

    def speedup(self, baseline: float | None = None) -> list[float]:
        base = self.total[0] if baseline is None else baseline
        return [base / t for t in self.total]

    def parallel_efficiency(self) -> list[float]:
        """Efficiency vs ideal scaling from the first entry."""
        base = self.total[0] * self.procs[0]
        return [base / (t * p) for t, p in zip(self.total, self.procs)]


def _assemble(strategy, procs, per_step_phases, nsteps) -> StrategyTimes:
    phases: dict[str, list[float]] = {
        PHASE_INTENSITY: [],
        PHASE_TEMPERATURE: [],
        PHASE_COMMUNICATION: [],
    }
    total: list[float] = []
    for parts in per_step_phases:
        for key in phases:
            phases[key].append(parts[key] * nsteps)
        total.append(sum(parts.values()) * nsteps)
    return StrategyTimes(strategy=strategy, procs=list(procs), total=total, phases=phases)


def band_parallel_times(
    workload: BTEWorkload,
    procs: list[int],
    machine: MachineRates = CASCADE_LAKE_FINCH,
    network: NetworkModel = IB_CLUSTER,
) -> StrategyTimes:
    """Band-partitioned CPU strategy (Figs. 4/5, 'parallel bands')."""
    cost = CostModel(machine)
    w = workload
    rows = []
    for p in procs:
        if p > w.nbands:
            raise ScalingModelError(
                f"band partitioning supports at most {w.nbands} ranks (got {p})"
            )
        nb = bands_per_rank(w.nbands, p)
        intensity = cost.intensity_step(w.ncells, w.ndirs * nb)
        boundary = cost.boundary_step(w.n_boundary_faces, w.ndirs * nb)
        temperature = cost.newton_step(w.ncells) + cost.iobeta_step(w.ncells, nb)
        comm = network.allreduce_time(w.ncells * 8, p)
        rows.append(
            {
                PHASE_INTENSITY: intensity + boundary,
                PHASE_TEMPERATURE: temperature,
                PHASE_COMMUNICATION: comm,
            }
        )
    return _assemble("parallel bands", procs, rows, w.nsteps)


def cell_parallel_times(
    workload: BTEWorkload,
    procs: list[int],
    machine: MachineRates = CASCADE_LAKE_FINCH,
    network: NetworkModel = IB_CLUSTER,
    dim: int = 2,
) -> StrategyTimes:
    """Cell-partitioned CPU strategy (Figs. 4/9, 'parallel cells')."""
    cost = CostModel(machine)
    w = workload
    rows = []
    for p in procs:
        if p > w.ncells:
            raise ScalingModelError(f"more ranks ({p}) than cells ({w.ncells})")
        nc = w.ncells / p
        intensity = cost.intensity_step(nc, w.ncomp)
        boundary = cost.boundary_step(w.n_boundary_faces / p, w.ncomp)
        temperature = cost.temperature_step(nc, w.nbands)
        halo = halo_cells_per_rank(w.ncells, p, dim)
        n_neighbors = 0 if p == 1 else min(4 if dim == 2 else 6, p - 1)
        comm = n_neighbors * network.latency_s + network.transfer_time(
            halo * w.ncomp * 8
        ) * (1 if p > 1 else 0)
        rows.append(
            {
                PHASE_INTENSITY: intensity + boundary,
                PHASE_TEMPERATURE: temperature,
                PHASE_COMMUNICATION: comm if p > 1 else 0.0,
            }
        )
    return _assemble("parallel cells", procs, rows, w.nsteps)


def fortran_reference_times(
    workload: BTEWorkload,
    procs: list[int],
    machine: MachineRates = CASCADE_LAKE_FORTRAN,
    network: NetworkModel = IB_CLUSTER,
) -> StrategyTimes:
    """The hand-written band-parallel Fortran comparator (Fig. 9).

    Identical band partitioning, but its temperature update is serial per
    rank ("slightly different parallelization of one part of the
    calculation, which becomes increasingly significant at higher process
    counts").
    """
    cost = CostModel(machine)
    w = workload
    rows = []
    for p in procs:
        if p > w.nbands:
            raise ScalingModelError(
                f"band partitioning supports at most {w.nbands} ranks (got {p})"
            )
        nb = bands_per_rank(w.nbands, p)
        intensity = cost.intensity_step(w.ncells, w.ndirs * nb)
        boundary = cost.boundary_step(w.n_boundary_faces, w.ndirs * nb)
        # the whole temperature update runs serially on every rank
        temperature = cost.temperature_step(w.ncells, w.nbands)
        comm = network.allreduce_time(w.ncells * 8, p)
        rows.append(
            {
                PHASE_INTENSITY: intensity + boundary,
                PHASE_TEMPERATURE: temperature,
                PHASE_COMMUNICATION: comm,
            }
        )
    return _assemble("Fortran", procs, rows, w.nsteps)


def gpu_hybrid_times(
    workload: BTEWorkload,
    devices: list[int],
    machine: MachineRates = CASCADE_LAKE_FINCH,
    gpu: DeviceSpec | None = None,
    network: NetworkModel = IB_CLUSTER,
    kernel_flops_per_thread: float = DEFAULT_KERNEL_FLOPS_PER_THREAD,
    kernel_bytes_per_thread: float = DEFAULT_KERNEL_BYTES_PER_THREAD,
) -> StrategyTimes:
    """Hybrid CPU+GPU strategy, band-partitioned across devices (Fig. 7).

    Each rank drives one device; per step and per rank:

    * interior kernel over ``ncells * ndirs * bands_own`` threads (roofline
      time), overlapped with the CPU boundary-callback work (Fig. 6);
    * D2H of the rank's intensity slice + H2D of the refreshed Io/tau;
    * CPU temperature update (Newton redundant, refresh over owned bands);
    * energy allreduce across ranks.
    """
    spec = gpu or default_gpu_spec()
    cost = CostModel(machine)
    w = workload
    kernel = Kernel(
        "I_interior_step",
        body=lambda: None,
        flops_per_thread=kernel_flops_per_thread,
        bytes_per_thread=kernel_bytes_per_thread,
    )
    rows = []
    for g in devices:
        if g > w.nbands:
            raise ScalingModelError(
                f"band partitioning supports at most {w.nbands} devices (got {g})"
            )
        nb = bands_per_rank(w.nbands, g)
        n_threads = w.ncells * w.ndirs * nb
        record = model_launch(spec, kernel, n_threads)
        boundary = cost.boundary_step(w.n_boundary_faces, w.ndirs * nb)
        # asynchronous overlap: interior kernel || CPU boundary work
        intensity = max(record.duration, boundary)
        temperature = cost.newton_step(w.ncells) + cost.iobeta_step(w.ncells, nb)
        # the paper's step sketch moves the unknown both ways each step
        # ("get u_new from GPU" ... "send u to GPU") plus the refreshed Io/tau
        d2h = spec.pcie_latency_s + (n_threads * 8) / spec.pcie_bw_bytes()
        h2d = spec.pcie_latency_s + (
            (n_threads + 2 * w.ncells * nb) * 8
        ) / spec.pcie_bw_bytes()
        comm = d2h + h2d + network.allreduce_time(w.ncells * 8, g)
        rows.append(
            {
                PHASE_INTENSITY: intensity,
                PHASE_TEMPERATURE: temperature,
                PHASE_COMMUNICATION: comm,
            }
        )
    return _assemble("CPU + GPU", devices, rows, w.nsteps)


def strong_scaling_table(
    workload: BTEWorkload | None = None,
    band_procs: list[int] | None = None,
    cell_procs: list[int] | None = None,
    gpu_devices: list[int] | None = None,
) -> dict[str, StrategyTimes]:
    """All four strategies of Fig. 9 over the paper's sweep."""
    w = workload or BTEWorkload.paper_configuration()
    band = band_procs or [1, 2, 5, 10, 20, 40, 55]
    cells = cell_procs or [1, 2, 5, 10, 20, 40, 80, 160, 320]
    gpus = gpu_devices or [1, 2, 4, 8, 10, 20, 40, 55]
    return {
        "bands": band_parallel_times(w, band),
        "cells": cell_parallel_times(w, cells),
        "GPU": gpu_hybrid_times(w, gpus),
        "Fortran": fortran_reference_times(w, band),
    }


__all__ = [
    "StrategyTimes",
    "band_parallel_times",
    "cell_parallel_times",
    "fortran_reference_times",
    "gpu_hybrid_times",
    "strong_scaling_table",
    "PHASE_INTENSITY",
    "PHASE_TEMPERATURE",
    "PHASE_COMMUNICATION",
]
