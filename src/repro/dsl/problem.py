"""The problem context: configuration + entities + equations.

A :class:`Problem` accumulates everything the paper's input script declares
(domain, solver type, stepper, mesh, entities, boundary conditions, hooks,
loop ordering, GPU flag) and hands a validated description to the code
generators.  :mod:`repro.dsl.api` wraps it in Finch's script-global style.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.dsl.entities import (
    CELL,
    VAR_ARRAY,
    VAR_SCALAR,
    CallbackFunction,
    Coefficient,
    EntityTable,
    Index,
    Variable,
)
from repro.fvm.boundary import BCKind
from repro.mesh.mesh import Mesh
from repro.symbolic.expr import Call, Expr, Num, Sym
from repro.symbolic.operators import OperatorRegistry, default_registry
from repro.symbolic.parser import parse
from repro.util.errors import ConfigError, DSLError


@dataclass
class SolverConfig:
    """Numerical/config choices gathered from the DSL commands."""

    dimension: int = 2
    solver_type: str = "FV"
    stepper: str = "euler"
    dt: float = 0.0
    nsteps: int = 0
    use_gpu: bool = False
    gpu_spec: Any = None  # DeviceSpec; default chosen by the GPU target
    # partitioning: 'none' (serial), 'cells' (mesh partition) or 'bands'
    # (equation partition over a named index)
    partition_strategy: str = "none"
    partition_index: str | None = None  # index name for equation partitioning
    nparts: int = 1
    assembly_order: list[str] = field(default_factory=lambda: ["cells"])
    flux_order: int = 1

    def validate(self) -> None:
        if self.solver_type not in ("FV", "FEM"):
            raise ConfigError(
                f"solver type must be FV or FEM (got {self.solver_type!r})"
            )
        if self.dimension not in (1, 2, 3):
            raise ConfigError(f"dimension must be 1, 2 or 3 (got {self.dimension})")
        if self.dt <= 0 or self.nsteps <= 0:
            raise ConfigError(
                f"set_steps(dt, nsteps) required before solving (dt={self.dt}, "
                f"nsteps={self.nsteps})"
            )
        if self.partition_strategy not in ("none", "cells", "bands"):
            raise ConfigError(
                f"unknown partition strategy {self.partition_strategy!r}"
            )
        if self.partition_strategy == "bands" and not self.partition_index:
            raise ConfigError("band partitioning needs the index to split over")
        if self.nparts < 1:
            raise ConfigError(f"nparts must be >= 1 (got {self.nparts})")


@dataclass
class BoundarySpec:
    """One ``boundary(var, region, kind, spec)`` declaration (pre-lowering)."""

    variable: str
    region: int
    kind: BCKind
    # exactly one of the following is used, depending on kind
    value: float | np.ndarray | None = None
    call: Call | None = None  # parsed callback invocation string
    reflection_map: np.ndarray | None = None
    python_callback: Callable | None = None


@dataclass
class EquationSpec:
    """One ``conservation_form(var, input)`` declaration."""

    variable: str
    source: str
    parsed: Expr


class Problem:
    """Mutable DSL context for one simulation setup."""

    def __init__(self, name: str = "problem"):
        self.name = name
        self.config = SolverConfig()
        self.entities = EntityTable()
        self.operators: OperatorRegistry = default_registry()
        self.mesh: Mesh | None = None
        self.equation: EquationSpec | None = None
        self.equation_kind: str = "conservation"
        self.boundaries: list[BoundarySpec] = []
        self.initial_values: dict[str, Any] = {}
        self.pre_step_callbacks: list[CallbackFunction] = []
        self.post_step_callbacks: list[CallbackFunction] = []
        self.extra: dict[str, Any] = {}  # user data passed to callbacks

    # ------------------------------------------------------------ configuration
    def set_domain(self, dimension: int) -> None:
        self.config.dimension = int(dimension)

    def set_solver_type(self, solver_type: str) -> None:
        self.config.solver_type = solver_type

    def set_stepper(self, name: str) -> None:
        self.config.stepper = name

    def set_steps(self, dt: float, nsteps: int) -> None:
        if dt <= 0:
            raise ConfigError(f"dt must be positive (got {dt})")
        if nsteps < 1:
            raise ConfigError(f"nsteps must be >= 1 (got {nsteps})")
        self.config.dt = float(dt)
        self.config.nsteps = int(nsteps)

    def enable_gpu(self, spec: Any = None) -> None:
        """The ``useCUDA()`` analogue: switch generation to the hybrid target."""
        self.config.use_gpu = True
        if spec is not None:
            self.config.gpu_spec = spec

    def set_partitioning(
        self, strategy: str, nparts: int = 1, index: str | Index | None = None
    ) -> None:
        self.config.partition_strategy = strategy
        self.config.nparts = int(nparts)
        self.config.partition_index = index.name if isinstance(index, Index) else index

    def set_flux_order(self, order: int) -> None:
        """Flux-reconstruction order for ``upwind`` (paper: order one is
        "the default flux reconstruction order").

        Order 1 is the paper's conditional upwinding; order 2 swaps the
        ``upwind`` operator for the limited-linear MUSCL reconstruction
        (CPU targets only in this reproduction).
        """
        from repro.symbolic.operators import SymbolicOperator, expand_upwind, expand_upwind2

        if order not in (1, 2):
            raise ConfigError(f"flux reconstruction order must be 1 or 2, got {order}")
        expand = expand_upwind if order == 1 else expand_upwind2
        self.operators.register(
            SymbolicOperator("upwind", 2, expand,
                             f"order-{order} upwind flux reconstruction"),
            replace=True,
        )
        self.config.flux_order = order

    def set_assembly_loops(self, order: Sequence[str | Index]) -> None:
        """``assemblyLoops([band, "cells", direction])`` — loop-nest order.

        Entries are index entities/names plus the literal ``"cells"`` (the
        paper also spells it ``"elements"``).
        """
        names: list[str] = []
        for item in order:
            if isinstance(item, Index):
                names.append(item.name)
            elif item in ("cells", "elements"):
                names.append("cells")
            else:
                if self.entities.kind_of(str(item)) != "index":
                    raise DSLError(f"assembly_loops: unknown loop {item!r}")
                names.append(str(item))
        if "cells" not in names:
            raise DSLError("assembly_loops must include the cell loop ('cells')")
        if len(set(names)) != len(names):
            raise DSLError(f"assembly_loops: duplicate entries in {names}")
        self.config.assembly_order = names

    def set_mesh(self, mesh: Mesh) -> None:
        if mesh.dim != self.config.dimension:
            raise ConfigError(
                f"mesh dimension {mesh.dim} != configured domain {self.config.dimension}"
            )
        self.mesh = mesh

    # ------------------------------------------------------------------ entities
    def add_index(self, name: str, range: tuple[int, int]) -> Index:  # noqa: A002
        lo, hi = range
        return self.entities.add_index(Index(name, int(lo), int(hi)))

    def add_variable(
        self,
        name: str,
        var_type: str = VAR_SCALAR,
        location: str = CELL,
        index: Sequence[Index] | None = None,
    ) -> Variable:
        return self.entities.add_variable(
            Variable(name, var_type, location, tuple(index or ()))
        )

    def add_coefficient(
        self,
        name: str,
        value: Any,
        var_type: str = VAR_SCALAR,
        index: Sequence[Index] | None = None,
    ) -> Coefficient:
        return self.entities.add_coefficient(
            Coefficient(name, value, var_type, tuple(index or ()))
        )

    def add_callback(self, fn: Callable, name: str | None = None) -> CallbackFunction:
        cb = CallbackFunction(name or fn.__name__, fn, doc=fn.__doc__ or "")
        return self.entities.add_callback(cb)

    def add_custom_operator(self, name: str, expand: Callable, arity: int | None = None) -> None:
        """Import a user-defined symbolic operator (paper Sec. II-A)."""
        self.operators.define(name, expand, arity)

    # ------------------------------------------------------- equations and BCs
    def set_conservation_form(self, variable: Variable | str, source: str) -> None:
        var = self._variable(variable)
        if self.equation is not None:
            raise DSLError("an equation was already declared")
        parsed = parse(source)
        self.equation = EquationSpec(variable=var.name, source=source, parsed=parsed)
        self.equation_kind = "conservation"

    def set_weak_form(self, variable: Variable | str, source: str) -> None:
        """Declare the PDE in weak form (the FEM path, paper Sec. II-A).

        The test function is the reserved symbol ``v``; the time term
        ``∫ du/dt v`` is implicit.  Example::

            problem.set_solver_type("FEM")
            problem.set_weak_form(u, "-k*dot(grad(u), grad(v)) + f*v")
        """
        var = self._variable(variable)
        if self.equation is not None:
            raise DSLError("an equation was already declared")
        if self.entities.kind_of("v") is not None:
            raise DSLError("the name 'v' is reserved for the test function")
        parsed = parse(source)
        self.equation = EquationSpec(variable=var.name, source=source, parsed=parsed)
        self.equation_kind = "weak"

    def add_boundary(
        self,
        variable: Variable | str,
        region: int,
        kind: BCKind | str,
        spec: Any = None,
        reflection_map: np.ndarray | None = None,
    ) -> None:
        """Declare a boundary condition.

        ``spec`` depends on ``kind``: a value for DIRICHLET; a callback
        invocation string (``"isothermal(I, vg, ..., 300)"``) or a Python
        callable for FLUX / ghost callbacks; nothing for NEUMANN0; an
        optional ``reflection_map`` for SYMMETRY.
        """
        var = self._variable(variable)
        if isinstance(kind, str):
            kind = BCKind(kind.lower())
        bspec = BoundarySpec(variable=var.name, region=int(region), kind=kind)
        if kind == BCKind.DIRICHLET:
            if spec is None:
                raise DSLError("Dirichlet boundary needs a value")
            bspec.value = spec
        elif kind in (BCKind.FLUX, BCKind.GHOST_CALLBACK):
            if isinstance(spec, str):
                call = parse(spec)
                if not isinstance(call, Call):
                    raise DSLError(
                        f"boundary spec {spec!r} must be a callback invocation"
                    )
                if self.entities.kind_of(call.func) != "callback":
                    raise DSLError(
                        f"boundary callback {call.func!r} is not an imported callback"
                    )
                bspec.call = call
            elif callable(spec):
                bspec.python_callback = spec
            else:
                raise DSLError(
                    "flux boundary needs a callback string or Python callable"
                )
        elif kind == BCKind.SYMMETRY:
            if reflection_map is None and spec is not None:
                reflection_map = spec
            if reflection_map is None:
                raise DSLError("symmetry boundary needs a reflection map")
            bspec.reflection_map = np.asarray(reflection_map, dtype=np.int64)
        elif kind == BCKind.NEUMANN:
            if spec is None:
                raise DSLError("Neumann boundary needs a flux value")
            bspec.value = spec
        elif kind == BCKind.NEUMANN0:
            pass
        else:
            raise DSLError(f"unsupported boundary kind {kind}")
        for existing in self.boundaries:
            if existing.variable == var.name and existing.region == bspec.region:
                raise DSLError(
                    f"variable {var.name}: region {region} already has a condition"
                )
        self.boundaries.append(bspec)

    def set_initial(self, variable: Variable | str, values: Any) -> None:
        """Initial condition: scalar, (ncomp,) per-component array,
        (ncomp, ncells) full array, or callable ``f(x) -> value``."""
        var = self._variable(variable)
        self.initial_values[var.name] = values

    def add_pre_step(self, fn: Callable, name: str | None = None) -> None:
        self.pre_step_callbacks.append(
            CallbackFunction(name or fn.__name__, fn, doc=fn.__doc__ or "")
        )

    def add_post_step(self, fn: Callable, name: str | None = None) -> None:
        """``postStepFunction`` — e.g. the BTE temperature update."""
        self.post_step_callbacks.append(
            CallbackFunction(name or fn.__name__, fn, doc=fn.__doc__ or "")
        )

    # ------------------------------------------------------------------ helpers
    def _variable(self, variable: Variable | str) -> Variable:
        name = variable.name if isinstance(variable, Variable) else str(variable)
        if name not in self.entities.variables:
            raise DSLError(f"unknown variable {name!r}")
        return self.entities.variables[name]

    @property
    def unknown(self) -> Variable:
        if self.equation is None:
            raise ConfigError("no conservation_form declared")
        return self.entities.variables[self.equation.variable]

    def validate(self) -> None:
        """Check the configuration is complete and consistent."""
        self.config.validate()
        if self.mesh is None:
            raise ConfigError("no mesh set")
        if self.equation is None:
            raise ConfigError("no conservation_form/weak_form declared")
        if self.config.solver_type == "FEM":
            if self.equation_kind != "weak":
                raise ConfigError("the FEM solver needs weak_form input")
            if self.unknown.indices:
                raise ConfigError("the FEM path supports scalar unknowns")
            return  # uncovered FEM regions are natural (zero-flux) boundaries
        if self.equation_kind != "conservation":
            raise ConfigError("the FV solver needs conservation_form input")
        unknown = self.unknown
        regions = set(self.mesh.boundary_regions())
        covered = {b.region for b in self.boundaries if b.variable == unknown.name}
        missing = regions - covered
        if missing:
            raise ConfigError(
                f"boundary regions without conditions for {unknown.name!r}: "
                f"{sorted(missing)}"
            )
        extra_regions = covered - regions
        if extra_regions:
            raise ConfigError(
                f"boundary conditions reference unknown regions {sorted(extra_regions)}"
            )
        for name in self.config.assembly_order:
            if name != "cells" and name not in unknown.space.names:
                raise ConfigError(
                    f"assembly loop {name!r} is not an index of {unknown.name!r}"
                )
        if self.config.partition_strategy == "bands":
            ix = self.config.partition_index
            if ix not in unknown.space.names:
                raise ConfigError(
                    f"band-partition index {ix!r} is not an index of {unknown.name!r}"
                )

    # --------------------------------------------------------------- generation
    def resolve_target(self, target: str | None = None) -> str:
        """The codegen target ``generate`` would dispatch to.

        ``target`` passes an explicit choice through; ``None`` applies the
        automatic dispatch over the configuration.  The solver service uses
        this to compute a request's cache key without generating.
        """
        if target is not None:
            return target
        if self.config.solver_type == "FEM":
            return "fem"
        if self.config.use_gpu and self.config.nparts > 1:
            return "gpu_distributed"  # one CPU process per device (Fig. 7)
        if self.config.use_gpu:
            return "gpu"
        if self.config.nparts > 1:
            return "distributed"
        return "cpu"

    def generate(self, target: str | None = None):
        """Generate a solver.  ``target`` overrides the automatic choice:
        ``'cpu'``, ``'distributed'`` or ``'gpu'``."""
        from repro.codegen import make_target  # local import: avoid cycle

        if self.extra.get("tuned"):
            # consult the tuning database before dispatch: stored knobs may
            # change the loop order, partitioning or placement overrides
            from repro.tune.tuner import maybe_apply_tuned

            maybe_apply_tuned(self, target)
        self.validate()
        return make_target(self.resolve_target(target)).generate(self)

    def solve(self, variable: Variable | str | None = None, target: str | None = None):
        """Generate and run to completion; returns the finished solver."""
        if variable is not None:
            var = self._variable(variable)
            if self.equation is not None and var.name != self.equation.variable:
                raise DSLError(
                    f"solve({var.name}) does not match the declared unknown "
                    f"{self.equation.variable!r}"
                )
        solver = self.generate(target)
        solver.run()
        return solver


__all__ = ["Problem", "SolverConfig", "BoundarySpec", "EquationSpec"]
