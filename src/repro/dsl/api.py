"""Script-style DSL commands (the Finch surface syntax).

These module-level functions operate on a *current problem*, mirroring the
paper's Julia input decks.  Each maps 1:1 onto a :class:`~repro.dsl.problem.
Problem` method; scripts that prefer explicit objects can use that class
directly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.dsl.entities import CELL, VAR_ARRAY, VAR_SCALAR, Index, Variable, Coefficient
from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.gmsh_io import read_gmsh
from repro.mesh.mesh import Mesh
from repro.util.errors import ConfigError

# solver / scheme constants, named as in the paper's listings
FV = "FV"
FEM = "FEM"
EULER_EXPLICIT = "euler"
RK2 = "rk2"
RK4 = "rk4"

# boundary kinds
FLUX = BCKind.FLUX
DIRICHLET = BCKind.DIRICHLET
NEUMANN0 = BCKind.NEUMANN0
SYMMETRY = BCKind.SYMMETRY

_current: Problem | None = None


def init_problem(name: str = "problem") -> Problem:
    """``initFinch("name")`` — start a fresh problem context."""
    global _current
    _current = Problem(name)
    return _current


def current_problem() -> Problem:
    """The active problem context (raises if :func:`init_problem` not called)."""
    if _current is None:
        raise ConfigError("no problem initialised; call init_problem(...) first")
    return _current


def finalize() -> None:
    """Drop the current problem context (``finalizeFinch`` analogue)."""
    global _current
    _current = None


# ------------------------------------------------------------- configuration
def domain(dimension: int) -> None:
    """``domain(2)`` — spatial dimension."""
    current_problem().set_domain(dimension)


def solver_type(kind: str) -> None:
    """``solverType(FV)`` — discretisation family (FV only)."""
    current_problem().set_solver_type(kind)


def time_stepper(name: str) -> None:
    """``timeStepper(EULER_EXPLICIT)`` — explicit scheme selection."""
    current_problem().set_stepper(name)


def set_steps(dt: float, nsteps: int) -> None:
    """``setSteps(dt, nsteps)`` — step size and count."""
    current_problem().set_steps(dt, nsteps)


def use_gpu(spec: Any = None) -> None:
    """``useCUDA()`` analogue — generate for the hybrid CPU/GPU target.

    ``spec`` selects a device model (default: the paper's A6000); the
    simulated device stands in for CUDA hardware (see DESIGN.md).
    """
    current_problem().enable_gpu(spec)


#: alias matching the paper's spelling
use_cuda = use_gpu


def partitioning(strategy: str, nparts: int = 1, index: str | Index | None = None) -> None:
    """Choose the parallel strategy: ``'cells'`` (mesh partitioning, the
    Metis path) or ``'bands'`` (equation partitioning over ``index``)."""
    current_problem().set_partitioning(strategy, nparts, index)


def mesh(source: Mesh | str) -> Mesh:
    """``mesh(...)`` — attach a mesh object or import a mesh file.

    File paths are dispatched by suffix: ``.msh`` -> Gmsh 2.2 ASCII,
    ``.mesh`` -> MEDIT ASCII (the paper's two import formats).
    """
    if isinstance(source, str):
        if source.endswith(".mesh"):
            from repro.mesh.medit_io import read_medit

            m = read_medit(source)
        else:
            m = read_gmsh(source)
    else:
        m = source
    current_problem().set_mesh(m)
    return m


# ------------------------------------------------------------------ entities
def index(name: str, range: tuple[int, int]) -> Index:  # noqa: A002
    """``index("d", range=[1, ndirs])``."""
    return current_problem().add_index(name, range)


def variable(
    name: str,
    type: str = VAR_SCALAR,  # noqa: A002
    location: str = CELL,
    index: Sequence[Index] | None = None,  # noqa: A002
) -> Variable:
    """``variable("I", type=VAR_ARRAY, location=CELL, index=[d, b])``."""
    return current_problem().add_variable(name, type, location, index)


def coefficient(
    name: str,
    value: Any,
    type: str = VAR_SCALAR,  # noqa: A002
    index: Sequence[Index] | None = None,  # noqa: A002
) -> Coefficient:
    """``coefficient("vg", values, type=VAR_ARRAY, index=[b])``."""
    return current_problem().add_coefficient(name, value, type, index)


def callback_function(fn: Callable | None = None, name: str | None = None):
    """``@callbackFunction`` — import a user function into the DSL.

    Usable as a decorator or a plain call::

        @finch.callback_function
        def isothermal(ctx, I, vg, Sx, Sy, b, d, normal, T):
            ...
    """
    if fn is None:
        return lambda f: callback_function(f, name)
    current_problem().add_callback(fn, name)
    return fn


def custom_operator(name: str, expand: Callable, arity: int | None = None) -> None:
    """Register a custom symbolic operator usable in equation input."""
    current_problem().add_custom_operator(name, expand, arity)


def register_function(name: str, fn: Callable, code: str | None = None) -> None:
    """Register a named numeric function callable from equation terms.

    Unlike :func:`custom_operator` (a symbolic macro expanded at parse
    time), this binds a numeric implementation for ``Call(name, ...)``
    nodes in the unified function registry, making it available to the
    interpreter, the fused vector VM and — when ``code`` names it inside
    a generated module (e.g. ``"np.hypot"``) — emitted source.
    """
    from repro.symbolic.functions import register_function as _register

    _register(name, fn, code)


# ----------------------------------------------------------- equations / BCs
def conservation_form(variable: Variable | str, source: str) -> None:  # noqa: A002
    """``conservationForm(u, "s(u) - surface(f(u))")`` — declare the PDE."""
    current_problem().set_conservation_form(variable, source)


def weak_form(variable: Variable | str, source: str) -> None:  # noqa: A002
    """``weakForm(u, "...v...")`` — declare the PDE in weak form (FEM path);
    the test function is the reserved symbol ``v``."""
    current_problem().set_weak_form(variable, source)


def boundary(
    variable: Variable | str,  # noqa: A002
    region: int,
    kind: BCKind | str,
    spec: Any = None,
    reflection_map: np.ndarray | None = None,
) -> None:
    """``boundary(I, 1, FLUX, "isothermal(I, vg, Sx, Sy, b, d, normal, 300)")``."""
    current_problem().add_boundary(variable, region, kind, spec, reflection_map)


def initial(variable: Variable | str, values: Any) -> None:  # noqa: A002
    """``initial(I, values)`` — scalar, per-component, full array or f(x)."""
    current_problem().set_initial(variable, values)


def assembly_loops(order: Sequence[str | Index]) -> None:
    """``assemblyLoops([band, "cells", direction])`` — loop-nest order."""
    current_problem().set_assembly_loops(order)


def flux_order(order: int) -> None:
    """Flux-reconstruction order for ``upwind`` (1 = paper default, 2 = MUSCL)."""
    current_problem().set_flux_order(order)


def pre_step(fn: Callable, name: str | None = None) -> None:
    """``preStepFunction(fn)`` — host callback before every step."""
    current_problem().add_pre_step(fn, name)


def post_step(fn: Callable, name: str | None = None) -> None:
    """``postStepFunction(fn)`` — host callback after every step (the BTE
    temperature update hangs here)."""
    current_problem().add_post_step(fn, name)


# -------------------------------------------------------------------- actions
def generate(target: str | None = None):
    """Generate a solver for the configured target without running it."""
    return current_problem().generate(target)


def solve(variable: Variable | str | None = None, target: str | None = None):
    """``solve(I)`` — generate code and run all time steps."""
    return current_problem().solve(variable, target)


__all__ = [name for name in dir() if not name.startswith("_")]
