"""DSL entities: indices, variables, coefficients, callbacks.

Mirrors the paper's entity model: "Variables and coefficients are
represented by entities that have a label, a symbolic representation,
values, and other metadata."

* :class:`Index` — a named discrete range (``d`` over directions, ``b`` over
  bands);
* :class:`Variable` — a mutable per-cell field; the *unknown* is the one
  named in ``conservation_form``; other variables (``Io``, ``beta``) are
  known data updated by callbacks between steps;
* :class:`Coefficient` — immutable data: a constant, a per-index array, or a
  function of space(+time) evaluated on cell/face centres;
* :class:`CallbackFunction` — user Python functions kept as opaque host-side
  calls (the ``@callbackFunction`` macro of the paper).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.fvm.fields import IndexSpace
from repro.util.errors import DSLError

# entity type / location tags (named after the Finch constants)
VAR_ARRAY = "VAR_ARRAY"
VAR_SCALAR = "VAR_SCALAR"
CELL = "CELL"
NODE = "NODE"


@dataclass(frozen=True)
class Index:
    """A named index range.  DSL ranges are inclusive and 1-based, like the
    paper's ``index("d", range=[1, ndirs])``; ``size`` is the count."""

    name: str
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise DSLError(f"index name {self.name!r} is not a valid identifier")
        if self.hi < self.lo:
            raise DSLError(f"index {self.name}: empty range [{self.lo}, {self.hi}]")

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1

    def __str__(self) -> str:
        return self.name


@dataclass
class Variable:
    """A per-cell field declared with ``variable(...)``.

    ``indices`` defines the component space; an empty list is a scalar
    field.  ``values`` (ncomp, ncells) is attached when the mesh is known.
    """

    name: str
    var_type: str = VAR_SCALAR
    location: str = CELL
    indices: tuple[Index, ...] = ()
    values: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise DSLError(f"variable name {self.name!r} is not a valid identifier")
        if self.location not in (CELL, NODE):
            raise DSLError(f"variable {self.name}: unknown location {self.location!r}")
        if self.var_type not in (VAR_ARRAY, VAR_SCALAR):
            raise DSLError(f"variable {self.name}: unknown type {self.var_type!r}")
        if self.var_type == VAR_SCALAR and self.indices:
            raise DSLError(f"scalar variable {self.name} cannot carry indices")
        if self.var_type == VAR_ARRAY and not self.indices:
            raise DSLError(f"array variable {self.name} needs at least one index")

    @property
    def space(self) -> IndexSpace:
        return IndexSpace(
            names=tuple(i.name for i in self.indices),
            sizes=tuple(i.size for i in self.indices),
        )

    @property
    def ncomp(self) -> int:
        return max(self.space.ncomp, 1)

    def index_names(self) -> tuple[str, ...]:
        return tuple(i.name for i in self.indices)


@dataclass
class Coefficient:
    """Known data declared with ``coefficient(...)``.

    ``value`` is one of:

    * a scalar — constant in space and components;
    * a 1-D/2-D array — per-component values (constant in space), matching
      the coefficient's declared ``indices``;
    * a callable ``f(x) -> value`` or ``f(x, t) -> value`` — evaluated on
      cell centroids (volume terms) and face centres (surface terms).
    """

    name: str
    value: Any
    var_type: str = VAR_SCALAR
    indices: tuple[Index, ...] = ()

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise DSLError(f"coefficient name {self.name!r} is not a valid identifier")
        if callable(self.value):
            return
        arr = np.asarray(self.value, dtype=np.float64)
        if self.indices:
            expected = tuple(i.size for i in self.indices)
            if arr.shape != expected:
                raise DSLError(
                    f"coefficient {self.name}: value shape {arr.shape} does not "
                    f"match index sizes {expected}"
                )
        elif arr.ndim != 0:
            raise DSLError(
                f"coefficient {self.name}: non-scalar value needs declared indices"
            )
        object.__setattr__(self, "value", arr)

    @property
    def is_function(self) -> bool:
        return callable(self.value)

    @property
    def space(self) -> IndexSpace:
        return IndexSpace(
            names=tuple(i.name for i in self.indices),
            sizes=tuple(i.size for i in self.indices),
        )

    def index_names(self) -> tuple[str, ...]:
        return tuple(i.name for i in self.indices)


@dataclass
class CallbackFunction:
    """A user Python function imported into the DSL.

    Callbacks stay host-side code: the hybrid code generator pins them to
    the CPU and plans data movement around them (the paper's central
    constraint).  ``fn`` signature depends on the role: boundary callbacks
    receive a :class:`repro.fvm.boundary.BoundaryContext`; step hooks receive
    the solver state object.
    """

    name: str
    fn: Callable[..., Any]
    doc: str = ""

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise DSLError(f"callback {self.name!r} is not callable")


class EntityTable:
    """All entities of one problem, with name-collision checking."""

    def __init__(self) -> None:
        self.indices: dict[str, Index] = {}
        self.variables: dict[str, Variable] = {}
        self.coefficients: dict[str, Coefficient] = {}
        self.callbacks: dict[str, CallbackFunction] = {}

    def _check_fresh(self, name: str) -> None:
        for kind, table in (
            ("index", self.indices),
            ("variable", self.variables),
            ("coefficient", self.coefficients),
            ("callback", self.callbacks),
        ):
            if name in table:
                raise DSLError(f"name {name!r} is already used by a {kind}")

    def add_index(self, ix: Index) -> Index:
        self._check_fresh(ix.name)
        self.indices[ix.name] = ix
        return ix

    def add_variable(self, v: Variable) -> Variable:
        self._check_fresh(v.name)
        for ix in v.indices:
            if ix.name not in self.indices:
                raise DSLError(
                    f"variable {v.name}: index {ix.name!r} was not declared"
                )
        self.variables[v.name] = v
        return v

    def add_coefficient(self, c: Coefficient) -> Coefficient:
        self._check_fresh(c.name)
        for ix in c.indices:
            if ix.name not in self.indices:
                raise DSLError(
                    f"coefficient {c.name}: index {ix.name!r} was not declared"
                )
        self.coefficients[c.name] = c
        return c

    def add_callback(self, cb: CallbackFunction) -> CallbackFunction:
        self._check_fresh(cb.name)
        self.callbacks[cb.name] = cb
        return cb

    def kind_of(self, name: str) -> str | None:
        """'index' | 'variable' | 'coefficient' | 'callback' | None."""
        if name in self.indices:
            return "index"
        if name in self.variables:
            return "variable"
        if name in self.coefficients:
            return "coefficient"
        if name in self.callbacks:
            return "callback"
        return None


__all__ = [
    "Index",
    "Variable",
    "Coefficient",
    "CallbackFunction",
    "EntityTable",
    "VAR_ARRAY",
    "VAR_SCALAR",
    "CELL",
    "NODE",
]
