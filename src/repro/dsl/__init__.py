"""Finch-like DSL front end.

This package is the user-facing surface of the reproduction — the Python
analogue of the Julia input deck in the paper's appendix::

    import repro.dsl as finch

    finch.init_problem("bte-gpu")
    finch.domain(2)
    finch.solver_type(finch.FV)
    finch.time_stepper(finch.EULER_EXPLICIT)
    finch.set_steps(1e-12, 10000)
    finch.use_gpu()                       # useCUDA() analogue

    finch.mesh(structured_grid((120, 120), bounds))

    d = finch.index("d", range=(1, ndirs))
    b = finch.index("b", range=(1, nbands))
    I = finch.variable("I", finch.VAR_ARRAY, finch.CELL, index=[d, b])
    ...
    finch.boundary(I, 1, finch.FLUX, "isothermal(I, vg, Sx, Sy, b, d, normal, 300)")
    finch.assembly_loops(["elements", b, d])
    finch.post_step(update_temperature)
    finch.conservation_form(I, "(Io[b] - I[d,b]) / beta[b] - "
                               "surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))")
    solver = finch.solve(I)

See :mod:`repro.dsl.api` for the full command list and
:mod:`repro.dsl.problem` for the underlying object API (usable directly when
the script-global style is not wanted).
"""

from repro.dsl.entities import (
    Index,
    Variable,
    Coefficient,
    CallbackFunction,
    EntityTable,
    VAR_ARRAY,
    VAR_SCALAR,
    CELL,
    NODE,
)
from repro.dsl.problem import Problem, SolverConfig
from repro.dsl.api import (
    init_problem,
    current_problem,
    domain,
    solver_type,
    time_stepper,
    set_steps,
    use_gpu,
    use_cuda,
    mesh,
    index,
    variable,
    coefficient,
    callback_function,
    boundary,
    initial,
    assembly_loops,
    flux_order,
    pre_step,
    post_step,
    conservation_form,
    weak_form,
    custom_operator,
    register_function,
    partitioning,
    generate,
    solve,
    finalize,
    FV,
    FEM,
    EULER_EXPLICIT,
    RK2,
    RK4,
    FLUX,
    DIRICHLET,
    NEUMANN0,
    SYMMETRY,
)

__all__ = [
    "Index",
    "Variable",
    "Coefficient",
    "CallbackFunction",
    "EntityTable",
    "VAR_ARRAY",
    "VAR_SCALAR",
    "CELL",
    "NODE",
    "Problem",
    "SolverConfig",
    "init_problem",
    "current_problem",
    "domain",
    "solver_type",
    "time_stepper",
    "set_steps",
    "use_gpu",
    "use_cuda",
    "mesh",
    "index",
    "variable",
    "coefficient",
    "callback_function",
    "boundary",
    "initial",
    "assembly_loops",
    "flux_order",
    "pre_step",
    "post_step",
    "conservation_form",
    "weak_form",
    "custom_operator",
    "register_function",
    "partitioning",
    "generate",
    "solve",
    "finalize",
    "FV",
    "FEM",
    "EULER_EXPLICIT",
    "RK2",
    "RK4",
    "FLUX",
    "DIRICHLET",
    "NEUMANN0",
    "SYMMETRY",
]
