"""Structured mesh generation (Finch's "simple generation utility").

:func:`structured_grid` builds uniform 1-D interval, 2-D quadrilateral or
3-D hexahedral meshes over a box.  Boundary faces are tagged with the region
convention used throughout the examples and the BTE application:

====== =========== ==========
region side (2-D)  side (1-D/3-D)
====== =========== ==========
1      x-min       x-min
2      x-max       x-max
3      y-min       y-min (3-D)
4      y-max       y-max (3-D)
5/6    --          z-min / z-max (3-D)
====== =========== ==========

A custom ``boundary_marker`` overrides this, which is how the BTE problem
maps its physical walls (cold wall / hot wall / symmetry pair) onto regions.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.mesh.mesh import Mesh, build_mesh
from repro.util.errors import MeshError


def _default_marker(lo: np.ndarray, hi: np.ndarray, dim: int) -> Callable[[np.ndarray, np.ndarray], int]:
    span = hi - lo
    tol = 1e-8 * float(np.max(span))

    def marker(center: np.ndarray, normal: np.ndarray) -> int:
        for axis in range(dim):
            if abs(center[axis] - lo[axis]) < tol and normal[axis] < 0:
                return 2 * axis + 1
            if abs(center[axis] - hi[axis]) < tol and normal[axis] > 0:
                return 2 * axis + 2
        raise MeshError(f"boundary face at {center} lies on no box side")

    return marker


def structured_grid(
    shape: Sequence[int],
    bounds: Sequence[tuple[float, float]] | None = None,
    boundary_marker: Callable[[np.ndarray, np.ndarray], int] | None = None,
    name: str | None = None,
    grading: Sequence[Callable[[np.ndarray], np.ndarray] | None] | None = None,
) -> Mesh:
    """Tensor-product grid of ``shape`` cells over the box ``bounds``.

    Parameters
    ----------
    shape:
        Cells per axis, e.g. ``(120, 120)`` for the paper's BTE mesh.
    bounds:
        ``[(lo, hi), ...]`` per axis; defaults to the unit box.
    boundary_marker:
        Optional ``f(center, normal) -> region`` tag function.
    grading:
        Optional per-axis node-spacing maps: each entry is ``None``
        (uniform) or a strictly increasing function on [0, 1] with
        ``g(0) = 0`` and ``g(1) = 1`` applied to the normalised node
        coordinates — e.g. ``lambda s: s**2`` clusters cells toward the
        low end of the axis (useful for boundary layers / the hot spot).

    Examples
    --------
    >>> mesh = structured_grid((120, 120), [(0.0, 525e-6), (0.0, 525e-6)])
    >>> mesh.ncells
    14400
    """
    shape = tuple(int(n) for n in shape)
    dim = len(shape)
    if dim not in (1, 2, 3):
        raise MeshError(f"structured_grid supports 1-3 dimensions, got {dim}")
    if any(n < 1 for n in shape):
        raise MeshError(f"all axis sizes must be >= 1, got {shape}")
    if bounds is None:
        bounds = [(0.0, 1.0)] * dim
    if len(bounds) != dim:
        raise MeshError(f"bounds has {len(bounds)} axes but shape has {dim}")
    lo = np.array([b[0] for b in bounds], dtype=np.float64)
    hi = np.array([b[1] for b in bounds], dtype=np.float64)
    if np.any(hi <= lo):
        raise MeshError("each bounds pair must satisfy hi > lo")
    if grading is not None and len(grading) != dim:
        raise MeshError(f"grading has {len(grading)} axes but shape has {dim}")

    axes = []
    for a in range(dim):
        s = np.linspace(0.0, 1.0, shape[a] + 1)
        g = grading[a] if grading is not None else None
        if g is not None:
            s = np.asarray(g(s), dtype=np.float64)
            if s.shape != (shape[a] + 1,):
                raise MeshError(f"grading for axis {a} changed the node count")
            if abs(s[0]) > 1e-12 or abs(s[-1] - 1.0) > 1e-12:
                raise MeshError(f"grading for axis {a} must map 0->0 and 1->1")
            if np.any(np.diff(s) <= 0):
                raise MeshError(f"grading for axis {a} is not strictly increasing")
        axes.append(lo[a] + (hi[a] - lo[a]) * s)

    if dim == 1:
        nodes = axes[0][:, None]
        cells = [[i, i + 1] for i in range(shape[0])]
    elif dim == 2:
        nx, ny = shape
        xs, ys = axes
        # node (i, j) -> index j*(nx+1) + i ; CCW quad ordering
        nodes = np.array([[xs[i], ys[j]] for j in range(ny + 1) for i in range(nx + 1)])

        def nid(i: int, j: int) -> int:
            return j * (nx + 1) + i

        cells = [
            [nid(i, j), nid(i + 1, j), nid(i + 1, j + 1), nid(i, j + 1)]
            for j in range(ny)
            for i in range(nx)
        ]
    else:
        nx, ny, nz = shape
        xs, ys, zs = axes
        nodes = np.array(
            [
                [xs[i], ys[j], zs[k]]
                for k in range(nz + 1)
                for j in range(ny + 1)
                for i in range(nx + 1)
            ]
        )

        def nid3(i: int, j: int, k: int) -> int:
            return (k * (ny + 1) + j) * (nx + 1) + i

        cells = [
            [
                nid3(i, j, k),
                nid3(i + 1, j, k),
                nid3(i + 1, j + 1, k),
                nid3(i, j + 1, k),
                nid3(i, j, k + 1),
                nid3(i + 1, j, k + 1),
                nid3(i + 1, j + 1, k + 1),
                nid3(i, j + 1, k + 1),
            ]
            for k in range(nz)
            for j in range(ny)
            for i in range(nx)
        ]

    marker = boundary_marker or _default_marker(lo, hi, dim)
    label = name or f"grid{'x'.join(str(s) for s in shape)}"
    mesh = build_mesh(nodes, cells, dim=dim, boundary_marker=marker, name=label)
    mesh.metadata["structured_shape"] = shape
    mesh.metadata["bounds"] = [(float(a), float(b)) for a, b in zip(lo, hi)]
    return mesh


def interval_mesh(n: int, lo: float = 0.0, hi: float = 1.0) -> Mesh:
    """1-D convenience wrapper: ``n`` uniform cells on ``[lo, hi]``."""
    return structured_grid((n,), [(lo, hi)])


def perturbed_grid(
    shape: Sequence[int],
    bounds: Sequence[tuple[float, float]] | None = None,
    amplitude: float = 0.25,
    seed: int = 0,
    boundary_marker: Callable[[np.ndarray, np.ndarray], int] | None = None,
    name: str | None = None,
) -> Mesh:
    """A 2-D quad grid with randomly jittered *interior* nodes.

    ``amplitude`` is the jitter as a fraction of the local cell size
    (<= 0.45 keeps all quads convex in practice).  Boundary nodes stay put,
    so region tagging matches :func:`structured_grid`.  Used to exercise
    the FV machinery on genuinely non-orthogonal cells.
    """
    shape = tuple(int(n) for n in shape)
    if len(shape) != 2:
        raise MeshError("perturbed_grid is 2-D only")
    if not (0.0 <= amplitude < 0.5):
        raise MeshError(f"amplitude must be in [0, 0.5), got {amplitude}")
    base = structured_grid(shape, bounds, boundary_marker, name=name or
                           f"perturbed{shape[0]}x{shape[1]}")
    nx, ny = shape
    lo = np.array([b[0] for b in (bounds or [(0.0, 1.0)] * 2)])
    hi = np.array([b[1] for b in (bounds or [(0.0, 1.0)] * 2)])
    h = (hi - lo) / np.array([nx, ny])
    rng = np.random.default_rng(seed)
    nodes = base.nodes.copy()
    for j in range(1, ny):
        for i in range(1, nx):
            k = j * (nx + 1) + i
            nodes[k] += (rng.random(2) - 0.5) * 2.0 * amplitude * h
    cells = [list(base.cell_nodes(c)) for c in range(base.ncells)]
    marker = boundary_marker or _default_marker(lo, hi, 2)
    mesh = build_mesh(nodes, cells, dim=2, boundary_marker=marker,
                      name=base.name)
    mesh.metadata["perturbed_amplitude"] = amplitude
    return mesh


def triangulated_grid(
    shape: Sequence[int],
    bounds: Sequence[tuple[float, float]] | None = None,
    boundary_marker: Callable[[np.ndarray, np.ndarray], int] | None = None,
    name: str | None = None,
) -> Mesh:
    """2-D unstructured-style mesh: each grid quad split into two triangles.

    Diagonals alternate in a crisscross pattern so the triangulation has no
    global directional bias.  Box boundaries (and hence the default region
    tags) are identical to :func:`structured_grid`'s, so problems configured
    for quads — including the BTE decks — run unchanged on triangles,
    demonstrating the FV machinery's generality beyond tensor grids.
    """
    shape = tuple(int(n) for n in shape)
    if len(shape) != 2:
        raise MeshError("triangulated_grid is 2-D only")
    nx, ny = shape
    if nx < 1 or ny < 1:
        raise MeshError(f"all axis sizes must be >= 1, got {shape}")
    if bounds is None:
        bounds = [(0.0, 1.0), (0.0, 1.0)]
    lo = np.array([b[0] for b in bounds], dtype=np.float64)
    hi = np.array([b[1] for b in bounds], dtype=np.float64)
    if np.any(hi <= lo):
        raise MeshError("each bounds pair must satisfy hi > lo")

    xs = np.linspace(lo[0], hi[0], nx + 1)
    ys = np.linspace(lo[1], hi[1], ny + 1)
    nodes = np.array([[xs[i], ys[j]] for j in range(ny + 1) for i in range(nx + 1)])

    def nid(i: int, j: int) -> int:
        return j * (nx + 1) + i

    cells: list[list[int]] = []
    for j in range(ny):
        for i in range(nx):
            a, b = nid(i, j), nid(i + 1, j)
            c, d = nid(i + 1, j + 1), nid(i, j + 1)
            if (i + j) % 2 == 0:  # diagonal a-c
                cells.append([a, b, c])
                cells.append([a, c, d])
            else:  # diagonal b-d
                cells.append([a, b, d])
                cells.append([b, c, d])

    marker = boundary_marker or _default_marker(lo, hi, 2)
    label = name or f"tri{nx}x{ny}"
    mesh = build_mesh(nodes, cells, dim=2, boundary_marker=marker, name=label)
    mesh.metadata["triangulated_shape"] = shape
    return mesh


__all__ = ["structured_grid", "interval_mesh", "triangulated_grid", "perturbed_grid"]
