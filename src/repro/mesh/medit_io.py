"""MEDIT (.mesh) ASCII reader/writer.

The paper's other import format ("imported from a Gmsh or MEDIT formatted
mesh file").  Supports the INRIA MEDIT ASCII dialect with ``Vertices``,
``Edges``, ``Triangles`` and ``Quadrilaterals`` sections; element reference
numbers on boundary entities map onto FV boundary regions, exactly like
Gmsh physical tags.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.mesh.mesh import Mesh, build_mesh
from repro.util.errors import MeshError

_SECTIONS = ("vertices", "edges", "triangles", "quadrilaterals", "end")


def read_medit(path: str | Path | io.TextIOBase, name: str | None = None) -> Mesh:
    """Read a MEDIT ASCII ``.mesh`` file into a :class:`Mesh`.

    Malformed input — truncated files, garbage tokens, negative counts —
    raises :class:`MeshError` (code RPR502), never a bare
    ``IndexError``/``ValueError`` from the parser internals.
    """
    if isinstance(path, (str, Path)):
        text = Path(path).read_text()
        label = name or Path(path).stem
    else:
        text = path.read()
        label = name or "medit"
    try:
        return _parse_medit(text, label)
    except MeshError as exc:
        if exc.code == MeshError.default_code:
            exc.code = "RPR502"
        raise
    except (IndexError, KeyError, ValueError) as exc:
        raise MeshError(
            f"malformed MEDIT input {label!r}: {type(exc).__name__}: {exc}",
            code="RPR502",
        ) from exc


def _parse_medit(text: str, label: str) -> Mesh:
    tokens = text.split()
    i = 0

    def next_token() -> str:
        nonlocal i
        if i >= len(tokens):
            raise MeshError("unexpected end of MEDIT file")
        tok = tokens[i]
        i += 1
        return tok

    dimension = None
    vertices: np.ndarray | None = None
    edges: list[tuple[list[int], int]] = []
    cells2d: list[tuple[list[int], int]] = []

    while i < len(tokens):
        tok = next_token()
        key = tok.lower()
        if key == "meshversionformatted":
            next_token()  # version number
        elif key == "dimension":
            dimension = int(next_token())
        elif key == "vertices":
            if dimension is None:
                raise MeshError("MEDIT file: Vertices before Dimension")
            n = int(next_token())
            data = np.array(
                [float(next_token()) for _ in range(n * (dimension + 1))]
            ).reshape(n, dimension + 1)
            vertices = data[:, :dimension]
        elif key == "edges":
            n = int(next_token())
            for _ in range(n):
                a, b, ref = (int(next_token()) for _ in range(3))
                edges.append(([a - 1, b - 1], ref))
        elif key == "triangles":
            n = int(next_token())
            for _ in range(n):
                vals = [int(next_token()) for _ in range(4)]
                cells2d.append(([v - 1 for v in vals[:3]], vals[3]))
        elif key == "quadrilaterals":
            n = int(next_token())
            for _ in range(n):
                vals = [int(next_token()) for _ in range(5)]
                cells2d.append(([v - 1 for v in vals[:4]], vals[4]))
        elif key == "end":
            break
        else:
            raise MeshError(f"unsupported MEDIT section {tok!r}")

    if vertices is None:
        raise MeshError("MEDIT file has no Vertices section")
    if dimension == 2:
        if not cells2d:
            raise MeshError("MEDIT file has no 2-D elements")
        cells = [c for c, _ in cells2d]
        regions = {
            tuple(sorted(nodes)): (ref if ref > 0 else 1) for nodes, ref in edges
        }
        return build_mesh(
            vertices,
            cells,
            dim=2,
            boundary_face_regions=regions or None,
            boundary_marker=(lambda c, n: 1) if not regions else None,
            name=label,
        )
    if dimension == 1:
        if not edges:
            raise MeshError("1-D MEDIT file has no Edges (cells)")
        cells = [c for c, _ in edges]
        return build_mesh(vertices, cells, dim=1, name=label)
    raise MeshError(f"unsupported MEDIT dimension {dimension}")


def write_medit(mesh: Mesh, path: str | Path | io.TextIOBase) -> None:
    """Write a 1-D/2-D mesh as MEDIT ASCII (boundary refs from regions)."""
    if mesh.dim not in (1, 2):
        raise MeshError("MEDIT writer supports 1-D and 2-D meshes")
    out = io.StringIO()
    out.write("MeshVersionFormatted 2\n")
    out.write(f"Dimension {mesh.dim}\n")
    out.write(f"Vertices\n{mesh.nnodes}\n")
    for k in range(mesh.nnodes):
        coords = " ".join(f"{v:.16g}" for v in mesh.nodes[k])
        out.write(f"{coords} 0\n")

    if mesh.dim == 2:
        tris = []
        quads = []
        for c in range(mesh.ncells):
            nodes = [int(n) + 1 for n in mesh.cell_nodes(c)]
            (tris if len(nodes) == 3 else quads).append(nodes)
        if tris:
            out.write(f"Triangles\n{len(tris)}\n")
            for nodes in tris:
                out.write(" ".join(map(str, nodes)) + " 0\n")
        if quads:
            out.write(f"Quadrilaterals\n{len(quads)}\n")
            for nodes in quads:
                out.write(" ".join(map(str, nodes)) + " 0\n")
        bfaces = mesh.boundary_faces()
        out.write(f"Edges\n{len(bfaces)}\n")
        for f in bfaces:
            nodes = [int(n) + 1 for n in mesh.face_nodes(f)]
            out.write(f"{nodes[0]} {nodes[1]} {int(mesh.face_region[f])}\n")
    else:
        out.write(f"Edges\n{mesh.ncells}\n")
        for c in range(mesh.ncells):
            nodes = [int(n) + 1 for n in mesh.cell_nodes(c)]
            out.write(f"{nodes[0]} {nodes[1]} 0\n")

    out.write("End\n")
    if isinstance(path, (str, Path)):
        Path(path).write_text(out.getvalue())
    else:
        path.write(out.getvalue())


__all__ = ["read_medit", "write_medit"]
