"""VTK legacy ASCII reader/writer for cell-centred results.

The paper's temperature plots (Figs. 2, 10) come from a visualisation tool;
this writer exports any mesh + per-cell fields (temperature, intensity
moments, partition ids) as an unstructured-grid ``.vtk`` file that ParaView
and VisIt open directly.  :func:`read_vtk` round-trips the same dialect
(legacy ASCII ``DATASET UNSTRUCTURED_GRID``) back into a :class:`Mesh`.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.mesh.mesh import Mesh, build_mesh
from repro.util.errors import MeshError

#: VTK cell-type ids
_VTK_LINE = 3
_VTK_TRIANGLE = 5
_VTK_QUAD = 9
_VTK_POLYGON = 7
_VTK_HEXAHEDRON = 12


def _cell_type(mesh: Mesh, nnodes: int) -> int:
    if mesh.dim == 1:
        return _VTK_LINE
    if mesh.dim == 2:
        return {3: _VTK_TRIANGLE, 4: _VTK_QUAD}.get(nnodes, _VTK_POLYGON)
    if nnodes == 8:
        return _VTK_HEXAHEDRON
    raise MeshError(f"cannot map a {mesh.dim}-D cell with {nnodes} nodes to VTK")


#: legacy cell-type id -> spatial dimension (the types the writer emits)
_TYPE_DIMS = {
    _VTK_LINE: 1,
    _VTK_TRIANGLE: 2,
    _VTK_QUAD: 2,
    _VTK_POLYGON: 2,
    _VTK_HEXAHEDRON: 3,
}


def read_vtk(path: str | Path | io.TextIOBase, name: str | None = None) -> Mesh:
    """Read a legacy ASCII unstructured-grid ``.vtk`` file into a :class:`Mesh`.

    Malformed input — truncated sections, garbage tokens, unknown cell
    types — raises :class:`MeshError` (code RPR503), never a bare
    ``IndexError``/``ValueError`` from the parser internals.
    """
    if isinstance(path, (str, Path)):
        text = Path(path).read_text()
        label = name or Path(path).stem
    else:
        text = path.read()
        label = name or "vtk"
    try:
        return _parse_vtk(text, label)
    except MeshError as exc:
        if exc.code == MeshError.default_code:
            exc.code = "RPR503"
        raise
    except (IndexError, KeyError, ValueError) as exc:
        raise MeshError(
            f"malformed VTK input {label!r}: {type(exc).__name__}: {exc}",
            code="RPR503",
        ) from exc


def _parse_vtk(text: str, label: str) -> Mesh:
    lines = text.splitlines()
    if len(lines) < 4 or not lines[0].startswith("# vtk DataFile"):
        raise MeshError("not a legacy VTK file (missing '# vtk DataFile' header)")
    if lines[2].strip().upper() != "ASCII":
        raise MeshError(f"only ASCII VTK is supported (got {lines[2].strip()!r})")
    if "UNSTRUCTURED_GRID" not in lines[3].upper():
        raise MeshError(
            f"only DATASET UNSTRUCTURED_GRID is supported (got {lines[3].strip()!r})")

    tokens = " ".join(lines[4:]).split()
    i = 0

    def take() -> str:
        nonlocal i
        if i >= len(tokens):
            raise MeshError("unexpected end of VTK file")
        tok = tokens[i]
        i += 1
        return tok

    def expect(keyword: str) -> None:
        tok = take()
        if tok.upper() != keyword:
            raise MeshError(f"expected {keyword} section, got {tok!r}")

    expect("POINTS")
    npoints = int(take())
    take()  # datatype (double/float)
    if npoints < 1:
        raise MeshError(f"POINTS count must be positive (got {npoints})")
    points = np.array(
        [float(take()) for _ in range(npoints * 3)]
    ).reshape(npoints, 3)

    expect("CELLS")
    ncells = int(take())
    take()  # total list size (recomputed below)
    if ncells < 1:
        raise MeshError(f"CELLS count must be positive (got {ncells})")
    cells: list[list[int]] = []
    for _ in range(ncells):
        count = int(take())
        if count < 2:
            raise MeshError(f"cell with {count} nodes in CELLS section")
        nodes = [int(take()) for _ in range(count)]
        if any(n < 0 or n >= npoints for n in nodes):
            raise MeshError(f"cell references node out of range [0, {npoints})")
        cells.append(nodes)

    expect("CELL_TYPES")
    ntypes = int(take())
    if ntypes != ncells:
        raise MeshError(f"CELL_TYPES count {ntypes} != CELLS count {ncells}")
    dims = set()
    for _ in range(ncells):
        ctype = int(take())
        if ctype not in _TYPE_DIMS:
            raise MeshError(f"unsupported VTK cell type {ctype}")
        dims.add(_TYPE_DIMS[ctype])
    if len(dims) != 1:
        raise MeshError(f"mixed-dimension VTK cells {sorted(dims)}")
    dim = dims.pop()
    return build_mesh(points[:, :dim], cells, dim=dim,
                      boundary_marker=lambda c, n: 1, name=label)


def write_vtk(
    mesh: Mesh,
    path: str | Path | io.TextIOBase,
    cell_data: dict[str, np.ndarray] | None = None,
    title: str = "repro output",
) -> None:
    """Write ``mesh`` and optional per-cell scalar fields as legacy VTK.

    ``cell_data`` maps field names to ``(ncells,)`` arrays.
    """
    cell_data = cell_data or {}
    for name, arr in cell_data.items():
        arr = np.asarray(arr)
        if arr.shape != (mesh.ncells,):
            raise MeshError(
                f"cell field {name!r} has shape {arr.shape}, "
                f"expected ({mesh.ncells},)"
            )

    out = io.StringIO()
    out.write("# vtk DataFile Version 3.0\n")
    out.write(f"{title[:255]}\n")
    out.write("ASCII\nDATASET UNSTRUCTURED_GRID\n")

    out.write(f"POINTS {mesh.nnodes} double\n")
    for k in range(mesh.nnodes):
        xyz = np.zeros(3)
        xyz[: mesh.dim] = mesh.nodes[k]
        out.write(f"{xyz[0]:.16g} {xyz[1]:.16g} {xyz[2]:.16g}\n")

    sizes = [len(mesh.cell_nodes(c)) for c in range(mesh.ncells)]
    out.write(f"CELLS {mesh.ncells} {mesh.ncells + sum(sizes)}\n")
    for c in range(mesh.ncells):
        nodes = mesh.cell_nodes(c)
        out.write(str(len(nodes)) + " " + " ".join(str(int(n)) for n in nodes) + "\n")

    out.write(f"CELL_TYPES {mesh.ncells}\n")
    for c in range(mesh.ncells):
        out.write(f"{_cell_type(mesh, sizes[c])}\n")

    if cell_data:
        out.write(f"CELL_DATA {mesh.ncells}\n")
        for name, arr in cell_data.items():
            safe = name.replace(" ", "_")
            out.write(f"SCALARS {safe} double 1\nLOOKUP_TABLE default\n")
            for v in np.asarray(arr, dtype=np.float64):
                out.write(f"{v:.16g}\n")

    if isinstance(path, (str, Path)):
        Path(path).write_text(out.getvalue())
    else:
        path.write(out.getvalue())


__all__ = ["read_vtk", "write_vtk"]
