"""VTK legacy ASCII writer for cell-centred results.

The paper's temperature plots (Figs. 2, 10) come from a visualisation tool;
this writer exports any mesh + per-cell fields (temperature, intensity
moments, partition ids) as an unstructured-grid ``.vtk`` file that ParaView
and VisIt open directly.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.mesh.mesh import Mesh
from repro.util.errors import MeshError

#: VTK cell-type ids
_VTK_LINE = 3
_VTK_TRIANGLE = 5
_VTK_QUAD = 9
_VTK_POLYGON = 7
_VTK_HEXAHEDRON = 12


def _cell_type(mesh: Mesh, nnodes: int) -> int:
    if mesh.dim == 1:
        return _VTK_LINE
    if mesh.dim == 2:
        return {3: _VTK_TRIANGLE, 4: _VTK_QUAD}.get(nnodes, _VTK_POLYGON)
    if nnodes == 8:
        return _VTK_HEXAHEDRON
    raise MeshError(f"cannot map a {mesh.dim}-D cell with {nnodes} nodes to VTK")


def write_vtk(
    mesh: Mesh,
    path: str | Path | io.TextIOBase,
    cell_data: dict[str, np.ndarray] | None = None,
    title: str = "repro output",
) -> None:
    """Write ``mesh`` and optional per-cell scalar fields as legacy VTK.

    ``cell_data`` maps field names to ``(ncells,)`` arrays.
    """
    cell_data = cell_data or {}
    for name, arr in cell_data.items():
        arr = np.asarray(arr)
        if arr.shape != (mesh.ncells,):
            raise MeshError(
                f"cell field {name!r} has shape {arr.shape}, "
                f"expected ({mesh.ncells},)"
            )

    out = io.StringIO()
    out.write("# vtk DataFile Version 3.0\n")
    out.write(f"{title[:255]}\n")
    out.write("ASCII\nDATASET UNSTRUCTURED_GRID\n")

    out.write(f"POINTS {mesh.nnodes} double\n")
    for k in range(mesh.nnodes):
        xyz = np.zeros(3)
        xyz[: mesh.dim] = mesh.nodes[k]
        out.write(f"{xyz[0]:.16g} {xyz[1]:.16g} {xyz[2]:.16g}\n")

    sizes = [len(mesh.cell_nodes(c)) for c in range(mesh.ncells)]
    out.write(f"CELLS {mesh.ncells} {mesh.ncells + sum(sizes)}\n")
    for c in range(mesh.ncells):
        nodes = mesh.cell_nodes(c)
        out.write(str(len(nodes)) + " " + " ".join(str(int(n)) for n in nodes) + "\n")

    out.write(f"CELL_TYPES {mesh.ncells}\n")
    for c in range(mesh.ncells):
        out.write(f"{_cell_type(mesh, sizes[c])}\n")

    if cell_data:
        out.write(f"CELL_DATA {mesh.ncells}\n")
        for name, arr in cell_data.items():
            safe = name.replace(" ", "_")
            out.write(f"SCALARS {safe} double 1\nLOOKUP_TABLE default\n")
            for v in np.asarray(arr, dtype=np.float64):
                out.write(f"{v:.16g}\n")

    if isinstance(path, (str, Path)):
        Path(path).write_text(out.getvalue())
    else:
        path.write(out.getvalue())


__all__ = ["write_vtk"]
