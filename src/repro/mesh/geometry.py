"""Geometric primitives for polygonal/brick cells.

2-D cells are arbitrary simple polygons (counter-clockwise node order); 3-D
support covers axis-aligned bricks, which is all the structured generator
produces and all the paper's runs use (uniform grids).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import MeshError


def polygon_area(coords: np.ndarray) -> float:
    """Signed shoelace area of a 2-D polygon (positive for CCW order)."""
    x, y = coords[:, 0], coords[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def polygon_centroid(coords: np.ndarray) -> np.ndarray:
    """Area centroid of a simple 2-D polygon."""
    x, y = coords[:, 0], coords[:, 1]
    cross = x * np.roll(y, -1) - np.roll(x, -1) * y
    area = 0.5 * np.sum(cross)
    if abs(area) < 1e-300:
        raise MeshError("degenerate polygon (zero area)")
    cx = np.sum((x + np.roll(x, -1)) * cross) / (6.0 * area)
    cy = np.sum((y + np.roll(y, -1)) * cross) / (6.0 * area)
    return np.array([cx, cy])


def edge_outward_normal(p1: np.ndarray, p2: np.ndarray) -> tuple[np.ndarray, float]:
    """Unit normal of edge p1->p2 pointing right of the traversal direction.

    For a CCW-ordered polygon, traversing its edges in order makes "right of
    travel" the *outward* direction.  Returns ``(normal, length)``.
    """
    d = p2 - p1
    length = float(np.hypot(d[0], d[1]))
    if length <= 0.0:
        raise MeshError("degenerate edge (zero length)")
    return np.array([d[1], -d[0]]) / length, length


def brick_volume(lo: np.ndarray, hi: np.ndarray) -> float:
    """Volume of an axis-aligned brick given min/max corners."""
    extent = hi - lo
    if np.any(extent <= 0):
        raise MeshError("degenerate brick (non-positive extent)")
    return float(np.prod(extent))


def cell_closure_residual(normals: np.ndarray, areas: np.ndarray) -> float:
    """Max-norm of ``sum_f A_f n_f`` over a cell's faces.

    For any closed cell this vanishes (discrete divergence theorem); the mesh
    validator and the property tests use it as the primary geometric
    invariant.
    """
    return float(np.abs((normals * areas[:, None]).sum(axis=0)).max())


__all__ = [
    "polygon_area",
    "polygon_centroid",
    "edge_outward_normal",
    "brick_volume",
    "cell_closure_residual",
]
