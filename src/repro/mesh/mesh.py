"""Face-based finite-volume mesh.

The :class:`Mesh` stores the connectivity and geometry needed by an FVM
assembler in flat numpy arrays (struct-of-arrays layout, following the
HPC-python guidance of keeping hot data contiguous):

* ``face_cells[f] = (owner, neighbour)`` with ``neighbour == -1`` on the
  boundary; ``face_normals[f]`` is the *unit* normal pointing out of the
  owner;
* ragged cell->face and cell->node maps as ``offsets``/``indices`` pairs;
* ``face_region[f]`` is ``0`` for interior faces and a positive boundary
  region id otherwise (the ids used by ``boundary(I, 1, FLUX, ...)``).

Meshes are built with :func:`build_mesh` from a node array plus per-cell node
lists; the structured generator (:mod:`repro.mesh.grid`) and the Gmsh reader
(:mod:`repro.mesh.gmsh_io`) both go through it, so every mesh is validated
the same way.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.mesh.geometry import (
    cell_closure_residual,
    edge_outward_normal,
    polygon_area,
    polygon_centroid,
)
from repro.util.errors import MeshError


@dataclass
class Mesh:
    """Immutable-after-build finite-volume mesh (see module docstring)."""

    dim: int
    nodes: np.ndarray  # (nnodes, dim)
    # ragged cell -> node connectivity
    cell_node_offsets: np.ndarray  # (ncells + 1,)
    cell_node_indices: np.ndarray
    # faces
    face_node_offsets: np.ndarray  # (nfaces + 1,)
    face_node_indices: np.ndarray
    face_cells: np.ndarray  # (nfaces, 2), neighbour -1 on boundary
    face_normals: np.ndarray  # (nfaces, dim) unit, outward from owner
    face_areas: np.ndarray  # (nfaces,)
    face_centers: np.ndarray  # (nfaces, dim)
    face_region: np.ndarray  # (nfaces,) 0 interior, >0 boundary region id
    # cells
    cell_volumes: np.ndarray  # (ncells,)
    cell_centroids: np.ndarray  # (ncells, dim)
    # ragged cell -> face connectivity; sign +1 when the cell owns the face
    cell_face_offsets: np.ndarray  # (ncells + 1,)
    cell_face_indices: np.ndarray
    cell_face_signs: np.ndarray  # (+1 owner / -1 neighbour)
    name: str = "mesh"
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ sizes
    @property
    def ncells(self) -> int:
        return len(self.cell_volumes)

    @property
    def nfaces(self) -> int:
        return len(self.face_areas)

    @property
    def nnodes(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------ connectivity
    def cell_nodes(self, cell: int) -> np.ndarray:
        """Node indices of one cell."""
        return self.cell_node_indices[
            self.cell_node_offsets[cell] : self.cell_node_offsets[cell + 1]
        ]

    def cell_faces(self, cell: int) -> np.ndarray:
        """Face indices of one cell."""
        return self.cell_face_indices[
            self.cell_face_offsets[cell] : self.cell_face_offsets[cell + 1]
        ]

    def face_nodes(self, face: int) -> np.ndarray:
        return self.face_node_indices[
            self.face_node_offsets[face] : self.face_node_offsets[face + 1]
        ]

    def interior_faces(self) -> np.ndarray:
        """Indices of faces with a cell on both sides."""
        return np.flatnonzero(self.face_cells[:, 1] >= 0)

    def boundary_faces(self, region: int | None = None) -> np.ndarray:
        """Boundary face indices, optionally restricted to one region id."""
        if region is None:
            return np.flatnonzero(self.face_cells[:, 1] < 0)
        return np.flatnonzero(self.face_region == region)

    def boundary_regions(self) -> list[int]:
        """Sorted list of boundary region ids present in the mesh."""
        regions = np.unique(self.face_region)
        return [int(r) for r in regions if r > 0]

    def cell_neighbors(self) -> list[list[int]]:
        """Adjacency list of cells sharing a face (used by partitioners)."""
        adj: list[list[int]] = [[] for _ in range(self.ncells)]
        for owner, neigh in self.face_cells:
            if neigh >= 0:
                adj[owner].append(int(neigh))
                adj[neigh].append(int(owner))
        return adj

    def to_networkx(self):
        """Cell-adjacency graph with edge weight = shared face area."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.ncells))
        for f in self.interior_faces():
            owner, neigh = self.face_cells[f]
            g.add_edge(int(owner), int(neigh), weight=float(self.face_areas[f]), face=int(f))
        return g

    # ---------------------------------------------------------------- checks
    def validate(self, tol: float = 1e-9) -> None:
        """Raise :class:`MeshError` on geometric inconsistencies.

        Checks: positive volumes and areas, unit normals, per-cell closure
        (``sum_f A_f n_f == 0``, the discrete divergence theorem), owner
        normals pointing away from the owner centroid, and boundary faces
        carrying a positive region id.
        """
        if np.any(self.cell_volumes <= 0):
            bad = int(np.argmin(self.cell_volumes))
            raise MeshError(f"non-positive volume in cell {bad}: {self.cell_volumes[bad]}")
        if np.any(self.face_areas <= 0):
            bad = int(np.argmin(self.face_areas))
            raise MeshError(f"non-positive area on face {bad}: {self.face_areas[bad]}")
        norms = np.linalg.norm(self.face_normals, axis=1)
        if np.any(np.abs(norms - 1.0) > tol):
            bad = int(np.argmax(np.abs(norms - 1.0)))
            raise MeshError(f"non-unit normal on face {bad}: |n| = {norms[bad]}")
        # characteristic length to make the closure tolerance scale free
        h = float(np.mean(self.face_areas))
        for c in range(self.ncells):
            faces = self.cell_faces(c)
            signs = self.cell_face_signs[
                self.cell_face_offsets[c] : self.cell_face_offsets[c + 1]
            ]
            normals = self.face_normals[faces] * signs[:, None]
            residual = cell_closure_residual(normals, self.face_areas[faces])
            if residual > tol * max(h, 1.0) * len(faces):
                raise MeshError(f"cell {c} is not closed: closure residual {residual}")
        # outwardness of owner normals
        owners = self.face_cells[:, 0]
        outward = np.einsum(
            "fd,fd->f", self.face_normals, self.face_centers - self.cell_centroids[owners]
        )
        if np.any(outward <= 0):
            bad = int(np.argmin(outward))
            raise MeshError(f"face {bad} normal does not point out of its owner")
        boundary = self.face_cells[:, 1] < 0
        if np.any(self.face_region[boundary] <= 0):
            bad = int(np.flatnonzero(boundary & (self.face_region <= 0))[0])
            raise MeshError(f"boundary face {bad} has no region id")
        if np.any(self.face_region[~boundary] != 0):
            bad = int(np.flatnonzero(~boundary & (self.face_region != 0))[0])
            raise MeshError(f"interior face {bad} carries a boundary region id")

    def __repr__(self) -> str:
        return (
            f"Mesh(name={self.name!r}, dim={self.dim}, ncells={self.ncells}, "
            f"nfaces={self.nfaces}, regions={self.boundary_regions()})"
        )


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------

#: Node orderings of the six faces of a hexahedron in Gmsh corner order
#: (0-3 bottom CCW viewed from below ... actually CCW from outside).
_HEX_FACES = (
    (0, 3, 2, 1),  # z-min (outward -z)
    (4, 5, 6, 7),  # z-max (outward +z)
    (0, 1, 5, 4),  # y-min
    (2, 3, 7, 6),  # y-max
    (0, 4, 7, 3),  # x-min
    (1, 2, 6, 5),  # x-max
)


def _ragged(arrays: Sequence[Sequence[int]]) -> tuple[np.ndarray, np.ndarray]:
    offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
    for i, a in enumerate(arrays):
        offsets[i + 1] = offsets[i] + len(a)
    indices = np.fromiter(
        (int(v) for a in arrays for v in a), dtype=np.int64, count=int(offsets[-1])
    )
    return offsets, indices


def _newell_normal_area(coords: np.ndarray) -> tuple[np.ndarray, float, np.ndarray]:
    """Normal, area and center of a planar 3-D polygon (Newell's method)."""
    n = np.zeros(3)
    for i in range(len(coords)):
        p, q = coords[i], coords[(i + 1) % len(coords)]
        n += np.cross(p, q)
    n *= 0.5
    area = float(np.linalg.norm(n))
    if area <= 0.0:
        raise MeshError("degenerate 3-D face (zero area)")
    return n / area, area, coords.mean(axis=0)


def build_mesh(
    nodes: np.ndarray,
    cells: Sequence[Sequence[int]],
    dim: int | None = None,
    boundary_marker: Callable[[np.ndarray, np.ndarray], int] | None = None,
    boundary_face_regions: dict[tuple[int, ...], int] | None = None,
    name: str = "mesh",
    validate: bool = True,
) -> Mesh:
    """Build a :class:`Mesh` from nodes and per-cell node lists.

    Parameters
    ----------
    nodes:
        ``(nnodes, dim)`` coordinates.
    cells:
        Per-cell node index lists.  1-D: 2 nodes; 2-D: CCW polygon (order is
        fixed automatically if given CW); 3-D: 8-node hexahedron in Gmsh
        corner order (axis-aligned bricks are what the generator produces).
    boundary_marker:
        ``f(face_center, outward_normal) -> region_id`` used to tag boundary
        faces (default: everything is region 1).
    boundary_face_regions:
        Explicit tags from a mesh file: maps the *sorted node tuple* of a
        boundary face to its region id; wins over ``boundary_marker``.
    """
    nodes = np.asarray(nodes, dtype=np.float64)
    if nodes.ndim == 1:
        nodes = nodes[:, None]
    if dim is None:
        dim = nodes.shape[1]
    if nodes.shape[1] != dim:
        raise MeshError(f"nodes have {nodes.shape[1]} coords but dim={dim}")
    if dim not in (1, 2, 3):
        raise MeshError(f"unsupported dimension {dim}")
    ncells = len(cells)
    if ncells == 0:
        raise MeshError("mesh needs at least one cell")

    cells = [list(map(int, c)) for c in cells]

    # enforce CCW polygons in 2-D so edge traversal gives outward normals
    if dim == 2:
        for i, c in enumerate(cells):
            if polygon_area(nodes[c]) < 0:
                cells[i] = c[::-1]

    # ---- enumerate unique faces ------------------------------------------------
    face_key_to_id: dict[tuple[int, ...], int] = {}
    face_nodes_list: list[tuple[int, ...]] = []
    face_owner: list[int] = []
    face_neigh: list[int] = []
    cell_faces_list: list[list[int]] = [[] for _ in range(ncells)]
    cell_face_signs_list: list[list[int]] = [[] for _ in range(ncells)]
    # geometry accumulated from the owner's traversal
    normals: list[np.ndarray] = []
    areas: list[float] = []
    centers: list[np.ndarray] = []

    def cell_local_faces(c: list[int]) -> list[tuple[int, ...]]:
        if dim == 1:
            if len(c) != 2:
                raise MeshError("1-D cells must have exactly 2 nodes")
            return [(c[0],), (c[1],)]
        if dim == 2:
            return [(c[i], c[(i + 1) % len(c)]) for i in range(len(c))]
        if len(c) != 8:
            raise MeshError("3-D cells must be 8-node hexahedra")
        return [tuple(c[i] for i in f) for f in _HEX_FACES]

    def face_geometry(fnodes: tuple[int, ...], cell_id: int) -> tuple[np.ndarray, float, np.ndarray]:
        coords = nodes[list(fnodes)]
        if dim == 1:
            center = coords[0]
            direction = center - cell_centroid_1d(cell_id)
            normal = np.array([1.0 if direction[0] >= 0 else -1.0])
            return normal, 1.0, center
        if dim == 2:
            normal, length = edge_outward_normal(coords[0], coords[1])
            return normal, length, coords.mean(axis=0)
        return _newell_normal_area(coords)

    def cell_centroid_1d(cell_id: int) -> np.ndarray:
        return nodes[cells[cell_id]].mean(axis=0)

    for cid, c in enumerate(cells):
        for fnodes in cell_local_faces(c):
            key = tuple(sorted(fnodes))
            fid = face_key_to_id.get(key)
            if fid is None:
                fid = len(face_nodes_list)
                face_key_to_id[key] = fid
                face_nodes_list.append(fnodes)
                face_owner.append(cid)
                face_neigh.append(-1)
                n, a, ctr = face_geometry(fnodes, cid)
                normals.append(n)
                areas.append(a)
                centers.append(ctr)
                cell_face_signs_list[cid].append(1)
            else:
                if face_neigh[fid] != -1:
                    raise MeshError(
                        f"face {key} shared by more than two cells "
                        f"({face_owner[fid]}, {face_neigh[fid]}, {cid})"
                    )
                face_neigh[fid] = cid
                cell_face_signs_list[cid].append(-1)
            cell_faces_list[cid].append(fid)

    nfaces = len(face_nodes_list)
    face_cells = np.stack(
        [np.array(face_owner, dtype=np.int64), np.array(face_neigh, dtype=np.int64)], axis=1
    )
    face_normals = np.asarray(normals, dtype=np.float64).reshape(nfaces, dim)
    face_areas = np.asarray(areas, dtype=np.float64)
    face_centers = np.asarray(centers, dtype=np.float64).reshape(nfaces, dim)

    # ---- cell geometry ----------------------------------------------------------
    cell_centroids = np.zeros((ncells, dim))
    cell_volumes = np.zeros(ncells)
    if dim == 1:
        for cid, c in enumerate(cells):
            coords = nodes[c]
            cell_centroids[cid] = coords.mean(axis=0)
            cell_volumes[cid] = float(abs(coords[1, 0] - coords[0, 0]))
    elif dim == 2:
        for cid, c in enumerate(cells):
            coords = nodes[c]
            cell_volumes[cid] = polygon_area(coords)  # positive (CCW enforced)
            cell_centroids[cid] = polygon_centroid(coords)
    else:
        # divergence theorem: V = (1/3) sum_f A_f (n_f . c_f), outward normals
        for cid, c in enumerate(cells):
            cell_centroids[cid] = nodes[c].mean(axis=0)
        for cid in range(ncells):
            vol = 0.0
            for local, fid in enumerate(cell_faces_list[cid]):
                sign = cell_face_signs_list[cid][local]
                vol += sign * face_areas[fid] * float(
                    np.dot(face_normals[fid], face_centers[fid])
                )
            cell_volumes[cid] = vol / 3.0

    # 3-D normals were oriented by the local face ordering; verify they point
    # out of the owner and flip where construction order disagreed.
    if dim == 3:
        owners = face_cells[:, 0]
        outward = np.einsum(
            "fd,fd->f", face_normals, face_centers - cell_centroids[owners]
        )
        flip = outward < 0
        face_normals[flip] *= -1.0
        if np.any(flip):
            # a flipped owner normal means the owner sees the face with sign -1
            for cid in range(ncells):
                for local, fid in enumerate(cell_faces_list[cid]):
                    if flip[fid]:
                        cell_face_signs_list[cid][local] *= -1
        # recompute volumes with corrected orientation
        for cid in range(ncells):
            vol = 0.0
            for local, fid in enumerate(cell_faces_list[cid]):
                sign = cell_face_signs_list[cid][local]
                vol += sign * face_areas[fid] * float(
                    np.dot(face_normals[fid], face_centers[fid])
                )
            cell_volumes[cid] = vol / 3.0

    # ---- boundary regions --------------------------------------------------------
    face_region = np.zeros(nfaces, dtype=np.int64)
    boundary = face_cells[:, 1] < 0
    for fid in np.flatnonzero(boundary):
        key = tuple(sorted(face_nodes_list[fid]))
        if boundary_face_regions and key in boundary_face_regions:
            face_region[fid] = boundary_face_regions[key]
        elif boundary_marker is not None:
            face_region[fid] = int(boundary_marker(face_centers[fid], face_normals[fid]))
        else:
            face_region[fid] = 1
        if face_region[fid] <= 0:
            raise MeshError(f"boundary marker returned non-positive region for face {fid}")

    cn_off, cn_idx = _ragged(cells)
    fn_off, fn_idx = _ragged(face_nodes_list)
    cf_off, cf_idx = _ragged(cell_faces_list)
    signs = np.fromiter(
        (s for row in cell_face_signs_list for s in row),
        dtype=np.int64,
        count=int(cf_off[-1]),
    )

    mesh = Mesh(
        dim=dim,
        nodes=nodes,
        cell_node_offsets=cn_off,
        cell_node_indices=cn_idx,
        face_node_offsets=fn_off,
        face_node_indices=fn_idx,
        face_cells=face_cells,
        face_normals=face_normals,
        face_areas=face_areas,
        face_centers=face_centers,
        face_region=face_region,
        cell_volumes=cell_volumes,
        cell_centroids=cell_centroids,
        cell_face_offsets=cf_off,
        cell_face_indices=cf_idx,
        cell_face_signs=signs,
        name=name,
    )
    if validate:
        mesh.validate()
    return mesh


__all__ = ["Mesh", "build_mesh"]
