"""Mesh partitioning and halo construction (the Metis stand-in).

Two partitioners are provided:

* :func:`partition_rcb` — recursive coordinate bisection on cell centroids;
  fast, geometric, good aspect ratios on the uniform grids the paper uses;
* :func:`partition_graph` — greedy BFS region growth on the cell-adjacency
  graph followed by Kernighan–Lin style boundary refinement to reduce the
  edge cut; this mirrors what Metis.jl provides to Finch.

:func:`build_partition_layout` derives everything the distributed runtime
needs from an assignment vector: owned/ghost cell lists, send/receive maps
per neighbour rank, shared interface faces, and communication-volume
statistics (the quantity Figure 3 of the paper is about).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.mesh import Mesh
from repro.util.errors import MeshError


def weighted_counts(
    n: int, nparts: int, weights: list[float] | np.ndarray | None = None
) -> list[int]:
    """Split ``n`` items into ``nparts`` counts proportional to ``weights``.

    With ``weights=None`` (or all equal) this reproduces the classic
    balanced split exactly — ``n // nparts`` each, the first ``n % nparts``
    parts one larger — which is also what ``np.array_split`` produces, so
    weight-aware call sites stay bit-compatible with their unweighted
    history.  Every count is at least 1 (a rank must own something);
    remainders go to the largest fractional shares, ties broken by part
    index, so the split is deterministic.
    """
    if nparts < 1:
        raise MeshError(f"nparts must be >= 1, got {nparts}")
    if nparts > n:
        raise MeshError(f"cannot split {n} items into {nparts} parts")
    if weights is None:
        return [n // nparts + (1 if p < n % nparts else 0) for p in range(nparts)]
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (nparts,):
        raise MeshError(
            f"weights must have length {nparts}, got shape {w.shape}")
    if not np.all(np.isfinite(w)) or np.any(w < 0) or w.sum() <= 0:
        raise MeshError("weights must be finite, non-negative, not all zero")
    ideal = n * w / w.sum()
    counts = np.floor(ideal).astype(np.int64)
    frac = ideal - counts
    # largest fractional shares get the remainder (ties: lowest part index)
    for p in sorted(range(nparts), key=lambda p: (-frac[p], p)):
        if counts.sum() >= n:
            break
        counts[p] += 1
    # every part owns at least one item: steal from the largest
    for p in range(nparts):
        while counts[p] < 1:
            donor = int(np.argmax(counts))
            counts[donor] -= 1
            counts[p] += 1
    return [int(c) for c in counts]


def partition_rcb(
    centroids: np.ndarray, nparts: int,
    weights: list[float] | np.ndarray | None = None,
) -> np.ndarray:
    """Recursive coordinate bisection.

    Splits the longest coordinate axis at the weighted median, recursing with
    part counts proportional to each half, so any ``nparts`` (not only powers
    of two) gives balanced parts.  ``weights`` skews the per-part cell counts
    (e.g. inverse measured step times, so a slow rank owns fewer cells).
    """
    centroids = np.asarray(centroids, dtype=np.float64)
    if centroids.ndim == 1:
        centroids = centroids[:, None]
    n = len(centroids)
    if nparts < 1:
        raise MeshError(f"nparts must be >= 1, got {nparts}")
    if nparts > n:
        raise MeshError(f"cannot cut {n} cells into {nparts} parts")
    parts = np.zeros(n, dtype=np.int64)

    if weights is not None:
        counts = weighted_counts(n, nparts, weights)

        def recurse_counts(idx: np.ndarray, lo: int, hi: int) -> None:
            if hi - lo == 1:
                parts[idx] = lo
                return
            mid = lo + (hi - lo) // 2
            n_left = sum(counts[lo:mid])
            pts = centroids[idx]
            axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
            order = np.argsort(pts[:, axis], kind="stable")
            recurse_counts(idx[order[:n_left]], lo, mid)
            recurse_counts(idx[order[n_left:]], mid, hi)

        recurse_counts(np.arange(n), 0, nparts)
        return parts

    def recurse(idx: np.ndarray, k: int, first_part: int) -> None:
        if k == 1:
            parts[idx] = first_part
            return
        k_left = k // 2
        # split cell count proportional to part counts
        n_left = int(round(len(idx) * k_left / k))
        n_left = min(max(n_left, k_left), len(idx) - (k - k_left))
        pts = centroids[idx]
        axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        order = np.argsort(pts[:, axis], kind="stable")
        recurse(idx[order[:n_left]], k_left, first_part)
        recurse(idx[order[n_left:]], k - k_left, first_part + k_left)

    recurse(np.arange(n), nparts, 0)
    return parts


def partition_graph(
    mesh: Mesh, nparts: int, refine_passes: int = 4, seed: int = 0,
    weights: list[float] | np.ndarray | None = None,
) -> np.ndarray:
    """Greedy growth + KL-style refinement on the cell-adjacency graph.

    ``weights`` skews the per-part target sizes (see
    :func:`weighted_counts`); the refinement's balance guard then works
    against the per-part targets rather than one uniform bound.
    """
    n = mesh.ncells
    if nparts < 1:
        raise MeshError(f"nparts must be >= 1, got {nparts}")
    if nparts > n:
        raise MeshError(f"cannot cut {n} cells into {nparts} parts")
    if nparts == 1:
        return np.zeros(n, dtype=np.int64)

    adj = mesh.cell_neighbors()
    parts = np.full(n, -1, dtype=np.int64)
    target = weighted_counts(n, nparts, weights)
    rng = np.random.default_rng(seed)

    # --- greedy BFS growth: seed each part at the unassigned cell farthest
    # (in index-space BFS distance) from previous seeds, grow to target size
    unassigned = set(range(n))
    seed_cell = int(rng.integers(n))
    for p in range(nparts):
        if seed_cell not in unassigned:
            seed_cell = next(iter(unassigned))
        frontier = [seed_cell]
        size = 0
        visited_order: list[int] = []
        while frontier and size < target[p]:
            nxt: list[int] = []
            for c in frontier:
                if parts[c] != -1:
                    continue
                parts[c] = p
                unassigned.discard(c)
                visited_order.append(c)
                size += 1
                if size >= target[p]:
                    break
                for nb in adj[c]:
                    if parts[nb] == -1:
                        nxt.append(nb)
            frontier = nxt
        # disconnected leftovers: grab arbitrary unassigned cells
        while size < target[p] and unassigned:
            c = unassigned.pop()
            parts[c] = p
            visited_order.append(c)
            size += 1
        # next seed: a far frontier cell
        far = None
        for c in reversed(visited_order):
            for nb in adj[c]:
                if parts[nb] == -1:
                    far = nb
                    break
            if far is not None:
                break
        seed_cell = far if far is not None else (next(iter(unassigned)) if unassigned else 0)

    # --- KL-style boundary refinement: move boundary cells to the adjacent
    # part with the largest gain, respecting balance
    sizes = np.bincount(parts, minlength=nparts)
    if weights is None:
        max_size = np.full(nparts, int(np.ceil(n / nparts * 1.05)) + 1)
    else:
        max_size = np.array([int(np.ceil(t * 1.05)) + 1 for t in target])
    for _ in range(refine_passes):
        moved = 0
        for c in range(n):
            p = parts[c]
            if sizes[p] <= 1:
                continue
            # gain of moving c to part q = (neighbours in q) - (neighbours in p)
            counts: dict[int, int] = {}
            same = 0
            for nb in adj[c]:
                q = parts[nb]
                if q == p:
                    same += 1
                else:
                    counts[q] = counts.get(q, 0) + 1
            best_q, best_gain = -1, 0
            for q, cnt in counts.items():
                gain = cnt - same
                if gain > best_gain and sizes[q] < max_size[q]:
                    best_q, best_gain = q, gain
            if best_q >= 0:
                sizes[p] -= 1
                sizes[best_q] += 1
                parts[c] = best_q
                moved += 1
        if moved == 0:
            break
    return parts


def partition_cells(
    mesh: Mesh, nparts: int, method: str = "graph",
    weights: list[float] | np.ndarray | None = None, **kwargs,
) -> np.ndarray:
    """Partition cells into ``nparts``; ``method`` is ``'graph'`` or ``'rcb'``."""
    if method == "rcb":
        return partition_rcb(mesh.cell_centroids, nparts, weights=weights)
    if method == "graph":
        return partition_graph(mesh, nparts, weights=weights, **kwargs)
    raise MeshError(f"unknown partition method {method!r} (use 'graph' or 'rcb')")


@dataclass
class PartitionLayout:
    """Everything a rank needs to run on its piece of the mesh.

    Local cell numbering per part is **owned cells first, then ghosts**, so
    owned data is a contiguous prefix (the layout the generated distributed
    code assumes).
    """

    nparts: int
    parts: np.ndarray  # (ncells,) part id per global cell
    owned: list[np.ndarray]  # per part: global ids of owned cells
    ghosts: list[np.ndarray]  # per part: global ids of ghost cells
    # per part: {neighbour_part: global cell ids we send to it}
    send_cells: list[dict[int, np.ndarray]]
    # per part: {neighbour_part: global cell ids we receive from it}
    recv_cells: list[dict[int, np.ndarray]]
    interface_faces: list[np.ndarray]  # per part: global face ids cut by the partition
    global_to_local: list[dict[int, int]] = field(repr=False, default_factory=list)

    @property
    def cut_face_count(self) -> int:
        """Total number of faces crossing a partition boundary."""
        seen: set[int] = set()
        for faces in self.interface_faces:
            seen.update(int(f) for f in faces)
        return len(seen)

    def comm_volume_doubles(self, dofs_per_cell: int = 1) -> int:
        """Total values exchanged per halo update (sum over ranks of sends)."""
        return sum(
            len(cells) * dofs_per_cell
            for sends in self.send_cells
            for cells in sends.values()
        )

    def local_size(self, part: int) -> int:
        return len(self.owned[part]) + len(self.ghosts[part])

    def localize(self, part: int, global_cells: np.ndarray) -> np.ndarray:
        """Map global cell ids to this part's local numbering."""
        g2l = self.global_to_local[part]
        return np.array([g2l[int(c)] for c in global_cells], dtype=np.int64)


def build_partition_layout(
    mesh: Mesh, parts: np.ndarray, halo_layers: int = 1
) -> PartitionLayout:
    """Derive owned/ghost/send/recv structure from an assignment vector.

    ``halo_layers`` sets the ghost depth: first-order upwind stencils need
    one layer; second-order (MUSCL) reconstructions read the neighbours of
    neighbours and need two.
    """
    parts = np.asarray(parts, dtype=np.int64)
    if len(parts) != mesh.ncells:
        raise MeshError("partition vector length does not match cell count")
    if parts.min() < 0:
        raise MeshError("partition vector contains unassigned cells (-1)")
    if halo_layers < 1:
        raise MeshError(f"halo_layers must be >= 1, got {halo_layers}")
    nparts = int(parts.max()) + 1

    owned = [np.flatnonzero(parts == p) for p in range(nparts)]
    for p in range(nparts):
        if len(owned[p]) == 0:
            raise MeshError(f"partition {p} owns no cells")

    adj = mesh.cell_neighbors()
    ghost_lists: list[list[int]] = []
    recv: list[dict[int, list[int]]] = [dict() for _ in range(nparts)]
    for p in range(nparts):
        owned_set = set(int(c) for c in owned[p])
        ghosts_p: list[int] = []
        seen = set(owned_set)
        current = owned_set
        for _ in range(halo_layers):
            layer = sorted(
                {nb for c in current for nb in adj[c]} - seen
            )
            for g in layer:
                ghosts_p.append(g)
                seen.add(g)
                recv[p].setdefault(int(parts[g]), []).append(g)
            current = set(layer)
        ghost_lists.append(ghosts_p)

    recv_cells = [
        {q: np.array(v, dtype=np.int64) for q, v in sorted(r.items())} for r in recv
    ]
    # symmetry by construction: what p receives from q is what q sends to p
    send_cells: list[dict[int, np.ndarray]] = [dict() for _ in range(nparts)]
    for p in range(nparts):
        for q, cells in recv_cells[p].items():
            send_cells[q][p] = cells
    send_cells = [dict(sorted(s.items())) for s in send_cells]

    ghosts = [np.array(g, dtype=np.int64) for g in ghost_lists]

    # faces cut by the partition (layer-1 interfaces; used for comm stats)
    iface: list[list[int]] = [[] for _ in range(nparts)]
    for f in mesh.interior_faces():
        a, b = (int(c) for c in mesh.face_cells[f])
        pa, pb = int(parts[a]), int(parts[b])
        if pa != pb:
            iface[pa].append(int(f))
            iface[pb].append(int(f))
    interface_faces = [np.array(v, dtype=np.int64) for v in iface]

    g2l: list[dict[int, int]] = []
    for p in range(nparts):
        table = {int(g): i for i, g in enumerate(owned[p])}
        base = len(owned[p])
        for i, g in enumerate(ghosts[p]):
            table[int(g)] = base + i
        g2l.append(table)

    return PartitionLayout(
        nparts=nparts,
        parts=parts,
        owned=owned,
        ghosts=ghosts,
        send_cells=send_cells,
        recv_cells=recv_cells,
        interface_faces=interface_faces,
        global_to_local=g2l,
    )


__all__ = [
    "weighted_counts",
    "partition_rcb",
    "partition_graph",
    "partition_cells",
    "PartitionLayout",
    "build_partition_layout",
]
