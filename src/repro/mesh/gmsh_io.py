"""Gmsh v2.2 ASCII mesh reader/writer.

Supports what the paper's runs need: 2-node lines (boundary tags), triangles,
quadrilaterals and 8-node hexahedra, with physical tags mapped onto boundary
region ids.  Cells of the highest dimension present become FV cells; lower-
dimensional tagged elements become boundary-region tags.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.mesh.mesh import Mesh, build_mesh
from repro.util.errors import MeshError

# gmsh element type -> (node count, element dimension)
_ELEMENT_TYPES = {
    1: (2, 1),  # 2-node line
    2: (3, 2),  # 3-node triangle
    3: (4, 2),  # 4-node quadrangle
    5: (8, 3),  # 8-node hexahedron
    15: (1, 0),  # 1-node point
}


def read_gmsh(path: str | Path | io.TextIOBase, name: str | None = None) -> Mesh:
    """Read a Gmsh 2.2 ASCII ``.msh`` file into a :class:`Mesh`.

    Malformed input — truncated files, garbage tokens, dangling node
    references — raises :class:`MeshError` (code RPR501), never a bare
    ``IndexError``/``ValueError`` from the parser internals.
    """
    if isinstance(path, (str, Path)):
        text = Path(path).read_text()
        label = name or Path(path).stem
    else:
        text = path.read()
        label = name or "gmsh"
    try:
        return _parse_gmsh(text, label)
    except MeshError as exc:
        if exc.code == MeshError.default_code:
            exc.code = "RPR501"
        raise
    except (IndexError, KeyError, ValueError) as exc:
        raise MeshError(
            f"malformed gmsh input {label!r}: {type(exc).__name__}: {exc}",
            code="RPR501",
        ) from exc


def _parse_gmsh(text: str, label: str) -> Mesh:
    lines = [ln.strip() for ln in text.splitlines()]
    i = 0

    def expect_section(tag: str) -> int:
        nonlocal i
        while i < len(lines) and lines[i] != tag:
            i += 1
        if i >= len(lines):
            raise MeshError(f"gmsh file missing section {tag}")
        i += 1
        return i

    expect_section("$MeshFormat")
    fmt = lines[i].split()
    if not fmt or not fmt[0].startswith("2."):
        raise MeshError(f"unsupported gmsh format {fmt[0] if fmt else '?'} (need 2.x ASCII)")

    expect_section("$Nodes")
    nnodes = int(lines[i])
    i += 1
    node_ids: dict[int, int] = {}
    coords = np.zeros((nnodes, 3))
    for k in range(nnodes):
        parts = lines[i + k].split()
        node_ids[int(parts[0])] = k
        coords[k] = [float(parts[1]), float(parts[2]), float(parts[3])]
    i += nnodes

    expect_section("$Elements")
    nelems = int(lines[i])
    i += 1
    elements: list[tuple[int, int, list[int]]] = []  # (dim, physical_tag, nodes)
    for k in range(nelems):
        parts = [int(p) for p in lines[i + k].split()]
        etype = parts[1]
        if etype not in _ELEMENT_TYPES:
            raise MeshError(f"unsupported gmsh element type {etype}")
        nnod, edim = _ELEMENT_TYPES[etype]
        ntags = parts[2]
        phys = parts[3] if ntags >= 1 else 0
        enodes = [node_ids[n] for n in parts[3 + ntags :]]
        if len(enodes) != nnod:
            raise MeshError(f"element {parts[0]}: expected {nnod} nodes, got {len(enodes)}")
        elements.append((edim, phys, enodes))

    if not elements:
        raise MeshError("gmsh file contains no elements")
    mesh_dim = max(e[0] for e in elements)
    if mesh_dim == 0:
        raise MeshError("gmsh file contains only point elements")

    cells = [e[2] for e in elements if e[0] == mesh_dim]
    boundary_face_regions = {
        tuple(sorted(e[2])): (e[1] if e[1] > 0 else 1)
        for e in elements
        if e[0] == mesh_dim - 1
    }

    # drop unused trailing coordinates (gmsh always stores xyz)
    used = coords[:, :mesh_dim] if mesh_dim < 3 else coords
    return build_mesh(
        used,
        cells,
        dim=mesh_dim,
        boundary_face_regions=boundary_face_regions or None,
        boundary_marker=(lambda c, n: 1) if not boundary_face_regions else None,
        name=label,
    )


def write_gmsh(mesh: Mesh, path: str | Path | io.TextIOBase) -> None:
    """Write ``mesh`` as Gmsh 2.2 ASCII, including boundary-region elements."""
    out = io.StringIO()
    out.write("$MeshFormat\n2.2 0 8\n$EndMeshFormat\n")
    out.write("$Nodes\n")
    out.write(f"{mesh.nnodes}\n")
    for k in range(mesh.nnodes):
        xyz = np.zeros(3)
        xyz[: mesh.dim] = mesh.nodes[k]
        out.write(f"{k + 1} {xyz[0]:.16g} {xyz[1]:.16g} {xyz[2]:.16g}\n")
    out.write("$EndNodes\n$Elements\n")

    # boundary elements first, then cells
    boundary = [int(f) for f in mesh.boundary_faces()]
    cell_type = {1: 1, 2: None, 3: 5}[mesh.dim]
    bdry_type = {1: 15, 2: 1, 3: 3}[mesh.dim]
    records: list[str] = []
    eid = 1
    for f in boundary:
        nodes = " ".join(str(n + 1) for n in mesh.face_nodes(f))
        records.append(f"{eid} {bdry_type} 2 {int(mesh.face_region[f])} 0 {nodes}")
        eid += 1
    for c in range(mesh.ncells):
        cnodes = mesh.cell_nodes(c)
        if mesh.dim == 2:
            etype = 2 if len(cnodes) == 3 else 3
        else:
            etype = cell_type
            if etype is None or len(cnodes) not in (2, 8):
                raise MeshError(f"cannot write cell {c} with {len(cnodes)} nodes")
        nodes = " ".join(str(n + 1) for n in cnodes)
        records.append(f"{eid} {etype} 2 0 0 {nodes}")
        eid += 1
    out.write(f"{len(records)}\n")
    out.write("\n".join(records))
    out.write("\n$EndElements\n")

    if isinstance(path, (str, Path)):
        Path(path).write_text(out.getvalue())
    else:
        path.write(out.getvalue())


__all__ = ["read_gmsh", "write_gmsh"]
