"""Mesh substrate: unstructured FV meshes, structured generation, I/O,
partitioning and halo construction.

This package plays the role of Finch's internal grid utility + Gmsh import +
Metis partitioning:

* :class:`~repro.mesh.mesh.Mesh` — face-based finite-volume mesh with owner/
  neighbour connectivity, outward normals, areas, volumes and boundary
  regions;
* :func:`~repro.mesh.grid.structured_grid` — the "simple generation utility"
  (uniform 1-D/2-D/3-D grids, e.g. the paper's 120x120 domain);
* :mod:`~repro.mesh.gmsh_io` — Gmsh v2.2 ASCII reader/writer;
* :mod:`~repro.mesh.partition` — recursive coordinate bisection and
  KL-refined greedy graph partitioning (Metis stand-in) plus halo maps used
  by the distributed runtime.
"""

from repro.mesh.mesh import Mesh, build_mesh
from repro.mesh.grid import structured_grid, interval_mesh
from repro.mesh.partition import (
    partition_cells,
    partition_rcb,
    partition_graph,
    PartitionLayout,
    build_partition_layout,
)
from repro.mesh.gmsh_io import read_gmsh, write_gmsh
from repro.mesh.medit_io import read_medit, write_medit
from repro.mesh.vtk_io import read_vtk, write_vtk
from repro.mesh.grid import triangulated_grid

__all__ = [
    "Mesh",
    "build_mesh",
    "structured_grid",
    "interval_mesh",
    "partition_cells",
    "partition_rcb",
    "partition_graph",
    "PartitionLayout",
    "build_partition_layout",
    "read_gmsh",
    "write_gmsh",
    "read_medit",
    "read_vtk",
    "write_medit",
    "write_vtk",
    "triangulated_grid",
]
