"""Device specifications for the simulated GPU.

Numbers are the published datasheet values for the cards the paper used.
The paper notes its kernels ran against the *double-precision* roofline
(FP32 was insufficient for long simulations), so FP64 peak is the number
that matters for the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU model.

    Attributes
    ----------
    fp64_peak_gflops:
        Peak double-precision rate (GFLOP/s).  GA102 (A6000) executes FP64
        at 1/64 of FP32; GA100 (A100) has full-rate FP64 tensor-free at
        9.7 TFLOP/s.
    dram_bw_gbs:
        Device memory bandwidth (GB/s).
    pcie_bw_gbs / pcie_latency_s:
        Host link model used by the transfer engine (effective, not
        theoretical, bandwidth).
    issue_efficiency:
        Fraction of peak issue rate a real-world kernel with branches and
        mixed instructions sustains (calibrated so the BTE kernel lands near
        the paper's measured 49 % of DP peak).
    mem_efficiency:
        Achievable fraction of DRAM bandwidth for strided FV access.
    sm_activity:
        Fraction of cycles in which a busy SM has an *eligible* warp
        (memory/sync stalls keep it below one) — this is what Nsight's
        "SM utilization" reports; the paper measured 86 %.
    """

    name: str
    num_sms: int
    clock_ghz: float
    max_threads_per_sm: int
    warp_size: int
    fp64_peak_gflops: float
    fp32_peak_gflops: float
    dram_bw_gbs: float
    memory_gb: float
    pcie_bw_gbs: float
    pcie_latency_s: float
    launch_latency_s: float
    issue_efficiency: float = 0.50
    mem_efficiency: float = 0.65
    sm_activity: float = 0.87

    def fp64_peak_flops(self) -> float:
        return self.fp64_peak_gflops * 1e9

    def dram_bw_bytes(self) -> float:
        return self.dram_bw_gbs * 1e9

    def pcie_bw_bytes(self) -> float:
        return self.pcie_bw_gbs * 1e9

    def max_resident_threads(self) -> int:
        return self.num_sms * self.max_threads_per_sm


#: NVIDIA RTX A6000 (GA102): 84 SMs, FP64 = FP32/64.
A6000 = DeviceSpec(
    name="NVIDIA RTX A6000",
    num_sms=84,
    clock_ghz=1.80,
    max_threads_per_sm=1536,
    warp_size=32,
    fp64_peak_gflops=604.8,  # 38.7 TFLOP/s FP32 / 64
    fp32_peak_gflops=38710.0,
    dram_bw_gbs=768.0,
    memory_gb=48.0,
    pcie_bw_gbs=24.0,  # effective PCIe 4.0 x16
    pcie_latency_s=8e-6,
    launch_latency_s=6e-6,
)

#: NVIDIA A100-SXM4-40GB (GA100): full-rate FP64.
A100 = DeviceSpec(
    name="NVIDIA A100 40GB",
    num_sms=108,
    clock_ghz=1.41,
    max_threads_per_sm=2048,
    warp_size=32,
    fp64_peak_gflops=9700.0,
    fp32_peak_gflops=19500.0,
    dram_bw_gbs=1555.0,
    memory_gb=40.0,
    pcie_bw_gbs=24.0,
    pcie_latency_s=8e-6,
    launch_latency_s=6e-6,
)

#: A deliberately small device for fast tests.
LAPTOP_GPU = DeviceSpec(
    name="test-gpu",
    num_sms=8,
    clock_ghz=1.0,
    max_threads_per_sm=1024,
    warp_size=32,
    fp64_peak_gflops=50.0,
    fp32_peak_gflops=1600.0,
    dram_bw_gbs=100.0,
    memory_gb=4.0,
    pcie_bw_gbs=8.0,
    pcie_latency_s=10e-6,
    launch_latency_s=10e-6,
)

__all__ = ["DeviceSpec", "A6000", "A100", "LAPTOP_GPU"]
