"""Profiling counters for the simulated device.

Accumulates per-kernel launch records and transfer events and derives the
three metrics the paper reports from Nsight profiling of the one-GPU BTE run:

======================  =====================================================
paper metric            model definition
======================  =====================================================
SM utilisation          fraction of busy kernel time during which SMs have
                        resident work: occupancy x tail efficiency, weighted
                        by execution time
memory throughput       achieved DRAM bytes / (busy time x peak bandwidth)
FLOP performance        achieved FLOPs / (busy time x FP64 peak)
======================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.spec import DeviceSpec


@dataclass
class ProfileReport:
    """Aggregated metrics for a set of kernel launches."""

    device: str
    n_launches: int
    busy_time: float
    total_flops: float
    total_bytes: float
    sm_utilization: float
    memory_throughput_fraction: float
    flop_fraction_of_peak: float
    transfer_bytes: float
    transfer_time: float

    def table(self) -> str:
        """Formatted like the paper's inline profiling table."""
        rows = [
            ("SM utilization", f"{self.sm_utilization * 100:.0f}%"),
            ("memory throughput", f"{self.memory_throughput_fraction * 100:.0f}%"),
            ("FLOP performance", f"{self.flop_fraction_of_peak * 100:.0f}% of peak"),
        ]
        width = max(len(r[0]) for r in rows)
        return "\n".join(f"{name:<{width}} | {value}" for name, value in rows)

    def as_dict(self) -> dict:
        """JSON-safe view for the run report's ``gpu`` section."""
        return {
            "device": self.device,
            "n_launches": self.n_launches,
            "busy_time_s": self.busy_time,
            "total_flops": self.total_flops,
            "total_bytes": self.total_bytes,
            "sm_utilization": self.sm_utilization,
            "memory_throughput_fraction": self.memory_throughput_fraction,
            "flop_fraction_of_peak": self.flop_fraction_of_peak,
            "transfer_bytes": self.transfer_bytes,
            "transfer_time_s": self.transfer_time,
        }


@dataclass
class TransferEvent:
    """One H2D/D2H copy (direction-tagged for the run report/trace)."""

    kind: str  # 'h2d' | 'd2h'
    nbytes: int
    duration: float


@dataclass
class Profiler:
    """Accumulates launch/transfer records for one device."""

    spec: DeviceSpec
    launches: list = field(default_factory=list)
    transfers: list = field(default_factory=list)
    transfer_bytes: float = 0.0
    transfer_time: float = 0.0

    def record_launch(self, record) -> None:
        self.launches.append(record)

    def record_transfer(self, nbytes: int, duration: float, kind: str = "h2d") -> None:
        self.transfers.append(TransferEvent(kind, nbytes, duration))
        self.transfer_bytes += nbytes
        self.transfer_time += duration

    def transfer_summary(self) -> dict:
        """Per-direction totals (the report's H2D/D2H accounting)."""
        out = {
            "total_bytes": self.transfer_bytes,
            "total_time_s": self.transfer_time,
            "count": len(self.transfers),
        }
        for kind in ("h2d", "d2h"):
            events = [t for t in self.transfers if t.kind == kind]
            out[kind] = {
                "count": len(events),
                "bytes": sum(t.nbytes for t in events),
                "time_s": sum(t.duration for t in events),
            }
        return out

    def kernel_rows(self) -> list[dict]:
        """Per-kernel roofline attribution over the recorded launches.

        One JSON-safe row per kernel name (first-launch order) with self
        time (kernel durations including launch latency), achieved FLOP/byte
        intensity, the roofline ridge intensity of the device, and the
        achieved-vs-peak fractions the paper's Tab. 1 profile reports.
        """
        order: list[str] = []
        groups: dict[str, list] = {}
        for rec in self.launches:
            if rec.kernel not in groups:
                order.append(rec.kernel)
                groups[rec.kernel] = []
            groups[rec.kernel].append(rec)
        peak_flops = self.spec.fp64_peak_flops()
        peak_bw = self.spec.dram_bw_bytes()
        ridge = peak_flops / peak_bw if peak_bw > 0 else 0.0
        rows = []
        for name in order:
            recs = groups[name]
            self_s = sum(r.duration for r in recs)
            exec_s = sum(r.exec_time for r in recs)
            flops = sum(r.total_flops for r in recs)
            nbytes = sum(r.total_bytes for r in recs)
            flop_time = sum(r.flop_time for r in recs)
            mem_time = sum(r.mem_time for r in recs)
            if exec_s > 0:
                flop_frac = min(flops / (exec_s * peak_flops), 1.0)
                mem_frac = min(nbytes / (exec_s * peak_bw), 1.0)
                sm_util = min(
                    sum(r.exec_time * r.occupancy * r.tail_efficiency for r in recs)
                    / exec_s
                    * self.spec.sm_activity,
                    1.0,
                )
            else:
                flop_frac = mem_frac = sm_util = 0.0
            rows.append(
                {
                    "name": name,
                    "count": len(recs),
                    "self_s": self_s,
                    "exec_s": exec_s,
                    "launch_latency_s": self_s - exec_s,
                    "mean_s": self_s / len(recs) if recs else 0.0,
                    "flops": flops,
                    "bytes": nbytes,
                    "intensity_flop_per_byte": flops / nbytes if nbytes > 0 else 0.0,
                    "ridge_flop_per_byte": ridge,
                    "bound": "compute" if flop_time >= mem_time else "memory",
                    "flop_fraction_of_peak": flop_frac,
                    "memory_throughput_fraction": mem_frac,
                    "sm_utilization": sm_util,
                }
            )
        return rows

    def report(self, kernel: str | None = None) -> ProfileReport:
        """Metrics over all launches, or only those of one kernel name."""
        records = [r for r in self.launches if kernel is None or r.kernel == kernel]
        busy = sum(r.exec_time for r in records)
        flops = sum(r.total_flops for r in records)
        nbytes = sum(r.total_bytes for r in records)
        if busy > 0:
            flop_frac = flops / (busy * self.spec.fp64_peak_flops())
            mem_frac = nbytes / (busy * self.spec.dram_bw_bytes())
            sm_util = (
                sum(
                    r.exec_time * r.occupancy * r.tail_efficiency
                    for r in records
                )
                / busy
                * self.spec.sm_activity
            )
        else:
            flop_frac = mem_frac = sm_util = 0.0
        return ProfileReport(
            device=self.spec.name,
            n_launches=len(records),
            busy_time=busy,
            total_flops=flops,
            total_bytes=nbytes,
            sm_utilization=min(sm_util, 1.0),
            memory_throughput_fraction=min(mem_frac, 1.0),
            flop_fraction_of_peak=min(flop_frac, 1.0),
            transfer_bytes=self.transfer_bytes,
            transfer_time=self.transfer_time,
        )

    def reset(self) -> None:
        self.launches.clear()
        self.transfers.clear()
        self.transfer_bytes = 0.0
        self.transfer_time = 0.0


__all__ = ["Profiler", "ProfileReport", "TransferEvent"]

