"""The simulated device: buffers, transfers, streams, timelines.

Semantics mirror CUDA's host API closely enough that the generated hybrid
code reads like real CUDA host code:

* ``device.alloc(array)`` copies host data into a device buffer (H2D charged
  to the transfer link);
* ``stream.launch(kernel, n_threads, args...)`` is *asynchronous*: it
  executes the body immediately (data correctness) but only advances the
  stream's virtual timeline — the host clock is not blocked;
* ``device.synchronize(host_time)`` joins the host and device timelines the
  way ``cudaDeviceSynchronize`` does: the host resumes at
  ``max(host_time, device_time)``.

The hybrid executor uses that join to model the paper's Figure 6 overlap
(interior kernel on GPU concurrent with boundary callbacks on CPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.kernel import Kernel, KernelLaunchRecord, model_launch
from repro.gpu.profiler import Profiler
from repro.gpu.spec import DeviceSpec, A6000
from repro.obs import get_metrics, get_tracer
from repro.runtime.faults import get_injector
from repro.util.errors import (
    CodegenError,
    DeviceOOMError,
    DeviceResidencyError,
    KernelFaultError,
)
from repro.util.logging import get_logger
from repro.util.timing import VirtualClock

logger = get_logger("gpu.device")


@dataclass
class DeviceBuffer:
    """A named allocation in simulated device memory.

    ``array`` is the live numpy storage — kernels mutate it in place.  The
    ``on_device`` flag tracks residency so stale-access bugs (reading a
    buffer on the host without a D2H copy) are caught by tests.
    """

    name: str
    array: np.ndarray
    on_device: bool = True

    @property
    def nbytes(self) -> int:
        return self.array.nbytes


class Stream:
    """An in-order execution queue with its own virtual timeline."""

    def __init__(self, device: "Device", name: str = "stream0"):
        self.device = device
        self.name = name
        self.clock = VirtualClock()
        self.records: list[KernelLaunchRecord] = []

    def launch(self, kernel: Kernel, n_threads: int, *args, block: int = 256,
               host_time: float = 0.0) -> KernelLaunchRecord:
        """Asynchronously run ``kernel`` over ``n_threads`` threads.

        The body runs now (so results are immediately correct); the stream
        timeline advances by the modelled duration, starting no earlier than
        ``host_time`` (a kernel cannot start before the host issued it).
        """
        self.device._maybe_inject("launch", what=kernel.name)
        record = model_launch(self.device.spec, kernel, n_threads, block)
        # launch-queue backlog: device work still pending when the host
        # issues this launch (the overlap headroom the paper exploits)
        backlog = max(0.0, self.clock.now() - host_time)
        self.clock.advance_to(host_time)
        record.start = self.clock.now()
        kernel.body(*args)
        self.clock.advance(record.duration)
        record.end = self.clock.now()
        self.records.append(record)
        self.device.profiler.record_launch(record)
        metrics = self.device.metrics
        if metrics.enabled:
            dev, kname = self.device.name, kernel.name
            self.device._m_launches.inc(1, device=dev, kernel=kname)
            self.device._m_occupancy.observe(record.occupancy, device=dev,
                                             kernel=kname)
            self.device._m_queue_depth.set(backlog, device=dev,
                                           stream=self.name)
        tracer = self.device.tracer
        if tracer.enabled:
            tracer.complete(
                f"{self.device.name}/{self.name}", kernel.name,
                record.start, record.end, cat="kernel",
                n_threads=n_threads, block=block, bound=record.bound,
                occupancy=round(record.occupancy, 4),
                flops=record.total_flops, bytes=record.total_bytes,
            )
        return record

    def busy_until(self) -> float:
        return self.clock.now()


class Device:
    """One simulated GPU."""

    def __init__(self, spec: DeviceSpec = A6000, name: str = "gpu0"):
        self.spec = spec
        self.name = name
        self.buffers: dict[str, DeviceBuffer] = {}
        self.default_stream = Stream(self, "stream0")
        self.transfer_clock = VirtualClock()
        self.profiler = Profiler(spec)
        self.allocated_bytes = 0
        self.tracer = get_tracer()
        # metric instruments (shared no-ops when metrics are disabled)
        metrics = get_metrics()
        self.metrics = metrics
        self._m_launches = metrics.counter(
            "gpu_kernel_launches_total", "kernel launches per device/kernel")
        self._m_occupancy = metrics.histogram(
            "gpu_kernel_occupancy", "modelled occupancy of each launch",
            buckets=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0))
        self._m_queue_depth = metrics.gauge(
            "gpu_launch_queue_depth_seconds",
            "device backlog still pending when the host issues a launch")
        self._m_transfer_bytes = metrics.counter(
            "gpu_transfer_bytes_total", "H2D/D2H bytes over the PCIe link")
        self._m_allocated = metrics.gauge(
            "gpu_allocated_bytes", "simulated device memory in use")

    # ----------------------------------------------------------- injection
    def _maybe_inject(self, op: str, what: str = "") -> None:
        """Raise an injected device fault for this operation, if one fires."""
        injector = get_injector()
        if not injector.enabled:
            return
        kind = injector.device_fault(self.name, op)
        if kind is None:
            return
        from repro.runtime.resilience import get_resilience_log

        get_resilience_log().record_injected(kind, device=self.name, op=op)
        if self.tracer.enabled:
            self.tracer.instant(f"{self.name}/faults", f"fault:{kind}:{op}",
                                self.transfer_clock.now(), cat="fault",
                                what=what)
        detail = f" ({what})" if what else ""
        if kind == "oom":
            raise DeviceOOMError(
                f"device {self.name}: out of memory during {op}{detail} [injected]"
            )
        raise KernelFaultError(
            f"device {self.name}: kernel fault during {op}{detail} [injected]"
        )

    # ------------------------------------------------------------- memory
    def alloc(self, name: str, host_array: np.ndarray, host_time: float = 0.0) -> DeviceBuffer:
        """Allocate + copy ``host_array`` to the device (charged H2D)."""
        if name in self.buffers:
            raise CodegenError(f"device buffer {name!r} already allocated")
        self._maybe_inject("alloc", what=name)
        arr = np.array(host_array, dtype=np.float64, copy=True, order="C")
        buf = DeviceBuffer(name, arr, on_device=True)
        self.buffers[name] = buf
        self.allocated_bytes += buf.nbytes
        limit = self.spec.memory_gb * 1e9
        if self.allocated_bytes > limit:
            raise DeviceOOMError(
                f"device {self.name}: out of memory "
                f"({self.allocated_bytes / 1e9:.2f} GB > {self.spec.memory_gb} GB)"
            )
        logger.debug("%s: alloc %r (%.3f MB, %.3f MB total)",
                     self.name, name, buf.nbytes / 1e6, self.allocated_bytes / 1e6)
        if self.metrics.enabled:
            self._m_allocated.set(self.allocated_bytes, device=self.name)
        self._charge_transfer(buf.nbytes, host_time, "h2d", name)
        return buf

    def alloc_empty(self, name: str, shape: tuple[int, ...]) -> DeviceBuffer:
        """Allocate without an H2D copy (like ``CUDA.zeros``)."""
        if name in self.buffers:
            raise CodegenError(f"device buffer {name!r} already allocated")
        self._maybe_inject("alloc", what=name)
        buf = DeviceBuffer(name, np.zeros(shape, dtype=np.float64), on_device=True)
        self.buffers[name] = buf
        self.allocated_bytes += buf.nbytes
        if self.metrics.enabled:
            self._m_allocated.set(self.allocated_bytes, device=self.name)
        return buf

    def free(self, name: str) -> None:
        buf = self.buffers.pop(name, None)
        if buf is not None:
            self.allocated_bytes -= buf.nbytes
            if self.metrics.enabled:
                self._m_allocated.set(self.allocated_bytes, device=self.name)

    def h2d(self, name: str, host_array: np.ndarray, host_time: float = 0.0) -> float:
        """Copy host data into an existing buffer; returns transfer end time."""
        buf = self._get(name)
        if buf.array.shape != host_array.shape:
            raise CodegenError(
                f"h2d {name!r}: shape mismatch {host_array.shape} -> {buf.array.shape}"
            )
        self._maybe_inject("h2d", what=name)
        buf.array[...] = host_array
        buf.on_device = True
        return self._charge_transfer(buf.nbytes, host_time, "h2d", name)

    def mark_host_dirty(self, name: str) -> None:
        """Record that the host copy was modified: the device copy is stale.

        A degraded (CPU re-executed) task calls this so a later ``d2h``
        cannot silently read the superseded device data.
        """
        self._get(name).on_device = False

    def d2h(self, name: str, out: np.ndarray | None = None, host_time: float = 0.0
            ) -> tuple[np.ndarray, float]:
        """Copy a buffer back to the host; returns ``(array, end_time)``."""
        buf = self._get(name)
        if not buf.on_device:
            raise DeviceResidencyError(
                f"d2h {name!r} on {self.name}: device copy is stale (the host "
                "copy was modified after the last h2d; re-upload before reading)"
            )
        end = self._charge_transfer(buf.nbytes, host_time, "d2h", name)
        if out is not None:
            out[...] = buf.array
            return out, end
        return buf.array.copy(), end

    def _get(self, name: str) -> DeviceBuffer:
        buf = self.buffers.get(name)
        if buf is None:
            raise CodegenError(f"no device buffer named {name!r}")
        return buf

    def _charge_transfer(self, nbytes: int, host_time: float,
                         kind: str = "h2d", label: str = "") -> float:
        """Advance the transfer timeline by latency + size/bandwidth."""
        self.transfer_clock.advance_to(host_time)
        start = self.transfer_clock.now()
        dt = self.spec.pcie_latency_s + nbytes / self.spec.pcie_bw_bytes()
        self.transfer_clock.advance(dt)
        self.profiler.record_transfer(nbytes, dt, kind)
        if self.metrics.enabled:
            self._m_transfer_bytes.inc(nbytes, device=self.name, direction=kind)
        if self.tracer.enabled:
            self.tracer.complete(
                f"{self.name}/transfer", f"{kind}:{label}" if label else kind,
                start, self.transfer_clock.now(), cat="transfer", bytes=nbytes,
            )
        return self.transfer_clock.now()

    # ------------------------------------------------------------ execution
    def launch(self, kernel: Kernel, n_threads: int, *args, block: int = 256,
               host_time: float = 0.0) -> KernelLaunchRecord:
        """Launch on the default stream."""
        return self.default_stream.launch(
            kernel, n_threads, *args, block=block, host_time=host_time
        )

    def synchronize(self, host_time: float = 0.0) -> float:
        """Join host and device timelines; returns the new host time."""
        return max(host_time, self.default_stream.busy_until(), self.transfer_clock.now())

    def reset_timelines(self) -> None:
        self.default_stream.clock.reset()
        self.transfer_clock.reset()


__all__ = ["Device", "DeviceBuffer", "Stream"]
