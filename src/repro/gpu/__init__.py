"""Simulated GPU device (the CUDA/CUDA.jl stand-in).

There is no physical GPU in this environment, so the hybrid code-generation
target runs its kernels on this substrate instead: numerics execute for real
(vectorised NumPy over device-resident buffers), while *timing* comes from a
roofline-style device model:

* :class:`~repro.gpu.spec.DeviceSpec` — SM count, clocks, FP64/FP32 peak,
  DRAM bandwidth, PCIe link, launch latency; presets for the paper's NVIDIA
  A6000 and A100;
* :class:`~repro.gpu.device.Device` — buffers, H2D/D2H transfers, streams
  with asynchronous launch semantics, and a virtual device timeline;
* :class:`~repro.gpu.kernel.Kernel` — a launchable with per-thread FLOP/byte
  estimates (produced by the code generator from the IR);
* :class:`~repro.gpu.profiler.Profiler` — accumulates the counters behind
  the paper's inline profiling table (SM utilisation, memory throughput,
  FLOP rate as a fraction of the double-precision roofline).

Everything the real code path would do — allocation, explicit transfers,
async launch + host overlap, synchronisation — is exercised; only the clock
is modelled.  See DESIGN.md for the substitution rationale.
"""

from repro.gpu.spec import DeviceSpec, A6000, A100, LAPTOP_GPU
from repro.gpu.device import Device, DeviceBuffer, Stream
from repro.gpu.kernel import Kernel, KernelLaunchRecord
from repro.gpu.profiler import Profiler, ProfileReport

__all__ = [
    "DeviceSpec",
    "A6000",
    "A100",
    "LAPTOP_GPU",
    "Device",
    "DeviceBuffer",
    "Stream",
    "Kernel",
    "KernelLaunchRecord",
    "Profiler",
    "ProfileReport",
]
