"""Simulated distributed runtime (the MPI stand-in).

Rank programs run as real threads exchanging real data through typed
point-to-point channels and collectives, while each rank advances a
*virtual* clock charged by an (alpha + bytes/beta) network model.  This
keeps the semantics of the generated distributed code honest — halo
exchanges move actual ghost values, reductions combine actual partial
energies — while the strong-scaling numbers come from the cost model
(there are not 320 cores here).

* :class:`~repro.runtime.netmodel.NetworkModel` — latency/bandwidth pairs
  with presets for an InfiniBand-class cluster interconnect and intra-node
  shared memory;
* :class:`~repro.runtime.comm.World` / :class:`~repro.runtime.comm.Communicator`
  — ``send``/``recv``/``allreduce``/``allgather``/``barrier`` plus
  ``compute(seconds)`` for charging local work;
* :func:`~repro.runtime.executor.run_spmd` — runs one program per rank and
  returns each rank's results and virtual timings;
* :class:`~repro.runtime.halo.HaloExchanger` — neighbour exchange built from
  a :class:`~repro.mesh.partition.PartitionLayout`;
* :mod:`~repro.runtime.faults` / :mod:`~repro.runtime.resilience` — seeded
  fault injection (message drop/delay/dup, rank stalls, device OOM/kernel
  faults) and the recovery machinery (retry policy, resilience log,
  ``repro.checkpoint/1`` schema).
"""

from repro.runtime.netmodel import NetworkModel, IB_CLUSTER, SHARED_MEMORY, ZERO_COST
from repro.runtime.comm import World, Communicator, ReduceOp
from repro.runtime.executor import run_spmd, SPMDResult
from repro.runtime.faults import (
    FaultInjector,
    FaultRule,
    fault_run,
    get_injector,
    parse_fault_spec,
    set_injector,
)
from repro.runtime.halo import HaloExchanger
from repro.runtime.resilience import (
    CHECKPOINT_SCHEMA,
    RetryPolicy,
    checkpoint_path,
    get_resilience_log,
    resilience_section,
)

__all__ = [
    "NetworkModel",
    "IB_CLUSTER",
    "SHARED_MEMORY",
    "ZERO_COST",
    "World",
    "Communicator",
    "ReduceOp",
    "run_spmd",
    "SPMDResult",
    "HaloExchanger",
    "FaultInjector",
    "FaultRule",
    "fault_run",
    "get_injector",
    "parse_fault_spec",
    "set_injector",
    "CHECKPOINT_SCHEMA",
    "RetryPolicy",
    "checkpoint_path",
    "get_resilience_log",
    "resilience_section",
]
