"""Halo (ghost-cell) exchange on top of a partition layout.

Figure 3 of the paper contrasts cell partitioning (halo exchange of every
``I[d,b]`` along partition interfaces) with equation/band partitioning (no
halo at all, only the temperature reduction).  :class:`HaloExchanger` is the
cell-partition side of that: given a
:class:`~repro.mesh.partition.PartitionLayout` it packs owned interface
values, exchanges them with neighbour ranks, and unpacks into the ghost
slots of the local array.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.partition import PartitionLayout
from repro.runtime.comm import Communicator
from repro.util.errors import ReproError


class HaloExchanger:
    """Pack/exchange/unpack ghost values for one rank.

    Local arrays use the layout's local numbering: owned cells ``[0, n_own)``
    then ghosts ``[n_own, n_own + n_ghost)``.
    """

    def __init__(self, layout: PartitionLayout, rank: int):
        self.layout = layout
        self.rank = rank
        self.n_owned = len(layout.owned[rank])
        self.n_ghost = len(layout.ghosts[rank])
        # local indices of the cells we send to each neighbour
        self.send_local = {
            q: layout.localize(rank, cells)
            for q, cells in layout.send_cells[rank].items()
        }
        # local ghost slots receiving from each neighbour (in the sender's order)
        self.recv_local = {
            q: layout.localize(rank, cells)
            for q, cells in layout.recv_cells[rank].items()
        }

    @property
    def neighbors(self) -> list[int]:
        return sorted(self.send_local)

    def bytes_per_exchange(self, ncomp: int = 1) -> int:
        """Bytes this rank sends in one halo update."""
        return sum(len(ix) * ncomp * 8 for ix in self.send_local.values())

    def update(self, comm: Communicator, local: np.ndarray, tag: int = 7) -> None:
        """Fill the ghost entries of ``local`` (shape ``(..., n_local)``)."""
        if local.shape[-1] != self.n_owned + self.n_ghost:
            raise ReproError(
                f"local array has {local.shape[-1]} cells, layout expects "
                f"{self.n_owned + self.n_ghost}"
            )
        sends = {q: np.ascontiguousarray(local[..., ix]) for q, ix in self.send_local.items()}
        received = comm.exchange(sends, tag=tag, phase="communication")
        for q, data in received.items():
            local[..., self.recv_local[q]] = data


__all__ = ["HaloExchanger"]
