"""Recovery machinery for injected (and genuine) runtime faults.

Three pieces live here:

* :class:`RetryPolicy` — per-receive timeouts with exponential backoff and
  idempotent re-send, used by :meth:`repro.runtime.comm.Communicator.recv`
  to survive dropped/duplicated/delayed messages;
* :class:`ResilienceLog` — the run-wide account of what was injected and
  what it cost to recover: counters, degraded placements, recovery
  latencies.  The log is a module-level singleton (like the tracer) so the
  comm layer, the simulated device and the generated solver loops can all
  record into it without plumbing; :func:`resilience_section` renders it as
  the run report's ``resilience`` section and mirrors every event into the
  metrics registry;
* the ``repro.checkpoint/1`` schema constant shared by
  :meth:`~repro.codegen.state.SolverState.save_checkpoint` and the CLI's
  ``--checkpoint-every/--restore`` flags.

The recovery state machine for one point-to-point receive::

          ┌──────────┐ timeout   ┌───────────┐ found lost msg  ┌─────────┐
    ──────► WAITING  ├──────────► REQUESTING ├────────────────► RECOVERED│
          └────┬─────┘           └─────┬─────┘ (re-delivered)  └─────────┘
               │ message               │ nothing lost: back off (x2)
               ▼                       ▼
          ┌──────────┐           retries exhausted → CommFaultError
          │ DELIVERED│           (dedup: seq <= watermark → discard, wait on)
          └──────────┘
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Schema tag written into every solver checkpoint.
CHECKPOINT_SCHEMA = "repro.checkpoint/1"

#: Histogram buckets for recovery latency (virtual seconds).
_RECOVERY_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-receive timeout/backoff/re-send policy.

    ``wall_timeout_s`` is the *real* time the receiver waits before its
    first retransmit request; every retry doubles it (``backoff``) up to
    ``max_retries`` attempts.  Each retry also charges
    ``virtual_latency_s * backoff**attempt`` to the receiver's virtual
    clock, so recovered faults are visible in traces and phase breakdowns.
    """

    max_retries: int = 8
    wall_timeout_s: float = 0.05
    backoff: float = 2.0
    virtual_latency_s: float = 2e-5

    def wall_timeout(self, attempt: int) -> float:
        return self.wall_timeout_s * self.backoff ** attempt

    def virtual_penalty(self, attempt: int) -> float:
        return self.virtual_latency_s * self.backoff ** attempt


DEFAULT_RETRY_POLICY = RetryPolicy()


class ResilienceLog:
    """Thread-safe account of injected faults and their recoveries."""

    def __init__(self):
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock", threading.Lock()):
            self.injected: dict[str, int] = {}
            self.retries = 0
            self.duplicates_dropped = 0
            self.recovered = 0
            self.recovery_latencies_s: list[float] = []
            self.checkpoints_written = 0
            self.checkpoint_paths: list[str] = []
            self.restores = 0
            self.degraded: list[dict[str, Any]] = []
            self.migrations: list[dict[str, Any]] = []
            self.preemptions: list[dict[str, Any]] = []
            self.resumes = 0

    # --------------------------------------------------------------- events
    def record_injected(self, kind: str, **labels: Any) -> None:
        with self._lock:
            self.injected[kind] = self.injected.get(kind, 0) + 1
        self._metric_counter(
            "resilience_faults_injected_total",
            "faults injected by the seeded injector", kind=kind, **labels)
        self._event("fault.injected", "warning", kind=kind, **labels)

    def record_retry(self, **labels: Any) -> None:
        with self._lock:
            self.retries += 1
        self._metric_counter(
            "resilience_retries_total",
            "receive retries (timeout + idempotent re-send)", **labels)
        self._event("comm.retry", "warning", **labels)

    def record_duplicate_dropped(self, **labels: Any) -> None:
        with self._lock:
            self.duplicates_dropped += 1
        self._metric_counter(
            "resilience_duplicates_dropped_total",
            "duplicate messages discarded by sequence dedup", **labels)
        self._event("comm.duplicate_dropped", "info", **labels)

    def record_recovered(self, latency_s: float, **labels: Any) -> None:
        with self._lock:
            self.recovered += 1
            self.recovery_latencies_s.append(float(latency_s))
        from repro.obs.metrics import get_metrics

        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "resilience_recovered_total",
                "faults recovered by the resilient runtime").inc(1, **labels)
            metrics.histogram(
                "resilience_recovery_latency_seconds",
                "virtual seconds from fault detection to recovery",
                buckets=_RECOVERY_BUCKETS).observe(latency_s, **labels)
        self._event("comm.recovered", "info", latency_s=latency_s, **labels)

    def record_checkpoint(self, path: str | Path, **labels: Any) -> None:
        with self._lock:
            self.checkpoints_written += 1
            self.checkpoint_paths.append(str(path))
        self._metric_counter(
            "resilience_checkpoints_total", "solver checkpoints written", **labels)
        self._event("checkpoint.written", "info", path=str(path), **labels)

    def record_restore(self, path: str | Path, **labels: Any) -> None:
        with self._lock:
            self.restores += 1
        self._metric_counter(
            "resilience_restores_total", "solver checkpoints restored", **labels)
        self._event("checkpoint.restored", "info", path=str(path), **labels)

    def record_degraded(self, task: str, from_device: str, to_device: str,
                        reason: str, **labels: Any) -> None:
        """A faulted device task was re-placed and re-executed elsewhere."""
        with self._lock:
            self.degraded.append({
                "task": task, "from": from_device, "to": to_device,
                "reason": reason, **labels,
            })
        self._metric_counter(
            "resilience_degraded_placements_total",
            "tasks re-placed after a device fault",
            task=task, **labels)
        self._event("device.degraded", "warning", task=task,
                    from_device=from_device, to_device=to_device,
                    reason=reason, **labels)

    def record_migration(self, kind: str, step: int, from_ranks: int,
                         to_ranks: int, **labels: Any) -> None:
        """State migrated to a new rank layout (rank loss or rebalance)."""
        with self._lock:
            self.migrations.append({
                "kind": kind, "step": int(step),
                "from_ranks": int(from_ranks), "to_ranks": int(to_ranks),
                **labels,
            })
        self._metric_counter(
            "resilience_migrations_total",
            "checkpoint-based state migrations (rank loss / rebalance)",
            kind=kind)
        self._event("state.migrated", "warning", kind=kind, step=step,
                    from_ranks=from_ranks, to_ranks=to_ranks, **labels)

    def record_preemption(self, job: str, step: int, **labels: Any) -> None:
        """A running job was checkpointed and yielded its worker (serve)."""
        with self._lock:
            self.preemptions.append({"job": job, "step": int(step), **labels})
        self._metric_counter(
            "resilience_preemptions_total",
            "jobs checkpointed and preempted off their worker", **labels)
        self._event("job.preempted", "warning", job=job, step=step, **labels)

    def record_resume(self, job: str, step: int, **labels: Any) -> None:
        """A preempted/killed job resumed from its checkpoint (serve)."""
        with self._lock:
            self.resumes += 1
        self._metric_counter(
            "resilience_resumes_total",
            "jobs resumed from checkpoint on a fresh worker", **labels)
        self._event("job.resumed", "info", job=job, step=step, **labels)

    @staticmethod
    def _metric_counter(name: str, help: str, **labels: Any) -> None:
        from repro.obs.metrics import get_metrics

        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(name, help).inc(1, **labels)

    @staticmethod
    def _event(name: str, level: str = "info", **fields: Any) -> None:
        """Mirror one resilience record into the structured event log."""
        from repro.obs.log import get_event_log

        elog = get_event_log()
        if elog.enabled:
            rank = fields.pop("rank", None)
            step = fields.pop("step", None)
            elog.emit(name, level, rank=rank, step=step, **fields)

    # ---------------------------------------------------------------- export
    def has_events(self) -> bool:
        with self._lock:
            return bool(
                self.injected or self.retries or self.recovered
                or self.duplicates_dropped or self.checkpoints_written
                or self.restores or self.degraded or self.migrations
                or self.preemptions or self.resumes
            )

    def as_dict(self) -> dict[str, Any]:
        """The run report's ``resilience`` section (JSON-safe)."""
        with self._lock:
            lat = sorted(self.recovery_latencies_s)
            section: dict[str, Any] = {
                "faults_injected": dict(self.injected),
                "faults_injected_total": sum(self.injected.values()),
                "retries": self.retries,
                "duplicates_dropped": self.duplicates_dropped,
                "recovered": self.recovered,
                "checkpoints_written": self.checkpoints_written,
                "restores": self.restores,
                "degraded_placements": list(self.degraded),
                "migrations": list(self.migrations),
                "preemptions": list(self.preemptions),
                "resumes": self.resumes,
            }
            if lat:
                section["recovery_latency_s"] = {
                    "count": len(lat),
                    "total": sum(lat),
                    "max": lat[-1],
                    "p50": lat[len(lat) // 2],
                }
            return section

    def summary(self) -> str:
        """One-paragraph human summary (printed by the CLI)."""
        d = self.as_dict()
        parts = [f"faults injected: {d['faults_injected_total']}"]
        if d["faults_injected"]:
            kinds = ", ".join(f"{k}={v}" for k, v in sorted(d["faults_injected"].items()))
            parts[-1] += f" ({kinds})"
        parts.append(f"retries: {d['retries']}")
        parts.append(f"recovered: {d['recovered']}")
        if d["duplicates_dropped"]:
            parts.append(f"duplicates dropped: {d['duplicates_dropped']}")
        if d["checkpoints_written"]:
            parts.append(f"checkpoints: {d['checkpoints_written']}")
        if d["restores"]:
            parts.append(f"restores: {d['restores']}")
        if d["degraded_placements"]:
            moved = ", ".join(
                f"{e['task']}->{e['to']}" for e in d["degraded_placements"])
            parts.append(f"degraded placements: {len(d['degraded_placements'])} ({moved})")
        if d["migrations"]:
            kinds = ", ".join(
                f"{e['kind']}@{e['step']}:{e['from_ranks']}->{e['to_ranks']}"
                for e in d["migrations"])
            parts.append(f"migrations: {len(d['migrations'])} ({kinds})")
        if d["preemptions"]:
            parts.append(f"preemptions: {len(d['preemptions'])}")
        if d["resumes"]:
            parts.append(f"resumes: {d['resumes']}")
        return "; ".join(parts)


_LOG = ResilienceLog()


def get_resilience_log() -> ResilienceLog:
    """The process-wide resilience event log (reset by :func:`fault_run`)."""
    return _LOG


def resilience_section() -> dict[str, Any] | None:
    """The report section, or ``None`` when nothing resilience-ish happened."""
    from repro.runtime.faults import get_injector

    if not _LOG.has_events() and not get_injector().enabled:
        return None
    return _LOG.as_dict()


def checkpoint_path(directory: str | Path, step: int, rank: int | None = None) -> Path:
    """Canonical checkpoint filename: ``<dir>/ckpt_step000010[_rank2].npz``."""
    name = f"ckpt_step{step:06d}"
    if rank is not None:
        name += f"_rank{rank}"
    return Path(directory) / f"{name}.npz"


def atomic_save_npz(path: str | Path, **payload: Any) -> None:
    """Write an ``.npz`` atomically: tmp file in the same directory, then
    ``os.replace``.

    A reader (e.g. the elastic runner composing a consistent cut from the
    checkpoints of every rank) can never observe a half-written archive: it
    sees either the previous file or the complete new one.  ``np.savez`` is
    handed an open file object so it cannot append its own ``.npz`` suffix
    to the temporary name.
    """
    import numpy as np

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


__all__ = [
    "CHECKPOINT_SCHEMA",
    "DEFAULT_RETRY_POLICY",
    "ResilienceLog",
    "RetryPolicy",
    "atomic_save_npz",
    "checkpoint_path",
    "get_resilience_log",
    "resilience_section",
]
