"""Seeded, policy-driven fault injection for the simulated runtime.

Production solvers do not get fault-free machines: messages are dropped or
delayed by congested fabrics, ranks stall behind OS jitter, devices run out
of memory mid-campaign and kernels fault.  This module *injects* exactly
those failure classes — deterministically, from a seed — so the recovery
machinery (:mod:`repro.runtime.resilience`) can be exercised and the
cross-target differential tests can prove that every execution path still
converges to the same physics through the faults.

Fault-spec grammar (the CLI ``--faults`` argument)::

    spec   := rule (';' rule)*
    rule   := kind [':' key '=' value (',' key '=' value)*]
    kind   := 'drop' | 'delay' | 'dup' | 'stall' | 'rank_kill'
            | 'rank_slow' | 'oom' | 'kernel'

    keys (all optional; unset keys match anything):
      rank=R      match events on rank R (sender rank for messages)
      dest=R      match messages addressed to rank R
      tag=T       match messages with tag T
      device=NAME match device-name substring ('gpu0' matches 'gpu0:A6000')
      op=OP       match device operation: alloc | h2d | launch
      at=N        fire on the Nth matching event (1-based occurrence)
      count=C     fire at most C times (default 1; count=0 means unlimited)
      p=X         fire with probability X per matching event (seeded RNG)
      delay=S     extra virtual seconds ('delay' and 'stall' kinds)
      factor=F    compute slowdown multiplier ('rank_slow' kind, default 4)

Examples::

    drop:rank=0,dest=1,at=2            # drop the 2nd message 0 -> 1
    stall:rank=2,at=7,delay=5e-4       # stall rank 2's 7th compute call
    rank_kill:rank=1,at=5              # rank 1 dies at its 5th compute call
    rank_slow:rank=0,factor=3,count=0  # rank 0 computes 3x slower, forever
    oom:device=gpu1,op=h2d,at=3        # 3rd H2D on device gpu1 raises OOM
    delay:p=0.1,delay=1e-5;dup:p=0.05  # chaos mode, seeded

Like the tracer and metrics registry, the injector is a module-level
singleton defaulting to a disabled no-op, so instrumented call sites stay
unconditional and zero-overhead in fault-free runs.  Install one around a
run with :func:`fault_run`::

    with fault_run("stall:rank=2,at=7;oom:device=gpu0", seed=42):
        solver = problem.solve()
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.util.errors import FaultSpecError

#: Kinds understood by the injector, grouped by the subsystem they hit.
MESSAGE_KINDS = ("drop", "delay", "dup")
RANK_KINDS = ("stall", "rank_kill", "rank_slow")
DEVICE_KINDS = ("oom", "kernel")
ALL_KINDS = MESSAGE_KINDS + RANK_KINDS + DEVICE_KINDS

_FLOAT_KEYS = {"p", "delay", "factor"}
_INT_KEYS = {"rank", "dest", "tag", "at", "count"}
_STR_KEYS = {"device", "op"}


@dataclass
class FaultRule:
    """One parsed rule of a fault spec: a filter plus a trigger policy."""

    kind: str
    rank: int | None = None
    dest: int | None = None
    tag: int | None = None
    device: str | None = None
    op: str | None = None
    at: int | None = None  # fire on the Nth matching occurrence (1-based)
    count: int = 1  # max firings; 0 = unlimited
    p: float | None = None  # per-event probability (seeded)
    delay_s: float = 1e-4  # extra virtual seconds for delay/stall
    factor: float = 4.0  # compute slowdown multiplier for rank_slow
    # runtime trigger state (owned by the injector, under its lock)
    occurrences: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def matches(self, **event: Any) -> bool:
        """Does this rule's filter accept the event's attributes?"""
        for key in ("rank", "dest", "tag", "op"):
            want = getattr(self, key)
            if want is not None and event.get(key) != want:
                return False
        if self.device is not None:
            name = event.get("device")
            if name is None or self.device not in name:
                return False
        return True

    def describe(self) -> str:
        parts = [self.kind]
        for key in ("rank", "dest", "tag", "device", "op", "at"):
            value = getattr(self, key)
            if value is not None:
                parts.append(f"{key}={value}")
        return ":".join([parts[0], ",".join(parts[1:])]) if parts[1:] else parts[0]


def parse_fault_spec(spec: str) -> list[FaultRule]:
    """Parse the ``--faults`` grammar into :class:`FaultRule` objects."""
    rules: list[FaultRule] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, args = chunk.partition(":")
        kind = kind.strip()
        if kind not in ALL_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} (expected one of {', '.join(ALL_KINDS)})"
            )
        rule = FaultRule(kind)
        for pair in filter(None, (p.strip() for p in args.split(","))):
            key, eq, value = pair.partition("=")
            key = key.strip()
            if not eq:
                raise FaultSpecError(f"malformed key=value pair {pair!r} in {chunk!r}")
            try:
                if key in _INT_KEYS:
                    setattr(rule, key, int(value))
                elif key in _FLOAT_KEYS:
                    setattr(rule, "delay_s" if key == "delay" else key, float(value))
                elif key in _STR_KEYS:
                    setattr(rule, key, value.strip())
                else:
                    raise FaultSpecError(
                        f"unknown fault-spec key {key!r} in {chunk!r}"
                    )
            except ValueError as exc:
                raise FaultSpecError(
                    f"bad value for {key!r} in {chunk!r}: {exc}"
                ) from None
        if rule.p is not None and not (0.0 <= rule.p <= 1.0):
            raise FaultSpecError(f"probability p={rule.p} outside [0, 1]")
        rules.append(rule)
    return rules


class FaultInjector:
    """Deterministic fault oracle: instrumented code asks, rules answer.

    Thread-safe: rank programs run on real threads, and occurrence counting
    plus the seeded RNG are shared state.
    """

    enabled = True

    def __init__(self, rules: list[FaultRule] | str, seed: int = 0):
        if isinstance(rules, str):
            rules = parse_fault_spec(rules)
        self.rules = rules
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()

    # ------------------------------------------------------------- triggering
    def _fire(self, rule: FaultRule) -> bool:
        """Occurrence bookkeeping + trigger decision (caller holds the lock)."""
        rule.occurrences += 1
        if rule.count and rule.fired >= rule.count:
            return False
        if rule.at is not None and rule.occurrences != rule.at:
            return False
        if rule.p is not None and self.rng.random() >= rule.p:
            return False
        rule.fired += 1
        return True

    def _query(self, kinds: tuple[str, ...], **event: Any) -> FaultRule | None:
        with self._lock:
            for rule in self.rules:
                if rule.kind in kinds and rule.matches(**event):
                    if self._fire(rule):
                        return rule
        return None

    # -------------------------------------------------------------- queries
    def message_fault(self, rank: int, dest: int, tag: int) -> FaultRule | None:
        """Fault to apply to one point-to-point send (drop/delay/dup)."""
        return self._query(MESSAGE_KINDS, rank=rank, dest=dest, tag=tag)

    def stall_seconds(self, rank: int) -> float:
        """Extra virtual seconds this rank stalls at its next compute call."""
        rule = self._query(("stall",), rank=rank)
        return rule.delay_s if rule is not None else 0.0

    def kill_rank(self, rank: int) -> bool:
        """Should this rank die right now (``rank_kill``)?

        Occurrences count the rank's ``compute`` calls, so ``at=N`` pins
        the death to a specific point of the step loop.  The default
        ``count=1`` means a restarted run segment does not re-fire the
        rule — trigger state survives across segments, which is what lets
        the elastic runner resume past the kill.
        """
        return self._query(("rank_kill",), rank=rank) is not None

    def slow_factor(self, rank: int) -> float:
        """Compute-time multiplier for this rank (``rank_slow``; 1.0 = none).

        Use ``count=0`` for a persistently degraded rank (e.g. modelling a
        post-``degrade_to_cpu`` skew) — the slowdown then survives elastic
        restarts too, so a rebalance has something real to correct.
        """
        rule = self._query(("rank_slow",), rank=rank)
        return rule.factor if rule is not None else 1.0

    def device_fault(self, device: str, op: str, rank: int | None = None
                     ) -> str | None:
        """Fault kind to raise for one device operation (``oom``/``kernel``)."""
        rule = self._query(DEVICE_KINDS, device=device, op=op, rank=rank)
        return rule.kind if rule is not None else None

    # ------------------------------------------------------------ checkpoint
    def state_dict(self) -> dict[str, Any]:
        """Snapshot of the RNG + trigger state (rides in checkpoints)."""
        with self._lock:
            return {
                "seed": self.seed,
                "rng": self.rng.bit_generator.state,
                "rules": [
                    {"occurrences": r.occurrences, "fired": r.fired}
                    for r in self.rules
                ],
            }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore a snapshot written by :meth:`state_dict`."""
        with self._lock:
            self.rng.bit_generator.state = state["rng"]
            for rule, saved in zip(self.rules, state.get("rules", [])):
                rule.occurrences = int(saved["occurrences"])
                rule.fired = int(saved["fired"])

    def state_json(self) -> str:
        return json.dumps(self.state_dict())

    def __repr__(self) -> str:
        rules = "; ".join(r.describe() for r in self.rules)
        return f"FaultInjector(seed={self.seed}, rules=[{rules}])"


class NullInjector:
    """Disabled injector: every query says 'no fault', at zero cost."""

    enabled = False
    rules: list[FaultRule] = []

    def message_fault(self, rank: int, dest: int, tag: int) -> None:
        return None

    def stall_seconds(self, rank: int) -> float:
        return 0.0

    def kill_rank(self, rank: int) -> bool:
        return False

    def slow_factor(self, rank: int) -> float:
        return 1.0

    def device_fault(self, device: str, op: str, rank: int | None = None) -> None:
        return None

    def state_dict(self) -> dict[str, Any]:
        return {}

    def load_state(self, state: dict[str, Any]) -> None:
        pass

    def state_json(self) -> str:
        return "{}"


NULL_INJECTOR = NullInjector()
_current: FaultInjector | NullInjector = NULL_INJECTOR


def get_injector() -> FaultInjector | NullInjector:
    """The injector instrumented code should consult (never ``None``)."""
    return _current


def set_injector(injector: FaultInjector | NullInjector | None
                 ) -> FaultInjector | NullInjector:
    """Install ``injector`` as current (``None`` resets); returns previous."""
    global _current
    previous = _current
    _current = NULL_INJECTOR if injector is None else injector
    return previous


@contextmanager
def fault_run(spec: str | list[FaultRule] | None, seed: int = 0, *,
              reset_log: bool = True):
    """Install a seeded :class:`FaultInjector` for the block.

    ``spec`` may be a grammar string, a rule list, or ``None`` (no faults —
    the block still runs with a fresh resilience log, so reports stay
    comparable).  The previous injector is restored on exit.
    """
    from repro.runtime.resilience import get_resilience_log

    injector: FaultInjector | NullInjector
    if spec is None:
        injector = NULL_INJECTOR
    else:
        injector = FaultInjector(spec, seed=seed)
        from repro.obs.log import get_event_log

        get_event_log().emit(
            "faults.armed", level="info", seed=injector.seed,
            rules=[r.describe() for r in injector.rules])
    previous = set_injector(injector)
    if reset_log:
        get_resilience_log().reset()
    try:
        yield injector
    finally:
        set_injector(previous)


__all__ = [
    "ALL_KINDS",
    "FaultInjector",
    "FaultRule",
    "NULL_INJECTOR",
    "NullInjector",
    "fault_run",
    "get_injector",
    "parse_fault_spec",
    "set_injector",
]
