"""Elastic SPMD runtime: liveness, rank-loss recovery, load rebalancing.

Three cooperating mechanisms turn the static-partition SPMD runtime into an
elastic one (ROADMAP item 4: "detects imbalance and rank loss, migrates
state via checkpoints, repartitions live"):

* :class:`HeartbeatMonitor` — every :meth:`Communicator.compute` call beats
  a per-rank liveness clock; ``run_spmd(heartbeat_s=...)`` polls it during
  the join and declares a silent rank dead (``HeartbeatError``, RPR315)
  within the configured deadline instead of hanging until the deadlock
  guard.  The clock source is pluggable so tests drive it with a
  :class:`~repro.util.timing.VirtualClock` — no wall sleeps.

* **Rank-loss recovery** — when a segment dies with a
  :class:`~repro.util.errors.RankKilledError` (injected ``rank_kill``) or
  :class:`~repro.util.errors.HeartbeatError` root cause,
  :class:`ElasticRunner` finds the last *consistent cut*: the newest step
  for which every rank of the writing epoch left a ``repro.checkpoint/1``
  file.  It composes the global state from those per-rank files (each rank
  contributed its owned cells/bands), recomputes the partition over the
  surviving rank count via :mod:`repro.mesh.partition`, rebinds the
  generated module's partition tables (send/recv halo maps, per-rank cost
  vectors), and reruns the remaining steps.  Because the per-cell /
  per-band arithmetic is partition-independent (halo/ghost values are
  re-exchanged before every step), the recovered run is bit-identical to
  an uninterrupted one.

* **Imbalance-triggered rebalancing** — each rank measures its own compute
  seconds per step (``CommStats.compute_s`` deltas, so collective waits do
  not blur the signal); every ``check_every`` steps the ranks allgather
  their window means and all derive the *same* imbalance ratio
  (max/mean).  When the ratio exceeds the threshold and the modelled
  benefit ``(max-mean) * remaining_steps`` exceeds the modelled migration
  cost (a :class:`~repro.runtime.netmodel.NetworkModel` state transfer),
  every rank writes a migration checkpoint at that exact step and raises
  :class:`RebalanceInterrupt` — a cooperative, symmetric pause, not a
  failure.  The runner then repartitions with weights proportional to the
  measured per-rank speeds and resumes.

The run-wide :class:`RebalanceLog` (singleton, like the resilience log)
feeds the run report's ``rebalance`` section; every migration also lands in
the resilience log, the structured event log and a flight-recorder
snapshot.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.runtime.resilience import checkpoint_path, get_resilience_log
from repro.util.errors import (
    CheckpointCorruptError,
    HeartbeatError,
    MigrationError,
    RankKilledError,
    ReproError,
)

#: Internal tag for arrays in composed resume payloads.
_FIELD_PREFIX = "field_"


# ---------------------------------------------------------------------------
# heartbeat / liveness
# ---------------------------------------------------------------------------

class HeartbeatMonitor:
    """Per-rank liveness clock with a configurable deadline.

    ``clock`` is any zero-argument callable returning seconds; it defaults
    to :func:`time.monotonic` but tests pass a virtual clock's ``now`` so
    detection is provable without wall sleeps.
    """

    def __init__(self, deadline_s: float,
                 clock: Callable[[], float] | None = None):
        if deadline_s <= 0:
            raise ReproError(f"heartbeat deadline must be > 0, got {deadline_s}")
        self.deadline_s = float(deadline_s)
        self.clock = clock or time.monotonic
        self._last: dict[int, float] = {}
        self._lock = threading.Lock()

    def start(self, ranks: Iterable[int]) -> None:
        """Arm the monitor: every rank gets a fresh beat at 'now'."""
        now = self.clock()
        with self._lock:
            for rank in ranks:
                self._last[int(rank)] = now

    def beat(self, rank: int) -> None:
        with self._lock:
            self._last[rank] = self.clock()

    def last_beat(self, rank: int) -> float | None:
        with self._lock:
            return self._last.get(rank)

    def stalled(self, now: float | None = None) -> list[int]:
        """Ranks whose last beat is older than the deadline (sorted)."""
        if now is None:
            now = self.clock()
        with self._lock:
            return sorted(
                r for r, t in self._last.items() if now - t > self.deadline_s
            )


# ---------------------------------------------------------------------------
# policy + cooperative interrupt
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RebalancePolicy:
    """Knobs of the elastic runtime (CLI: ``--rebalance`` and friends)."""

    heartbeat_s: float | None = None  # liveness deadline; None = joins only
    imbalance_threshold: float = 1.5  # max/mean per-rank step time ratio
    check_every: int = 4  # steps between imbalance checks
    min_remaining: int = 2  # don't migrate with fewer steps left
    max_rebalances: int = 1  # proactive migrations per run
    max_recoveries: int = 4  # rank-loss recoveries per run
    proactive: bool = True  # imbalance watcher on/off


class RebalanceInterrupt(Exception):
    """Cooperative segment pause: every rank agreed to rebalance *now*.

    Raised symmetrically by all ranks right after the (synchronising)
    imbalance allgather, with a migration checkpoint already on disk — so
    the interrupt is deterministic and the resume point bit-exact.  Not a
    :class:`ReproError`: it must pass through failure handlers untouched.
    """

    def __init__(self, step: int, ratio: float, times: list[float],
                 benefit_s: float, cost_s: float):
        self.step = step
        self.ratio = ratio
        self.times = times
        self.benefit_s = benefit_s
        self.cost_s = cost_s
        super().__init__(
            f"rebalance requested at step {step} (imbalance {ratio:.2f})"
        )


def imbalance_ratio(times: list[float]) -> float:
    """max/mean of per-rank busy seconds (1.0 = perfectly balanced)."""
    if not times:
        return 1.0
    mean = sum(times) / len(times)
    if mean <= 0.0:
        return 1.0
    return max(times) / mean


# ---------------------------------------------------------------------------
# run-wide log -> run report `rebalance` section
# ---------------------------------------------------------------------------

class RebalanceLog:
    """Thread-safe account of elastic-runtime decisions for one run."""

    def __init__(self):
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock", threading.Lock()):
            self.enabled_policy: dict[str, Any] | None = None
            self.checks = 0
            self.last_imbalance: float | None = None
            self.skips: list[dict[str, Any]] = []
            self.migrations: list[dict[str, Any]] = []
            self.final_nranks: int | None = None
            self.final_imbalance: float | None = None

    def record_policy(self, policy: RebalancePolicy) -> None:
        with self._lock:
            self.enabled_policy = {
                "heartbeat_s": policy.heartbeat_s,
                "imbalance_threshold": policy.imbalance_threshold,
                "check_every": policy.check_every,
            }

    def record_check(self, step: int, ratio: float) -> None:
        with self._lock:
            self.checks += 1
            self.last_imbalance = float(ratio)

    def record_skip(self, step: int, ratio: float, benefit_s: float,
                    cost_s: float) -> None:
        """Imbalance over threshold, but migration would not pay for itself."""
        with self._lock:
            self.skips.append({
                "step": step, "imbalance": float(ratio),
                "benefit_s": float(benefit_s), "cost_s": float(cost_s),
            })
        self._event("rebalance.skipped", "info", step=step, ratio=ratio,
                    benefit_s=benefit_s, cost_s=cost_s)

    def record_migration(self, **entry: Any) -> None:
        with self._lock:
            self.migrations.append(dict(entry))
        from repro.obs.metrics import get_metrics

        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "rebalance_migrations_total",
                "state migrations performed by the elastic runtime",
            ).inc(1, kind=entry.get("kind", "?"))
        self._event("rebalance.migrated", "warning", **entry)

    def set_final(self, nranks: int, ratio: float | None) -> None:
        with self._lock:
            self.final_nranks = nranks
            self.final_imbalance = None if ratio is None else float(ratio)

    @staticmethod
    def _event(name: str, level: str, **fields: Any) -> None:
        from repro.obs.log import get_event_log

        elog = get_event_log()
        if elog.enabled:
            step = fields.pop("step", None)
            elog.emit(name, level, step=step, **fields)

    def has_events(self) -> bool:
        with self._lock:
            return bool(self.checks or self.migrations or self.skips
                        or self.enabled_policy)

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "policy": self.enabled_policy,
                "checks": self.checks,
                "last_imbalance": self.last_imbalance,
                "skipped": list(self.skips),
                "migrations": [dict(m) for m in self.migrations],
                "final_nranks": self.final_nranks,
                "final_imbalance": self.final_imbalance,
            }

    def summary(self) -> str:
        d = self.as_dict()
        parts = [f"checks: {d['checks']}"]
        if d["migrations"]:
            kinds = ", ".join(
                f"{m['kind']}@step{m['step']}" for m in d["migrations"])
            parts.append(f"migrations: {len(d['migrations'])} ({kinds})")
        if d["skipped"]:
            parts.append(f"skipped: {len(d['skipped'])}")
        if d["final_imbalance"] is not None:
            parts.append(f"final imbalance: {d['final_imbalance']:.3f}")
        if d["final_nranks"] is not None:
            parts.append(f"final ranks: {d['final_nranks']}")
        return "; ".join(parts)


_RLOG = RebalanceLog()


def get_rebalance_log() -> RebalanceLog:
    """The process-wide rebalance log (reset per elastic run)."""
    return _RLOG


def rebalance_section() -> dict[str, Any] | None:
    """The run report's ``rebalance`` section, or ``None`` when inactive."""
    if not _RLOG.has_events():
        return None
    return _RLOG.as_dict()


# ---------------------------------------------------------------------------
# per-rank imbalance watcher (behind SolverState.maybe_rebalance)
# ---------------------------------------------------------------------------

class _RankMonitor:
    """The per-rank observer installed as ``state.rebalance``.

    Called once per completed step from the generated run loops (the
    ``maybe_rebalance`` hook, mirroring ``maybe_checkpoint``).  Tracks this
    rank's compute seconds per step and joins the symmetric allgather
    decision every ``check_every`` steps.
    """

    def __init__(self, controller: "ElasticRunner"):
        self.controller = controller
        self._last_compute: float | None = None
        self._deltas: list[float] = []

    def observe(self, state) -> None:
        ctl = self.controller
        comm = state.comm
        if comm is None:
            return
        busy = comm.stats.compute_s
        if self._last_compute is not None:
            self._deltas.append(busy - self._last_compute)
        self._last_compute = busy
        pol = ctl.policy
        # every condition below is identical on all ranks (same step, same
        # segment-constant controller state), so either every rank enters
        # the allgather or none does — the decision protocol cannot skew
        if not pol.proactive or ctl.rebalances >= pol.max_rebalances:
            return
        step = state.step_index
        if step == 0 or step % pol.check_every or not self._deltas:
            return
        remaining = ctl.total_steps - step
        if remaining < pol.min_remaining:
            return
        window = self._deltas[-pol.check_every:]
        mine = sum(window) / len(window)
        times = comm.allgather(float(mine), phase="rebalance")
        self._deltas.clear()
        ratio = imbalance_ratio(times)
        if comm.rank == 0:
            get_rebalance_log().record_check(step, ratio)
        if ratio <= pol.imbalance_threshold:
            return
        mean = sum(times) / len(times)
        benefit = (max(times) - mean) * remaining
        cost = ctl.migration_cost_s()
        if benefit <= cost:
            if comm.rank == 0:
                get_rebalance_log().record_skip(step, ratio, benefit, cost)
            return
        # migration pays: every rank checkpoints this exact step, then the
        # segment pauses cooperatively (no communication happens between
        # the allgather above and the raise, so all ranks pause together)
        ctl.workdir.mkdir(parents=True, exist_ok=True)
        state.save_checkpoint(checkpoint_path(ctl.workdir, step, rank=comm.rank))
        raise RebalanceInterrupt(step, ratio, list(times), benefit, cost)


# ---------------------------------------------------------------------------
# the elastic runner (drives run_spmd in recoverable segments)
# ---------------------------------------------------------------------------

class ElasticRunner:
    """Outer retry loop around ``run_spmd``: recover, rebalance, resume.

    Target-specific knowledge arrives as callbacks bound by
    ``bind_artifact``:

    ``repartition(nranks, weights)``
        build a new partition object (a ``PartitionLayout`` for cells, a
        list of owned component sets for bands); ``weights`` are per-rank
        speeds (higher = give that rank more work), ``None`` = uniform.
    ``install(layout, namespace)``
        rewrite the generated module's partition-dependent globals
        (halo maps, per-rank cost vectors, shared layout boxes).
    ``owned_of(layout)``
        per-rank owned index arrays (cell columns or component rows).

    ``axis`` is ``"cells"`` (compose along columns) or ``"comps"``
    (compose along rows of the unknown).
    """

    def __init__(self, *, policy: RebalancePolicy, nranks: int, axis: str,
                 repartition, install, owned_of, current,
                 network, state_bytes: int,
                 workdir: str | Path | None = None):
        if axis not in ("cells", "comps"):
            raise MigrationError(f"unknown migration axis {axis!r}")
        self.policy = policy
        self.nranks = int(nranks)
        self.axis = axis
        self.repartition = repartition
        self.install = install
        self.owned_of = owned_of
        self.current = current
        self.network = network
        self.state_bytes = int(state_bytes)
        self._own_workdir = workdir is None
        self.workdir = Path(workdir) if workdir is not None else None
        self.namespace: dict[str, Any] | None = None
        # runtime state (reset per run)
        self.total_steps = 0
        self.start_step = 0
        self.resume: dict[str, Any] | None = None
        self.rebalances = 0
        self._epochs: list[dict[str, Any]] = []

    # ------------------------------------------------------------- wiring
    def attach(self, namespace: dict[str, Any]) -> None:
        """Bind the generated module's live namespace (post-construction:
        ``GeneratedSolver.recompile`` builds a fresh dict, so the solver
        hands it over after compiling)."""
        self.namespace = namespace

    def prepare_rank_state(self, st) -> None:
        """Apply the pending resume payload + install the per-rank monitor.

        Called from ``make_rank_state`` for every rank of every segment.
        """
        # periodic checkpoints must land where the consistent-cut scan
        # looks; the bound workdir IS the user's checkpoint_dir when set
        if self.workdir is not None:
            st.checkpoint_dir = str(self.workdir)
        res = self.resume
        if res is not None:
            for name, arr in res["fields"].items():
                st.fields[name].data[...] = arr
            if res.get("T") is not None:
                st.extra["T"] = np.array(res["T"])
            st.time = float(res["time"])
            st.step_index = int(res["step"])
        st.rebalance = _RankMonitor(self)

    def migration_cost_s(self) -> float:
        """Modelled cost of one migration: the full solver state crosses
        the fabric (checkpoint out + composed state back in)."""
        n = max(self.nranks, 2)
        return (self.network.allgather_time(self.state_bytes, n)
                + 2.0 * self.network.transfer_time(self.state_bytes))

    # --------------------------------------------------------------- run
    def run(self, rank_program, nsteps: int, run_nsteps_box: list) -> Any:
        """Run ``nsteps`` total steps, surviving kills and rebalances."""
        from repro.runtime.executor import run_spmd

        log = get_rebalance_log()
        log.reset()
        log.record_policy(self.policy)
        if self._own_workdir:
            self.workdir = Path(tempfile.mkdtemp(prefix="repro-migrate-"))
        self.total_steps = int(nsteps)
        self.start_step = 0
        self.resume = None
        self.rebalances = 0
        self._epochs = [self._epoch(0, self.nranks, self.current)]
        recoveries = 0
        try:
            while True:
                run_nsteps_box[0] = self.total_steps - self.start_step
                try:
                    result = run_spmd(
                        self.nranks, rank_program, self.network,
                        heartbeat_s=self.policy.heartbeat_s,
                    )
                except RebalanceInterrupt as intr:
                    self._rebalance(intr)
                    continue
                except ReproError as exc:
                    victim = _victim_of(exc)
                    if victim is None:
                        raise
                    recoveries += 1
                    if recoveries > self.policy.max_recoveries:
                        raise MigrationError(
                            f"gave up after {recoveries - 1} rank-loss "
                            f"recoveries (last victim: rank {victim})"
                        ) from exc
                    self._recover(victim, exc)
                    continue
                ratio = imbalance_ratio([s.compute_s for s in result.stats])
                log.set_final(self.nranks, ratio)
                return result
        finally:
            if self._own_workdir and self.workdir is not None:
                shutil.rmtree(self.workdir, ignore_errors=True)
                self.workdir = None

    # ------------------------------------------------------ recovery paths
    def _recover(self, victim: int, exc: BaseException) -> None:
        """Rank loss: reduce the world, migrate state, resume from the cut."""
        survivors = self.nranks - 1
        if survivors < 1:
            raise MigrationError(
                "rank loss with no survivors — nothing to migrate to"
            ) from exc
        cut = self._consistent_cut()
        resume = self._compose(cut)
        new_layout = self.repartition(survivors, None)
        old_nranks = self.nranks
        self._install_epoch(cut, survivors, new_layout)
        self.resume = resume
        self._note_migration(
            kind="rank_loss", step=cut, victim=victim,
            from_nranks=old_nranks, to_nranks=survivors,
            reason=f"{type(exc).__name__}: {exc}",
        )
        get_resilience_log().record_migration(
            "rank_loss", step=cut, from_ranks=old_nranks, to_ranks=survivors,
            victim=victim)

    def _rebalance(self, intr: RebalanceInterrupt) -> None:
        """Proactive migration: repartition by measured per-rank speeds."""
        # weight ∝ measured speed: a rank that takes 3x longer per step
        # gets ~1/3 of the work
        floor = max(min(intr.times) * 1e-6, 1e-30)
        weights = [1.0 / max(t, floor) for t in intr.times]
        new_layout = self.repartition(self.nranks, weights)
        self._install_epoch(intr.step, self.nranks, new_layout)
        self.resume = self._compose(intr.step)
        if self.resume is None:
            raise MigrationError(
                f"migration checkpoints missing at step {intr.step}"
            )
        self.rebalances += 1
        self._note_migration(
            kind="imbalance", step=intr.step, victim=None,
            from_nranks=self.nranks, to_nranks=self.nranks,
            imbalance_before=intr.ratio, rank_step_s=intr.times,
            benefit_s=intr.benefit_s, cost_s=intr.cost_s,
        )
        get_resilience_log().record_migration(
            "imbalance", step=intr.step, from_ranks=self.nranks,
            to_ranks=self.nranks, imbalance=intr.ratio)

    def _note_migration(self, **entry: Any) -> None:
        entry["new_owned_sizes"] = [
            int(len(o)) for o in self.owned_of(self.current)
        ]
        get_rebalance_log().record_migration(**entry)
        from repro.obs import get_flight_recorder

        get_flight_recorder().snapshot(step=entry.get("step"))

    # -------------------------------------------------- epochs + composing
    @staticmethod
    def _epoch(start: int, nranks: int, layout) -> dict[str, Any]:
        return {"start": int(start), "nranks": int(nranks), "layout": layout}

    def _install_epoch(self, start: int, nranks: int, layout) -> None:
        if self.namespace is None:
            raise MigrationError("elastic runner was never attached to a solver")
        self.nranks = nranks
        self.current = layout
        self.install(layout, self.namespace)
        self._epochs.append(self._epoch(start, nranks, layout))
        self.start_step = int(start)

    def _epoch_of(self, step: int) -> dict[str, Any]:
        """The epoch that *ran* (and checkpointed) ``step``: the newest
        epoch whose start precedes it."""
        best = self._epochs[0]
        for ep in self._epochs:
            if ep["start"] < step:
                best = ep
        return best

    def _consistent_cut(self) -> int:
        """Newest step for which the writing epoch's every rank left a
        checkpoint file; 0 = restart from initial conditions."""
        by_step: dict[int, set[int]] = {}
        if self.workdir is not None and self.workdir.exists():
            for p in self.workdir.glob("ckpt_step*_rank*.npz"):
                try:
                    stem = p.stem  # ckpt_step000004_rank2
                    step = int(stem[len("ckpt_step"):len("ckpt_step") + 6])
                    rank = int(stem.rsplit("_rank", 1)[1])
                except (ValueError, IndexError):
                    continue
                by_step.setdefault(step, set()).add(rank)
        for step in sorted(by_step, reverse=True):
            if step > self.total_steps:
                continue
            epoch = self._epoch_of(step)
            if set(range(epoch["nranks"])) <= by_step[step]:
                return step
        return 0

    def _compose(self, step: int) -> dict[str, Any] | None:
        """Merge the per-rank checkpoints of ``step`` into one global state.

        Every rank's file carries full-size arrays in which only the owned
        portion is authoritative; ownership tiles the index space, so
        overwriting each rank's owned slice yields the exact global state
        — the same composition ``merge_results`` performs at run end.
        """
        if step <= 0:
            return None
        epoch = self._epoch_of(step)
        owned_sets = [np.asarray(o) for o in self.owned_of(epoch["layout"])]
        fields: dict[str, np.ndarray] = {}
        T: np.ndarray | None = None
        time_v: float | None = None
        # which fields the owned sets partition: with cell partitioning,
        # every field's last axis (cells); with band partitioning, the rows
        # of fields tall enough to be indexed by the component sets — the
        # rest are replicated identically on every rank (first copy wins)
        ncomp_needed = 1 + max(
            (int(o.max()) for o in owned_sets if len(o)), default=-1
        )
        for rank in range(epoch["nranks"]):
            path = checkpoint_path(self.workdir, step, rank=rank)
            try:
                with np.load(path) as data:
                    owned = owned_sets[rank]
                    for key in data.files:
                        if not key.startswith(_FIELD_PREFIX):
                            continue
                        name = key[len(_FIELD_PREFIX):]
                        arr = data[key]
                        full = fields.get(name)
                        if full is None:
                            full = np.array(arr)
                            fields[name] = full
                        if self.axis == "cells":
                            full[..., owned] = arr[..., owned]
                        elif full.ndim >= 1 and full.shape[0] >= ncomp_needed:
                            full[owned] = arr[owned]
                    time_v = float(data["__time"])
                    if "__T" in data.files:
                        t_arr = np.array(data["__T"])
                        if T is None:
                            T = t_arr
                        elif self.axis == "cells":
                            T[owned] = t_arr[owned]
            except FileNotFoundError as exc:
                raise MigrationError(
                    f"consistent-cut checkpoint missing: {path}"
                ) from exc
        if time_v is None:
            return None
        return {"step": step, "time": time_v, "fields": fields, "T": T}


def _victim_of(exc: BaseException) -> int | None:
    """The dead rank behind a segment failure, if recovery applies."""
    cause = exc.__cause__ if exc.__cause__ is not None else exc
    if isinstance(cause, (RankKilledError, HeartbeatError)):
        if cause.rank is not None:
            return cause.rank
        return getattr(exc, "failed_rank", None)
    return None


__all__ = [
    "ElasticRunner",
    "HeartbeatMonitor",
    "RebalanceInterrupt",
    "RebalanceLog",
    "RebalancePolicy",
    "get_rebalance_log",
    "imbalance_ratio",
    "rebalance_section",
]
