"""SPMD executor: run one program per rank on real threads.

``run_spmd(nranks, program)`` calls ``program(comm)`` on every rank and
collects return values, per-rank virtual clocks and communication stats.
Exceptions in any rank cancel the run and re-raise with the rank attached,
so test failures point at the failing rank program rather than hanging.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.obs import phase_span
from repro.runtime.comm import CommStats, Communicator, World
from repro.runtime.netmodel import NetworkModel, ZERO_COST
from repro.util.errors import HeartbeatError, RankPeerFailedError, ReproError
from repro.util.logging import get_logger

logger = get_logger("runtime.executor")


@dataclass
class SPMDResult:
    """Outcome of one SPMD run."""

    results: list[Any]
    times: list[float]  # per-rank final virtual time
    stats: list[CommStats]

    @property
    def makespan(self) -> float:
        """The run's virtual wall time (slowest rank)."""
        return max(self.times) if self.times else 0.0

    def phase_breakdown(self) -> dict[str, float]:
        """Summed per-phase virtual seconds across ranks."""
        out: dict[str, float] = {}
        for s in self.stats:
            for phase, t in s.phase_s.items():
                out[phase] = out.get(phase, 0.0) + t
        return out

    def phase_fractions(self) -> dict[str, float]:
        """Each phase's share of total charged time (the breakdown figures)."""
        breakdown = self.phase_breakdown()
        total = sum(breakdown.values())
        if total <= 0:
            return {k: 0.0 for k in breakdown}
        return {k: v / total for k, v in breakdown.items()}


def run_spmd(
    nranks: int,
    program: Callable[[Communicator], Any],
    network: NetworkModel = ZERO_COST,
    timeout_s: float = 120.0,
    heartbeat_s: float | None = None,
) -> SPMDResult:
    """Execute ``program`` on ``nranks`` ranks and gather the results.

    ``program`` receives a :class:`Communicator`; its return value lands in
    ``SPMDResult.results[rank]``.

    With ``heartbeat_s`` set, a liveness monitor watches every rank: each
    ``Communicator.compute`` call beats it, and a rank that goes silent for
    longer than the deadline is declared dead (``HeartbeatError``) instead
    of hanging the join until the deadlock-guard timeout.  Any rank failure
    poisons the comm world so peers blocked on receives unwind promptly.
    """
    logger.debug("run_spmd: launching %d rank(s)", nranks)
    world = World(nranks, network)
    world.timeout_s = timeout_s
    monitor = None
    if heartbeat_s:
        from repro.runtime.rebalance import HeartbeatMonitor

        monitor = HeartbeatMonitor(heartbeat_s)
        monitor.start(range(nranks))
        world.monitor = monitor
    comms = [world.communicator(r) for r in range(nranks)]
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def runner(rank: int) -> None:
        try:
            # the thread is named rank{r}, so this lands on a per-rank
            # wall-clock track next to the rank's virtual timeline
            with phase_span("rank_program", cat="run", rank=rank):
                results[rank] = program(comms[rank])
        except BaseException as exc:  # noqa: BLE001 - must not kill the thread pool silently
            cooperative = type(exc).__name__ == "RebalanceInterrupt"
            level = logger.debug if cooperative else logger.warning
            level("rank %d failed: %s: %s", rank, type(exc).__name__, exc)
            with lock:
                errors.append((rank, exc))
            if not cooperative:
                # poison pill: flood the channels and break the barriers so
                # peers blocked on recv/collectives unwind instead of hanging.
                # A RebalanceInterrupt must NOT poison: every rank raises it
                # right after the same synchronising allgather, and aborting
                # the barrier here races peers still draining that collective
                # (they would unwind before writing their migration
                # checkpoint).
                world.poison(rank, exc)

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    if monitor is None:
        for t in threads:
            t.join(timeout=timeout_s)
            if t.is_alive():
                world._barrier.abort()
                raise ReproError(f"SPMD run timed out waiting for {t.name}")
    else:
        _join_with_heartbeat(threads, world, monitor, errors, lock, timeout_s)

    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        # BrokenBarrier / poison-pill unwinds on other ranks are collateral
        # of the abort; surface the root cause only
        collateral = (threading.BrokenBarrierError, RankPeerFailedError)
        root = [e for e in errors if not isinstance(e[1], collateral)]
        if root:
            rank, exc = min(root, key=lambda e: e[0])
        from repro.runtime.rebalance import RebalanceInterrupt

        if isinstance(exc, RebalanceInterrupt):
            # a cooperative pause agreed by every rank, not a failure:
            # hand it straight to the elastic runner
            raise exc
        from repro.obs import get_event_log, get_flight_recorder

        get_event_log().emit("executor.rank_failed", level="error", rank=rank,
                             error=f"{type(exc).__name__}: {exc}")
        get_flight_recorder().dump("rank_failure", exc)
        err = ReproError(f"rank {rank} failed: {type(exc).__name__}: {exc}")
        err.failed_rank = rank
        raise err from exc

    result = SPMDResult(
        results=results,
        times=[c.clock.now() for c in comms],
        stats=[c.stats for c in comms],
    )
    logger.debug("run_spmd: %d rank(s) done, makespan %.6es",
                 nranks, result.makespan)
    return result


def _join_with_heartbeat(
    threads: list[threading.Thread],
    world: World,
    monitor,
    errors: list[tuple[int, BaseException]],
    lock: threading.Lock,
    timeout_s: float,
) -> None:
    """Join rank threads while policing the liveness deadline.

    A rank whose heartbeat goes stale is declared dead: its
    :class:`HeartbeatError` joins the error list, the world is poisoned so
    peers unwind, and its (stuck) thread is abandoned — it is a daemon.
    """
    deadline = time.monotonic() + timeout_s
    pending = {t.name: t for t in threads}
    declared: set[int] = set()
    while pending:
        for name, t in list(pending.items()):
            t.join(timeout=min(0.02, monitor.deadline_s / 4))
            if not t.is_alive():
                del pending[name]
        if not pending:
            break
        now = time.monotonic()
        for rank in monitor.stalled():
            if rank in declared or f"rank{rank}" not in pending:
                continue
            declared.add(rank)
            exc = HeartbeatError(
                f"rank {rank} missed the {monitor.deadline_s}s liveness "
                "deadline (stalled or dead)",
                rank=rank,
            )
            logger.warning("heartbeat: declaring rank %d dead", rank)
            with lock:
                errors.append((rank, exc))
            world.poison(rank, exc)
            # abandon the stuck daemon thread; peers will unwind via the pill
            pending.pop(f"rank{rank}", None)
        if now > deadline:
            world._barrier.abort()
            raise ReproError(
                f"SPMD run timed out waiting for {', '.join(sorted(pending))}"
            )


__all__ = ["run_spmd", "SPMDResult"]
